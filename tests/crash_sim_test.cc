// Deterministic crash simulation: a seeded workload drives the full
// System (DDL + transactions + checkpoints + snapshot ingest + segment
// appends) over a SimulatedEnv, power is cut at every sync boundary
// (and at randomized mid-write points in the long sweep), the machine
// "reboots" into a fresh System over the surviving bytes, and an
// oracle checks the durability contract:
//   - every acknowledged-durable operation is present after recovery;
//   - no refused write resurrects (strict mode, where every unsynced
//     byte is lost);
//   - snapshot versions recover as a monotonic prefix;
//   - the checkpoint or the WAL is authoritative — never a torn hybrid.
// Every failure reproduces from the printed STRUCTURA_SIM_SEED /
// STRUCTURA_SIM_CUT alone; when STRUCTURA_ARTIFACT_DIR is set, failing
// runs also drop a repro file there.

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/env.h"
#include "common/sim_env.h"
#include "core/system.h"
#include "rdbms/database.h"
#include "rdbms/value.h"
#include "rdbms/wal.h"
#include "serve/circuit_breaker.h"
#include "storage/snapshot_store.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::DatabaseOptions;
using rdbms::Row;
using rdbms::RowId;
using rdbms::TableSchema;
using rdbms::Transaction;
using rdbms::Value;
using rdbms::ValueType;
using CutFlavor = SimulatedEnv::CutFlavor;

std::string TempDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("structura_sim_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 10);
}

/// "N:before" / "N:after" from STRUCTURA_SIM_CUT, for replaying one
/// boundary of the sweep in isolation.
bool EnvCut(uint64_t* n, CutFlavor* flavor) {
  const char* s = std::getenv("STRUCTURA_SIM_CUT");
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *n = std::strtoull(s, &end, 10);
  *flavor = (end != nullptr && std::string(end) == ":after")
                ? CutFlavor::kAfterSync
                : CutFlavor::kBeforeSync;
  return *n != 0;
}

void MaybeDumpArtifact(const std::string& name, const std::string& body) {
  const char* dir = std::getenv("STRUCTURA_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(std::string(dir) + "/" + name);
  out << body;
}

TableSchema KvSchema() {
  TableSchema schema;
  schema.table_name = "kv";
  schema.columns = {{"name", ValueType::kString},
                    {"val", ValueType::kInt}};
  return schema;
}

// ------------------------------------------------------- the workload

/// What the workload was *promised*: the durable-acked state the crash
/// must preserve. WAL commits and DDL are durable at ack (the sync
/// policy fsyncs before acknowledging); snapshot/segment appends are
/// durable once a later Sync() of their store acked.
struct DurableModel {
  bool kv_created = false;
  std::set<std::string> acked_tables;  // auxiliary DDL that acked

  std::map<std::string, int64_t> rows;  // durable kv content
  std::map<std::string, RowId> row_ids;
  /// Keys whose statement already refused before Commit could write a
  /// commit record: no trace of them can legally survive.
  std::set<std::string> hard_refused;
  /// Keys whose Commit() itself refused: the commit record may sit in
  /// the unsynced tail, so under lossy (non-strict) crashes the txn is
  /// allowed to resurrect. Strict mode still requires absence.
  std::set<std::string> ambiguous;

  std::map<uint64_t, std::map<uint32_t, std::string>> snap_durable;
  std::map<uint64_t, std::map<uint32_t, std::string>> snap_pending;
  std::vector<std::string> seg_durable;
  std::vector<std::string> seg_pending;

  int ops_attempted = 0;
};

constexpr int kWorkloadOps = 220;

/// Runs the seeded workload against a fresh System on `dir` through
/// `env`. Returns the durable-acked model; once the simulated power
/// dies mid-run every later call simply refuses, which the driver
/// records like any other refusal.
DurableModel RunWorkload(const std::string& dir, SimulatedEnv* env,
                         Clock* clock, uint64_t seed) {
  DurableModel m;
  core::System::Options opts;
  opts.workspace = dir;
  opts.env = env;
  opts.clock = clock;
  auto sys = core::System::Create(opts);
  if (!sys.ok()) return m;
  Database* db = (*sys)->database();

  if (db->CreateTable(KvSchema()).ok()) m.kv_created = true;
  ++m.ops_attempted;

  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  auto snap_sync = [&] {
    if ((*sys)->snapshots().Sync().ok()) {
      for (auto& [page, vers] : m.snap_pending) {
        for (auto& [ver, content] : vers) {
          m.snap_durable[page][ver] = content;
        }
      }
      m.snap_pending.clear();
    }
  };
  auto seg_sync = [&] {
    if ((*sys)->intermediate_store()->Sync().ok()) {
      m.seg_durable.insert(m.seg_durable.end(), m.seg_pending.begin(),
                           m.seg_pending.end());
      m.seg_pending.clear();
    }
  };

  for (int i = 0; i < kWorkloadOps; ++i) {
    ++m.ops_attempted;
    const uint64_t pick = rng() % 100;
    if (pick < 50) {
      // Insert transaction.
      const std::string key = "k" + std::to_string(i);
      const int64_t val = static_cast<int64_t>(rng() % 100000);
      std::unique_ptr<Transaction> txn = db->Begin();
      auto row = txn->Insert("kv", {Value::Str(key), Value::Int(val)});
      if (!row.ok()) {
        m.hard_refused.insert(key);
        (void)txn->Abort();
      } else if (txn->Commit().ok()) {
        m.rows[key] = val;
        m.row_ids[key] = *row;
      } else {
        m.ambiguous.insert(key);
      }
    } else if (pick < 62 && !m.row_ids.empty()) {
      // Update one durable row.
      auto it = m.row_ids.begin();
      std::advance(it, rng() % m.row_ids.size());
      const std::string key = it->first;
      const int64_t val = static_cast<int64_t>(rng() % 100000);
      std::unique_ptr<Transaction> txn = db->Begin();
      Status s = txn->Update("kv", it->second,
                             {Value::Str(key), Value::Int(val)});
      if (!s.ok()) {
        (void)txn->Abort();
      } else if (txn->Commit().ok()) {
        m.rows[key] = val;
      } else {
        m.ambiguous.insert(key);
      }
    } else if (pick < 68 && !m.row_ids.empty()) {
      // Delete one durable row.
      auto it = m.row_ids.begin();
      std::advance(it, rng() % m.row_ids.size());
      const std::string key = it->first;
      std::unique_ptr<Transaction> txn = db->Begin();
      Status s = txn->Delete("kv", it->second);
      if (!s.ok()) {
        (void)txn->Abort();
      } else if (txn->Commit().ok()) {
        m.rows.erase(key);
        m.row_ids.erase(key);
      } else {
        m.ambiguous.insert(key);
      }
    } else if (pick < 74) {
      // Aborted transaction: must never surface, crash or not.
      const std::string key = "aborted" + std::to_string(i);
      std::unique_ptr<Transaction> txn = db->Begin();
      (void)txn->Insert("kv", {Value::Str(key), Value::Int(1)});
      (void)txn->Abort();
      m.hard_refused.insert(key);
    } else if (pick < 84) {
      // Snapshot page version + journal fsync.
      const uint64_t page = rng() % 8;
      const std::string content =
          "page" + std::to_string(page) + "@op" + std::to_string(i);
      auto ver = (*sys)->snapshots().Append(page, content);
      if (ver.ok()) m.snap_pending[page][*ver] = content;
      snap_sync();
    } else if (pick < 92) {
      // Intermediate segment record + fsync.
      const std::string rec = "seg-record-" + std::to_string(i);
      if ((*sys)->intermediate_store()->Append(rec).ok()) {
        m.seg_pending.push_back(rec);
      }
      seg_sync();
    } else if (pick < 96) {
      (void)db->Checkpoint();  // acked or refused, durable state is same
    } else {
      // Auxiliary DDL.
      const std::string name = "aux" + std::to_string(i);
      TableSchema schema;
      schema.table_name = name;
      schema.columns = {{"x", ValueType::kInt}};
      if (db->CreateTable(schema).ok()) m.acked_tables.insert(name);
    }
  }
  return m;
}

// --------------------------------------------------------- the oracle

/// Reopens a fresh System over the post-crash bytes (real env, real
/// clock) and checks the recovered state against the durable model.
/// `strict` means the crash dropped every unsynced byte, so recovery
/// must match the model *exactly*; otherwise unsynced tails may have
/// survived and only the one-sided guarantees are checked.
void VerifyRecovered(const std::string& dir, const DurableModel& m,
                     bool strict) {
  core::System::Options opts;
  opts.workspace = dir;
  auto sys = core::System::Create(opts);
  ASSERT_TRUE(sys.ok()) << "recovery failed: " << sys.status().ToString();
  Database* db = (*sys)->database();

  for (const std::string& name : m.acked_tables) {
    EXPECT_NE(db->GetTable(name), nullptr)
        << "acked table " << name << " lost";
  }
  if (m.kv_created) {
    ASSERT_NE(db->GetTable("kv"), nullptr) << "acked table kv lost";
    std::unique_ptr<Transaction> txn = db->Begin();
    auto scan = txn->Scan("kv");
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    std::map<std::string, int64_t> got;
    for (const auto& [id, row] : *scan) {
      got[row[0].as_string()] = row[1].as_int();
    }
    (void)txn->Abort();
    for (const auto& [key, val] : m.rows) {
      if (!strict && m.ambiguous.count(key) > 0) continue;
      auto it = got.find(key);
      EXPECT_TRUE(it != got.end() && it->second == val)
          << "acked row lost or wrong: " << key << "=" << val;
    }
    for (const auto& [key, val] : got) {
      if (m.rows.count(key) > 0) continue;
      if (strict) {
        ADD_FAILURE() << "refused write resurrected: " << key;
      } else {
        // Lossy crashes may keep the commit record of a refused txn;
        // only statements that never wrote one are held absent.
        EXPECT_EQ(m.hard_refused.count(key), 0u)
            << "refused write resurrected: " << key;
      }
    }
    if (strict) {
      EXPECT_EQ(got.size(), m.rows.size());
    }
  } else if (strict) {
    EXPECT_EQ(db->GetTable("kv"), nullptr);
  }

  // Snapshots: durable versions present and exact; versions recover as
  // a monotonic journal prefix, so the latest version can only sit
  // between the durable ack and the last attempted append.
  storage::SnapshotStore& snaps = (*sys)->snapshots();
  for (const auto& [page, vers] : m.snap_durable) {
    auto latest = snaps.LatestVersion(page);
    ASSERT_TRUE(latest.ok()) << "snapshot page " << page << " lost";
    const uint32_t durable_latest = vers.rbegin()->first;
    EXPECT_GE(*latest, durable_latest)
        << "snapshot page " << page << " regressed";
    if (strict) {
      EXPECT_EQ(*latest, durable_latest)
          << "unsynced snapshot version survived a strict crash";
    }
    for (const auto& [ver, content] : vers) {
      auto got = snaps.Get(page, ver);
      ASSERT_TRUE(got.ok())
          << "snapshot " << page << " v" << ver << " lost";
      EXPECT_EQ(*got, content);
    }
  }
  if (strict) {
    EXPECT_EQ(snaps.NumPages(), m.snap_durable.size());
  }

  // Segments: the durable-acked records are an exact prefix.
  storage::SegmentStore* segs = (*sys)->intermediate_store();
  ASSERT_GE(segs->NumRecords(), m.seg_durable.size());
  if (strict) {
    EXPECT_EQ(segs->NumRecords(), m.seg_durable.size());
  }
  for (size_t i = 0; i < m.seg_durable.size(); ++i) {
    auto rec = segs->Read(i);
    ASSERT_TRUE(rec.ok()) << "segment record " << i << " lost";
    EXPECT_EQ(*rec, m.seg_durable[i]);
  }
}

std::string ModelSummary(const DurableModel& m) {
  std::string out = "ops=" + std::to_string(m.ops_attempted) +
                    " rows=" + std::to_string(m.rows.size()) +
                    " aux_tables=" + std::to_string(m.acked_tables.size()) +
                    " seg_durable=" + std::to_string(m.seg_durable.size());
  size_t snap_count = 0;
  for (const auto& [page, vers] : m.snap_durable) snap_count += vers.size();
  out += " snap_durable=" + std::to_string(snap_count);
  return out;
}

// ----------------------------------------------- strict boundary sweep

/// One strict power-cut trial: run the workload until the cut fires,
/// lose every unsynced byte, recover, check the oracle.
void StrictCutTrial(uint64_t seed, uint64_t cut, CutFlavor flavor) {
  const std::string repro =
      "STRUCTURA_SIM_SEED=" + std::to_string(seed) +
      " STRUCTURA_SIM_CUT=" + std::to_string(cut) +
      (flavor == CutFlavor::kAfterSync ? ":after" : ":before");
  SCOPED_TRACE(repro);
  const std::string dir = TempDir("sweep");
  SimulatedClock clock;
  SimulatedEnv env;
  env.CutAtSync(cut, flavor);
  DurableModel model = RunWorkload(dir, &env, &clock, seed);
  SimulatedEnv::CrashOptions crash;
  crash.seed = seed ^ (cut * 2 + (flavor == CutFlavor::kAfterSync));
  SimulatedEnv::CrashReport report = env.CrashAndRecover(crash);
  VerifyRecovered(dir, model, /*strict=*/true);
  if (::testing::Test::HasFailure()) {
    MaybeDumpArtifact(
        "crash_sim_seed" + std::to_string(seed) + "_cut" +
            std::to_string(cut) + ".txt",
        repro + "\n" + report.ToString() + "\n" + ModelSummary(model) + "\n");
  }
  std::filesystem::remove_all(dir);
}

TEST(CrashSimTest, PowerCutSweepAtEverySyncBoundary) {
  const uint64_t seed = EnvU64("STRUCTURA_SIM_SEED", 20260808);

  // Clean run: measures the sweep space and sanity-checks the driver.
  const std::string dir = TempDir("clean");
  SimulatedClock clock;
  SimulatedEnv env;
  DurableModel clean = RunWorkload(dir, &env, &clock, seed);
  const uint64_t total_syncs = env.SyncCount();
  ASSERT_GE(clean.ops_attempted, 200) << "workload too small to sweep";
  ASSERT_GT(total_syncs, 100u) << "workload exercised too few fsyncs";
  ASSERT_TRUE(env.PendingHazards().empty())
      << "quiescent system left durability hazards: "
      << env.PendingHazards().front();
  // The clean run must itself recover to exactly its own model.
  SimulatedEnv::CrashOptions crash;
  crash.seed = seed;
  env.CrashAndRecover(crash);
  VerifyRecovered(dir, clean, /*strict=*/true);
  std::filesystem::remove_all(dir);

  uint64_t replay_cut = 0;
  CutFlavor replay_flavor = CutFlavor::kBeforeSync;
  if (EnvCut(&replay_cut, &replay_flavor)) {
    // Replay exactly one boundary (the printed repro line).
    StrictCutTrial(seed, replay_cut, replay_flavor);
    return;
  }
  for (uint64_t cut = 1; cut <= total_syncs; ++cut) {
    for (CutFlavor flavor : {CutFlavor::kBeforeSync, CutFlavor::kAfterSync}) {
      StrictCutTrial(seed, cut, flavor);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ------------------------------------------- randomized mid-write sweep

/// Long randomized sweep (ctest label: sim): cuts at arbitrary env
/// operations — mid-transaction, mid-checkpoint, mid-append — with
/// lossy survival probabilities and torn writes, then checks the
/// one-sided durability guarantees. CI runs this leg with a
/// time-derived STRUCTURA_SIM_SEED; any failure prints the exact seed
/// to replay.
TEST(SimSweepTest, RandomizedOpCutsWithTornWrites) {
  const uint64_t base_seed = EnvU64("STRUCTURA_SIM_SEED", 424242);
  const uint64_t rounds = EnvU64("STRUCTURA_SIM_ROUNDS", 10);
  for (uint64_t r = 0; r < rounds; ++r) {
    const uint64_t seed = base_seed + r * 0x9e3779b9ULL;
    SCOPED_TRACE("STRUCTURA_SIM_SEED=" + std::to_string(seed) +
                 " STRUCTURA_SIM_ROUNDS=1");
    // Clean probe measures this seed's op count (deterministic).
    const std::string probe_dir = TempDir("probe");
    {
      SimulatedClock clock;
      SimulatedEnv env;
      RunWorkload(probe_dir, &env, &clock, seed);
      const uint64_t total_ops = env.OpCount();
      std::filesystem::remove_all(probe_dir);
      ASSERT_GT(total_ops, 0u);

      std::mt19937_64 rng(seed);
      const uint64_t cut = 1 + rng() % total_ops;
      const std::string dir = TempDir("randcut");
      SimulatedClock cut_clock;
      SimulatedEnv cut_env;
      cut_env.CutAtOp(cut);
      DurableModel model = RunWorkload(dir, &cut_env, &cut_clock, seed);
      SimulatedEnv::CrashOptions crash;
      crash.seed = seed;
      crash.unsynced_survival = 0.5;
      crash.unfenced_meta_survival = 0.5;
      crash.torn_writes = true;
      SimulatedEnv::CrashReport report = cut_env.CrashAndRecover(crash);
      VerifyRecovered(dir, model, /*strict=*/false);
      if (::testing::Test::HasFailure()) {
        MaybeDumpArtifact("crash_sim_rand_seed" + std::to_string(seed) +
                              ".txt",
                          "STRUCTURA_SIM_SEED=" + std::to_string(seed) +
                              " STRUCTURA_SIM_ROUNDS=1\ncut_op=" +
                              std::to_string(cut) + "\n" + report.ToString() +
                              "\n" + ModelSummary(model) + "\n");
        return;
      }
      std::filesystem::remove_all(dir);
    }
  }
}

// ------------------------------------------------ rename-fence hazards

TEST(CrashSimTest, AtomicReplaceLeavesNoHazards) {
  const std::string dir = TempDir("atomic");
  SimulatedEnv env;
  const std::string path = dir + "/state";
  ASSERT_TRUE(AtomicReplaceFile(&env, path, "v1").ok());
  EXPECT_TRUE(env.PendingHazards().empty());
  ASSERT_TRUE(AtomicReplaceFile(&env, path, "v2").ok());
  EXPECT_TRUE(env.PendingHazards().empty());
  // Strict crash right after: the replacement was fully fenced.
  env.PowerCut();
  env.CrashAndRecover({});
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "v2");
  std::filesystem::remove_all(dir);
}

TEST(CrashSimTest, RenameWithoutSyncDirIsFlaggedAndRevertsOnCrash) {
  const std::string dir = TempDir("rename");
  SimulatedEnv env;
  const std::string path = dir + "/state";
  ASSERT_TRUE(AtomicReplaceFile(&env, path, "old").ok());

  // The undisciplined sequence: write a replacement and rename it over
  // the live file with no directory fence.
  const std::string tmp = dir + "/state.new";
  {
    auto file = env.NewWritableFile(tmp, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("new").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env.RenameFile(tmp, path).ok());

  // The hazard is visible before any crash happens...
  std::vector<std::string> hazards = env.PendingHazards();
  ASSERT_FALSE(hazards.empty());
  bool rename_flagged = false;
  for (const std::string& h : hazards) {
    if (h.find("rename") != std::string::npos) rename_flagged = true;
  }
  EXPECT_TRUE(rename_flagged) << hazards.front();

  // ...and a strict crash indeed reverts to the old file.
  env.PowerCut();
  SimulatedEnv::CrashReport report = env.CrashAndRecover({});
  EXPECT_FALSE(report.hazards.empty());
  EXPECT_GT(report.meta_ops_reverted, 0u);
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "old");
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::filesystem::remove_all(dir);
}

// --------------------------------------- torn checkpoint tmp, per byte

/// Cuts the power inside the checkpoint image write and tears the
/// interrupted write at every byte offset. At every tear point the old
/// checkpoint plus the un-truncated WAL stay authoritative: recovery
/// never reads the torn tmp, never loses an acked row, never applies a
/// hybrid of old and new images.
TEST(CrashSimTest, CheckpointTornAtEveryByteKeepsOldImageAuthoritative) {
  // Probe run: find the op index of the checkpoint tmp append and the
  // image size. The workload is fixed, so indices are reproducible.
  std::map<std::string, int64_t> expected;
  uint64_t append_op = 0;
  size_t image_size = 0;
  {
    const std::string dir = TempDir("ckpt_probe");
    SimulatedEnv env;
    DatabaseOptions dopts;
    dopts.dir = dir;
    dopts.wal.env = &env;
    auto db = Database::Open(dopts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
    for (int64_t i = 0; i < 5; ++i) {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(
          txn->Insert("kv", {Value::Str("base" + std::to_string(i)),
                             Value::Int(i)})
              .ok());
      ASSERT_TRUE(txn->Commit().ok());
      expected["base" + std::to_string(i)] = i;
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    for (int64_t i = 0; i < 3; ++i) {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(txn->Insert("kv", {Value::Str("post" + std::to_string(i)),
                                     Value::Int(100 + i)})
                      .ok());
      ASSERT_TRUE(txn->Commit().ok());
      expected["post" + std::to_string(i)] = 100 + i;
    }
    // The second checkpoint's tmp append is the first env op after
    // this point: op N+1 opens the tmp file, op N+2 appends the image.
    append_op = env.OpCount() + 2;
    ASSERT_TRUE((*db)->Checkpoint().ok());
    image_size = std::filesystem::file_size(dir + "/checkpoint");
    ASSERT_GT(image_size, 0u);
    std::filesystem::remove_all(dir);
  }

  // Replay, cutting the power inside the tmp append and tearing it at
  // every byte (stride keeps wall time bounded; offsets 0, 1, the
  // sector boundary, and the final byte are always covered).
  std::vector<size_t> tears = {0, 1, 511, 512, image_size - 1, image_size};
  for (size_t b = 2; b < image_size; b += 7) tears.push_back(b);
  for (size_t tear : tears) {
    if (tear > image_size) continue;
    SCOPED_TRACE("tear=" + std::to_string(tear));
    const std::string dir = TempDir("ckpt_tear");
    SimulatedEnv env;
    DatabaseOptions dopts;
    dopts.dir = dir;
    dopts.wal.env = &env;
    {
      auto db = Database::Open(dopts);
      ASSERT_TRUE(db.ok());
      ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
      for (int64_t i = 0; i < 5; ++i) {
        auto txn = (*db)->Begin();
        ASSERT_TRUE(
            txn->Insert("kv", {Value::Str("base" + std::to_string(i)),
                               Value::Int(i)})
                .ok());
        ASSERT_TRUE(txn->Commit().ok());
      }
      ASSERT_TRUE((*db)->Checkpoint().ok());
      for (int64_t i = 0; i < 3; ++i) {
        auto txn = (*db)->Begin();
        ASSERT_TRUE(
            txn->Insert("kv", {Value::Str("post" + std::to_string(i)),
                               Value::Int(100 + i)})
                .ok());
        ASSERT_TRUE(txn->Commit().ok());
      }
      env.CutAtOp(append_op);
      EXPECT_FALSE((*db)->Checkpoint().ok());
    }
    SimulatedEnv::CrashOptions crash;
    crash.seed = tear;
    crash.forced_tear_bytes = static_cast<int64_t>(tear);
    // Let the tmp's directory entry survive so the torn file is really
    // on disk at recovery — the strictest variant of the hazard.
    crash.unfenced_meta_survival = 1.0;
    env.CrashAndRecover(crash);

    auto db = Database::Open(dopts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->recovery_report().checkpoints_rejected, 0u)
        << "recovery read the torn tmp image";
    std::unique_ptr<Transaction> txn = (*db)->Begin();
    auto scan = txn->Scan("kv");
    ASSERT_TRUE(scan.ok());
    std::map<std::string, int64_t> got;
    for (const auto& [id, row] : *scan) {
      got[row[0].as_string()] = row[1].as_int();
    }
    (void)txn->Abort();
    EXPECT_EQ(got, expected);
    std::filesystem::remove_all(dir);
  }
}

// ------------------------------------------------- stale-WAL detection

/// The crash window between "new checkpoint durable" and "WAL
/// truncation durable": if the old log resurrects, recovery must
/// recognise it as superseded (via the checkpoint epoch marker) rather
/// than replay it over the checkpoint.
TEST(CrashSimTest, ResurrectedPreCheckpointWalIsDetectedAsStale) {
  const std::string dir = TempDir("stale");
  SimulatedEnv env;
  DatabaseOptions dopts;
  dopts.dir = dir;
  dopts.wal.env = &env;
  std::map<std::string, int64_t> expected;
  uint64_t reset_sync = 0;
  {
    auto db = Database::Open(dopts);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
    for (int64_t i = 0; i < 4; ++i) {
      auto txn = (*db)->Begin();
      auto key = "row" + std::to_string(i);
      ASSERT_TRUE(txn->Insert("kv", {Value::Str(key), Value::Int(i)}).ok());
      ASSERT_TRUE(txn->Commit().ok());
      expected[key] = i;
    }
    // Delete one row so a naive replay of the stale log would redo a
    // Delete of a row the checkpoint no longer contains.
    {
      auto txn = (*db)->Begin();
      std::unique_ptr<Transaction> scan_txn = (*db)->Begin();
      auto rows = scan_txn->Scan("kv");
      ASSERT_TRUE(rows.ok());
      RowId victim = 0;
      for (const auto& [id, row] : *rows) {
        if (row[0].as_string() == "row0") victim = id;
      }
      (void)scan_txn->Abort();
      ASSERT_TRUE(txn->Delete("kv", victim).ok());
      ASSERT_TRUE(txn->Commit().ok());
      expected.erase("row0");
    }
    // Cut the power on the WAL-truncation fsync inside Checkpoint():
    // the new checkpoint is already durable, the truncation is not —
    // the crash resurrects the full pre-checkpoint log.
    // Sync order inside Checkpoint(): tmp Sync, dir SyncDir, wal-reset
    // SyncDir, wal-reset truncate Sync — cut on that last one.
    reset_sync = env.SyncCount() + 4;
    env.CutAtSync(reset_sync, CutFlavor::kBeforeSync);
    EXPECT_FALSE((*db)->Checkpoint().ok());
  }
  SimulatedEnv::CrashOptions crash;
  crash.seed = 7;
  env.CrashAndRecover(crash);

  auto db = Database::Open(dopts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GT((*db)->recovery_report().stale_wal_records, 0u)
      << "recovery did not flag the resurrected pre-checkpoint log";
  std::unique_ptr<Transaction> txn = (*db)->Begin();
  auto scan = txn->Scan("kv");
  ASSERT_TRUE(scan.ok());
  std::map<std::string, int64_t> got;
  for (const auto& [id, row] : *scan) {
    got[row[0].as_string()] = row[1].as_int();
  }
  (void)txn->Abort();
  EXPECT_EQ(got, expected);

  // And the healed log accepts new commits that survive another cycle.
  {
    auto txn2 = (*db)->Begin();
    ASSERT_TRUE(txn2->Insert("kv", {Value::Str("after"), Value::Int(9)}).ok());
    ASSERT_TRUE(txn2->Commit().ok());
  }
  db->reset();
  auto db2 = Database::Open(dopts);
  ASSERT_TRUE(db2.ok());
  std::unique_ptr<Transaction> txn3 = (*db2)->Begin();
  auto scan2 = txn3->Scan("kv");
  ASSERT_TRUE(scan2.ok());
  bool found = false;
  for (const auto& [id, row] : *scan2) {
    if (row[0].as_string() == "after") found = true;
  }
  (void)txn3->Abort();
  EXPECT_TRUE(found);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------ simulated-time wiring

TEST(CrashSimTest, SimulatedClockDrivesBreakerCooldownDeterministically) {
  SimulatedClock::Options copts;
  copts.auto_advance = false;
  SimulatedClock clock(copts);
  serve::CircuitBreaker::Options bopts;
  bopts.failure_threshold = 1;
  bopts.open_ms = 100;
  bopts.clock = &clock;
  serve::CircuitBreaker breaker(bopts);

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  clock.AdvanceMillis(99);
  EXPECT_FALSE(breaker.Allow()) << "cooldown expired one tick early";
  clock.AdvanceMillis(2);
  EXPECT_TRUE(breaker.Allow()) << "cooldown never expired on sim time";
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
}

TEST(CrashSimTest, SimulatedClockSkipsGroupCommitWindow) {
  const std::string dir = TempDir("group");
  SimulatedClock clock;  // auto-advance
  rdbms::WalOptions wopts;
  wopts.sync_policy = rdbms::WalSyncPolicy::kGroupCommit;
  wopts.group_commit_window_us = 30'000'000;  // 30s of simulated linger
  wopts.clock = &clock;
  auto wal = rdbms::WriteAheadLog::Open(dir + "/wal.log", wopts);
  ASSERT_TRUE(wal.ok());
  const int64_t before = clock.NowNanos();
  rdbms::LogRecord rec;
  rec.type = rdbms::LogRecord::Type::kCommit;
  rec.txn = 1;
  ASSERT_TRUE((*wal)->Append(rec).ok());  // waits out the window
  // The 30-second window elapsed on the simulated clock, not ours.
  EXPECT_GE(clock.NowNanos() - before, int64_t{30} * 1'000'000'000);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace structura
