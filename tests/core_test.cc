#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/eval.h"
#include "core/schema_unify.h"
#include "core/system.h"
#include "corpus/generator.h"
#include "ie/pipeline.h"
#include "ie/standard.h"
#include "serve/frontend.h"

namespace structura::core {
namespace {

std::string TempDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_core_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ------------------------------------------------------------------ eval

TEST(ScoreTest, PrecisionRecallF1) {
  Score s;
  s.true_positives = 8;
  s.false_positives = 2;
  s.false_negatives = 2;
  EXPECT_DOUBLE_EQ(s.precision(), 0.8);
  EXPECT_DOUBLE_EQ(s.recall(), 0.8);
  EXPECT_DOUBLE_EQ(s.f1(), 0.8);
  Score empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
}

TEST(ScoreTest, NormalizeValue) {
  EXPECT_EQ(NormalizeValue(" 233,209 "), "233209");
  EXPECT_EQ(NormalizeValue("David Smith"), "David Smith");
}

TEST(EvalTest, ExtractionScoredAgainstTruth) {
  corpus::CorpusOptions options;
  options.num_cities = 15;
  options.num_people = 10;
  options.num_companies = 5;
  options.seed = 5;
  options.infobox_dropout = 0;
  options.attribute_missing = 0;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);
  std::vector<ie::ExtractorPtr> suite = ie::MakeStandardSuite();
  ie::FactSet facts = ie::RunExtractors(ie::Views(suite), docs);
  Score all = ScoreExtraction(facts, truth);
  // Clean corpus + full suite: near-perfect extraction. The residual
  // false positives are surface variants ("D. Smith" for the mayor
  // truth "David Smith") that entity resolution, not extraction,
  // normalizes.
  EXPECT_GT(all.f1(), 0.9) << all.ToString();
  Score temps = ScoreExtraction(facts, truth, "temp_%");
  EXPECT_GT(temps.recall(), 0.98) << temps.ToString();
  // An empty fact set scores zero recall.
  Score none = ScoreExtraction(ie::FactSet(), truth);
  EXPECT_EQ(none.true_positives, 0u);
  EXPECT_GT(none.false_negatives, 0u);
}

TEST(EvalTest, ClusteringPairwise) {
  // Truth: {0,1} same, {2} alone. Perfect clustering.
  Score perfect = ScoreClustering({10, 10, 20}, {0, 0, 2});
  EXPECT_DOUBLE_EQ(perfect.f1(), 1.0);
  // Everything merged: recall 1, precision 1/3.
  Score merged = ScoreClustering({10, 10, 20}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(merged.recall(), 1.0);
  EXPECT_NEAR(merged.precision(), 1.0 / 3.0, 1e-9);
  // Nothing merged: precision 0/0 -> 0, recall 0.
  Score split = ScoreClustering({10, 10, 20}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(split.recall(), 0.0);
}

// ---------------------------------------------------------------- System

struct SystemFixture : public ::testing::Test {
  void SetUp() override {
    corpus::CorpusOptions options;
    options.num_cities = 15;
    options.num_people = 20;
    options.num_companies = 5;
    options.seed = 41;
    options.infobox_dropout = 0.3;
    options.typo_prob = 0.15;  // free-text noise for HI to repair
    corpus::GenerateCorpus(options, &docs, &truth);

    auto sys_or = core::System::Create(core::System::Options{});
    ASSERT_TRUE(sys_or.ok());
    sys = std::move(sys_or).value();
    sys->RegisterStandardOperators();
    ASSERT_TRUE(sys->IngestCrawl(docs).ok());
  }

  /// Oracle over ground truth for simulated humans.
  System::Oracle MakeOracle() {
    return [this](const std::string& subject,
                  const std::string& attribute)
               -> std::optional<std::string> {
      for (const corpus::FactTruth& f : truth.facts) {
        auto it = truth.canonical_names.find(f.entity);
        if (it == truth.canonical_names.end()) continue;
        if (it->second == subject && f.attribute == attribute) {
          return f.value;
        }
      }
      return std::nullopt;
    };
  }

  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  std::unique_ptr<core::System> sys;
};

TEST_F(SystemFixture, IngestPopulatesStores) {
  EXPECT_EQ(sys->documents().size(), docs.size());
  EXPECT_EQ(sys->snapshots().NumPages(), docs.size());
  auto hits = sys->KeywordSearch("Madison", 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].title, "Madison");
}

TEST_F(SystemFixture, RepeatedCrawlsVersionUp) {
  text::DocumentCollection day2 = docs;
  corpus::MutateCrawl(9, 0.3, &day2);
  ASSERT_TRUE(sys->IngestCrawl(day2).ok());
  auto latest = sys->snapshots().LatestVersion(docs.docs[0].id);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 1u);
  // Old version still reconstructable.
  auto v0 = sys->snapshots().Get(docs.docs[0].id, 0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(*v0, docs.docs[0].text);
}

TEST_F(SystemFixture, GenerationAndBeliefs) {
  auto results = sys->RunProgram(
      "CREATE VIEW facts AS EXTRACT infobox, temp_sentence, "
      "population_sentence, founded_sentence, elevation_sentence "
      "FROM pages;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());
  EXPECT_GT(sys->beliefs().size(), 100u);
  Score s = ScoreBeliefs(sys->beliefs(), truth);
  EXPECT_GT(s.f1(), 0.7) << s.ToString();
  // Provenance exists for beliefs.
  bool explained_any = false;
  for (const auto& b : sys->beliefs()) {
    auto why = sys->Explain(b.subject, b.attribute);
    if (why.ok()) {
      explained_any = true;
      EXPECT_NE(why->find("belief"), std::string::npos);
      break;
    }
  }
  EXPECT_TRUE(explained_any);
}

TEST_F(SystemFixture, FeedbackImprovesAccuracy) {
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW facts AS EXTRACT infobox, "
                     "temp_sentence, population_sentence, "
                     "founded_sentence, elevation_sentence FROM pages;")
                  .ok());
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());
  Score before = ScoreBeliefs(sys->beliefs(), truth);

  auto crowd = hi::MakeCrowd(9, 0.75, 0.95, 7);
  System::FeedbackOptions options;
  options.budget = 150;
  options.answers_per_task = 5;
  options.aggregation = System::Aggregation::kMajority;
  auto asked = sys->RunFeedbackRound(MakeOracle(), &crowd, options);
  ASSERT_TRUE(asked.ok()) << asked.status().ToString();
  EXPECT_GT(*asked, 0u);

  Score after = ScoreBeliefs(sys->beliefs(), truth);
  EXPECT_GT(after.f1(), before.f1())
      << "before=" << before.ToString() << " after=" << after.ToString();
  // Reputation accounting happened.
  EXPECT_GT(sys->users().NumUsers(), 0u);
  EXPECT_FALSE(sys->users().Leaderboard().empty());
  EXPECT_GT(sys->users().Leaderboard()[0].points, 0);
}

TEST_F(SystemFixture, FeedbackRequiresCrowd) {
  std::vector<hi::SimulatedUser> empty;
  EXPECT_FALSE(
      sys->RunFeedbackRound(MakeOracle(), &empty, {}).ok());
}

TEST_F(SystemFixture, MaterializeAndRecover) {
  std::string dir = TempDir("materialize");
  {
    auto sys2_or =
        core::System::Create(core::System::Options{dir});
    ASSERT_TRUE(sys2_or.ok());
    auto sys2 = std::move(sys2_or).value();
    sys2->RegisterStandardOperators();
    ASSERT_TRUE(sys2->IngestCrawl(docs).ok());
    ASSERT_TRUE(
        sys2->RunProgram("CREATE VIEW facts AS EXTRACT infobox FROM pages;")
            .ok());
    ASSERT_TRUE(sys2->BuildBeliefsFromView("facts").ok());
    ASSERT_TRUE(sys2->MaterializeBeliefs("final").ok());
    auto txn = sys2->database()->Begin();
    auto rows = txn->Scan("final");
    ASSERT_TRUE(rows.ok());
    EXPECT_GT(rows->size(), 50u);
    txn->Commit();
  }
  // Reopen from the same workspace: the final table is durable.
  auto again_or =
      core::System::Create(core::System::Options{dir});
  ASSERT_TRUE(again_or.ok());
  auto again = std::move(again_or).value();
  rdbms::Table* table = again->database()->GetTable("final");
  ASSERT_NE(table, nullptr);
  EXPECT_GT(table->LiveRowCount(), 50u);
}

TEST_F(SystemFixture, AuditFlagsInjectedCorruption) {
  ASSERT_TRUE(
      sys->RunProgram(
             "CREATE VIEW facts AS EXTRACT infobox FROM pages;")
          .ok());
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());
  // Clean infobox facts: few or no violations.
  size_t clean_violations = sys->AuditFacts().size();
  EXPECT_LT(clean_violations, 5u);
  EXPECT_NE(sys->monitor().Report().find("docs="), std::string::npos);
}

TEST_F(SystemFixture, SuggestAndRunForms) {
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW facts AS EXTRACT infobox, "
                     "temp_sentence FROM pages;")
                  .ok());
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());
  auto forms = sys->SuggestQueries("average temperature madison");
  ASSERT_FALSE(forms.empty());
  auto rel = sys->RunForm(forms[0]);
  ASSERT_TRUE(rel.ok());
  ASSERT_GE(rel->size(), 1u);
  // The answer should be near Madison's true annual mean.
  const corpus::CityRecord* madison = truth.FindCity("Madison");
  double truth_avg = 0;
  for (int t : madison->temps) truth_avg += t;
  truth_avg /= 12.0;
  double got = 0;
  rel->At(0, "result").ToNumber(&got);
  EXPECT_NEAR(got, truth_avg, 8.0);
}

TEST(SchemaUnifyTest, RepairsHeterogeneousVocabulary) {
  // Half the city pages use a second source's vocabulary
  // (inhabitants/location/altitude).
  corpus::CorpusOptions options;
  options.num_cities = 30;
  options.num_people = 0;
  options.num_companies = 0;
  options.seed = 9;
  options.infobox_dropout = 0;
  options.attribute_missing = 0;
  options.alt_schema_fraction = 0.5;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);

  auto sys = std::move(core::System::Create({})).value();
  sys->RegisterStandardOperators();
  ASSERT_TRUE(sys->IngestCrawl(docs).ok());
  ASSERT_TRUE(
      sys->RunProgram("CREATE VIEW facts AS EXTRACT infobox FROM pages;")
          .ok());
  const query::Relation* facts = sys->View("facts");
  ASSERT_NE(facts, nullptr);
  // Heterogeneity is present before unification.
  auto inhabitants = query::Filter(
      *facts, {query::Condition{"attribute", query::CompareOp::kEq,
                                query::Value::Str("inhabitants")}});
  ASSERT_TRUE(inhabitants.ok());
  EXPECT_GT(inhabitants->size(), 0u);

  ii::SchemaMatchOptions match_options;
  match_options.threshold = 0.45;
  match_options.synonyms = {{"inhabitants", "population"},
                            {"location", "state"},
                            {"altitude", "elevation"}};
  auto unified = UnifySchema(
      *facts, {"population", "state", "elevation", "founded", "mayor"},
      match_options);
  ASSERT_TRUE(unified.ok()) << unified.status().ToString();
  EXPECT_EQ(unified->renames.at("inhabitants"), "population");
  EXPECT_EQ(unified->renames.at("location"), "state");
  EXPECT_EQ(unified->renames.at("altitude"), "elevation");
  // After rewriting, the alternate vocabulary is gone.
  auto leftover = query::Filter(
      unified->unified,
      {query::Condition{"attribute", query::CompareOp::kEq,
                        query::Value::Str("inhabitants")}});
  EXPECT_EQ(leftover->size(), 0u);
  auto population = query::Filter(
      unified->unified,
      {query::Condition{"attribute", query::CompareOp::kEq,
                        query::Value::Str("population")}});
  EXPECT_EQ(population->size(), 30u);  // every city, both sources
}

TEST(SchemaUnifyTest, InstanceSimilarityAloneCanMatch) {
  // No registered synonym: "inhabitants" still matches "population"
  // through overlapping numeric value ranges plus weak name similarity
  // only if the combined score clears the threshold; with a low
  // threshold the instance signal should carry it.
  query::Relation facts({"attribute", "value"});
  for (int i = 0; i < 20; ++i) {
    facts
        .Append({query::Value::Str(i % 2 == 0 ? "population"
                                              : "inhabitants"),
                 query::Value::Str(std::to_string(10000 + i * 137))})
        .ok();
  }
  ii::SchemaMatchOptions options;
  options.threshold = 0.4;
  options.name_weight = 0.2;
  options.value_weight = 0.8;
  auto unified = UnifySchema(facts, {"population"}, options);
  ASSERT_TRUE(unified.ok());
  EXPECT_EQ(unified->renames.count("inhabitants"), 1u);
}

TEST(SchemaUnifyTest, MissingColumnsRejected) {
  query::Relation not_facts({"x", "y"});
  EXPECT_FALSE(UnifySchema(not_facts, {"population"}, {}).ok());
}

TEST_F(SystemFixture, IncrementalCrawlMarksOnlyChangedDocsDirty) {
  // First ingest: everything is new, hence dirty.
  EXPECT_EQ(sys->context().dirty_docs.size(), docs.size());
  // Second crawl with 20% churn: only edited pages become dirty.
  text::DocumentCollection day2 = docs;
  corpus::MutateCrawl(3, 0.2, &day2);
  size_t changed = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (day2.docs[i].text != docs.docs[i].text) ++changed;
  }
  ASSERT_TRUE(sys->IngestCrawl(day2).ok());
  EXPECT_EQ(sys->context().dirty_docs.size(), changed);
  // An identical third crawl dirties nothing.
  ASSERT_TRUE(sys->IngestCrawl(day2).ok());
  EXPECT_TRUE(sys->context().dirty_docs.empty());
}

TEST_F(SystemFixture, RefreshViewAfterCrawl) {
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW facts AS EXTRACT infobox, "
                     "temp_sentence FROM pages;")
                  .ok());
  text::DocumentCollection day2 = docs;
  corpus::MutateCrawl(3, 0.15, &day2);
  ASSERT_TRUE(sys->IngestCrawl(day2).ok());
  size_t dirty = sys->context().dirty_docs.size();
  size_t runs_before = sys->context().extractor_runs;
  auto results = sys->RunProgram("REFRESH VIEW facts;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  // Re-extraction cost is proportional to churn, not corpus size:
  // 2 extractors x dirty docs.
  EXPECT_EQ(sys->context().extractor_runs - runs_before, 2 * dirty);
  // Equivalence: the refreshed view matches a from-scratch rebuild.
  query::Relation refreshed = *sys->View("facts");
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW facts2 AS EXTRACT infobox, "
                     "temp_sentence FROM pages;")
                  .ok());
  const query::Relation* rebuilt = sys->View("facts2");
  ASSERT_EQ(refreshed.size(), rebuilt->size());
  std::multiset<std::string> a, b;
  auto key = [](const query::Row& r) {
    std::string k;
    for (const auto& v : r) k += v.ToString() + "\x1f";
    return k;
  };
  for (const auto& r : refreshed.rows()) a.insert(key(r));
  for (const auto& r : rebuilt->rows()) b.insert(key(r));
  EXPECT_EQ(a, b);
}

TEST_F(SystemFixture, StandingQueriesAlertAcrossRefreshes) {
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW facts AS EXTRACT infobox FROM pages;")
                  .ok());
  query::StandingQueryRegistry::Spec spec;
  spec.name = "fact_count";
  spec.query.source_view = "facts";
  spec.query.aggregates = {
      query::AggSpec{query::AggFn::kCount, "", "n"}};
  ASSERT_TRUE(sys->Watch(spec).ok());

  auto alerts = sys->CheckWatches("facts");
  ASSERT_TRUE(alerts.ok());
  ASSERT_EQ(alerts->size(), 1u);
  EXPECT_EQ((*alerts)[0].kind, "first_result");

  // No change: silence.
  alerts = sys->CheckWatches("facts");
  ASSERT_TRUE(alerts.ok());
  EXPECT_TRUE(alerts->empty());

  // A churned crawl + refresh changes the fact count: alert fires.
  text::DocumentCollection day2 = docs;
  corpus::MutateCrawl(3, 0.5, &day2);
  ASSERT_TRUE(sys->IngestCrawl(day2).ok());
  // MutateCrawl only appends prose, which the infobox extractor ignores;
  // edit one infobox value instead to actually change the facts.
  text::DocumentCollection day3 = day2;
  for (auto& d : day3.docs) {
    size_t pos = d.text.find("| population = ");
    if (pos != std::string::npos) {
      d.text.insert(pos, "| motto = Forward\n");
      break;
    }
  }
  ASSERT_TRUE(sys->IngestCrawl(day3).ok());
  ASSERT_TRUE(sys->RunProgram("REFRESH VIEW facts;").ok());
  alerts = sys->CheckWatches("facts");
  ASSERT_TRUE(alerts.ok());
  ASSERT_EQ(alerts->size(), 1u);
  EXPECT_EQ((*alerts)[0].kind, "changed");

  EXPECT_FALSE(sys->CheckWatches("missing_view").ok());
}

TEST_F(SystemFixture, StatusReportSummarizes) {
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW facts AS EXTRACT infobox FROM pages;")
                  .ok());
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());
  std::string report = sys->StatusReport();
  EXPECT_NE(report.find("documents:"), std::string::npos);
  EXPECT_NE(report.find("facts:"), std::string::npos);
  EXPECT_NE(report.find("beliefs:"), std::string::npos);
  EXPECT_NE(report.find("monitor:"), std::string::npos);
}

TEST_F(SystemFixture, StatusReportIncludesServingCounters) {
  // Without a provider, the section is absent.
  EXPECT_EQ(sys->StatusReport().find("serving:"), std::string::npos);

  serve::Frontend::Options fopts;
  fopts.num_threads = 2;
  serve::Frontend frontend(fopts);
  frontend.RegisterOperator("keyword", [this](const serve::RequestContext&) {
    return sys->KeywordSearch("Madison", 3).empty()
               ? Status::NotFound("no hits")
               : Status::OK();
  });
  sys->SetServingStatsProvider([&frontend] { return frontend.Counters(); });

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(frontend.Call("keyword", serve::RequestContext{}).ok());
  }
  {
    // A burst of injected faults exhausts the retry budget and resolves
    // kUnavailable — the report must show the non-OK outcome too.
    ScopedFailpoint fp("serve.op.keyword", FailpointRegistry::Spec::Always());
    serve::RequestContext ctx;
    ctx.retry_budget = 0;
    EXPECT_EQ(frontend.Call("keyword", std::move(ctx)).code(),
              StatusCode::kUnavailable);
  }

  // The provider is live: the section matches the counters snapshot
  // taken at the same point, and reflects the real request totals.
  serve::ServingCounters counters = frontend.Counters();
  EXPECT_EQ(counters.issued, 5u);
  EXPECT_EQ(counters.admitted + counters.shed + counters.not_found,
            counters.issued);
  EXPECT_EQ(counters.ok, 4u);
  EXPECT_EQ(counters.unavailable, 1u);
  std::string report = sys->StatusReport();
  EXPECT_NE(report.find("serving: " + counters.ToString()), std::string::npos);
  EXPECT_NE(report.find("issued=5"), std::string::npos);
  EXPECT_NE(report.find("keyword(closed)"), std::string::npos);
  // The serve.op failpoint site shows up in the fault-injection section.
  EXPECT_NE(report.find("serve.op.keyword"), std::string::npos);

  // Detaching removes the section (and makes the frontend safe to drop).
  sys->SetServingStatsProvider(nullptr);
  EXPECT_EQ(sys->StatusReport().find("serving:"), std::string::npos);
}

TEST_F(SystemFixture, FaultedExtractorIsQuarantinedAndSystemDegrades) {
  // Every temp_sentence invocation faults; after the error budget the
  // operator is quarantined and generation continues best-effort on the
  // remaining extractors (Section 3.2's incremental, best-effort DGE).
  ScopedFailpoint fp("ie.extract.temp_sentence",
                     FailpointRegistry::Spec::Always());
  auto results = sys->RunProgram(
      "CREATE VIEW facts AS EXTRACT infobox, temp_sentence FROM pages;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  EXPECT_EQ(sys->QuarantinedExtractors().count("temp_sentence"), 1u);
  EXPECT_EQ(sys->QuarantinedExtractors().count("infobox"), 0u);

  // The view holds no facts from the quarantined operator, but the
  // healthy one still produced output.
  const query::Relation* facts = sys->View("facts");
  ASSERT_NE(facts, nullptr);
  ASSERT_GT(facts->rows().size(), 0u);
  int ecol = facts->ColumnIndex("extractor");
  ASSERT_GE(ecol, 0);
  for (const auto& row : facts->rows()) {
    EXPECT_NE(row[ecol].ToString(), "temp_sentence");
  }

  // Downstream stages keep working: beliefs materialize into the final
  // store from the surviving facts.
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());
  EXPECT_GT(sys->beliefs().size(), 0u);
  ASSERT_TRUE(sys->MaterializeBeliefs("final").ok());

  // The degradation is visible in the operational report.
  std::string report = sys->StatusReport();
  EXPECT_NE(report.find("degraded operators:"), std::string::npos);
  EXPECT_NE(report.find("temp_sentence"), std::string::npos);
  EXPECT_NE(report.find("quarantined"), std::string::npos);
  EXPECT_NE(report.find("failpoints:"), std::string::npos);
  EXPECT_NE(report.find("ie.extract.temp_sentence"), std::string::npos);
}

TEST_F(SystemFixture, ExtractorFaultsBelowBudgetDoNotQuarantine) {
  // Two isolated faults stay under the default budget of three: the
  // extractor keeps running, and the report shows the fault count
  // without a quarantine marker.
  ScopedFailpoint fp("ie.extract.temp_sentence",
                     FailpointRegistry::Spec::Nth(2));
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW facts AS EXTRACT infobox, "
                     "temp_sentence FROM pages;")
                  .ok());
  EXPECT_TRUE(sys->QuarantinedExtractors().empty());
  // One doc's temp facts were dropped, the rest extracted.
  const query::Relation* facts = sys->View("facts");
  ASSERT_NE(facts, nullptr);
  int ecol = facts->ColumnIndex("extractor");
  size_t temp_rows = 0;
  for (const auto& row : facts->rows()) {
    if (row[ecol].ToString() == "temp_sentence") ++temp_rows;
  }
  EXPECT_GT(temp_rows, 0u);
  std::string report = sys->StatusReport();
  EXPECT_NE(report.find("temp_sentence(faults=1)"), std::string::npos);
}

TEST_F(SystemFixture, IncrementalExtractionDoesLessWork) {
  // Best-effort, incremental generation (Section 3.2): extracting only
  // temperatures must touch fewer extractor runs than the full suite.
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW temps AS EXTRACT infobox, temp_sentence "
                     "FROM pages WHERE attribute LIKE \"temp_%\";")
                  .ok());
  size_t temps_runs = sys->context().extractor_runs;
  ASSERT_TRUE(sys->RunProgram(
                     "CREATE VIEW all_facts AS EXTRACT infobox, "
                     "temp_sentence, population_sentence, "
                     "founded_sentence, elevation_sentence, "
                     "mayor_sentence, residence_sentence FROM pages;")
                  .ok());
  size_t all_runs = sys->context().extractor_runs - temps_runs;
  EXPECT_LT(temps_runs, all_runs);
}

}  // namespace
}  // namespace structura::core
