// Durability sweep: injects ENOSPC/EIO/short-write/failed-fsync faults
// at every env syscall site a durable store crosses (WAL commit path,
// checkpoint replacement, intermediate segment log, snapshot journal)
// and asserts the durability contract at each one:
//   - no acked-then-lost: every operation acknowledged OK before the
//     fault survives a reopen with a healthy env;
//   - no silent degradation: when a fault fired, some call returned a
//     non-OK Status (nothing swallowed the error);
//   - sticky failure: the first failed handle refuses all later work
//     with the original error until its owner explicitly reopens;
//   - clean recovery: after the explicit heal the store serves writes
//     again and the healed state survives another reopen.
// Run plain and under -DSTRUCTURA_SANITIZE=address.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/failpoint.h"
#include "rdbms/database.h"
#include "rdbms/value.h"
#include "rdbms/wal.h"
#include "storage/segment_store.h"
#include "storage/snapshot_store.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::DatabaseOptions;
using rdbms::LogRecord;
using rdbms::Row;
using rdbms::TableSchema;
using rdbms::Value;
using rdbms::ValueType;
using rdbms::WalOptions;
using rdbms::WalSyncPolicy;
using rdbms::WriteAheadLog;
using storage::SegmentStore;
using storage::SnapshotStore;
using FpSpec = FailpointRegistry::Spec;

std::string TempDir(const std::string& tag) {
  // Per-process suffix: ctest -j runs tests from this binary in parallel
  // processes, and several tests share a tag.
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("structura_durable_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TableSchema KvSchema() {
  TableSchema schema;
  schema.table_name = "kv";
  schema.columns = {{"name", ValueType::kString},
                    {"val", ValueType::kInt}};
  return schema;
}

// ----------------------------------------------- WAL commit-path sweep

/// One run of the commit workload: 6 single-insert transactions against
/// a database whose WAL writes through `env`. `acked` collects the
/// values whose Commit() returned OK — the set that must survive any
/// reopen; `any_error` records whether any call surfaced a failure.
struct TrialOutcome {
  std::vector<int64_t> acked;
  bool any_error = false;
};

TrialOutcome RunCommitWorkload(const std::string& dir, Env* env) {
  TrialOutcome out;
  DatabaseOptions dopts;
  dopts.dir = dir;
  dopts.wal.env = env;
  auto db = Database::Open(dopts);
  if (!db.ok()) {
    out.any_error = true;
    return out;
  }
  if (!(*db)->CreateTable(KvSchema()).ok()) {
    out.any_error = true;
    return out;
  }
  for (int64_t t = 1; t <= 6; ++t) {
    auto txn = (*db)->Begin();
    auto row = txn->Insert(
        "kv", {Value::Str("k" + std::to_string(t)), Value::Int(t)});
    if (!row.ok()) {
      out.any_error = true;
      (void)txn->Abort();  // abort against a failed WAL may itself fail
      continue;
    }
    if (Status committed = txn->Commit(); committed.ok()) {
      out.acked.push_back(t);
    } else {
      out.any_error = true;
    }
  }
  return out;
}

/// Values present in the kv table after a reopen with the real env.
std::set<int64_t> RecoveredValues(const std::string& dir) {
  std::set<int64_t> present;
  auto db = Database::Open({dir});
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return present;
  if ((*db)->GetTable("kv") == nullptr) return present;
  auto txn = (*db)->Begin();
  auto rows = txn->Scan("kv");
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  if (rows.ok()) {
    for (const auto& [rid, row] : *rows) present.insert(row[1].as_int());
  }
  (void)txn->Abort();
  return present;
}

/// Sweeps one env failpoint site across every hit the commit workload
/// makes: trial i fails exactly the i-th syscall and then checks the
/// acked-commits-survive and no-silent-degradation contracts.
void SweepWalSite(const std::string& site) {
  uint64_t hits = 0;
  {
    // Sizing run: CountOnly never fires but counts how many times the
    // clean workload crosses this site.
    std::string dir = TempDir("wal_sweep_size");
    FaultInjectingEnv fenv;
    ScopedFailpoint fp(site, FpSpec::CountOnly());
    TrialOutcome out = RunCommitWorkload(dir, &fenv);
    ASSERT_FALSE(out.any_error) << site;
    ASSERT_EQ(out.acked.size(), 6u) << site;
    hits = FailpointRegistry::Instance().GetCounters(site).hits;
    ASSERT_GT(hits, 0u) << site << " never evaluated";
    std::filesystem::remove_all(dir);
  }
  for (uint64_t i = 1; i <= hits; ++i) {
    SCOPED_TRACE(site + " fault at hit " + std::to_string(i));
    std::string dir = TempDir("wal_sweep_trial");
    FaultInjectingEnv fenv;
    TrialOutcome out;
    uint64_t fires = 0;
    {
      ScopedFailpoint fp(site, FpSpec::Nth(i));
      out = RunCommitWorkload(dir, &fenv);
      fires = FailpointRegistry::Instance().GetCounters(site).fires;
    }
    if (fires > 0) {
      // No silent degradation: the injected failure surfaced as a
      // Status somewhere, and the env ledger recorded it.
      EXPECT_TRUE(out.any_error);
      EXPECT_GE(fenv.io_failures(), 1u);
      EXPECT_FALSE(fenv.last_io_error().empty());
    }
    // No acked-then-lost: every commit acknowledged before (or after)
    // the fault is present after recovery. Unacked commits MAY also be
    // present — a failed fsync is ambiguous, the record can have
    // reached disk — but an acked one missing is a durability bug.
    std::set<int64_t> present = RecoveredValues(dir);
    for (int64_t t : out.acked) {
      EXPECT_TRUE(present.count(t))
          << "acked commit " << t << " lost after recovery";
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(DurabilitySweepTest, WalCommitsSurviveEveryWriteFault) {
  SweepWalSite("env.write");
}

TEST(DurabilitySweepTest, WalCommitsSurviveEveryFullDiskFault) {
  SweepWalSite("env.write.enospc");
}

TEST(DurabilitySweepTest, WalCommitsSurviveEveryPowerCutShortWrite) {
  SweepWalSite("env.write.short");
}

TEST(DurabilitySweepTest, WalCommitsSurviveEveryFsyncFault) {
  SweepWalSite("env.sync");
}

// ------------------------------------------------- checkpoint replacement

TEST(DurabilitySweepTest, CheckpointFaultLeavesOldStateAuthoritative) {
  std::string dir = TempDir("ckpt");
  FaultInjectingEnv fenv;
  DatabaseOptions dopts;
  dopts.dir = dir;
  dopts.wal.env = &fenv;
  auto db = Database::Open(dopts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
  auto commit = [&](int64_t t) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(
        txn->Insert("kv", {Value::Str("k" + std::to_string(t)),
                           Value::Int(t)})
            .ok());
    ASSERT_TRUE(txn->Commit().ok());
  };
  commit(1);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  commit(2);

  // The atomic tmp+rename+dir-sync replacement fails at the rename: the
  // tmp image is complete-looking but must never be trusted, and the
  // old checkpoint + WAL stay authoritative.
  {
    ScopedFailpoint fp("env.rename", FpSpec::Always());
    Status s = (*db)->Checkpoint();
    EXPECT_FALSE(s.ok());
  }
  commit(3);  // the database keeps serving writes; the WAL was not reset

  // Same story when the directory fsync making the rename durable fails.
  {
    ScopedFailpoint fp("env.syncdir", FpSpec::Always());
    Status s = (*db)->Checkpoint();
    EXPECT_FALSE(s.ok());
  }
  commit(4);

  // Retry with the device healthy: the checkpoint lands.
  ASSERT_TRUE((*db)->Checkpoint().ok());
  commit(5);
  db->reset();

  std::set<int64_t> present = RecoveredValues(dir);
  for (int64_t t = 1; t <= 5; ++t) {
    EXPECT_TRUE(present.count(t)) << "commit " << t << " lost";
  }
  std::filesystem::remove_all(dir);
}

// --------------------------------------------- intermediate segment log

/// Sweeps a fault site across every syscall of an 8-append + Sync
/// segment-store workload, then checks sticky refusal, readable acked
/// records, explicit heal, and reopen recovery.
void SweepSegmentSite(const std::string& site) {
  uint64_t hits = 0;
  {
    std::string dir = TempDir("seg_sweep_size");
    FaultInjectingEnv fenv;
    SegmentStore::Options sopts;
    sopts.env = &fenv;
    ScopedFailpoint fp(site, FpSpec::CountOnly());
    auto store = SegmentStore::Open(dir, sopts);
    ASSERT_TRUE(store.ok());
    for (int j = 0; j < 8; ++j) {
      ASSERT_TRUE((*store)->Append("record " + std::to_string(j)).ok());
    }
    ASSERT_TRUE((*store)->Sync().ok());
    hits = FailpointRegistry::Instance().GetCounters(site).hits;
    ASSERT_GT(hits, 0u) << site << " never evaluated";
    std::filesystem::remove_all(dir);
  }
  for (uint64_t i = 1; i <= hits; ++i) {
    SCOPED_TRACE(site + " fault at hit " + std::to_string(i));
    std::string dir = TempDir("seg_sweep_trial");
    FaultInjectingEnv fenv;
    SegmentStore::Options sopts;
    sopts.env = &fenv;
    std::vector<std::pair<uint64_t, std::string>> acked;
    bool any_error = false;
    uint64_t fires = 0;
    {
      ScopedFailpoint fp(site, FpSpec::Nth(i));
      auto store_or = SegmentStore::Open(dir, sopts);
      ASSERT_TRUE(store_or.ok());  // a fresh dir needs no faulted reads
      std::unique_ptr<SegmentStore> store = std::move(store_or).value();
      for (int j = 0; j < 8; ++j) {
        std::string payload = "record " + std::to_string(j);
        if (auto n = store->Append(payload); n.ok()) {
          acked.emplace_back(*n, payload);
        } else {
          any_error = true;
        }
      }
      if (!store->Sync().ok()) any_error = true;
      fires = FailpointRegistry::Instance().GetCounters(site).fires;
      if (fires > 0) {
        EXPECT_TRUE(any_error);
        EXPECT_TRUE(store->Failed());
        EXPECT_GE(fenv.io_failures(), 1u);
      }
      // Acked records stay readable off the failed store (reads serve
      // the durable prefix; only appends are refused).
      for (const auto& [n, payload] : acked) {
        auto rec = store->Read(n);
        ASSERT_TRUE(rec.ok()) << "acked record " << n << " unreadable";
        EXPECT_EQ(*rec, payload);
      }
    }
    // Heal (failpoint disarmed — the device recovered) and append more.
    {
      auto store_or = SegmentStore::Open(dir, sopts);
      // Reopen after the heal below is the real durability check; this
      // reopen exercises torn-tail truncation of the failed segment.
      ASSERT_TRUE(store_or.ok());
      std::unique_ptr<SegmentStore> store = std::move(store_or).value();
      ASSERT_GE(store->NumRecords(), acked.size());
      if (store->Failed()) {
        ASSERT_TRUE(store->ReopenActive().ok());
      }
      ASSERT_TRUE(store->Append("post-heal sentinel").ok());
      ASSERT_TRUE(store->Sync().ok());
    }
    // Final reopen with a clean env: every acked record and the
    // sentinel survived.
    auto store = SegmentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    std::set<std::string> present;
    for (auto it = (*store)->Scan(); it.Valid(); it.Next()) {
      present.insert(it.record());
    }
    for (const auto& [n, payload] : acked) {
      EXPECT_TRUE(present.count(payload))
          << "acked record '" << payload << "' lost";
    }
    EXPECT_TRUE(present.count("post-heal sentinel"));
    std::filesystem::remove_all(dir);
  }
}

TEST(DurabilitySweepTest, SegmentStoreSurvivesEveryWriteFault) {
  SweepSegmentSite("env.write");
}

TEST(DurabilitySweepTest, SegmentStoreSurvivesEveryPowerCutShortWrite) {
  SweepSegmentSite("env.write.short");
}

TEST(DurabilitySweepTest, SegmentStoreSurvivesEveryFsyncFault) {
  SweepSegmentSite("env.sync");
}

// ------------------------------------------------------ snapshot journal

TEST(DurabilitySweepTest, SnapshotJournalWriteFaultRefusesWithoutMutation) {
  std::string dir = TempDir("snap_write");
  FaultInjectingEnv fenv;
  SnapshotStore store;
  ASSERT_TRUE(store.AttachJournal(dir, &fenv).ok());
  ASSERT_TRUE(store.Append(1, "version zero").ok());
  ASSERT_TRUE(store.Append(1, "version one").ok());
  ASSERT_TRUE(store.Sync().ok());

  {
    ScopedFailpoint fp("env.write", FpSpec::Always());
    auto v = store.Append(1, "version two");
    ASSERT_FALSE(v.ok());
    // Journal-before-memory: the refused append mutated nothing.
    EXPECT_EQ(*store.LatestVersion(1), 1u);
    EXPECT_TRUE(store.Failed());
    // Sticky: a second attempt is refused by the latched handle.
    EXPECT_FALSE(store.Append(1, "version two").ok());
    // Reads keep serving.
    EXPECT_EQ(*store.Get(1, 0), "version zero");
    EXPECT_EQ(*store.Get(1, 1), "version one");
  }
  EXPECT_GE(fenv.io_failures(), 1u);

  // Heal: the journal is atomically rewritten from memory.
  ASSERT_TRUE(store.ReopenJournal().ok());
  EXPECT_FALSE(store.Failed());
  ASSERT_TRUE(store.Append(1, "version two").ok());
  ASSERT_TRUE(store.Sync().ok());

  // A fresh store replays every acked version from the journal.
  SnapshotStore reopened;
  ASSERT_TRUE(reopened.AttachJournal(dir, nullptr).ok());
  EXPECT_EQ(reopened.recovery_report().AnyDamage(), false);
  ASSERT_EQ(*reopened.LatestVersion(1), 2u);
  EXPECT_EQ(*reopened.Get(1, 0), "version zero");
  EXPECT_EQ(*reopened.Get(1, 1), "version one");
  EXPECT_EQ(*reopened.Get(1, 2), "version two");
  std::filesystem::remove_all(dir);
}

TEST(DurabilitySweepTest, SnapshotJournalFsyncFaultHealsByRewrite) {
  std::string dir = TempDir("snap_sync");
  FaultInjectingEnv fenv;
  SnapshotStore store;
  ASSERT_TRUE(store.AttachJournal(dir, &fenv).ok());
  ASSERT_TRUE(store.Append(1, "alpha").ok());
  ASSERT_TRUE(store.Append(2, "beta").ok());

  {
    ScopedFailpoint fp("env.sync", FpSpec::Always());
    EXPECT_FALSE(store.Sync().ok());
    EXPECT_TRUE(store.Failed());
    // The sticky handle refuses appends even after the device recovers
    // below — a failed fsync may have dropped dirty pages, so only an
    // explicit reopen may trust the file again.
    EXPECT_FALSE(store.Append(1, "gamma").ok());
  }
  EXPECT_FALSE(store.Append(1, "gamma").ok());

  ASSERT_TRUE(store.ReopenJournal().ok());
  ASSERT_TRUE(store.Append(1, "gamma").ok());
  ASSERT_TRUE(store.Sync().ok());

  SnapshotStore reopened;
  ASSERT_TRUE(reopened.AttachJournal(dir, nullptr).ok());
  ASSERT_EQ(*reopened.LatestVersion(1), 1u);
  EXPECT_EQ(*reopened.Get(1, 0), "alpha");
  EXPECT_EQ(*reopened.Get(1, 1), "gamma");
  EXPECT_EQ(*reopened.Get(2, 0), "beta");
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------- sticky-file contract

TEST(DurabilitySweepTest, WritableFileFirstFailureLatchesForever) {
  std::string dir = TempDir("sticky");
  FaultInjectingEnv fenv;
  auto file = fenv.NewWritableFile(dir + "/f.log", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());

  Status first;
  {
    ScopedFailpoint fp("env.sync", FpSpec::Once());
    first = (*file)->Sync();
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.code(), StatusCode::kIoError);
  }
  // Failpoint disarmed — the device is fine — but the handle stays
  // failed with the ORIGINAL error: retrying an fsync that failed and
  // believing its OK would acknowledge bytes that never reached disk.
  EXPECT_TRUE((*file)->failed());
  Status later = (*file)->Append("world");
  EXPECT_FALSE(later.ok());
  EXPECT_EQ(later.code(), first.code());
  EXPECT_EQ(later.message(), first.message());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_EQ((*file)->sticky_status().message(), first.message());

  // The ledger saw exactly one unrecoverable failure (the latch), not
  // one per refused retry; the device itself still probes writable.
  EXPECT_EQ(fenv.io_failures(), 1u);
  EXPECT_FALSE(fenv.last_io_error().empty());
  EXPECT_TRUE(fenv.ProbeWrite(dir).ok());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- WAL error-code contract

TEST(DurabilitySweepTest, WalAppendSurfacesIoErrorNotStreamState) {
  // Regression for the pre-env failure mode where a failed stream write
  // surfaced as a generic internal error (or not at all): the WAL must
  // return kIoError/kResourceExhausted from the syscall that failed and
  // latch sticky.
  std::string dir = TempDir("wal_ioerr");
  FaultInjectingEnv fenv;
  WalOptions wopts;
  wopts.env = &fenv;
  auto wal = WriteAheadLog::Open(dir + "/wal.log", wopts);
  ASSERT_TRUE(wal.ok());
  LogRecord rec;
  rec.type = LogRecord::Type::kBegin;
  rec.txn = 1;
  ASSERT_TRUE((*wal)->Append(rec).ok());

  {
    ScopedFailpoint fp("env.write", FpSpec::Always());
    Status s = (*wal)->Append(rec);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  EXPECT_TRUE((*wal)->Failed());
  EXPECT_EQ((*wal)->FailedStatus().code(), StatusCode::kIoError);
  // Sticky with the failpoint gone: the log refuses, it does not retry.
  EXPECT_EQ((*wal)->Append(rec).code(), StatusCode::kIoError);

  // A full disk surfaces as kResourceExhausted, distinguishable from a
  // dying device.
  FaultInjectingEnv fenv2;
  WalOptions wopts2;
  wopts2.env = &fenv2;
  auto wal2 = WriteAheadLog::Open(dir + "/wal2.log", wopts2);
  ASSERT_TRUE(wal2.ok());
  {
    ScopedFailpoint fp("env.write.enospc", FpSpec::Always());
    Status s = (*wal2)->Append(rec);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- refused writes leave no trace

TEST(DurabilitySweepTest, RefusedStatementLeavesNoTraceAfterHealCheckpoint) {
  // A statement whose WAL append is refused must not leave its physical
  // mutation behind: the client was told it failed, so neither the
  // in-memory table nor the post-heal checkpoint may contain it.
  std::string dir = TempDir("refused_stmt");
  FaultInjectingEnv fenv;
  DatabaseOptions dopts;
  dopts.dir = dir;
  dopts.wal.env = &fenv;
  auto db = Database::Open(dopts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
  {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn->Insert("kv", {Value::Str("k1"), Value::Int(1)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  rdbms::RowId update_target = 0;
  {
    auto txn = (*db)->Begin();
    auto rid = txn->Insert("kv", {Value::Str("k2"), Value::Int(2)});
    ASSERT_TRUE(rid.ok());
    update_target = *rid;
    ASSERT_TRUE(txn->Commit().ok());
  }

  {
    ScopedFailpoint fp("env.write", FpSpec::Always());
    auto txn = (*db)->Begin();
    // Insert refused: the physically inserted row must be reverted.
    EXPECT_FALSE(
        txn->Insert("kv", {Value::Str("k3"), Value::Int(3)}).ok());
    (void)txn->Abort();
    // Update refused: the before-image must be restored.
    auto txn2 = (*db)->Begin();
    EXPECT_FALSE(
        txn2->Update("kv", update_target,
                     {Value::Str("k2"), Value::Int(99)})
            .ok());
    (void)txn2->Abort();
    // Delete refused: the row must be reinstated.
    auto txn3 = (*db)->Begin();
    EXPECT_FALSE(txn3->Delete("kv", update_target).ok());
    (void)txn3->Abort();
  }
  EXPECT_TRUE((*db)->WalFailed());

  // Heal: the checkpoint captures the in-memory state and resets the
  // WAL. If any refused statement left a trace, it becomes durable
  // here — the bug this test pins down.
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_FALSE((*db)->WalFailed());
  db->reset();

  std::set<int64_t> present = RecoveredValues(dir);
  EXPECT_TRUE(present.count(1));
  EXPECT_TRUE(present.count(2));   // delete was refused: row survives
  EXPECT_FALSE(present.count(3));  // insert was refused: no orphan row
  EXPECT_FALSE(present.count(99));  // update was refused: old value stands
  std::filesystem::remove_all(dir);
}

// --------------------------------------- durable tickets beat sticky errors

TEST(DurabilitySweepTest, AlreadyDurableCommitNotRefusedByLaterStickyError) {
  // A commit whose record is already fsynced must be acknowledged even
  // after a LATER operation latched the file sticky: refusing it would
  // roll back in memory a transaction a crash would then resurrect
  // from the log.
  std::string dir = TempDir("durable_ticket");
  FaultInjectingEnv fenv;
  WalOptions wopts;
  wopts.env = &fenv;
  auto wal = WriteAheadLog::Open(dir + "/wal.log", wopts);
  ASSERT_TRUE(wal.ok());
  LogRecord rec;
  rec.type = LogRecord::Type::kCommit;
  rec.txn = 1;
  auto t1 = (*wal)->AppendRecord(rec);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE((*wal)->WaitDurable(*t1).ok());  // fsynced: durable

  rec.txn = 2;
  Result<uint64_t> t2 = Status::Internal("not appended");
  {
    ScopedFailpoint fp("env.sync", FpSpec::Always());
    t2 = (*wal)->AppendRecord(rec);
    ASSERT_TRUE(t2.ok());  // the append landed; only the fsync fails
    EXPECT_FALSE((*wal)->WaitDurable(*t2).ok());
  }
  EXPECT_TRUE((*wal)->Failed());
  // Ticket 1 is covered by the durable LSN: acknowledged despite the
  // sticky latch. Ticket 2 never reached disk: still refused.
  EXPECT_TRUE((*wal)->WaitDurable(*t1).ok());
  EXPECT_FALSE((*wal)->WaitDurable(*t2).ok());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- checkpoint quiesces writers

TEST(DurabilitySweepTest, CheckpointWaitsOutInFlightTransactions) {
  // Checkpoint must not capture another transaction's uncommitted rows:
  // it takes shared table locks, so it blocks until in-flight writers
  // commit or abort, and an aborted transaction's rows never become
  // durable.
  std::string dir = TempDir("ckpt_quiesce");
  DatabaseOptions dopts;
  dopts.dir = dir;
  auto db = Database::Open(dopts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
  {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn->Insert("kv", {Value::Str("k1"), Value::Int(1)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn->Insert("kv", {Value::Str("k2"), Value::Int(2)}).ok());

  std::atomic<bool> done{false};
  Status ckpt_status;
  std::thread checkpointer([&] {
    ckpt_status = (*db)->Checkpoint();
    done.store(true);
  });
  // The checkpoint must be parked behind the writer's IX lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(done.load())
      << "checkpoint completed while a writer was in flight";

  ASSERT_TRUE(txn->Abort().ok());
  checkpointer.join();
  ASSERT_TRUE(ckpt_status.ok()) << ckpt_status.ToString();
  db->reset();

  // The aborted row is in neither the checkpoint nor the (reset) WAL.
  std::set<int64_t> present = RecoveredValues(dir);
  EXPECT_TRUE(present.count(1));
  EXPECT_FALSE(present.count(2))
      << "checkpoint durably captured an uncommitted row";
  std::filesystem::remove_all(dir);
}

// --------------------------------------- heal survives bit-rotted versions

TEST(DurabilitySweepTest, SnapshotHealSurvivesCorruptVersion) {
  // One bit-rotted version must not wedge the heal: the journal rewrite
  // substitutes the last-good ancestor for the dead delta (logged and
  // counted) instead of failing every ReopenJournal and leaving the
  // system permanently read-only.
  std::string dir = TempDir("snap_heal_rot");
  FaultInjectingEnv fenv;
  SnapshotStore store;
  ASSERT_TRUE(store.AttachJournal(dir, &fenv).ok());
  ASSERT_TRUE(store.Append(1, "alpha").ok());
  {
    // Silent bit-rot in version 1's stored delta; the append acks.
    ScopedFailpoint rot("snapshot.delta", FpSpec::FlipByteAt(1, 3));
    ASSERT_TRUE(store.Append(1, "alpha and beta").ok());
  }
  ASSERT_TRUE(store.Append(2, "other page").ok());
  ASSERT_TRUE(store.Sync().ok());
  ASSERT_FALSE(store.Get(1, 1).ok());  // the rot is real

  {
    ScopedFailpoint fp("env.sync", FpSpec::Always());
    EXPECT_FALSE(store.Sync().ok());
  }
  EXPECT_TRUE(store.Failed());

  // Heal succeeds despite the unreconstructable version...
  ASSERT_TRUE(store.ReopenJournal().ok());
  EXPECT_FALSE(store.Failed());
  // ...the damaged slot now serves the last-good content cleanly, with
  // numbering intact...
  ASSERT_EQ(*store.LatestVersion(1), 1u);
  EXPECT_EQ(*store.Get(1, 0), "alpha");
  EXPECT_EQ(*store.Get(1, 1), "alpha");  // substituted last-good
  EXPECT_EQ(*store.Get(2, 0), "other page");
  // ...and the page accepts appends again.
  ASSERT_TRUE(store.Append(1, "gamma").ok());
  ASSERT_TRUE(store.Sync().ok());

  SnapshotStore reopened;
  ASSERT_TRUE(reopened.AttachJournal(dir, nullptr).ok());
  EXPECT_FALSE(reopened.recovery_report().AnyDamage());
  ASSERT_EQ(*reopened.LatestVersion(1), 2u);
  EXPECT_EQ(*reopened.Get(1, 1), "alpha");
  EXPECT_EQ(*reopened.Get(1, 2), "gamma");
  std::filesystem::remove_all(dir);
}

// ------------------------------------- journal order == acked version order

TEST(DurabilitySweepTest, RefusedSnapshotAppendNeverReachesJournal) {
  // An append that fails its delta build must leave no journal entry:
  // otherwise a restart replays the refused write, shifting every later
  // acknowledged version of the page by one.
  std::string dir = TempDir("snap_stage");
  FaultInjectingEnv fenv;
  SnapshotStore store;
  ASSERT_TRUE(store.AttachJournal(dir, &fenv).ok());
  ASSERT_TRUE(store.Append(1, "alpha").ok());
  {
    ScopedFailpoint rot("snapshot.delta", FpSpec::FlipByteAt(1, 3));
    ASSERT_TRUE(store.Append(1, "alpha and beta").ok());
  }
  // Version 1 is rotted in memory, so the next delta build fails and
  // the append is refused — before anything reaches the journal.
  EXPECT_FALSE(store.Append(1, "gamma").ok());
  EXPECT_EQ(*store.LatestVersion(1), 1u);
  EXPECT_FALSE(store.Failed());  // a refused append is not a disk failure
  ASSERT_TRUE(store.Sync().ok());

  // Restart: exactly the acknowledged versions come back, and the
  // journal's pristine copy even heals the in-memory rot.
  SnapshotStore reopened;
  ASSERT_TRUE(reopened.AttachJournal(dir, nullptr).ok());
  EXPECT_FALSE(reopened.recovery_report().AnyDamage());
  ASSERT_EQ(*reopened.LatestVersion(1), 1u);
  EXPECT_EQ(*reopened.Get(1, 0), "alpha");
  EXPECT_EQ(*reopened.Get(1, 1), "alpha and beta");
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- group commit pass

TEST(DurabilitySweepTest, GroupCommitAckedRecordsSurviveReopen) {
  std::string dir = TempDir("group_commit");
  std::string path = dir + "/wal.log";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    WalOptions wopts;
    wopts.sync_policy = WalSyncPolicy::kGroupCommit;
    wopts.group_commit_window_us = 200;
    auto wal_or = WriteAheadLog::Open(path, wopts);
    ASSERT_TRUE(wal_or.ok());
    WriteAheadLog* wal = wal_or->get();
    // The two-phase commit shape: append under a shared mutex (the
    // database's wal mutex in production), wait for the shared fsync
    // outside it so concurrent commits coalesce.
    std::mutex append_mutex;
    std::atomic<int> acked{0};
    std::vector<std::thread> writers;
    for (int w = 0; w < kThreads; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kPerThread; ++i) {
          LogRecord rec;
          rec.type = LogRecord::Type::kCommit;
          rec.txn = static_cast<rdbms::TxnId>(w * kPerThread + i + 1);
          uint64_t ticket = 0;
          {
            std::lock_guard<std::mutex> lock(append_mutex);
            auto t = wal->AppendRecord(rec);
            ASSERT_TRUE(t.ok());
            ticket = *t;
          }
          ASSERT_TRUE(wal->WaitDurable(ticket).ok());
          acked.fetch_add(1);
        }
      });
    }
    for (std::thread& t : writers) t.join();
    ASSERT_EQ(acked.load(), kThreads * kPerThread);
  }
  // Every acknowledged commit is on disk, cleanly framed.
  auto result = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->clean());
  ASSERT_EQ(result->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  std::set<rdbms::TxnId> txns;
  for (const LogRecord& r : result->records) txns.insert(r.txn);
  EXPECT_EQ(txns.size(), static_cast<size_t>(kThreads * kPerThread));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace structura
