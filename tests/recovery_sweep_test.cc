// Crash-recovery sweep: drives a deterministic multi-transaction
// workload and, for every WAL write index N, crashes at N via the
// failpoint framework, reopens the database, and asserts that committed
// transactions are fully durable and uncommitted ones fully absent
// (Section 4's "transactions and recovery" demand, exercised
// adversarially instead of on the happy path).

#include <filesystem>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "rdbms/database.h"
#include "rdbms/value.h"

namespace structura::rdbms {
namespace {

using FpSpec = FailpointRegistry::Spec;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_sweep_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TableSchema KvSchema() {
  TableSchema schema;
  schema.table_name = "kv";
  schema.columns = {{"name", ValueType::kString},
                    {"val", ValueType::kInt}};
  return schema;
}

/// Expected durable state, updated only at acknowledged commit points.
struct WorkloadState {
  std::map<std::string, int64_t> committed;  // name -> val
  std::map<std::string, RowId> ids;          // rowids of committed rows
  bool table_created = false;
};

/// Deterministic workload: DDL, inserts, updates, an explicit abort, a
/// delete, a mid-workload checkpoint, and post-checkpoint commits. Every
/// WAL/checkpoint write is a potential crash point; the function stops
/// at the first injected failure, like a process that just died, so
/// `state` reflects exactly the transactions acknowledged before the
/// crash.
void RunWorkload(Database* db, WorkloadState* state) {
  if (!db->CreateTable(KvSchema()).ok()) return;
  state->table_created = true;

  {  // txn 1: batch insert.
    auto txn = db->Begin();
    std::map<std::string, std::pair<RowId, int64_t>> pending;
    for (int i = 0; i < 4; ++i) {
      std::string name = "a" + std::to_string(i);
      auto rid = txn->Insert("kv", {Value::Str(name), Value::Int(i)});
      if (!rid.ok()) return;
      pending[name] = {*rid, i};
    }
    if (!txn->Commit().ok()) return;
    for (const auto& [name, entry] : pending) {
      state->ids[name] = entry.first;
      state->committed[name] = entry.second;
    }
  }

  {  // txn 2: updates.
    auto txn = db->Begin();
    for (const char* raw : {"a1", "a2"}) {
      std::string name(raw);
      int64_t val = state->committed[name] + 100;
      if (!txn->Update("kv", state->ids[name],
                       {Value::Str(name), Value::Int(val)})
               .ok()) {
        return;
      }
    }
    if (!txn->Commit().ok()) return;
    state->committed["a1"] += 100;
    state->committed["a2"] += 100;
  }

  {  // txn 3: explicitly aborted — must never surface anywhere.
    auto txn = db->Begin();
    if (!txn->Insert("kv", {Value::Str("ghost"), Value::Int(-1)}).ok()) {
      return;
    }
    if (!txn->Abort().ok()) return;
  }

  {  // txn 4: delete.
    auto txn = db->Begin();
    if (!txn->Delete("kv", state->ids["a0"]).ok()) return;
    if (!txn->Commit().ok()) return;
    state->committed.erase("a0");
  }

  // Checkpoint: truncates the WAL; post-checkpoint commits must replay
  // from the fresh log on top of the checkpoint image.
  if (!db->Checkpoint().ok()) return;

  {  // txn 5: post-checkpoint inserts.
    auto txn = db->Begin();
    std::map<std::string, std::pair<RowId, int64_t>> pending;
    for (int i = 0; i < 3; ++i) {
      std::string name = "c" + std::to_string(i);
      auto rid =
          txn->Insert("kv", {Value::Str(name), Value::Int(1000 + i)});
      if (!rid.ok()) return;
      pending[name] = {*rid, 1000 + i};
    }
    if (!txn->Commit().ok()) return;
    for (const auto& [name, entry] : pending) {
      state->ids[name] = entry.first;
      state->committed[name] = entry.second;
    }
  }

  {  // txn 6: post-checkpoint update of pre-checkpoint data.
    auto txn = db->Begin();
    if (!txn->Update("kv", state->ids["a3"],
                     {Value::Str("a3"), Value::Int(777)})
             .ok()) {
      return;
    }
    if (!txn->Commit().ok()) return;
    state->committed["a3"] = 777;
  }
}

/// Reopens `dir` with no failpoints active and asserts the table holds
/// exactly `state.committed`.
void VerifyDurableState(const std::string& dir, const WorkloadState& state,
                        const std::string& context) {
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok()) << context;
  Table* kv = (*db)->GetTable("kv");
  if (kv == nullptr) {
    // Crash before the (flushed, auto-committed) DDL became durable.
    EXPECT_FALSE(state.table_created) << context;
    EXPECT_TRUE(state.committed.empty()) << context;
    return;
  }
  auto txn = (*db)->Begin();
  auto rows = txn->Scan("kv");
  ASSERT_TRUE(rows.ok()) << context;
  std::map<std::string, int64_t> got;
  for (const auto& [id, row] : *rows) {
    got[row[0].ToString()] = row[1].as_int();
  }
  EXPECT_EQ(got, state.committed) << context;
  txn->Commit();
}

TEST(RecoverySweepTest, EveryWalAppendCrashPointRecovers) {
  // Dry run: count WAL appends without firing anything, and pin the
  // expected full-workload state.
  size_t total_appends = 0;
  WorkloadState full;
  {
    std::string dir = TempDir("dry");
    ScopedFailpoint counter("wal.append", FpSpec::CountOnly());
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    RunWorkload(db->get(), &full);
    total_appends =
        FailpointRegistry::Instance().GetCounters("wal.append").hits;
    db->reset();
    VerifyDurableState(dir, full, "dry run");
  }
  ASSERT_GT(total_appends, 10u);
  ASSERT_EQ(full.committed.size(), 6u);  // a1..a3 + c0..c2

  for (size_t n = 1; n <= total_appends; ++n) {
    std::string context = "crash at wal append " + std::to_string(n);
    std::string dir = TempDir("ap" + std::to_string(n));
    WorkloadState state;
    {
      // From(n): the nth write and everything after it fails — the
      // process is dead, nothing more reaches the log.
      ScopedFailpoint crash("wal.append", FpSpec::From(n));
      auto db = Database::Open({dir});
      ASSERT_TRUE(db.ok()) << context;
      RunWorkload(db->get(), &state);
    }
    VerifyDurableState(dir, state, context);
  }
}

TEST(RecoverySweepTest, EveryTornTailCrashPointRecovers) {
  size_t total_appends = 0;
  {
    std::string dir = TempDir("torn_dry");
    ScopedFailpoint counter("wal.append.torn", FpSpec::CountOnly());
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    WorkloadState full;
    RunWorkload(db->get(), &full);
    total_appends =
        FailpointRegistry::Instance().GetCounters("wal.append.torn").hits;
  }
  ASSERT_GT(total_appends, 10u);

  for (size_t n = 1; n <= total_appends; ++n) {
    std::string context = "torn tail at wal append " + std::to_string(n);
    std::string dir = TempDir("torn" + std::to_string(n));
    WorkloadState state;
    {
      // Every append from the crash point leaves half a frame on disk;
      // recovery must stop at the first damaged record.
      ScopedFailpoint crash("wal.append.torn", FpSpec::From(n));
      auto db = Database::Open({dir});
      ASSERT_TRUE(db.ok()) << context;
      RunWorkload(db->get(), &state);
    }
    VerifyDurableState(dir, state, context);
  }
}

TEST(RecoverySweepTest, CommitFlushFailureIsAtomic) {
  // A commit whose durability flush fails is unacknowledged: the client
  // must treat its outcome as unknown, so recovery may surface it either
  // fully applied or fully absent — never partially.
  for (size_t n : {1, 2, 3}) {
    std::string context = "flush failure " + std::to_string(n);
    std::string dir = TempDir("flush" + std::to_string(n));
    std::map<int, bool> acked;  // txn index -> Commit() returned OK
    {
      ScopedFailpoint crash("wal.flush", FpSpec::From(n));
      auto db = Database::Open({dir});
      ASSERT_TRUE(db.ok()) << context;
      if (!(*db)->CreateTable(KvSchema()).ok()) continue;
      for (int t = 0; t < 4; ++t) {
        auto txn = (*db)->Begin();
        bool ok = true;
        for (int r = 0; r < 3 && ok; ++r) {
          ok = txn->Insert("kv",
                           {Value::Str("t" + std::to_string(t) + "_r" +
                                       std::to_string(r)),
                            Value::Int(t)})
                   .ok();
        }
        acked[t] = ok && txn->Commit().ok();
      }
    }
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok()) << context;
    if ((*db)->GetTable("kv") == nullptr) continue;
    auto txn = (*db)->Begin();
    auto rows = txn->Scan("kv");
    ASSERT_TRUE(rows.ok()) << context;
    std::map<int, int> per_txn;
    for (const auto& [id, row] : *rows) {
      per_txn[static_cast<int>(row[1].as_int())]++;
    }
    for (int t = 0; t < 4; ++t) {
      int count = per_txn.count(t) > 0 ? per_txn[t] : 0;
      EXPECT_TRUE(count == 0 || count == 3)
          << context << ": txn " << t << " half-applied (" << count << ")";
      if (acked[t]) {
        EXPECT_EQ(count, 3) << context << ": acked txn " << t << " lost";
      }
    }
    txn->Commit();
  }
}

TEST(RecoverySweepTest, CheckpointCrashKeepsWalAuthoritative) {
  std::string dir = TempDir("ckpt");
  WorkloadState state;
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
    {
      auto txn = (*db)->Begin();
      auto rid = txn->Insert("kv", {Value::Str("pre"), Value::Int(1)});
      ASSERT_TRUE(rid.ok());
      ASSERT_TRUE(txn->Commit().ok());
      state.committed["pre"] = 1;
    }
    {
      // Checkpoint dies before renaming the tmp image into place: the
      // old (absent) checkpoint plus the intact WAL stay authoritative.
      ScopedFailpoint crash("db.checkpoint.write", FpSpec::Always());
      EXPECT_FALSE((*db)->Checkpoint().ok());
    }
    // The database keeps working after the failed checkpoint.
    auto txn = (*db)->Begin();
    auto rid = txn->Insert("kv", {Value::Str("post"), Value::Int(2)});
    ASSERT_TRUE(rid.ok());
    ASSERT_TRUE(txn->Commit().ok());
    state.committed["post"] = 2;
    // A retried checkpoint succeeds once the fault clears.
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  state.table_created = true;
  VerifyDurableState(dir, state, "checkpoint crash");
}

TEST(RecoverySweepTest, SuppressionShieldsRecoveryFromArmedFailpoints) {
  std::string dir = TempDir("suppress");
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn->Insert("kv", {Value::Str("x"), Value::Int(1)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Reopen while a crash failpoint is still armed: the suppression
  // guard keeps recovery (and its Begin/Append traffic) fault-free.
  ScopedFailpoint crash("wal.append", FpSpec::Always());
  {
    ScopedFailpointSuppression shield;
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    auto rows = txn->Scan("kv");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 1u);
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Outside the guard the failpoint bites again.
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  EXPECT_FALSE(txn->Insert("kv", {Value::Str("y"), Value::Int(2)}).ok());
  txn->Abort();
}

}  // namespace
}  // namespace structura::rdbms
