#include <gtest/gtest.h>

#include "text/document.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "text/wiki_markup.h"

namespace structura::text {
namespace {

std::vector<std::string> Surfaces(const std::string& src) {
  std::vector<std::string> out;
  for (const Token& t : Tokenize(src)) out.push_back(t.Text(src));
  return out;
}

TEST(TokenizerTest, WordsNumbersPunct) {
  EXPECT_EQ(Surfaces("Madison has 233,209 people."),
            (std::vector<std::string>{"Madison", "has", "233,209",
                                      "people", "."}));
}

TEST(TokenizerTest, ApostropheInsideWord) {
  EXPECT_EQ(Surfaces("don't stop"),
            (std::vector<std::string>{"don't", "stop"}));
}

TEST(TokenizerTest, DecimalAndSignedNumbers) {
  EXPECT_EQ(Surfaces("from -5 to 70.5 degrees"),
            (std::vector<std::string>{"from", "-5", "to", "70.5",
                                      "degrees"}));
}

TEST(TokenizerTest, SpansIndexSource) {
  std::string src = "ab cd";
  std::vector<Token> toks = Tokenize(src);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].span.begin, 0u);
  EXPECT_EQ(toks[0].span.end, 2u);
  EXPECT_EQ(toks[1].span.begin, 3u);
  EXPECT_EQ(toks[1].span.end, 5u);
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \n\t ").empty());
}

TEST(TokenizerTest, WordTokensLowercased) {
  EXPECT_EQ(WordTokens("The QUICK fox 42"),
            (std::vector<std::string>{"the", "quick", "fox"}));
}

TEST(SentenceTest, SplitsOnTerminators) {
  std::vector<Span> sents =
      SplitSentences("First one. Second one! Third?");
  ASSERT_EQ(sents.size(), 3u);
}

TEST(SentenceTest, AbbreviationsDoNotSplit) {
  std::string src = "The U.S. Census counts people. Madison grew.";
  std::vector<Span> sents = SplitSentences(src);
  ASSERT_EQ(sents.size(), 2u);
  std::string first(src.substr(sents[0].begin, sents[0].length()));
  EXPECT_EQ(first, "The U.S. Census counts people.");
}

TEST(SentenceTest, BlankLineSplits) {
  std::vector<Span> sents = SplitSentences("para one\n\npara two");
  ASSERT_EQ(sents.size(), 2u);
}

TEST(SpanTest, ContainsAndOverlaps) {
  Span a{0, 10}, b{2, 5}, c{9, 12}, d{10, 12};
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_FALSE(a.Overlaps(d));
}

constexpr const char* kPage = R"({{Infobox city
| name = Madison
| state = Wisconsin
| population = 233,209
| temp_01 = 20
}}
'''Madison''' is a city in [[Wisconsin]].
The mayor is [[David Smith|D. Smith]].
== Climate ==
Cold in winter.
[[Category:City]]
)";

TEST(WikiMarkupTest, ParsesInfobox) {
  std::vector<Infobox> boxes = ParseInfoboxes(kPage);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].type, "city");
  EXPECT_EQ(boxes[0].Get("name"), "Madison");
  EXPECT_EQ(boxes[0].Get("population"), "233,209");
  EXPECT_EQ(boxes[0].Get("temp_01"), "20");
  EXPECT_TRUE(boxes[0].Has("state"));
  EXPECT_FALSE(boxes[0].Has("elevation"));
  EXPECT_EQ(boxes[0].Get("elevation"), "");
}

TEST(WikiMarkupTest, InfoboxSpanCoversTemplate) {
  std::vector<Infobox> boxes = ParseInfoboxes(kPage);
  ASSERT_EQ(boxes.size(), 1u);
  std::string_view covered =
      std::string_view(kPage).substr(boxes[0].span.begin,
                                     boxes[0].span.length());
  EXPECT_TRUE(covered.starts_with("{{Infobox"));
  EXPECT_TRUE(covered.ends_with("}}"));
}

TEST(WikiMarkupTest, MalformedInfoboxSkipped) {
  EXPECT_TRUE(ParseInfoboxes("{{Infobox city | name = X").empty());
}

TEST(WikiMarkupTest, ParsesLinksWithAnchors) {
  std::vector<WikiLink> links = ParseLinks(kPage);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].target, "Wisconsin");
  EXPECT_EQ(links[0].anchor, "Wisconsin");
  EXPECT_EQ(links[1].target, "David Smith");
  EXPECT_EQ(links[1].anchor, "D. Smith");
}

TEST(WikiMarkupTest, ParsesCategories) {
  EXPECT_EQ(ParseCategories(kPage), (std::vector<std::string>{"City"}));
}

TEST(WikiMarkupTest, StripRemovesMarkup) {
  std::string plain = StripMarkup(kPage);
  EXPECT_EQ(plain.find("{{"), std::string::npos);
  EXPECT_EQ(plain.find("[["), std::string::npos);
  EXPECT_EQ(plain.find("'''"), std::string::npos);
  EXPECT_NE(plain.find("Madison is a city in Wisconsin"),
            std::string::npos);
  EXPECT_NE(plain.find("D. Smith"), std::string::npos);  // anchor kept
  EXPECT_EQ(plain.find("Category"), std::string::npos);
}

TEST(SimilarityTest, LevenshteinBasics) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
}

TEST(SimilarityTest, JaroWinklerPrefersSharedPrefix) {
  double martha = JaroWinklerSimilarity("MARTHA", "MARHTA");
  EXPECT_NEAR(martha, 0.961, 0.005);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", ""), 0.0);
}

TEST(SimilarityTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({"x"}, {}), 0.0);
}

TEST(SimilarityTest, NgramJaccard) {
  EXPECT_GT(NgramJaccard("madison", "madisen"), 0.3);
  EXPECT_DOUBLE_EQ(NgramJaccard("abc", "abc"), 1.0);
  EXPECT_LT(NgramJaccard("abc", "xyz"), 0.01);
}

TEST(TfIdfTest, RareTermsWeighMore) {
  TfIdfModel model;
  model.AddDocument({"the", "city", "of", "madison"});
  model.AddDocument({"the", "city", "of", "oakfield"});
  model.AddDocument({"the", "river"});
  model.Finalize();
  EXPECT_GT(model.Idf("madison"), model.Idf("the"));
  double same = model.Cosine({"madison", "city"}, {"madison", "city"});
  EXPECT_NEAR(same, 1.0, 1e-9);
  double related = model.Cosine({"madison", "city"}, {"oakfield", "city"});
  EXPECT_GT(related, 0.0);
  EXPECT_LT(related, same);
}

// Property sweep: metric identities hold for arbitrary string pairs.
class MetricPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {
};

TEST_P(MetricPropertyTest, RangeSymmetryIdentity) {
  auto [a, b] = GetParam();
  for (auto metric : {LevenshteinSimilarity, JaroSimilarity,
                      JaroWinklerSimilarity}) {
    double ab = metric(a, b);
    double ba = metric(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, ba) << a << " vs " << b;
    EXPECT_DOUBLE_EQ(metric(a, a), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MetricPropertyTest,
    ::testing::Values(std::make_pair("David Smith", "D. Smith"),
                      std::make_pair("Madison", "Madison, Wisconsin"),
                      std::make_pair("", "x"),
                      std::make_pair("aaaa", "aaab"),
                      std::make_pair("completely", "different"),
                      std::make_pair("a", "a"),
                      std::make_pair("ABCDEF", "abcdef")));

}  // namespace
}  // namespace structura::text
