#include <gtest/gtest.h>

#include "sensors/sensor_events.h"
#include "uncertainty/confidence.h"

namespace structura::sensors {
namespace {

TEST(TraceTest, GeneratesReadingsAndTruth) {
  TraceOptions options;
  options.rooms = 3;
  options.events_per_room = 6;
  options.duration = 500;
  SensorTrace trace;
  std::vector<EventTruth> truth;
  GenerateTrace(options, &trace, &truth);
  // door + motion per room per tick.
  EXPECT_EQ(trace.readings.size(), 3u * 2u * 500u);
  EXPECT_FALSE(truth.empty());
  // Events alternate entered/left per room, starting with entered.
  std::map<std::string, std::string> last;
  for (const EventTruth& e : truth) {
    if (last.count(e.room) == 0) {
      EXPECT_EQ(e.event, "entered") << e.room;
    } else {
      EXPECT_NE(e.event, last[e.room]) << e.room;
    }
    last[e.room] = e.event;
  }
}

TEST(TraceTest, DeterministicFromSeed) {
  TraceOptions options;
  SensorTrace t1, t2;
  std::vector<EventTruth> g1, g2;
  GenerateTrace(options, &t1, &g1);
  GenerateTrace(options, &t2, &g2);
  ASSERT_EQ(t1.readings.size(), t2.readings.size());
  EXPECT_EQ(g1.size(), g2.size());
  for (size_t i = 0; i < t1.readings.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.readings[i].value, t2.readings[i].value);
  }
}

TEST(EventExtractorTest, RecoversPlantedEvents) {
  TraceOptions options;
  options.rooms = 4;
  options.events_per_room = 8;
  options.duration = 1500;
  SensorTrace trace;
  std::vector<EventTruth> truth;
  GenerateTrace(options, &trace, &truth);
  EventExtractor extractor;
  auto facts = extractor.Extract(trace);
  EXPECT_FALSE(facts.empty());
  EventScore score = ScoreEvents(facts, truth);
  EXPECT_GT(score.f1(), 0.8) << "P=" << score.precision()
                             << " R=" << score.recall();
  // Facts carry the standard shape: they flow into the belief layer.
  for (const auto& f : facts) {
    EXPECT_TRUE(f.attribute == "entered" || f.attribute == "left");
    EXPECT_GT(f.confidence, 0.0);
    EXPECT_LE(f.confidence, 1.0);
  }
}

TEST(EventExtractorTest, GlitchesMostlyFiltered) {
  TraceOptions options;
  options.rooms = 2;
  options.events_per_room = 4;
  options.duration = 1200;
  options.glitch_rate = 0.05;  // lots of spurious door spikes
  SensorTrace trace;
  std::vector<EventTruth> truth;
  GenerateTrace(options, &trace, &truth);
  EventExtractor extractor;
  EventScore score = ScoreEvents(extractor.Extract(trace), truth);
  // The motion-window rule suppresses bare door glitches.
  EXPECT_GT(score.precision(), 0.6);
}

TEST(EventExtractorTest, FactsFeedBeliefLayer) {
  TraceOptions options;
  options.rooms = 2;
  options.events_per_room = 4;
  options.duration = 600;
  SensorTrace trace;
  std::vector<EventTruth> truth;
  GenerateTrace(options, &trace, &truth);
  EventExtractor extractor;
  ie::FactSet set;
  for (auto& f : extractor.Extract(trace)) set.Add(std::move(f));
  auto beliefs = uncertainty::BuildBeliefs(set);
  EXPECT_FALSE(beliefs.empty());
  // Same machinery as text: subjects are rooms, attributes are events.
  for (const auto& b : beliefs) {
    EXPECT_TRUE(b.subject.rfind("room_", 0) == 0);
  }
}

TEST(ScoreTest, ToleranceWindow) {
  std::vector<EventTruth> truth = {{100, "room_0", "entered"}};
  ie::ExtractedFact close;
  close.subject = "room_0";
  close.attribute = "entered";
  close.value = "102";
  ie::ExtractedFact far;
  far.subject = "room_0";
  far.attribute = "entered";
  far.value = "130";
  EventScore s1 = ScoreEvents({close}, truth, 3);
  EXPECT_EQ(s1.true_positives, 1u);
  EventScore s2 = ScoreEvents({far}, truth, 3);
  EXPECT_EQ(s2.true_positives, 0u);
  EXPECT_EQ(s2.false_positives, 1u);
  EXPECT_EQ(s2.false_negatives, 1u);
}

}  // namespace
}  // namespace structura::sensors
