// Differential lockdown of morsel-parallel query execution. The
// contract under test (ExecutorOptions): results are a pure function of
// the input and `morsel_rows`, never of `parallelism` — the parallel
// path must match the serial path element-for-element, float bits
// included, at every worker count; interrupts must be honored between
// morsels (a query returns either the full correct answer or a clean
// kDeadlineExceeded/kCancelled, never a truncated relation).
//
// The deterministic tests run in the tier-1 suite; the seeded
// random-plan sweep lives in ParallelSweepTest.* and is labelled
// `parallel` (ctest -L parallel), mirroring the crash-sim layout.
// Every sweep failure reproduces from the printed STRUCTURA_PARALLEL_SEED;
// STRUCTURA_PARALLEL_ITERS scales the iteration count.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "corpus/generator.h"
#include "query/keyword_index.h"
#include "query/relation.h"
#include "query/structured_query.h"
#include "text/document.h"

namespace structura::query {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 10);
}

/// Shared worker pool for every parallel run in this binary (8 workers:
/// more chains than cores on any CI box, which is exactly the
/// interleaving we want to stress).
ThreadPool& Pool() {
  static ThreadPool pool(8);
  return pool;
}

ExecutorOptions Opts(size_t parallelism, size_t morsel_rows,
                     size_t grain = 1) {
  ExecutorOptions o;
  o.parallelism = parallelism;
  o.morsel_rows = morsel_rows;
  o.grain = grain;
  o.pool = parallelism > 1 ? &Pool() : nullptr;
  return o;
}

/// Bit-exact value equality: same type AND same representation. Doubles
/// are compared as bit patterns so "close" never passes for "equal".
bool SameValue(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case rdbms::ValueType::kNull:
      return true;
    case rdbms::ValueType::kInt:
      return a.as_int() == b.as_int();
    case rdbms::ValueType::kDouble: {
      double da = a.as_double(), db = b.as_double();
      return std::memcmp(&da, &db, sizeof(double)) == 0;
    }
    case rdbms::ValueType::kString:
      return a.as_string() == b.as_string();
  }
  return false;
}

void ExpectIdentical(const Relation& serial, const Relation& parallel,
                     const std::string& what) {
  ASSERT_EQ(serial.columns(), parallel.columns()) << what;
  ASSERT_EQ(serial.size(), parallel.size()) << what;
  for (size_t i = 0; i < serial.size(); ++i) {
    const rdbms::Row& a = serial.rows()[i];
    const rdbms::Row& b = parallel.rows()[i];
    ASSERT_EQ(a.size(), b.size()) << what << " row " << i;
    for (size_t j = 0; j < a.size(); ++j) {
      ASSERT_TRUE(SameValue(a[j], b[j]))
          << what << " row " << i << " col " << j << ": serial="
          << a[j].ToString() << " parallel=" << b[j].ToString();
    }
  }
}

/// A relation whose float column has wildly mixed magnitudes, so any
/// reordering of the aggregate reduction tree changes the result bits.
Relation RandomRelation(std::mt19937_64& rng, size_t max_rows) {
  Relation rel({"g", "s", "x", "y"});
  std::uniform_int_distribution<size_t> rows_dist(0, max_rows);
  std::uniform_int_distribution<int> group_dist(0, 7);
  std::uniform_int_distribution<int64_t> int_dist(-1000, 1000);
  std::uniform_real_distribution<double> mag_dist(-9.0, 9.0);
  std::uniform_real_distribution<double> mant_dist(-1.0, 1.0);
  std::uniform_int_distribution<int> null_dist(0, 19);
  size_t n = rows_dist(rng);
  for (size_t i = 0; i < n; ++i) {
    Value y = null_dist(rng) == 0
                  ? Value::Null()
                  : Value::Double(mant_dist(rng) *
                                  std::pow(10.0, mag_dist(rng)));
    rel.Append({Value::Str("g" + std::to_string(group_dist(rng))),
                Value::Str("s" + std::to_string(int_dist(rng))),
                Value::Int(int_dist(rng)), y})
        .ok();
  }
  return rel;
}

std::vector<Condition> RandomConditions(std::mt19937_64& rng) {
  std::vector<Condition> conds;
  std::uniform_int_distribution<int> n_dist(1, 2);
  std::uniform_int_distribution<int64_t> lit_dist(-800, 800);
  std::uniform_int_distribution<int> op_dist(0, 3);
  int n = n_dist(rng);
  for (int i = 0; i < n; ++i) {
    static const CompareOp kOps[] = {CompareOp::kGt, CompareOp::kLe,
                                     CompareOp::kNe, CompareOp::kGe};
    conds.push_back(Condition{"x", kOps[op_dist(rng)],
                              Value::Int(lit_dist(rng))});
  }
  return conds;
}

std::vector<AggSpec> AllAggs() {
  return {AggSpec{AggFn::kCount, "", "cnt"},
          AggSpec{AggFn::kSum, "y", "sum_y"},
          AggSpec{AggFn::kAvg, "y", "avg_y"},
          AggSpec{AggFn::kMin, "x", "min_x"},
          AggSpec{AggFn::kMax, "s", "max_s"}};
}

/// Runs one operator pipeline at the given options and returns every
/// intermediate, so mismatches localize to the operator that diverged.
struct PipelineOut {
  Relation filtered;
  Relation projected;
  Relation joined;
  Relation aggregated;
};

Result<PipelineOut> RunPipeline(const Relation& in, const Relation& right,
                                const std::vector<Condition>& conds,
                                const Interrupt& intr,
                                const ExecutorOptions& opts) {
  PipelineOut out;
  STRUCTURA_ASSIGN_OR_RETURN(out.filtered, Filter(in, conds, intr, opts));
  STRUCTURA_ASSIGN_OR_RETURN(out.projected,
                             Project(in, {"g", "y"}, intr, opts));
  STRUCTURA_ASSIGN_OR_RETURN(
      out.joined, HashJoin(in, right, "g", "g", "r_", intr, opts));
  STRUCTURA_ASSIGN_OR_RETURN(
      out.aggregated, Aggregate(in, {"g"}, AllAggs(), intr, opts));
  return out;
}

TEST(ParallelExecTest, OperatorsMatchSerialAtEveryParallelism) {
  std::mt19937_64 rng(4242);
  Relation in = RandomRelation(rng, 3000);
  Relation right({"g", "tag"});
  for (int i = 0; i < 8; ++i) {
    right.Append({Value::Str("g" + std::to_string(i)),
                  Value::Str("tag" + std::to_string(i))})
        .ok();
  }
  std::vector<Condition> conds = RandomConditions(rng);
  for (size_t morsel : {size_t{64}, size_t{1024}}) {
    auto serial = RunPipeline(in, right, conds, Interrupt{},
                              Opts(1, morsel));
    ASSERT_TRUE(serial.ok());
    for (size_t par : {size_t{2}, size_t{8}}) {
      auto parallel = RunPipeline(in, right, conds, Interrupt{},
                                  Opts(par, morsel));
      ASSERT_TRUE(parallel.ok());
      std::string tag =
          "par=" + std::to_string(par) + " morsel=" + std::to_string(morsel);
      ExpectIdentical(serial->filtered, parallel->filtered,
                      "filter " + tag);
      ExpectIdentical(serial->projected, parallel->projected,
                      "project " + tag);
      ExpectIdentical(serial->joined, parallel->joined, "join " + tag);
      ExpectIdentical(serial->aggregated, parallel->aggregated,
                      "aggregate " + tag);
    }
  }
}

TEST(ParallelExecTest, StructuredQueryMatchesSerial) {
  std::mt19937_64 rng(7);
  Relation in = RandomRelation(rng, 2000);
  StructuredQuery q;
  q.source_view = "v";
  q.where = {Condition{"x", CompareOp::kGt, Value::Int(-200)}};
  q.group_by = {"g"};
  q.aggregates = AllAggs();
  q.order_by = "g";
  auto serial = ExecuteStructuredQuery(q, in, Interrupt{}, Opts(1, 256));
  ASSERT_TRUE(serial.ok());
  for (size_t par : {size_t{2}, size_t{8}}) {
    auto parallel =
        ExecuteStructuredQuery(q, in, Interrupt{}, Opts(par, 256));
    ASSERT_TRUE(parallel.ok());
    ExpectIdentical(*serial, *parallel,
                    "structured par=" + std::to_string(par));
  }
}

/// Guaranteed-size relation: the serial path polls the interrupt every
/// 512 rows, so interrupt tests need more rows than that on every path.
Relation BigRelation(size_t rows) {
  std::mt19937_64 rng(3);
  Relation rel;
  do {
    rel = RandomRelation(rng, rows * 2);
  } while (rel.size() < rows);
  return rel;
}

TEST(ParallelExecTest, ExpiredDeadlineRefusesOnEveryPath) {
  Relation in = BigRelation(4096);
  Interrupt expired;
  expired.deadline = Deadline::AfterNanos(-1);
  for (size_t par : {size_t{1}, size_t{2}, size_t{8}}) {
    auto r = Filter(in, {Condition{"x", CompareOp::kGt, Value::Int(0)}},
                    expired, Opts(par, 64));
    ASSERT_FALSE(r.ok()) << "par=" << par;
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    auto a = Aggregate(in, {"g"}, AllAggs(), expired, Opts(par, 64));
    ASSERT_FALSE(a.ok()) << "par=" << par;
    EXPECT_EQ(a.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(ParallelExecTest, CancellationRefusesOnEveryPath) {
  Relation in = BigRelation(4096);
  CancellationSource source;
  source.Cancel();
  Interrupt cancelled;
  cancelled.token = source.token();
  for (size_t par : {size_t{1}, size_t{2}, size_t{8}}) {
    auto r = Project(in, {"g", "x"}, cancelled, Opts(par, 64));
    ASSERT_FALSE(r.ok()) << "par=" << par;
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
}

TEST(ParallelExecTest, KeywordSearchParallelMatchesSerial) {
  // Posting lists long enough to engage the chunked scoring path
  // (>= 8192 postings for one term).
  KeywordIndex index;
  for (uint64_t i = 0; i < 9000; ++i) {
    text::Document d;
    d.id = i + 1;
    d.title = "doc " + std::to_string(i);
    d.text = "common words here plus token" + std::to_string(i % 97) +
             (i % 3 == 0 ? " madison" : " oakfield");
    index.AddDocument(d);
  }
  index.Finalize();
  for (const char* q : {"common madison", "common token13 oakfield"}) {
    auto serial = index.Search(q, 25, Interrupt{}, Opts(1, 1024));
    ASSERT_TRUE(serial.ok());
    for (size_t par : {size_t{2}, size_t{8}}) {
      auto parallel = index.Search(q, 25, Interrupt{}, Opts(par, 1024));
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(serial->size(), parallel->size());
      for (size_t i = 0; i < serial->size(); ++i) {
        EXPECT_EQ((*serial)[i].doc, (*parallel)[i].doc) << q;
        double a = (*serial)[i].score, b = (*parallel)[i].score;
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
            << q << " hit " << i << ": " << a << " vs " << b;
      }
    }
  }
}

TEST(ParallelExecTest, EndToEndSystemMatchesSerial) {
  // Full SDL pipeline (EXTRACT included) through two Systems that
  // differ only in query_parallelism.
  corpus::CorpusOptions copts;
  copts.num_cities = 30;
  copts.num_people = 20;
  copts.num_companies = 10;
  copts.seed = 99;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(copts, &docs, &truth);
  const char* kProgram =
      "CREATE VIEW facts AS EXTRACT infobox, temp_sentence FROM pages;"
      "SELECT subject, COUNT(*) AS n, AVG(value) AS avg_v FROM facts "
      "WHERE attribute LIKE \"temp_%\" GROUP BY subject ORDER BY subject;";
  auto run = [&](size_t parallelism) {
    core::System::Options so;
    so.query_parallelism = parallelism;
    so.query_morsel_rows = 128;
    so.query_cache_entries = 0;  // compare executions, not cache copies
    auto sys = core::System::Create(so);
    EXPECT_TRUE(sys.ok());
    (*sys)->RegisterStandardOperators();
    EXPECT_TRUE((*sys)->IngestCrawl(docs).ok());
    auto results = (*sys)->RunProgram(kProgram);
    EXPECT_TRUE(results.ok());
    return results->back().relation;
  };
  Relation serial = run(1);
  Relation parallel = run(8);
  ExpectIdentical(serial, parallel, "end-to-end");
}

// --------------------------------------------------------------- sweep

/// Seeded random-plan differential sweep (ctest -L parallel). Each
/// iteration draws a fresh relation + plan and checks serial ==
/// parallel at 2 and 8 workers; a sprinkling of iterations run under a
/// tight randomized deadline, where the contract is "identical result
/// or clean deadline refusal".
TEST(ParallelSweepTest, RandomPlanDifferential) {
  const uint64_t base_seed = EnvU64("STRUCTURA_PARALLEL_SEED", 20260808);
  const uint64_t iters = EnvU64("STRUCTURA_PARALLEL_ITERS", 1000);
  Relation right({"g", "tag"});
  for (int i = 0; i < 8; ++i) {
    right.Append({Value::Str("g" + std::to_string(i)),
                  Value::Str("tag" + std::to_string(i))})
        .ok();
  }
  static const size_t kMorsels[] = {1, 7, 64, 1024};
  for (uint64_t iter = 0; iter < iters; ++iter) {
    uint64_t seed = base_seed + iter;
    SCOPED_TRACE("STRUCTURA_PARALLEL_SEED=" + std::to_string(seed) +
                 " (iteration " + std::to_string(iter) + ")");
    std::mt19937_64 rng(seed);
    Relation in = RandomRelation(rng, 600);
    std::vector<Condition> conds = RandomConditions(rng);
    size_t morsel = kMorsels[rng() % 4];
    size_t grain = 1 + rng() % 3;
    bool race_deadline = iter % 7 == 3;
    Interrupt intr;
    if (race_deadline) {
      intr.deadline = Deadline::AfterMicros(rng() % 200);
    }
    auto serial = RunPipeline(in, right, conds, Interrupt{},
                              Opts(1, morsel));
    ASSERT_TRUE(serial.ok());
    for (size_t par : {size_t{2}, size_t{8}}) {
      auto parallel =
          RunPipeline(in, right, conds, intr, Opts(par, morsel, grain));
      if (!parallel.ok()) {
        // Only the raced deadline may refuse, and only cleanly.
        ASSERT_TRUE(race_deadline) << parallel.status().ToString();
        EXPECT_EQ(parallel.status().code(),
                  StatusCode::kDeadlineExceeded);
        continue;
      }
      std::string tag = "par=" + std::to_string(par);
      ExpectIdentical(serial->filtered, parallel->filtered,
                      "filter " + tag);
      ExpectIdentical(serial->projected, parallel->projected,
                      "project " + tag);
      ExpectIdentical(serial->joined, parallel->joined, "join " + tag);
      ExpectIdentical(serial->aggregated, parallel->aggregated,
                      "aggregate " + tag);
    }
  }
}

}  // namespace
}  // namespace structura::query
