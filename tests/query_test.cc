#include <map>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "corpus/generator.h"
#include "query/browse.h"
#include "query/hybrid.h"
#include "query/keyword_index.h"
#include "query/relation.h"
#include "query/standing_query.h"
#include "query/structured_query.h"
#include "query/translator.h"
#include "uncertainty/confidence.h"
#include "ie/fact.h"

namespace structura::query {
namespace {

Relation FactsRelation() {
  Relation rel({"subject", "attribute", "value"});
  auto add = [&](const char* s, const char* a, const char* v) {
    rel.Append({Value::Str(s), Value::Str(a), Value::Str(v)}).ok();
  };
  add("Madison", "temp_03", "34");
  add("Madison", "temp_07", "71");
  add("Madison", "population", "233,209");
  add("Oakfield", "temp_03", "40");
  add("Oakfield", "temp_07", "80");
  add("Oakfield", "population", "5,000");
  return rel;
}

TEST(RelationTest, AppendValidatesArity) {
  Relation rel({"a", "b"});
  EXPECT_TRUE(rel.Append({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(rel.Append({Value::Int(1)}).ok());
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.At(0, "b").as_int(), 2);
  EXPECT_TRUE(rel.At(0, "missing").is_null());
}

TEST(RelationTest, FilterConditions) {
  Relation rel = FactsRelation();
  auto only_madison = Filter(
      rel, {Condition{"subject", CompareOp::kEq, Value::Str("Madison")}});
  ASSERT_TRUE(only_madison.ok());
  EXPECT_EQ(only_madison->size(), 3u);
  auto march = Filter(
      rel, {Condition{"subject", CompareOp::kEq, Value::Str("Madison")},
            Condition{"attribute", CompareOp::kEq,
                      Value::Str("temp_03")}});
  EXPECT_EQ(march->size(), 1u);
  EXPECT_FALSE(
      Filter(rel, {Condition{"nope", CompareOp::kEq, Value::Int(1)}})
          .ok());
}

TEST(RelationTest, NumericCoercionInConditions) {
  Relation rel = FactsRelation();
  // "value" holds strings; numeric comparison should still work.
  auto warm = Filter(
      rel, {Condition{"value", CompareOp::kGt, Value::Int(50)}});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->size(), 4u);  // 71, 233209, 80, 5000
}

TEST(RelationTest, LikeAndContains) {
  Relation rel = FactsRelation();
  auto temps = Filter(
      rel,
      {Condition{"attribute", CompareOp::kLike, Value::Str("temp_%")}});
  EXPECT_EQ(temps->size(), 4u);
  auto no_tail = Filter(
      rel, {Condition{"attribute", CompareOp::kLike, Value::Str("%_03")}});
  EXPECT_EQ(no_tail->size(), 2u);
  auto contains = Filter(
      rel,
      {Condition{"value", CompareOp::kContains, Value::Str(",")}});
  EXPECT_EQ(contains->size(), 2u);
}

TEST(RelationTest, ProjectReorders) {
  Relation rel = FactsRelation();
  auto projected = Project(rel, {"value", "subject"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->columns(),
            (std::vector<std::string>{"value", "subject"}));
  EXPECT_EQ(projected->At(0, "subject").ToString(), "Madison");
  EXPECT_FALSE(Project(rel, {"ghost"}).ok());
}

TEST(RelationTest, HashJoin) {
  Relation cities({"name", "state"});
  cities.Append({Value::Str("Madison"), Value::Str("Wisconsin")}).ok();
  cities.Append({Value::Str("Oakfield"), Value::Str("Iowa")}).ok();
  cities.Append({Value::Str("Lonely"), Value::Str("Maine")}).ok();
  Relation facts = FactsRelation();
  auto joined = HashJoin(facts, cities, "subject", "name");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 6u);  // Lonely matches nothing
  EXPECT_EQ(joined->At(0, "state").ToString(), "Wisconsin");
}

TEST(RelationTest, JoinPrefixesCollidingColumns) {
  Relation left({"id", "x"});
  left.Append({Value::Int(1), Value::Str("l")}).ok();
  Relation right({"id", "x"});
  right.Append({Value::Int(1), Value::Str("r")}).ok();
  auto joined = HashJoin(left, right, "id", "id");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->columns(),
            (std::vector<std::string>{"id", "x", "r_id", "r_x"}));
}

TEST(RelationTest, AggregateFunctions) {
  Relation rel = FactsRelation();
  auto by_subject = Aggregate(
      rel, {"subject"},
      {AggSpec{AggFn::kCount, "", "n"},
       AggSpec{AggFn::kAvg, "value", "avg"},
       AggSpec{AggFn::kMax, "value", "max"}});
  ASSERT_TRUE(by_subject.ok());
  ASSERT_EQ(by_subject->size(), 2u);  // deterministic group order
  EXPECT_EQ(by_subject->At(0, "subject").ToString(), "Madison");
  EXPECT_EQ(by_subject->At(0, "n").as_int(), 3);
  EXPECT_NEAR(by_subject->At(0, "avg").as_double(),
              (34 + 71 + 233209) / 3.0, 0.01);
}

TEST(RelationTest, GlobalAggregateNoGroups) {
  Relation rel = FactsRelation();
  auto total = Aggregate(rel, {}, {AggSpec{AggFn::kCount, "", "n"}});
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(total->size(), 1u);
  EXPECT_EQ(total->At(0, "n").as_int(), 6);
}

TEST(RelationTest, AggregateSkipsNulls) {
  Relation rel({"g", "v"});
  rel.Append({Value::Str("a"), Value::Int(10)}).ok();
  rel.Append({Value::Str("a"), Value::Null()}).ok();
  auto agg = Aggregate(rel, {"g"},
                       {AggSpec{AggFn::kAvg, "v", "avg"},
                        AggSpec{AggFn::kCount, "v", "n"}});
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->At(0, "avg").as_double(), 10.0);
  EXPECT_EQ(agg->At(0, "n").as_int(), 1);
}

TEST(RelationTest, OrderLimitDistinct) {
  Relation rel = FactsRelation();
  auto ordered = OrderBy(rel, "value", /*descending=*/false);
  ASSERT_TRUE(ordered.ok());
  // String ordering of values; just check stability and row count.
  EXPECT_EQ(ordered->size(), 6u);
  Relation limited = Limit(*ordered, 2);
  EXPECT_EQ(limited.size(), 2u);
  Relation dup({"x"});
  dup.Append({Value::Int(1)}).ok();
  dup.Append({Value::Int(1)}).ok();
  dup.Append({Value::Int(2)}).ok();
  EXPECT_EQ(Distinct(dup).size(), 2u);
}

TEST(RelationTest, ToStringRenders) {
  Relation rel = FactsRelation();
  std::string s = rel.ToString(2);
  EXPECT_NE(s.find("subject"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(KeywordIndexTest, Bm25FindsRelevantDoc) {
  corpus::CorpusOptions options;
  options.num_cities = 20;
  options.num_people = 20;
  options.num_companies = 5;
  options.seed = 31;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);
  KeywordIndex index;
  for (const auto& d : docs.docs) index.AddDocument(d);
  index.Finalize();
  auto hits = index.Search("average temperature Madison", 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].title, "Madison");
  EXPECT_GT(index.VocabularySize(), 100u);
}

TEST(KeywordIndexTest, UnknownTermsNoHits) {
  KeywordIndex index;
  text::Document d;
  d.id = 1;
  d.title = "T";
  d.text = "hello world";
  index.AddDocument(d);
  index.Finalize();
  EXPECT_TRUE(index.Search("zzzqqq", 5).empty());
  EXPECT_EQ(index.Search("hello", 5).size(), 1u);
}

TEST(BrowseTest, ProfileAssemblesBeliefs) {
  ie::FactSet facts;
  auto add = [&](const char* s, const char* a, const char* v, double c) {
    ie::ExtractedFact f;
    f.subject = s;
    f.attribute = a;
    f.value = v;
    f.confidence = c;
    facts.Add(std::move(f));
  };
  add("Madison", "population", "233,209", 0.95);
  add("Madison", "population", "233,209", 0.85);
  add("Madison", "mayor", "David Smith", 0.9);
  add("Madison", "temp_01", "20", 0.9);
  add("Madison", "temp_01", "90", 0.4);  // competing value
  add("Oakfield", "population", "5,000", 0.9);
  auto beliefs = uncertainty::BuildBeliefs(facts);

  auto profile = BuildProfile(beliefs, "Madison");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->attributes.size(), 3u);
  // Sorted by attribute: mayor, population, temp_01.
  EXPECT_EQ(profile->attributes[0].attribute, "mayor");
  EXPECT_EQ(profile->attributes[1].value, "233,209");
  EXPECT_EQ(profile->attributes[2].value, "20");
  ASSERT_EQ(profile->attributes[2].alternatives.size(), 1u);
  EXPECT_EQ(profile->attributes[2].alternatives[0], "90");
  EXPECT_EQ(profile->related, (std::vector<std::string>{"David Smith"}));

  std::string card = RenderProfile(*profile);
  EXPECT_NE(card.find("== Madison =="), std::string::npos);
  EXPECT_NE(card.find("also seen: 90"), std::string::npos);
  EXPECT_NE(card.find("see also: David Smith"), std::string::npos);

  EXPECT_FALSE(BuildProfile(beliefs, "Nowhere").ok());
}

TEST(BrowseTest, ReferencedByInEdges) {
  ie::FactSet facts;
  ie::ExtractedFact f;
  f.subject = "Madison";
  f.attribute = "mayor";
  f.value = "David Smith";
  f.confidence = 0.9;
  facts.Add(std::move(f));
  ie::ExtractedFact g;
  g.subject = "Anna Lee";
  g.attribute = "residence";
  g.value = "Madison";
  g.confidence = 0.9;
  facts.Add(std::move(g));
  auto beliefs = uncertainty::BuildBeliefs(facts);
  auto who = ReferencedBy(beliefs, "David Smith");
  ASSERT_EQ(who.size(), 1u);
  EXPECT_EQ(who[0].first, "Madison");
  EXPECT_EQ(who[0].second, "mayor");
  auto into_madison = ReferencedBy(beliefs, "Madison");
  ASSERT_EQ(into_madison.size(), 1u);
  EXPECT_EQ(into_madison[0].first, "Anna Lee");
}

TEST(SnippetTest, PicksSentenceWithQueryTerms) {
  text::Document doc;
  doc.id = 1;
  doc.title = "Madison";
  doc.text =
      "'''Madison''' is a city in [[Wisconsin]].\n"
      "The average temperature in January is 20 degrees.\n"
      "It sits at an elevation of 900 feet.\n";
  std::string snippet = MakeSnippet(doc, "temperature january");
  EXPECT_NE(snippet.find("average temperature in January"),
            std::string::npos);
  EXPECT_EQ(snippet.find("[["), std::string::npos);
  // No match: falls back to opening text.
  std::string fallback = MakeSnippet(doc, "zebra");
  EXPECT_NE(fallback.find("Madison is a city"), std::string::npos);
  // Truncation.
  std::string tiny = MakeSnippet(doc, "temperature", 20);
  EXPECT_LE(tiny.size(), 20u);
  EXPECT_TRUE(tiny.size() < 4 ||
              tiny.substr(tiny.size() - 3) == "...");
}

TEST(StandingQueryTest, AlertsOnChangeAndThreshold) {
  StandingQueryRegistry registry;
  StandingQueryRegistry::Spec spec;
  spec.name = "madison_watch";
  spec.query.source_view = "facts";
  spec.query.where = {
      Condition{"subject", CompareOp::kEq, Value::Str("Madison")}};
  spec.query.aggregates = {AggSpec{AggFn::kCount, "", "n"}};
  spec.threshold_column = "n";
  spec.threshold = 3;
  spec.threshold_op = CompareOp::kGt;
  ASSERT_TRUE(registry.Add(spec).ok());
  EXPECT_FALSE(registry.Add(spec).ok());  // duplicate name
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"madison_watch"}));

  Relation facts = FactsRelation();
  // First evaluation: "first_result" alert, threshold (3 rows) not yet
  // crossed.
  auto alerts = registry.Evaluate("facts", facts);
  ASSERT_TRUE(alerts.ok());
  ASSERT_EQ(alerts->size(), 1u);
  EXPECT_EQ((*alerts)[0].kind, "first_result");

  // Unchanged data: silence.
  alerts = registry.Evaluate("facts", facts);
  ASSERT_TRUE(alerts.ok());
  EXPECT_TRUE(alerts->empty());

  // A new Madison fact: change alert AND threshold alert (count 4 > 3).
  facts
      .Append({Value::Str("Madison"), Value::Str("founded"),
               Value::Str("1846")})
      .ok();
  alerts = registry.Evaluate("facts", facts);
  ASSERT_TRUE(alerts.ok());
  ASSERT_EQ(alerts->size(), 2u);
  EXPECT_EQ((*alerts)[0].kind, "changed");
  EXPECT_EQ((*alerts)[1].kind, "threshold");
  EXPECT_NE((*alerts)[1].message.find("crosses threshold"),
            std::string::npos);

  // Different view name: not evaluated.
  alerts = registry.Evaluate("other_view", facts);
  ASSERT_TRUE(alerts.ok());
  EXPECT_TRUE(alerts->empty());

  ASSERT_TRUE(registry.Remove("madison_watch").ok());
  EXPECT_FALSE(registry.Remove("madison_watch").ok());
}

TEST(HybridSearchTest, StructuredPredicateFiltersRanking) {
  corpus::CorpusOptions options;
  options.num_cities = 30;
  options.num_people = 10;
  options.num_companies = 5;
  options.seed = 61;
  options.infobox_dropout = 0;
  options.attribute_missing = 0;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);
  KeywordIndex index;
  for (const auto& d : docs.docs) index.AddDocument(d);
  index.Finalize();
  // Facts relation with doc column, as the extraction views produce.
  Relation facts({"doc", "subject", "attribute", "value"});
  for (const corpus::FactTruth& f : truth.facts) {
    facts
        .Append({Value::Int(static_cast<int64_t>(f.doc)),
                 Value::Str(""), Value::Str(f.attribute),
                 Value::Str(f.value)})
        .ok();
  }
  HybridQuery hq;
  hq.keywords = "city United States";
  hq.structured = {
      Condition{"attribute", CompareOp::kEq, Value::Str("population")},
      Condition{"value", CompareOp::kGt, Value::Int(500000)}};
  auto hits = HybridSearch(index, facts, hq, 10);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  // Every hit must be a city with population > 500k in ground truth.
  for (const SearchHit& hit : *hits) {
    const corpus::CityRecord* city = truth.FindCity(hit.title);
    ASSERT_NE(city, nullptr) << hit.title;
    EXPECT_GT(city->population, 500000);
  }
  // Plain keyword search would return big and small cities alike.
  auto plain = index.Search(hq.keywords, 10);
  bool plain_has_small = false;
  for (const SearchHit& hit : plain) {
    const corpus::CityRecord* city = truth.FindCity(hit.title);
    if (city != nullptr && city->population <= 500000) {
      plain_has_small = true;
    }
  }
  EXPECT_TRUE(plain_has_small);
}

TEST(HybridSearchTest, RequiresDocColumn) {
  KeywordIndex index;
  Relation facts({"subject", "value"});
  HybridQuery hq;
  hq.keywords = "x";
  EXPECT_FALSE(HybridSearch(index, facts, hq, 5).ok());
}

TEST(HybridSearchTest, DegradableLadderWalksEveryRung) {
  corpus::CorpusOptions options;
  options.num_cities = 20;
  options.num_people = 5;
  options.num_companies = 3;
  options.seed = 67;
  options.infobox_dropout = 0;
  options.attribute_missing = 0;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);
  KeywordIndex index;
  for (const auto& d : docs.docs) index.AddDocument(d);
  index.Finalize();
  Relation facts({"doc", "attribute", "value"});
  for (const corpus::FactTruth& f : truth.facts) {
    facts
        .Append({Value::Int(static_cast<int64_t>(f.doc)),
                 Value::Str(f.attribute), Value::Str(f.value)})
        .ok();
  }
  HybridQuery hq;
  hq.keywords = "city United States";
  hq.structured = {
      Condition{"attribute", CompareOp::kEq, Value::Str("population")},
      Condition{"value", CompareOp::kGt, Value::Int(500000)}};

  // Rung 1: both sides healthy — the full hybrid answer, not degraded,
  // identical to the all-or-nothing HybridSearch.
  auto full = HybridSearchDegradable(index, facts, hq, 10);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->mode, HybridMode::kFull);
  EXPECT_FALSE(full->degraded);
  EXPECT_TRUE(full->reason.empty());
  auto exact = HybridSearch(index, facts, hq, 10);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(full->hits.size(), exact->size());
  for (size_t i = 0; i < exact->size(); ++i) {
    EXPECT_EQ(full->hits[i].doc, (*exact)[i].doc);
  }
  ASSERT_FALSE(full->hits.empty());

  // Rung 2: structured side unavailable (health hint) — BM25 ranking
  // alone, loudly marked with the caller's reason.
  HybridFallback no_structured;
  no_structured.structured_available = false;
  no_structured.structured_reason = "query.structured critical: breaker open";
  auto kw = HybridSearchDegradable(index, facts, hq, 10, no_structured);
  ASSERT_TRUE(kw.ok()) << kw.status().ToString();
  EXPECT_EQ(kw->mode, HybridMode::kKeywordOnly);
  EXPECT_TRUE(kw->degraded);
  EXPECT_EQ(kw->reason, "query.structured critical: breaker open");
  EXPECT_FALSE(kw->hits.empty());
  EXPECT_LE(kw->hits.size(), 10u);

  // Rung 3: keyword side unavailable — predicate matches without
  // relevance ranking; every hit still satisfies the conditions.
  HybridFallback no_keyword;
  no_keyword.keyword_available = false;
  no_keyword.keyword_reason = "query.keyword critical: index rebuilding";
  auto structured = HybridSearchDegradable(index, facts, hq, 10, no_keyword);
  ASSERT_TRUE(structured.ok()) << structured.status().ToString();
  EXPECT_EQ(structured->mode, HybridMode::kStructuredOnly);
  EXPECT_TRUE(structured->degraded);
  EXPECT_EQ(structured->reason, "query.keyword critical: index rebuilding");
  ASSERT_FALSE(structured->hits.empty());
  std::map<text::DocId, std::string> title_by_id;
  for (const auto& d : docs.docs) title_by_id[d.id] = d.title;
  for (const SearchHit& hit : structured->hits) {
    EXPECT_EQ(hit.score, 0.0);  // no ranking signal was applied
    ASSERT_NE(title_by_id.count(hit.doc), 0u);
    const corpus::CityRecord* city = truth.FindCity(title_by_id[hit.doc]);
    ASSERT_NE(city, nullptr) << title_by_id[hit.doc];
    EXPECT_GT(city->population, 500000);
  }

  // Bottom of the ladder: both sides down — refuse loudly with both
  // reasons; never fabricate an answer.
  HybridFallback neither;
  neither.structured_available = false;
  neither.structured_reason = "structured down";
  neither.keyword_available = false;
  neither.keyword_reason = "keyword down";
  auto refused = HybridSearchDegradable(index, facts, hq, 10, neither);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("structured down"),
            std::string::npos)
      << refused.status().ToString();
  EXPECT_NE(refused.status().message().find("keyword down"),
            std::string::npos)
      << refused.status().ToString();
}

TEST(HybridSearchTest, DegradableDoesNotAbsorbCallerMistakesOrDeadlines) {
  KeywordIndex index;
  index.Finalize();
  HybridQuery hq;
  hq.keywords = "x";

  // A caller mistake (facts without a doc column) is kInvalidArgument
  // and must propagate, not silently degrade to keyword-only.
  Relation bad_facts({"subject", "value"});
  auto r = HybridSearchDegradable(index, bad_facts, hq, 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Interrupt statuses propagate too: a blown deadline is the caller's
  // outcome, not an infrastructure failure to route around.
  Relation facts({"doc", "attribute", "value"});
  facts.Append({Value::Int(0), Value::Str("a"), Value::Str("v")}).ok();
  Interrupt intr;
  intr.deadline = Deadline::AfterMillis(0);
  auto expired =
      HybridSearchDegradable(index, facts, hq, 5, HybridFallback{}, intr);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(StructuredQueryTest, ExecuteFilterAggregate) {
  StructuredQuery q;
  q.source_view = "facts";
  q.where = {Condition{"subject", CompareOp::kEq, Value::Str("Madison")},
             Condition{"attribute", CompareOp::kLike,
                       Value::Str("temp_%")}};
  q.aggregates = {AggSpec{AggFn::kAvg, "value", "result"}};
  auto rel = ExecuteStructuredQuery(q, FactsRelation());
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_NEAR(rel->At(0, "result").as_double(), (34 + 71) / 2.0, 1e-9);
}

TEST(StructuredQueryTest, RendersSqlAndForm) {
  StructuredQuery q;
  q.source_view = "facts";
  q.where = {Condition{"subject", CompareOp::kEq, Value::Str("Madison")}};
  q.aggregates = {AggSpec{AggFn::kAvg, "value", "result"}};
  std::string sql = q.ToSql();
  EXPECT_NE(sql.find("SELECT AVG(value) FROM facts"), std::string::npos);
  EXPECT_NE(sql.find("subject = \"Madison\""), std::string::npos);
  std::string form = q.ToFormText();
  EXPECT_NE(form.find("AVG of value"), std::string::npos);
}

TEST(TranslatorTest, MotivatingQueryTranslates) {
  KeywordTranslator translator;
  translator.BuildVocabulary(FactsRelation());
  EXPECT_EQ(translator.NumSubjects(), 2u);
  auto forms =
      translator.Translate("average march temperature madison");
  ASSERT_FALSE(forms.empty());
  const StructuredQuery& q = forms[0].query;
  ASSERT_FALSE(q.aggregates.empty());
  EXPECT_EQ(q.aggregates[0].fn, AggFn::kAvg);
  bool subject_cond = false, month_cond = false;
  for (const Condition& c : q.where) {
    if (c.column == "subject" && c.literal.ToString() == "Madison") {
      subject_cond = true;
    }
    if (c.column == "attribute" && c.literal.ToString() == "temp_03") {
      month_cond = true;
    }
  }
  EXPECT_TRUE(subject_cond);
  EXPECT_TRUE(month_cond);
}

TEST(TranslatorTest, MonthRange) {
  KeywordTranslator translator;
  translator.BuildVocabulary(FactsRelation());
  auto forms = translator.Translate(
      "average march september temperature madison");
  ASSERT_FALSE(forms.empty());
  const StructuredQuery& q = forms[0].query;
  bool ge = false, le = false;
  for (const Condition& c : q.where) {
    if (c.op == CompareOp::kGe && c.literal.ToString() == "temp_03") {
      ge = true;
    }
    if (c.op == CompareOp::kLe && c.literal.ToString() == "temp_09") {
      le = true;
    }
  }
  EXPECT_TRUE(ge);
  EXPECT_TRUE(le);
}

TEST(TranslatorTest, NoSubjectGroupsBySubject) {
  KeywordTranslator translator;
  translator.BuildVocabulary(FactsRelation());
  auto forms = translator.Translate("highest population");
  ASSERT_FALSE(forms.empty());
  bool found_grouped = false;
  for (const QueryForm& f : forms) {
    if (!f.query.group_by.empty() && !f.query.aggregates.empty() &&
        f.query.aggregates[0].fn == AggFn::kMax) {
      found_grouped = true;
    }
  }
  EXPECT_TRUE(found_grouped);
}

TEST(TranslatorTest, RunTranslatedQueryEndToEnd) {
  KeywordTranslator translator;
  translator.BuildVocabulary(FactsRelation());
  auto forms = translator.Translate("population of oakfield");
  ASSERT_FALSE(forms.empty());
  auto rel = ExecuteStructuredQuery(forms[0].query, FactsRelation());
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->At(0, "value").ToString(), "5,000");
}

TEST(TranslatorTest, GibberishYieldsNothingUseful) {
  KeywordTranslator translator;
  translator.BuildVocabulary(FactsRelation());
  auto forms = translator.Translate("zzz qqq www");
  EXPECT_TRUE(forms.empty());
}

}  // namespace
}  // namespace structura::query
