// Storage-integrity sweep: flips (or zeroes) single bytes across every
// offset of the on-disk WAL and segment files and asserts the salvage
// contract everywhere: no crash, no error from recovery, no wrong
// reads, and committed transactions whose frames lie outside the
// damaged region survive. Also exercises the failpoint-driven
// corruption sites (wal.frame, checkpoint.write, segment.record,
// snapshot.delta) end-to-end through recovery, Scrub, and
// System::StatusReport.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/recordio.h"
#include "core/system.h"
#include "rdbms/database.h"
#include "rdbms/value.h"
#include "rdbms/wal.h"
#include "storage/segment_store.h"
#include "storage/snapshot_store.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::LogRecord;
using rdbms::Row;
using rdbms::RowId;
using rdbms::TableSchema;
using rdbms::TxnId;
using rdbms::Value;
using rdbms::ValueType;
using rdbms::WriteAheadLog;
using storage::SegmentStore;
using storage::SnapshotStore;
using FpSpec = FailpointRegistry::Spec;

std::string TempDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("structura_integrity_" + tag))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TableSchema KvSchema() {
  TableSchema schema;
  schema.table_name = "kv";
  schema.columns = {{"name", ValueType::kString},
                    {"val", ValueType::kInt}};
  return schema;
}

// ------------------------------------------------- WAL byte-flip sweep

/// Writes `n` committed single-insert transactions (3 records each).
void WriteCommittedTxns(const std::string& path, int n) {
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  for (int t = 1; t <= n; ++t) {
    LogRecord begin;
    begin.type = LogRecord::Type::kBegin;
    begin.txn = static_cast<TxnId>(t);
    ASSERT_TRUE((*wal)->Append(begin).ok());
    LogRecord insert;
    insert.type = LogRecord::Type::kInsert;
    insert.txn = static_cast<TxnId>(t);
    insert.table = "kv";
    insert.row_id = static_cast<RowId>(t);
    insert.after = {Value::Str("name" + std::to_string(t)),
                    Value::Int(t)};
    ASSERT_TRUE((*wal)->Append(insert).ok());
    LogRecord commit;
    commit.type = LogRecord::Type::kCommit;
    commit.txn = static_cast<TxnId>(t);
    ASSERT_TRUE((*wal)->Append(commit).ok());
  }
}

/// True when `sub` is an order-preserving subsequence of `full`,
/// comparing (txn, type, row_id).
bool IsSubsequence(const std::vector<LogRecord>& sub,
                   const std::vector<LogRecord>& full) {
  size_t j = 0;
  for (const LogRecord& r : sub) {
    while (j < full.size() &&
           !(full[j].txn == r.txn && full[j].type == r.type &&
             full[j].row_id == r.row_id)) {
      ++j;
    }
    if (j == full.size()) return false;
    ++j;
  }
  return true;
}

TEST(IntegritySweepTest, WalSingleByteFlipLosesExactlyOneFrame) {
  std::string dir = TempDir("wal_flip");
  std::string path = dir + "/wal.log";
  WriteCommittedTxns(path, 6);  // 18 records
  std::string pristine = ReadFile(path);
  auto baseline = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->records.size(), 18u);
  ASSERT_TRUE(baseline->clean());

  std::string scratch = dir + "/scratch.log";
  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ 0xFF);
    WriteFile(scratch, damaged);
    auto result = WriteAheadLog::ReadAll(scratch);
    ASSERT_TRUE(result.ok()) << "flip at offset " << off;
    // CRC32C catches every single-byte change, so exactly the frame
    // containing the flipped byte is lost — never more, never a wrong
    // decode.
    EXPECT_EQ(result->records.size(), 17u) << "flip at offset " << off;
    EXPECT_FALSE(result->clean()) << "flip at offset " << off;
    EXPECT_TRUE(IsSubsequence(result->records, baseline->records))
        << "flip at offset " << off;
  }
}

TEST(IntegritySweepTest, WalZeroedRangeSpanningFrameBoundary) {
  std::string dir = TempDir("wal_zero_span");
  std::string path = dir + "/wal.log";
  WriteCommittedTxns(path, 6);
  std::string pristine = ReadFile(path);

  // Locate frame boundaries with the framing reader itself.
  std::vector<uint64_t> offsets;
  FrameReader reader(pristine);
  while (std::optional<FrameReader::Frame> f = reader.Next()) {
    offsets.push_back(f->offset);
  }
  ASSERT_EQ(offsets.size(), 18u);

  // Zero a range straddling the boundary between frames 7 and 8: both
  // frames are damaged, everything else is salvaged.
  uint64_t boundary = offsets[8];
  for (uint64_t i = boundary - 3; i < boundary + 3; ++i) {
    pristine[static_cast<size_t>(i)] = '\0';
  }
  WriteFile(path, pristine);
  auto result = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 16u);
  EXPECT_GE(result->frames.damaged_regions, 1u);
  EXPECT_GE(result->frames.frames_salvaged, 1u);
}

// -------------------------------------------- database byte-flip sweep

TEST(IntegritySweepTest, DatabaseSurvivesEveryWalByteFlip) {
  std::string seed_dir = TempDir("db_flip_seed");
  {
    auto db = Database::Open({seed_dir});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
    for (int t = 1; t <= 4; ++t) {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(txn->Insert("kv", {Value::Str("k" + std::to_string(t)),
                                     Value::Int(t)})
                      .ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  std::string pristine = ReadFile(seed_dir + "/wal.log");
  std::string trial_dir = TempDir("db_flip_trial");

  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ 0xFF);
    WriteFile(trial_dir + "/wal.log", damaged);
    auto db = Database::Open({trial_dir});
    // Salvage recovery never fails on single-byte damage...
    ASSERT_TRUE(db.ok()) << "flip at offset " << off << ": "
                         << db.status().ToString();
    EXPECT_TRUE((*db)->recovery_report().AnyDamage())
        << "flip at offset " << off;
    rdbms::Table* table = (*db)->GetTable("kv");
    if (table == nullptr) {
      // ...but a flip inside the CREATE TABLE frame legitimately loses
      // the table (its DDL is gone); recovery still succeeds.
      continue;
    }
    // Exactly one of the four transactions owns the damaged frame; the
    // other three must survive with correct contents — no wrong reads.
    auto txn = (*db)->Begin();
    auto rows = txn->Scan("kv");
    ASSERT_TRUE(rows.ok()) << "flip at offset " << off;
    EXPECT_EQ(rows->size(), 3u) << "flip at offset " << off;
    for (const auto& [rid, row] : *rows) {
      ASSERT_EQ(row.size(), 2u);
      int64_t val = row[1].as_int();
      EXPECT_EQ(row[0].ToString(), "k" + std::to_string(val))
          << "flip at offset " << off;
      EXPECT_GE(val, 1);
      EXPECT_LE(val, 4);
    }
    ASSERT_TRUE(txn->Abort().ok());
  }
}

// ------------------------------------------------ segment store sweep

TEST(IntegritySweepTest, SegmentStoreSurvivesEverySingleByteFlip) {
  std::string seed_dir = TempDir("seg_flip_seed");
  std::vector<std::string> payloads;
  {
    auto store = SegmentStore::Open(seed_dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 8; ++i) {
      payloads.push_back("segment record " + std::to_string(i) +
                         std::string(10 + i, 'x'));
      ASSERT_TRUE((*store)->Append(payloads.back()).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  std::string seg_path = seed_dir + "/seg-000000.log";
  std::string pristine = ReadFile(seg_path);
  std::string trial_dir = TempDir("seg_flip_trial");

  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ 0xFF);
    WriteFile(trial_dir + "/seg-000000.log", damaged);
    auto store = SegmentStore::Open(trial_dir);
    ASSERT_TRUE(store.ok()) << "flip at offset " << off;
    EXPECT_EQ((*store)->NumRecords(), 7u) << "flip at offset " << off;
    EXPECT_TRUE((*store)->recovery_report().AnyDamage())
        << "flip at offset " << off;
    // Surviving records read back exactly; none is silently wrong.
    std::vector<std::string> read_back;
    for (uint64_t i = 0; i < (*store)->NumRecords(); ++i) {
      auto rec = (*store)->Read(i);
      ASSERT_TRUE(rec.ok()) << "flip at offset " << off << " record " << i;
      read_back.push_back(std::move(*rec));
    }
    size_t j = 0;
    for (const std::string& rec : read_back) {
      while (j < payloads.size() && payloads[j] != rec) ++j;
      ASSERT_LT(j, payloads.size())
          << "flip at offset " << off << " produced unknown record";
      ++j;
    }
  }
}

TEST(IntegritySweepTest, SegmentMidFileDamageQuarantinesSegment) {
  std::string dir = TempDir("seg_quarantine");
  {
    auto store = SegmentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*store)->Append("payload " + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  std::string path = dir + "/seg-000000.log";
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  WriteFile(path, bytes);

  auto store = SegmentStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->recovery_report().quarantined_segments, 1u);
  EXPECT_GE((*store)->recovery_report().salvaged_records, 1u);
  IntegrityCounters scrub;
  ASSERT_TRUE((*store)->Scrub(&scrub).ok());
  EXPECT_EQ(scrub.quarantined_segments, 1u);
  EXPECT_GE(scrub.corrupt_records, 1u);
  EXPECT_EQ(scrub.records_verified, 4u);
}

// --------------------------------------- failpoint-driven corruption

TEST(IntegritySweepTest, InjectedWalFrameCorruptionDropsOneTxn) {
  std::string dir = TempDir("fp_wal_frame");
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
    {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(txn->Insert("kv", {Value::Str("k1"), Value::Int(1)}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    // Flip a byte of the next framed WAL write: the kBegin of txn 2
    // (hits count from arming).
    ScopedFailpoint fp("wal.frame", FpSpec::FlipByteAt(1, 9));
    {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(txn->Insert("kv", {Value::Str("k2"), Value::Int(2)}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok());
  const IntegrityCounters& report = (*db)->recovery_report();
  EXPECT_GE(report.corrupt_records, 1u);
  EXPECT_GE(report.salvaged_records, 1u);
  EXPECT_EQ(report.lost_txns, 1u);
  auto txn = (*db)->Begin();
  auto rows = txn->Scan("kv");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // txn 2 dropped atomically
  EXPECT_EQ((*rows)[0].second[0].ToString(), "k1");
}

TEST(IntegritySweepTest, CorruptCheckpointFallsBackToWalReplay) {
  std::string dir = TempDir("fp_checkpoint");
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(KvSchema()).ok());
    {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(txn->Insert("kv", {Value::Str("k1"), Value::Int(1)}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    {
      // Silently damage the checkpoint image as it is written.
      ScopedFailpoint fp("checkpoint.write", FpSpec::FlipByteAt(1, 12));
      ASSERT_TRUE((*db)->Checkpoint().ok());
    }
    // Post-checkpoint work lands in the (now fresh) WAL.
    TableSchema t2;
    t2.table_name = "post";
    t2.columns = {{"name", ValueType::kString}, {"val", ValueType::kInt}};
    ASSERT_TRUE((*db)->CreateTable(t2).ok());
    {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(
          txn->Insert("post", {Value::Str("p1"), Value::Int(7)}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->recovery_report().checkpoints_rejected, 1u);
  // The corrupt checkpoint was rejected, not half-loaded; recovery fell
  // back to replaying the WAL, which holds everything after the
  // checkpoint.
  ASSERT_NE((*db)->GetTable("post"), nullptr);
  auto txn = (*db)->Begin();
  auto rows = txn->Scan("post");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].second[0].ToString(), "p1");

  IntegrityCounters scrub;
  ASSERT_TRUE((*db)->Scrub(&scrub).ok());
  EXPECT_GE(scrub.checkpoints_rejected, 1u);
}

TEST(IntegritySweepTest, SnapshotChecksumCatchesCorruptedDelta) {
  SnapshotStore store;
  std::string v0 = "line a\nline b\nline c\n";
  std::string v1 = "line a\nline B\nline c\nline d\n";
  ASSERT_TRUE(store.Append(7, v0).ok());
  {
    ScopedFailpoint fp("snapshot.delta", FpSpec::FlipByteAt(1, 2));
    ASSERT_TRUE(store.Append(7, v1).ok());
  }
  EXPECT_EQ(*store.Get(7, 0), v0);
  // Reconstruction of the damaged version is refused, never wrong text.
  auto damaged = store.Get(7, 1);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kCorruption);

  IntegrityCounters scrub;
  ASSERT_TRUE(store.Scrub(&scrub).ok());
  EXPECT_EQ(scrub.records_verified, 1u);
  EXPECT_EQ(scrub.corrupt_records, 1u);
}

// ---------------------------------------------------- system-level scrub

TEST(IntegritySweepTest, SystemScrubStorageSurfacesCountersInStatus) {
  std::string workspace = TempDir("system_scrub");
  auto sys = core::System::Create({workspace});
  ASSERT_TRUE(sys.ok());
  text::DocumentCollection docs;
  text::Document doc;
  doc.id = 1;
  doc.title = "Page";
  doc.text = "Madison has a population of 233,209.";
  docs.docs.push_back(doc);
  ASSERT_TRUE((*sys)->IngestCrawl(docs).ok());
  ASSERT_TRUE((*sys)->database()->CreateTable(KvSchema()).ok());
  {
    auto txn = (*sys)->database()->Begin();
    ASSERT_TRUE(txn->Insert("kv", {Value::Str("k"), Value::Int(1)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // Clean pass first: everything verifies, nothing is damaged.
  auto clean = (*sys)->ScrubStorage();
  ASSERT_TRUE(clean.ok());
  EXPECT_GT(clean->records_verified, 0u);
  EXPECT_FALSE(clean->AnyDamage());

  // Inject bit-rot into the intermediate segment log, then scrub again.
  ASSERT_NE((*sys)->intermediate_store(), nullptr);
  {
    ScopedFailpoint fp("segment.record", FpSpec::FlipByteAt(1, 23));
    ASSERT_TRUE((*sys)->intermediate_store()->Append("belief\trecord").ok());
  }
  auto scrub = (*sys)->ScrubStorage();
  ASSERT_TRUE(scrub.ok());
  EXPECT_GE(scrub->corrupt_records, 1u);
  EXPECT_TRUE(scrub->AnyDamage());

  std::string report = (*sys)->StatusReport();
  EXPECT_NE(report.find("integrity:"), std::string::npos) << report;
  EXPECT_NE(report.find("last scrub"), std::string::npos) << report;
  EXPECT_NE(report.find("corrupt_records=1"), std::string::npos) << report;
}

}  // namespace
}  // namespace structura
