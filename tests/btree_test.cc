#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rdbms/btree.h"

namespace structura::rdbms {
namespace {

TEST(BTreeTest, InsertAndLookup) {
  BTreeIndex index;
  index.Insert(Value::Int(5), 50);
  index.Insert(Value::Int(3), 30);
  index.Insert(Value::Int(7), 70);
  EXPECT_EQ(index.Lookup(Value::Int(5)),
            (std::vector<RowId>{50}));
  EXPECT_TRUE(index.Lookup(Value::Int(4)).empty());
  EXPECT_EQ(index.size(), 3u);
}

TEST(BTreeTest, DuplicateKeys) {
  BTreeIndex index;
  for (RowId r = 0; r < 10; ++r) index.Insert(Value::Str("dup"), r);
  std::vector<RowId> rows = index.Lookup(Value::Str("dup"));
  EXPECT_EQ(rows.size(), 10u);
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTreeIndex index;
  for (int i = 0; i < 1000; ++i) {
    index.Insert(Value::Int(i), static_cast<RowId>(i));
  }
  EXPECT_GT(index.height(), 1u);
  EXPECT_TRUE(index.CheckInvariants());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(index.Lookup(Value::Int(i)).size(), 1u) << i;
  }
}

TEST(BTreeTest, RangeScanOrdered) {
  BTreeIndex index;
  for (int i = 99; i >= 0; --i) {
    index.Insert(Value::Int(i), static_cast<RowId>(i));
  }
  Value lo = Value::Int(10), hi = Value::Int(20);
  std::vector<RowId> rows = index.Range(&lo, &hi);
  ASSERT_EQ(rows.size(), 11u);
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i], 10 + i);
}

TEST(BTreeTest, OpenEndedRanges) {
  BTreeIndex index;
  for (int i = 0; i < 50; ++i) {
    index.Insert(Value::Int(i), static_cast<RowId>(i));
  }
  Value lo = Value::Int(45);
  EXPECT_EQ(index.Range(&lo, nullptr).size(), 5u);
  Value hi = Value::Int(4);
  EXPECT_EQ(index.Range(nullptr, &hi).size(), 5u);
  EXPECT_EQ(index.Range(nullptr, nullptr).size(), 50u);
}

TEST(BTreeTest, EraseRemovesOnePair) {
  BTreeIndex index;
  index.Insert(Value::Int(1), 10);
  index.Insert(Value::Int(1), 11);
  EXPECT_TRUE(index.Erase(Value::Int(1), 10));
  EXPECT_EQ(index.Lookup(Value::Int(1)), (std::vector<RowId>{11}));
  EXPECT_FALSE(index.Erase(Value::Int(1), 10));  // already gone
  EXPECT_FALSE(index.Erase(Value::Int(9), 1));   // never existed
  EXPECT_EQ(index.size(), 1u);
}

TEST(BTreeTest, StringKeysLexicographic) {
  BTreeIndex index;
  index.Insert(Value::Str("temp_01"), 1);
  index.Insert(Value::Str("temp_05"), 5);
  index.Insert(Value::Str("temp_12"), 12);
  index.Insert(Value::Str("population"), 99);
  Value lo = Value::Str("temp_03"), hi = Value::Str("temp_09");
  EXPECT_EQ(index.Range(&lo, &hi), (std::vector<RowId>{5}));
}

// Property: after random interleaved inserts/erases, the tree agrees
// with a reference std::multimap and invariants hold.
class BTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzzTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  BTreeIndex index;
  std::multimap<int64_t, RowId> reference;
  for (int step = 0; step < 3000; ++step) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(200));
    if (rng.NextBool(0.7)) {
      RowId row = rng.Next() % 100000;
      index.Insert(Value::Int(key), row);
      reference.emplace(key, row);
    } else {
      auto it = reference.find(key);
      if (it != reference.end()) {
        EXPECT_TRUE(index.Erase(Value::Int(key), it->second));
        reference.erase(it);
      } else {
        // Absent key: erase of any row id must fail.
        EXPECT_FALSE(index.Erase(Value::Int(key), 424242));
      }
    }
  }
  EXPECT_EQ(index.size(), reference.size());
  EXPECT_TRUE(index.CheckInvariants());
  for (int64_t key = 0; key < 200; ++key) {
    std::vector<RowId> got = index.Lookup(Value::Int(key));
    std::vector<RowId> want;
    auto [lo, hi] = reference.equal_range(key);
    for (auto it = lo; it != hi; ++it) want.push_back(it->second);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzzTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace structura::rdbms
