#include <cmath>

#include <gtest/gtest.h>

#include "uncertainty/confidence.h"
#include "uncertainty/possible_worlds.h"

namespace structura::uncertainty {
namespace {

ie::FactSet MakeFacts(
    const std::vector<std::tuple<std::string, std::string, std::string,
                                 double>>& rows) {
  ie::FactSet set;
  for (const auto& [subject, attr, value, conf] : rows) {
    ie::ExtractedFact f;
    f.subject = subject;
    f.attribute = attr;
    f.value = value;
    f.confidence = conf;
    set.Add(std::move(f));
  }
  return set;
}

double TotalMass(const AttributeBelief& b) {
  double total = 0;
  for (const auto& alt : b.alternatives) total += alt.probability;
  return total;
}

TEST(CombineTest, NoisyOr) {
  EXPECT_DOUBLE_EQ(CombineIndependent({}), 0.0);
  EXPECT_DOUBLE_EQ(CombineIndependent({0.5}), 0.5);
  EXPECT_DOUBLE_EQ(CombineIndependent({0.5, 0.5}), 0.75);
  EXPECT_DOUBLE_EQ(CombineIndependent({1.0, 0.1}), 1.0);
  EXPECT_DOUBLE_EQ(CombineIndependent({-1, 2}), 1.0);  // clamped
}

TEST(BeliefsTest, AgreeingFactsReinforce) {
  auto facts = MakeFacts({{"Madison", "temp_01", "20", 0.9},
                          {"Madison", "temp_01", "20", 0.8}});
  auto beliefs = BuildBeliefs(facts);
  ASSERT_EQ(beliefs.size(), 1u);
  ASSERT_EQ(beliefs[0].alternatives.size(), 1u);
  EXPECT_NEAR(beliefs[0].alternatives[0].probability, 0.98, 1e-9);
  EXPECT_EQ(beliefs[0].alternatives[0].supporting_facts.size(), 2u);
}

TEST(BeliefsTest, ConflictingValuesShareMass) {
  auto facts = MakeFacts({{"Madison", "temp_01", "20", 0.9},
                          {"Madison", "temp_01", "90", 0.9}});
  auto beliefs = BuildBeliefs(facts);
  ASSERT_EQ(beliefs.size(), 1u);
  ASSERT_EQ(beliefs[0].alternatives.size(), 2u);
  EXPECT_NEAR(TotalMass(beliefs[0]), 1.0, 1e-9);
  EXPECT_NEAR(beliefs[0].alternatives[0].probability, 0.5, 1e-9);
}

TEST(BeliefsTest, GroupsBySubjectAndAttribute) {
  auto facts = MakeFacts({{"Madison", "temp_01", "20", 0.9},
                          {"Madison", "temp_02", "25", 0.9},
                          {"Oakfield", "temp_01", "30", 0.9}});
  auto beliefs = BuildBeliefs(facts);
  EXPECT_EQ(beliefs.size(), 3u);
}

TEST(BeliefsTest, TopPicksHighestProbability) {
  auto facts = MakeFacts({{"M", "a", "x", 0.9},
                          {"M", "a", "x", 0.9},
                          {"M", "a", "y", 0.3}});
  auto beliefs = BuildBeliefs(facts);
  ASSERT_EQ(beliefs.size(), 1u);
  EXPECT_EQ(beliefs[0].Top()->value, "x");
}

TEST(FeedbackTest, ConfirmBoostsAndRenormalizes) {
  auto facts = MakeFacts({{"M", "a", "x", 0.6}, {"M", "a", "y", 0.6}});
  auto beliefs = BuildBeliefs(facts);
  ConfirmValue(&beliefs[0], "y", 0.95);
  EXPECT_EQ(beliefs[0].Top()->value, "y");
  EXPECT_NEAR(beliefs[0].Top()->probability, 0.95, 1e-9);
  EXPECT_NEAR(TotalMass(beliefs[0]), 1.0, 1e-9);
}

TEST(FeedbackTest, ConfirmUnknownValueAddsIt) {
  auto facts = MakeFacts({{"M", "a", "x", 0.6}});
  auto beliefs = BuildBeliefs(facts);
  ConfirmValue(&beliefs[0], "write_in", 0.9);
  EXPECT_EQ(beliefs[0].Top()->value, "write_in");
}

TEST(FeedbackTest, RejectZerosAndRedistributes) {
  auto facts = MakeFacts({{"M", "a", "x", 0.8}, {"M", "a", "y", 0.4}});
  auto beliefs = BuildBeliefs(facts);
  double before = TotalMass(beliefs[0]);
  RejectValue(&beliefs[0], "x");
  for (const auto& alt : beliefs[0].alternatives) {
    if (alt.value == "x") EXPECT_DOUBLE_EQ(alt.probability, 0.0);
  }
  EXPECT_EQ(beliefs[0].Top()->value, "y");
  EXPECT_NEAR(TotalMass(beliefs[0]), before, 1e-9);
}

TEST(PossibleWorldsTest, SampleRespectsDistribution) {
  auto facts = MakeFacts({{"M", "a", "x", 0.7}});
  auto beliefs = BuildBeliefs(facts);
  Rng rng(5);
  size_t present = 0;
  const size_t n = 10000;
  for (size_t i = 0; i < n; ++i) {
    World w = SampleWorld(beliefs, rng);
    if (w[0].has_value()) {
      ++present;
      EXPECT_EQ(*w[0], "x");
    }
  }
  EXPECT_NEAR(static_cast<double>(present) / n, 0.7, 0.02);
}

TEST(PossibleWorldsTest, AggregateEstimateConverges) {
  // Two independent temps with certain values: AVG is deterministic.
  auto facts = MakeFacts({{"M", "t1", "10", 1.0}, {"M", "t2", "30", 1.0}});
  auto beliefs = BuildBeliefs(facts);
  auto estimate = EstimateAggregate(
      beliefs, 500, 42, [](const World& w) -> std::optional<double> {
        double sum = 0;
        int count = 0;
        for (const auto& v : w) {
          if (!v.has_value()) continue;
          sum += std::stod(*v);
          ++count;
        }
        if (count == 0) return std::nullopt;
        return sum / count;
      });
  EXPECT_NEAR(estimate.mean, 20.0, 1e-9);
  EXPECT_NEAR(estimate.stddev, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(estimate.p_empty, 0.0);
}

TEST(PossibleWorldsTest, UncertaintyWidensSpread) {
  auto facts = MakeFacts({{"M", "t", "0", 0.5}, {"M", "t", "100", 0.5}});
  auto beliefs = BuildBeliefs(facts);
  auto estimate = EstimateAggregate(
      beliefs, 2000, 7, [](const World& w) -> std::optional<double> {
        if (!w[0].has_value()) return std::nullopt;
        return std::stod(*w[0]);
      });
  EXPECT_NEAR(estimate.mean, 50.0, 5.0);
  EXPECT_GT(estimate.stddev, 40.0);
}

TEST(ExpectedNumericTest, WeightsByProbability) {
  auto facts = MakeFacts({{"M", "t", "10", 0.6}, {"M", "t", "20", 0.6}});
  auto beliefs = BuildBeliefs(facts);
  ExpectedValue ev = ExpectedNumeric(beliefs[0]);
  EXPECT_NEAR(ev.expectation, 15.0, 1e-9);  // symmetric masses
  EXPECT_NEAR(ev.p_present, 1.0, 1e-9);     // normalized to 1
}

TEST(ExpectedNumericTest, SkipsNonNumeric) {
  auto facts = MakeFacts({{"M", "mayor", "David Smith", 0.9}});
  auto beliefs = BuildBeliefs(facts);
  ExpectedValue ev = ExpectedNumeric(beliefs[0]);
  EXPECT_DOUBLE_EQ(ev.p_present, 0.0);
}

TEST(ExpectedNumericTest, ParsesThousandsSeparators) {
  auto facts = MakeFacts({{"M", "population", "233,209", 1.0}});
  auto beliefs = BuildBeliefs(facts);
  ExpectedValue ev = ExpectedNumeric(beliefs[0]);
  EXPECT_NEAR(ev.expectation, 233209.0, 1e-6);
}

}  // namespace
}  // namespace structura::uncertainty
