#include <gtest/gtest.h>

#include "common/strings.h"
#include "debugger/semantic_debugger.h"

namespace structura::debugger {
namespace {

ie::FactSet TempsWithOutlier() {
  ie::FactSet set;
  // 30 plausible monthly temperatures across cities...
  for (int i = 0; i < 30; ++i) {
    ie::ExtractedFact f;
    f.subject = "City" + std::to_string(i);
    f.attribute = "temp_07";
    f.value = std::to_string(60 + (i % 15));  // 60..74
    set.Add(std::move(f));
  }
  // ...plus the paper's suspicious 135.
  ie::ExtractedFact bad;
  bad.subject = "Madison";
  bad.attribute = "temp_07";
  bad.value = "135";
  set.Add(std::move(bad));
  return set;
}

TEST(SemanticDebuggerTest, FlagsThePaperExample) {
  // "if this module has learned that the monthly temperature of a city
  // cannot exceed 130 degrees, then it can flag an extracted temperature
  // of 135 as suspicious" (Section 4, Part VI).
  SemanticDebugger dbg;
  ie::FactSet facts = TempsWithOutlier();
  dbg.LearnFromFacts(facts);
  std::vector<Violation> violations = dbg.Check(facts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].subject, "Madison");
  EXPECT_EQ(violations[0].value, "135");
  EXPECT_NE(violations[0].message.find("range"), std::string::npos);
}

TEST(SemanticDebuggerTest, LearnedRangeIsRobustToTheOutlier) {
  SemanticDebugger dbg;
  ie::FactSet facts = TempsWithOutlier();
  dbg.LearnFromFacts(facts);
  auto it = dbg.ranges().find("temp_07");
  ASSERT_NE(it, dbg.ranges().end());
  // Median/MAD bounds should sit near the bulk, far below 135.
  EXPECT_LT(it->second.hi, 130.0);
  EXPECT_GT(it->second.lo, -60.0);
}

TEST(SemanticDebuggerTest, NoConstraintWithoutSupport) {
  SemanticDebugger::Options options;
  options.min_support = 10;
  SemanticDebugger dbg(options);
  ie::FactSet facts;
  for (int i = 0; i < 5; ++i) {
    ie::ExtractedFact f;
    f.attribute = "rare";
    f.value = "1";
    facts.Add(std::move(f));
  }
  dbg.LearnFromFacts(facts);
  EXPECT_TRUE(dbg.ranges().empty());
  EXPECT_TRUE(dbg.formats().empty());
  EXPECT_TRUE(dbg.Check(facts).empty());
}

TEST(SemanticDebuggerTest, FormatClassification) {
  EXPECT_EQ(SemanticDebugger::ClassifyValue("233,209"),
            FormatClass::kInteger);
  EXPECT_EQ(SemanticDebugger::ClassifyValue("3.5"),
            FormatClass::kDecimal);
  EXPECT_EQ(SemanticDebugger::ClassifyValue("David Smith"),
            FormatClass::kCapitalizedName);
  EXPECT_EQ(SemanticDebugger::ClassifyValue("D. Smith"),
            FormatClass::kCapitalizedName);
  EXPECT_EQ(SemanticDebugger::ClassifyValue("born in madison"),
            FormatClass::kFreeText);
}

TEST(SemanticDebuggerTest, FormatConstraintFlagsOddValues) {
  SemanticDebugger dbg;
  ie::FactSet facts;
  for (int i = 0; i < 20; ++i) {
    ie::ExtractedFact f;
    f.attribute = "mayor";
    f.value = "Mayor " + std::string(1, static_cast<char>('A' + i));
    facts.Add(std::move(f));
  }
  ie::ExtractedFact odd;
  odd.subject = "Madison";
  odd.attribute = "mayor";
  odd.value = "not a name at all";
  facts.Add(std::move(odd));
  dbg.LearnFromFacts(facts);
  std::vector<Violation> violations = dbg.Check(facts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].value, "not a name at all");
  EXPECT_NE(violations[0].message.find("format"), std::string::npos);
}

TEST(SemanticDebuggerTest, ThousandsSeparatorsParseNumerically) {
  SemanticDebugger dbg;
  ie::FactSet facts;
  for (int i = 0; i < 20; ++i) {
    ie::ExtractedFact f;
    f.attribute = "population";
    f.value = StrFormat("%d,%03d", 100 + i, 500);
    facts.Add(std::move(f));
  }
  dbg.LearnFromFacts(facts);
  ASSERT_EQ(dbg.ranges().count("population"), 1u);
  ie::ExtractedFact probe;
  probe.attribute = "population";
  probe.value = "999,999,999";
  EXPECT_TRUE(dbg.CheckOne(probe).has_value());
}

TEST(SystemMonitorTest, ViolationAlertThreshold) {
  SystemMonitor monitor;
  monitor.RecordFactsExtracted(100);
  monitor.RecordViolations(2);
  EXPECT_FALSE(monitor.ViolationAlert(0.05));
  monitor.RecordViolations(10);
  EXPECT_TRUE(monitor.ViolationAlert(0.05));
  EXPECT_NE(monitor.Report().find("violations=12"), std::string::npos);
}

TEST(SystemMonitorTest, NoAlertOnTinySamples) {
  SystemMonitor monitor;
  monitor.RecordFactsExtracted(10);
  monitor.RecordViolations(9);
  EXPECT_FALSE(monitor.ViolationAlert(0.05));  // not enough evidence yet
}

}  // namespace
}  // namespace structura::debugger
