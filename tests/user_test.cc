#include <gtest/gtest.h>

#include "user/accounts.h"

namespace structura::user {
namespace {

TEST(UserDirectoryTest, RegisterAndLogin) {
  UserDirectory dir;
  ASSERT_TRUE(dir.Register("alice", "secret", Role::kDeveloper).ok());
  EXPECT_FALSE(dir.Register("alice", "other", Role::kOrdinary).ok());
  EXPECT_FALSE(dir.Register("", "x", Role::kOrdinary).ok());

  auto token = dir.Login("alice", "secret");
  ASSERT_TRUE(token.ok());
  auto who = dir.Authenticate(*token);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, "alice");
}

TEST(UserDirectoryTest, BadCredentialsRejected) {
  UserDirectory dir;
  dir.Register("alice", "secret", Role::kOrdinary);
  EXPECT_FALSE(dir.Login("alice", "wrong").ok());
  EXPECT_FALSE(dir.Login("bob", "secret").ok());
  EXPECT_FALSE(dir.Authenticate("bogus-token").ok());
}

TEST(UserDirectoryTest, LogoutInvalidatesSession) {
  UserDirectory dir;
  dir.Register("alice", "secret", Role::kOrdinary);
  std::string token = *dir.Login("alice", "secret");
  ASSERT_TRUE(dir.Logout(token).ok());
  EXPECT_FALSE(dir.Authenticate(token).ok());
  EXPECT_FALSE(dir.Logout(token).ok());
}

TEST(UserDirectoryTest, DistinctSessionTokens) {
  UserDirectory dir;
  dir.Register("alice", "secret", Role::kOrdinary);
  std::string t1 = *dir.Login("alice", "secret");
  std::string t2 = *dir.Login("alice", "secret");
  EXPECT_NE(t1, t2);
  EXPECT_TRUE(dir.Authenticate(t1).ok());
  EXPECT_TRUE(dir.Authenticate(t2).ok());
}

TEST(UserDirectoryTest, ReputationMovesWithAgreement) {
  UserDirectory dir;
  dir.Register("good", "x", Role::kOrdinary);
  dir.Register("bad", "x", Role::kOrdinary);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(dir.RecordFeedback("good", true).ok());
    ASSERT_TRUE(dir.RecordFeedback("bad", false).ok());
  }
  auto good = dir.GetUser("good");
  auto bad = dir.GetUser("bad");
  EXPECT_GT(good->reputation, 0.9);
  EXPECT_LT(bad->reputation, 0.1);
  EXPECT_GT(good->points, bad->points);  // agreement bonus
  EXPECT_EQ(good->feedback_count, 30u);
  auto weights = dir.ReputationWeights();
  EXPECT_GT(weights["good"], weights["bad"]);
}

TEST(UserDirectoryTest, FeedbackForUnknownUserFails) {
  UserDirectory dir;
  EXPECT_FALSE(dir.RecordFeedback("ghost", true).ok());
}

TEST(UserDirectoryTest, LeaderboardSortedByPoints) {
  UserDirectory dir;
  dir.Register("a", "x", Role::kOrdinary);
  dir.Register("b", "x", Role::kOrdinary);
  dir.Register("c", "x", Role::kOrdinary);
  for (int i = 0; i < 5; ++i) dir.RecordFeedback("b", true);
  dir.RecordFeedback("c", true);
  auto board = dir.Leaderboard();
  ASSERT_EQ(board.size(), 3u);
  EXPECT_EQ(board[0].name, "b");
  EXPECT_EQ(board[1].name, "c");
  EXPECT_EQ(board[2].name, "a");
}

}  // namespace
}  // namespace structura::user
