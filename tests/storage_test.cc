#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/strings.h"
#include "storage/diff.h"
#include "storage/segment_store.h"
#include "storage/snapshot_store.h"

namespace structura::storage {
namespace {

std::string TempDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(DiffTest, RoundTripSimpleEdit) {
  std::string base = "line1\nline2\nline3\n";
  std::string target = "line1\nlineX\nline3\n";
  Delta delta = ComputeDelta(base, target);
  auto restored = ApplyDelta(base, delta);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

TEST(DiffTest, RoundTripNoTrailingNewline) {
  std::string base = "a\nb";
  std::string target = "a\nb\nc";
  Delta delta = ComputeDelta(base, target);
  auto restored = ApplyDelta(base, delta);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

TEST(DiffTest, EmptyEdgeCases) {
  for (auto [base, target] : std::vector<std::pair<std::string, std::string>>{
           {"", ""}, {"", "x\ny\n"}, {"x\ny\n", ""}}) {
    Delta delta = ComputeDelta(base, target);
    auto restored = ApplyDelta(base, delta);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, target);
  }
}

TEST(DiffTest, AppendOnlyDeltaIsSmall) {
  std::string base;
  for (int i = 0; i < 200; ++i) {
    base += StrFormat("line %d with some content\n", i);
  }
  std::string target = base + "one new line at the end\n";
  Delta delta = ComputeDelta(base, target);
  EXPECT_LT(delta.Serialize().size(), 100u);
}

TEST(DiffTest, SerializationRoundTrip) {
  std::string base = "a\nb\nc\nd\n";
  std::string target = "a\nXX\nc\nnew\n";
  Delta delta = ComputeDelta(base, target);
  std::string blob = delta.Serialize();
  auto parsed = Delta::Deserialize(blob);
  ASSERT_TRUE(parsed.ok());
  auto restored = ApplyDelta(base, *parsed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

TEST(DiffTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Delta::Deserialize("Z 12\n").ok());
  EXPECT_FALSE(Delta::Deserialize("C x\n").ok());
  EXPECT_FALSE(Delta::Deserialize("I 1\n9999:abc\n").ok());
}

TEST(DiffTest, ApplyToWrongBaseFails) {
  Delta delta = ComputeDelta("a\nb\nc\n", "a\nX\nc\n");
  auto r = ApplyDelta("totally\ndifferent\nbase\nlonger\n", delta);
  EXPECT_FALSE(r.ok());
}

// Property: round-trip holds under random line edits.
class DiffPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiffPropertyTest, RandomEditsRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::string> lines;
  for (int i = 0; i < 50; ++i) {
    lines.push_back(StrFormat("content line %d\n", i));
  }
  auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const std::string& l : ls) out += l;
    return out;
  };
  std::string base = join(lines);
  // Apply 1-10 random edits.
  int edits = 1 + static_cast<int>(rng.NextBounded(10));
  for (int e = 0; e < edits; ++e) {
    size_t pos = rng.NextBounded(lines.size() + 1);
    switch (rng.NextBounded(3)) {
      case 0:  // insert
        lines.insert(lines.begin() + static_cast<long>(pos),
                     StrFormat("inserted %llu\n",
                               (unsigned long long)rng.Next()));
        break;
      case 1:  // delete
        if (!lines.empty()) {
          lines.erase(lines.begin() +
                      static_cast<long>(pos % lines.size()));
        }
        break;
      default:  // modify
        if (!lines.empty()) {
          lines[pos % lines.size()] = StrFormat(
              "changed %llu\n", (unsigned long long)rng.Next());
        }
    }
  }
  std::string target = join(lines);
  Delta delta = ComputeDelta(base, target);
  auto restored = ApplyDelta(base, delta);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(SnapshotStoreTest, AppendAndGetVersions) {
  SnapshotStore store;
  ASSERT_TRUE(store.Append(1, "v0 content\nshared\n").ok());
  ASSERT_TRUE(store.Append(1, "v1 content\nshared\n").ok());
  ASSERT_TRUE(store.Append(1, "v2 content\nshared\nmore\n").ok());
  EXPECT_EQ(*store.Get(1, 0), "v0 content\nshared\n");
  EXPECT_EQ(*store.Get(1, 1), "v1 content\nshared\n");
  EXPECT_EQ(*store.Get(1, 2), "v2 content\nshared\nmore\n");
  EXPECT_EQ(*store.LatestVersion(1), 2u);
}

TEST(SnapshotStoreTest, UnknownPageAndVersion) {
  SnapshotStore store;
  store.Append(1, "x");
  EXPECT_FALSE(store.Get(2, 0).ok());
  EXPECT_FALSE(store.Get(1, 5).ok());
  EXPECT_FALSE(store.LatestVersion(9).ok());
}

TEST(SnapshotStoreTest, DiffStorageSavesSpaceOnOverlap) {
  SnapshotStore store;
  std::string page;
  for (int i = 0; i < 100; ++i) {
    page += StrFormat("stable line %d\n", i);
  }
  store.Append(7, page);
  for (int v = 1; v <= 20; ++v) {
    page += StrFormat("daily update %d\n", v);
    store.Append(7, page);
  }
  // 21 nearly identical versions: diff storage must be far below full.
  EXPECT_LT(store.StoredBytes(), store.FullCopyBytes() / 5);
  // And everything still reconstructs.
  auto last = store.Get(7, 20);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, page);
}

TEST(SnapshotStoreTest, KeyframesBoundReconstruction) {
  SnapshotStore::Options options;
  options.keyframe_interval = 4;
  SnapshotStore store(options);
  std::string page = "base\n";
  store.Append(3, page);
  for (int v = 1; v <= 10; ++v) {
    page += StrFormat("v%d\n", v);
    store.Append(3, page);
  }
  for (uint32_t v = 0; v <= 10; ++v) {
    ASSERT_TRUE(store.Get(3, v).ok()) << v;
  }
}

TEST(SnapshotStoreTest, KeyframeBoundaryVersionsReconstructExactly) {
  SnapshotStore::Options options;
  options.keyframe_interval = 4;
  SnapshotStore store(options);
  std::vector<std::string> contents;
  std::string page;
  for (int v = 0; v <= 9; ++v) {
    page += StrFormat("line-for-version-%d\n", v);
    contents.push_back(page);
    auto version = store.Append(7, page);
    ASSERT_TRUE(version.ok());
    EXPECT_EQ(*version, static_cast<uint32_t>(v));
  }
  // Exact content at the keyframe interval and one version either side
  // (3 = last delta before the keyframe, 4 = the keyframe itself,
  // 5 = first delta chained off the keyframe).
  for (uint32_t v : {3u, 4u, 5u}) {
    auto got = store.Get(7, v);
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(*got, contents[v]) << v;
  }
  // The second keyframe boundary behaves the same.
  for (uint32_t v : {7u, 8u, 9u}) {
    auto got = store.Get(7, v);
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(*got, contents[v]) << v;
  }
  EXPECT_EQ(*store.LatestVersion(7), 9u);
}

TEST(SnapshotStoreTest, GetRightAfterKeyframeAppend) {
  SnapshotStore::Options options;
  options.keyframe_interval = 2;
  SnapshotStore store(options);
  ASSERT_TRUE(store.Append(1, "a\n").ok());
  ASSERT_TRUE(store.Append(1, "a\nb\n").ok());   // version 2 will keyframe
  ASSERT_TRUE(store.Append(1, "a\nb\nc\n").ok());
  // Read the version appended immediately after a keyframe landed.
  ASSERT_TRUE(store.Append(1, "a\nb\nc\nd\n").ok());
  auto got = store.Get(1, 3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "a\nb\nc\nd\n");
  // Older versions stay readable across the keyframe.
  EXPECT_EQ(*store.Get(1, 0), "a\n");
  EXPECT_EQ(*store.Get(1, 2), "a\nb\nc\n");
}

TEST(SnapshotStoreTest, AppendFailpointLeavesStoreConsistent) {
  SnapshotStore store;
  ASSERT_TRUE(store.Append(5, "v0\n").ok());
  {
    ScopedFailpoint fp("snapshot.append",
                       FailpointRegistry::Spec::Once());
    auto failed = store.Append(5, "v1\n");
    EXPECT_FALSE(failed.ok());
    // The failed append must not have consumed a version number.
    auto retried = store.Append(5, "v1\n");
    ASSERT_TRUE(retried.ok());
    EXPECT_EQ(*retried, 1u);
  }
  EXPECT_EQ(*store.LatestVersion(5), 1u);
  EXPECT_EQ(*store.Get(5, 1), "v1\n");
  EXPECT_EQ(store.NumPages(), 1u);
}

TEST(SnapshotStoreTest, GetWithFallbackServesLastGoodVersion) {
  SnapshotStore store;
  ASSERT_TRUE(store.Append(7, "v0\nshared\n").ok());
  ASSERT_TRUE(store.Append(7, "v1\nshared\n").ok());
  {
    // Bit-rot lands on the newest version's stored representation.
    ScopedFailpoint fp("snapshot.delta",
                       FailpointRegistry::Spec::FlipByteAt(1, 2));
    ASSERT_TRUE(store.Append(7, "v2\nshared\n").ok());
  }

  // Clean reads pass through untouched (and unflagged).
  auto clean = store.GetWithFallback(7, 1);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_FALSE(clean->degraded);
  EXPECT_EQ(clean->content, "v1\nshared\n");
  EXPECT_EQ(clean->version, 1u);

  // The requested version is damaged: the plain Get refuses...
  EXPECT_EQ(store.Get(7, 2).status().code(), StatusCode::kCorruption);
  // ...and the fallback read serves the newest older version that still
  // verifies, clearly labeled as stale rather than passed off as v2.
  auto degraded = store.GetWithFallback(7, 2);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->version, 1u);
  EXPECT_EQ(degraded->content, "v1\nshared\n");
  EXPECT_NE(degraded->reason.find("version 2 corrupt"), std::string::npos)
      << degraded->reason;
  EXPECT_NE(degraded->reason.find("last-good version 1"), std::string::npos)
      << degraded->reason;

  // Unknown pages/versions are still kNotFound — absence is not damage,
  // and must not trigger a fallback.
  EXPECT_EQ(store.GetWithFallback(9, 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.GetWithFallback(7, 9).status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, GetWithFallbackRefusesWhenNoCleanVersionRemains) {
  SnapshotStore store;
  {
    ScopedFailpoint fp("snapshot.delta",
                       FailpointRegistry::Spec::FlipByteAt(1, 2));
    ASSERT_TRUE(store.Append(3, "only version\n").ok());
  }
  // Every stored version is damaged: refuse loudly, never serve wrong
  // bytes.
  auto r = store.GetWithFallback(3, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(SegmentStoreTest, AppendReadScan) {
  std::string dir = TempDir("segstore1");
  auto store_or = SegmentStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or;
  for (int i = 0; i < 100; ++i) {
    auto idx = store->Append(StrFormat("record-%03d", i));
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*idx, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(*store->Read(42), "record-042");
  EXPECT_FALSE(store->Read(100).ok());
  size_t count = 0;
  for (auto it = store->Scan(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.record(), StrFormat("record-%03zu", count));
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST(SegmentStoreTest, RollsSegmentsAndReopens) {
  std::string dir = TempDir("segstore2");
  {
    SegmentStore::Options options;
    options.segment_bytes = 256;  // force several segments
    auto store = SegmentStore::Open(dir, options);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*store)->Append(std::string(40, 'a' + i % 26)).ok());
    }
    EXPECT_GT((*store)->NumSegments(), 1u);
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Reopen: all records rediscovered, appends continue.
  auto reopened = SegmentStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->NumRecords(), 50u);
  EXPECT_EQ(*(*reopened)->Read(10), std::string(40, 'a' + 10));
  auto idx = (*reopened)->Append("after reopen");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 50u);
}

TEST(SegmentStoreTest, TornTailDroppedOnReopen) {
  std::string dir = TempDir("segstore3");
  {
    auto store = SegmentStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append("good record one").ok());
    ASSERT_TRUE((*store)->Append("good record two").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Simulate a crash mid-append: append garbage bytes to the segment.
  {
    std::ofstream f(dir + "/seg-000000.log",
                    std::ios::binary | std::ios::app);
    f.write("\x08\x00\x00\x00torn", 8);
  }
  auto reopened = SegmentStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->NumRecords(), 2u);
  EXPECT_EQ(*(*reopened)->Read(1), "good record two");
}

TEST(SegmentStoreTest, EmptyRecordAllowed) {
  std::string dir = TempDir("segstore4");
  auto store = SegmentStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append("").ok());
  EXPECT_EQ(*(*store)->Read(0), "");
}

}  // namespace
}  // namespace structura::storage
