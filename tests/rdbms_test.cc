#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#if defined(__SANITIZE_ADDRESS__)
#define STRUCTURA_LSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STRUCTURA_LSAN_ACTIVE 1
#endif
#endif
#ifdef STRUCTURA_LSAN_ACTIVE
#include <sanitizer/lsan_interface.h>
#endif

#include <gtest/gtest.h>

#include "common/random.h"
#include "rdbms/database.h"
#include "rdbms/lock_manager.h"
#include "rdbms/value.h"
#include "rdbms/wal.h"

namespace structura::rdbms {
namespace {

std::string TempDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_db_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TableSchema CitySchema() {
  TableSchema schema;
  schema.table_name = "cities";
  schema.columns = {{"name", ValueType::kString},
                    {"population", ValueType::kInt},
                    {"avg_temp", ValueType::kDouble}};
  return schema;
}

Row MadisonRow() {
  return {Value::Str("Madison"), Value::Int(233209), Value::Double(45.2)};
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, TypeAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).as_double(), 1.5);
  EXPECT_EQ(Value::Str("x").as_string(), "x");
}

TEST(ValueTest, CrossNumericCompare) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::Str("a")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, SerializeRoundTrip) {
  for (const Value& v :
       {Value::Null(), Value::Int(-42), Value::Double(3.25),
        Value::Str("hello world"), Value::Str(""),
        Value::Str("with:colons:and|bars\nand newlines")}) {
    std::string blob;
    v.AppendTo(&blob);
    size_t pos = 0;
    auto parsed = Value::ParseFrom(blob, &pos);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(pos, blob.size());
    EXPECT_EQ(parsed->Compare(v), 0) << v.ToString();
    EXPECT_EQ(parsed->type(), v.type());
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_NE(Value::Str("abc").Hash(), Value::Str("abd").Hash());
}

TEST(RowTest, SerializeRoundTrip) {
  Row row = MadisonRow();
  std::string blob;
  AppendRowTo(row, &blob);
  size_t pos = 0;
  auto parsed = ParseRowFrom(blob, &pos);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ((*parsed)[i].Compare(row[i]), 0);
  }
}

// ------------------------------------------------------------------ WAL

TEST(WalTest, AppendReadRoundTrip) {
  std::string dir = TempDir("wal1");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    LogRecord begin;
    begin.type = LogRecord::Type::kBegin;
    begin.txn = 9;
    ASSERT_TRUE((*wal)->Append(begin).ok());
    LogRecord insert;
    insert.type = LogRecord::Type::kInsert;
    insert.txn = 9;
    insert.table = "cities";
    insert.row_id = 4;
    insert.after = MadisonRow();
    ASSERT_TRUE((*wal)->Append(insert).ok());
    LogRecord commit;
    commit.type = LogRecord::Type::kCommit;
    commit.txn = 9;
    ASSERT_TRUE((*wal)->Append(commit).ok());
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->records.size(), 3u);
  EXPECT_TRUE(records->clean());
  EXPECT_EQ(records->records[1].table, "cities");
  EXPECT_EQ(records->records[1].row_id, 4u);
  EXPECT_EQ(records->records[1].after[0].ToString(), "Madison");
}

TEST(WalTest, TornTailIgnored) {
  std::string dir = TempDir("wal2");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  {
    auto wal = WriteAheadLog::Open(path);
    LogRecord rec;
    rec.type = LogRecord::Type::kCommit;
    rec.txn = 1;
    ASSERT_TRUE((*wal)->Append(rec).ok());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "123456 9999\nnot a real record";
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->records.size(), 1u);
  // The garbage tail is reported, not silently swallowed.
  EXPECT_TRUE(records->frames.torn_tail);
  EXPECT_GT(records->frames.torn_tail_bytes, 0u);
}

TEST(WalTest, MissingFileIsEmptyHistory) {
  auto records = WriteAheadLog::ReadAll("/nonexistent/wal.log");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->records.empty());
  EXPECT_TRUE(records->clean());
}

// Writes `n` single-insert committed transactions' records to `path`.
void WriteCommittedRecords(const std::string& path, int n) {
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  for (int t = 1; t <= n; ++t) {
    LogRecord begin;
    begin.type = LogRecord::Type::kBegin;
    begin.txn = static_cast<TxnId>(t);
    ASSERT_TRUE((*wal)->Append(begin).ok());
    LogRecord insert;
    insert.type = LogRecord::Type::kInsert;
    insert.txn = static_cast<TxnId>(t);
    insert.table = "cities";
    insert.row_id = static_cast<RowId>(t);
    insert.after = MadisonRow();
    ASSERT_TRUE((*wal)->Append(insert).ok());
    LogRecord commit;
    commit.type = LogRecord::Type::kCommit;
    commit.txn = static_cast<TxnId>(t);
    ASSERT_TRUE((*wal)->Append(commit).ok());
  }
}

TEST(WalTest, TruncationMidRecordStopsAtDamage) {
  std::string dir = TempDir("wal_trunc");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  WriteCommittedRecords(path, 3);  // 9 records
  // Chop into the middle of the final record, like a crash mid-write.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 4);
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->records.size(), 8u);
  EXPECT_EQ(records->records.back().type, LogRecord::Type::kInsert);
  EXPECT_TRUE(records->frames.torn_tail);
  EXPECT_GT(records->frames.torn_tail_offset, 0u);
}

TEST(WalTest, CorruptChecksumStopsAtDamage) {
  std::string dir = TempDir("wal_corrupt");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.log";
  WriteCommittedRecords(path, 3);
  // Flip one payload byte near the end: length still parses, the
  // checksum no longer matches, and everything from there is ignored.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('#');
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->records.size(), 8u);
  EXPECT_FALSE(records->clean());
}

TEST(DatabaseTest, RecoverReplaysValidPrefixAfterTornTail) {
  std::string dir = TempDir("torn_prefix");
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
    auto t1 = (*db)->Begin();
    ASSERT_TRUE(t1->Insert("cities", MadisonRow()).ok());
    ASSERT_TRUE(t1->Commit().ok());
    auto t2 = (*db)->Begin();
    ASSERT_TRUE(
        t2->Insert("cities", {Value::Str("Gotham"), Value::Int(1),
                              Value::Double(0.0)})
            .ok());
    ASSERT_TRUE(t2->Commit().ok());
  }
  // Tear off the tail of the log: the damage lands inside txn 2's
  // commit record, so txn 2 loses its durability proof while txn 1's
  // prefix stays intact.
  std::string wal = dir + "/wal.log";
  std::filesystem::resize_file(wal, std::filesystem::file_size(wal) - 4);
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto rows = txn->Scan("cities");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].second[0].ToString(), "Madison");
  ASSERT_TRUE(txn->Commit().ok());
}

// --------------------------------------------------------- LockManager

TEST(LockTest, CompatibilityMatrix) {
  using M = LockMode;
  EXPECT_TRUE(LockCompatible(M::kIntentionShared, M::kIntentionExclusive));
  EXPECT_TRUE(LockCompatible(M::kIntentionExclusive,
                             M::kIntentionExclusive));
  EXPECT_TRUE(LockCompatible(M::kShared, M::kShared));
  EXPECT_FALSE(LockCompatible(M::kShared, M::kIntentionExclusive));
  EXPECT_FALSE(LockCompatible(M::kExclusive, M::kExclusive));
  EXPECT_FALSE(LockCompatible(M::kExclusive, M::kIntentionShared));
}

TEST(LockTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, "r", LockMode::kShared).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockTest, ReentrantAndCovering) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kExclusive).ok());
  lm.ReleaseAll(1);
}

TEST(LockTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kExclusive).ok());
  lm.ReleaseAll(1);
}

TEST(LockTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ASSERT_TRUE(lm.Acquire(2, "r", LockMode::kExclusive).ok());
    acquired.store(true);
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockTest, UpgradeRetainsSharedHold) {
  // The S hold must survive the upgrade wait (releasing it would allow
  // lost updates). T1 and T2 share S; T1's upgrade waits; a third
  // transaction's fresh X must stay behind T1's retained S either way.
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, "r", LockMode::kShared).ok());
  std::atomic<bool> t1_has_x{false};
  std::thread upgrader([&] {
    Status s = lm.Acquire(1, "r", LockMode::kExclusive);
    if (s.ok()) t1_has_x.store(true);
    lm.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(t1_has_x.load());  // blocked by T2's S
  lm.ReleaseAll(2);               // T2 commits
  upgrader.join();
  EXPECT_TRUE(t1_has_x.load());
}

TEST(LockTest, DualUpgradeDeadlockResolved) {
  // Both hold S and want X: a genuine deadlock through the retained
  // holds. Exactly one must be aborted; the other proceeds.
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, "r", LockMode::kShared).ok());
  std::atomic<int> granted{0}, aborted{0};
  auto upgrade = [&](TxnId txn) {
    Status s = lm.Acquire(txn, "r", LockMode::kExclusive);
    if (s.ok()) {
      ++granted;
    } else {
      ++aborted;
    }
    lm.ReleaseAll(txn);
  };
  std::thread t1(upgrade, 1), t2(upgrade, 2);
  t1.join();
  t2.join();
  EXPECT_EQ(granted.load(), 1);
  EXPECT_EQ(aborted.load(), 1);
}

TEST(LockTest, DeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, "b", LockMode::kExclusive).ok());
  std::atomic<int> aborted{0};
  std::thread t1([&] {
    Status s = lm.Acquire(1, "b", LockMode::kExclusive);
    if (!s.ok()) {
      ++aborted;
      lm.ReleaseAll(1);
    } else {
      lm.ReleaseAll(1);
    }
  });
  std::thread t2([&] {
    Status s = lm.Acquire(2, "a", LockMode::kExclusive);
    if (!s.ok()) {
      ++aborted;
      lm.ReleaseAll(2);
    } else {
      lm.ReleaseAll(2);
    }
  });
  t1.join();
  t2.join();
  // At least one of the two cyclic waiters must have been aborted, and
  // both threads terminated (no hang).
  EXPECT_GE(aborted.load(), 1);
}

// ------------------------------------------------------------- Database

TEST(DatabaseTest, CreateInsertGet) {
  auto db = Database::Open({});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
  auto txn = (*db)->Begin();
  auto rid = txn->Insert("cities", MadisonRow());
  ASSERT_TRUE(rid.ok());
  auto row = txn->Get("cities", *rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].ToString(), "Madison");
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(DatabaseTest, TypeValidation) {
  auto db = Database::Open({});
  ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
  auto txn = (*db)->Begin();
  Row bad = {Value::Int(1), Value::Str("nope"), Value::Double(0)};
  EXPECT_FALSE(txn->Insert("cities", bad).ok());
  Row short_row = {Value::Str("x")};
  EXPECT_FALSE(txn->Insert("cities", short_row).ok());
  txn->Abort();
}

TEST(DatabaseTest, AbortRollsBack) {
  auto db = Database::Open({});
  ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
  RowId keep;
  {
    auto setup = (*db)->Begin();
    keep = *setup->Insert("cities", MadisonRow());
    ASSERT_TRUE(setup->Commit().ok());
  }
  {
    auto txn = (*db)->Begin();
    Row updated = MadisonRow();
    updated[1] = Value::Int(999);
    ASSERT_TRUE(txn->Update("cities", keep, updated).ok());
    ASSERT_TRUE(txn->Insert("cities", MadisonRow()).ok());
    ASSERT_TRUE(txn->Delete("cities", keep).ok());
    ASSERT_TRUE(txn->Abort().ok());
  }
  auto check = (*db)->Begin();
  auto rows = check->Scan("cities");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].second[1].as_int(), 233209);
  check->Commit();
}

TEST(DatabaseTest, DestructorAbortsOpenTxn) {
  auto db = Database::Open({});
  ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
  {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn->Insert("cities", MadisonRow()).ok());
    // No commit: destructor must roll back and release locks.
  }
  auto check = (*db)->Begin();
  EXPECT_EQ(check->Scan("cities")->size(), 0u);
  check->Commit();
}

TEST(DatabaseTest, RecoveryReplaysCommitted) {
  std::string dir = TempDir("recover1");
  RowId committed_row;
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
    auto txn = (*db)->Begin();
    committed_row = *txn->Insert("cities", MadisonRow());
    ASSERT_TRUE(txn->Commit().ok());
    // In-flight transaction at "crash" time: must not survive.
    auto doomed = (*db)->Begin();
    Row other = {Value::Str("Ghost"), Value::Int(1), Value::Double(0)};
    ASSERT_TRUE(doomed->Insert("cities", other).ok());
    // Simulated crash: drop the Database without commit/checkpoint.
    doomed->Abort();  // destructor order safety; abort record may or may
                      // not be replayed — either way the data is gone
  }
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok());
  Table* cities = (*db)->GetTable("cities");
  ASSERT_NE(cities, nullptr);
  auto txn = (*db)->Begin();
  auto rows = txn->Scan("cities");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].first, committed_row);
  EXPECT_EQ((*rows)[0].second[0].ToString(), "Madison");
  txn->Commit();
}

TEST(DatabaseTest, RecoveryWithoutAbortRecord) {
  std::string dir = TempDir("recover2");
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn->Insert("cities", MadisonRow()).ok());
    // Hard crash: no commit, no abort — the txn object leaks its state
    // into the WAL as BEGIN+INSERT only. Recovery must skip it.
    auto* leaked = txn.release();
    (void)leaked;  // intentionally never destroyed (simulated power cut)
#ifdef STRUCTURA_LSAN_ACTIVE
    __lsan_ignore_object(leaked);  // the leak is the point of the test
#endif
  }
  auto db = Database::Open({dir});
  auto txn = (*db)->Begin();
  EXPECT_EQ(txn->Scan("cities")->size(), 0u);
  txn->Commit();
}

TEST(DatabaseTest, CheckpointTruncatesWalAndRecovers) {
  std::string dir = TempDir("checkpoint1");
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
    ASSERT_TRUE((*db)->CreateIndex("cities", "name").ok());
    auto txn = (*db)->Begin();
    for (int i = 0; i < 20; ++i) {
      Row row = {Value::Str("City" + std::to_string(i)),
                 Value::Int(1000 + i), Value::Double(50)};
      ASSERT_TRUE(txn->Insert("cities", std::move(row)).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    // Post-checkpoint activity lands in the fresh WAL.
    auto txn2 = (*db)->Begin();
    Row row = {Value::Str("PostCheckpoint"), Value::Int(7),
               Value::Double(1)};
    ASSERT_TRUE(txn2->Insert("cities", std::move(row)).ok());
    ASSERT_TRUE(txn2->Commit().ok());
  }
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok());
  Table* cities = (*db)->GetTable("cities");
  ASSERT_NE(cities, nullptr);
  EXPECT_EQ(cities->LiveRowCount(), 21u);
  EXPECT_TRUE(cities->HasIndex("name"));
  auto txn = (*db)->Begin();
  auto hits = txn->IndexLookup("cities", "name",
                               Value::Str("PostCheckpoint"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  txn->Commit();
}

TEST(DatabaseTest, IndexMaintainedAcrossMutations) {
  auto db = Database::Open({});
  ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
  ASSERT_TRUE((*db)->CreateIndex("cities", "population").ok());
  auto txn = (*db)->Begin();
  RowId a = *txn->Insert("cities", MadisonRow());
  Row oak = {Value::Str("Oakfield"), Value::Int(5000), Value::Double(40)};
  txn->Insert("cities", oak).value();
  Row updated = MadisonRow();
  updated[1] = Value::Int(5000);
  ASSERT_TRUE(txn->Update("cities", a, updated).ok());
  auto both = txn->IndexLookup("cities", "population", Value::Int(5000));
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 2u);
  ASSERT_TRUE(txn->Delete("cities", a).ok());
  auto one = txn->IndexLookup("cities", "population", Value::Int(5000));
  EXPECT_EQ(one->size(), 1u);
  txn->Commit();
}

TEST(LockTest, HighContentionNoLostWakeups) {
  // Regression for two missed-wakeup bugs: (1) a waiter promoted to
  // granted while asleep must not re-derive "blocked" from newer waiters
  // queued behind it; (2) Grantable must ignore waiters behind the
  // requester entirely, or the queue head starves.
  auto db_or = Database::Open({});
  Database* db = db_or->get();
  TableSchema schema;
  schema.table_name = "hot";
  schema.columns = {{"v", ValueType::kInt}};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  {
    auto txn = db->Begin();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(txn->Insert("hot", {Value::Int(0)}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::atomic<long> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7 + t);
      for (int op = 0; op < 400; ++op) {
        auto txn = db->Begin();
        RowId row = rng.NextBounded(4);  // tiny hot set: max contention
        auto run = [&]() -> Status {
          STRUCTURA_ASSIGN_OR_RETURN(Row r, txn->Get("hot", row));
          STRUCTURA_RETURN_IF_ERROR(
              txn->Update("hot", row, {Value::Int(r[0].as_int() + 1)}));
          return txn->Commit();
        };
        if (run().ok()) {
          committed.fetch_add(1);
        } else if (txn->active()) {
          txn->Abort();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto txn = db->Begin();
  auto rows = txn->Scan("hot");
  ASSERT_TRUE(rows.ok());
  long total = 0;
  for (const auto& [id, row] : *rows) {
    total += row[0].as_int();
  }
  EXPECT_EQ(total, committed.load());
  EXPECT_GT(committed.load(), 0);
  txn->Commit();
}

TEST(DatabaseTest, IndexRangeScans) {
  auto db = Database::Open({});
  ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
  ASSERT_TRUE((*db)->CreateIndex("cities", "population").ok());
  auto txn = (*db)->Begin();
  for (int i = 0; i < 20; ++i) {
    Row row = {Value::Str("City" + std::to_string(i)),
               Value::Int(1000 * (i + 1)), Value::Double(50)};
    ASSERT_TRUE(txn->Insert("cities", std::move(row)).ok());
  }
  Value lo = Value::Int(5000), hi = Value::Int(9000);
  auto mid = txn->IndexRange("cities", "population", &lo, &hi);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->size(), 5u);  // 5000..9000 inclusive
  auto tail = txn->IndexRange("cities", "population", &hi, nullptr);
  EXPECT_EQ(tail->size(), 12u);  // 9000..20000
  auto all = txn->IndexRange("cities", "population", nullptr, nullptr);
  EXPECT_EQ(all->size(), 20u);
  EXPECT_FALSE(
      txn->IndexRange("cities", "avg_temp", nullptr, nullptr).ok());
  txn->Commit();
}

TEST(DatabaseTest, DropTableSurvivesRecovery) {
  std::string dir = TempDir("droptable");
  {
    auto db = Database::Open({dir});
    ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
    {
      auto txn = (*db)->Begin();
      ASSERT_TRUE(txn->Insert("cities", MadisonRow()).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    ASSERT_TRUE((*db)->DropTable("cities").ok());
    EXPECT_EQ((*db)->GetTable("cities"), nullptr);
    EXPECT_FALSE((*db)->DropTable("cities").ok());
    // Recreate under the same name: a fresh empty table.
    ASSERT_TRUE((*db)->CreateTable(CitySchema()).ok());
  }
  auto db = Database::Open({dir});
  ASSERT_TRUE(db.ok());
  Table* cities = (*db)->GetTable("cities");
  ASSERT_NE(cities, nullptr);
  // The drop wiped the earlier committed row; the recreated table is
  // empty after replay.
  EXPECT_EQ(cities->LiveRowCount(), 0u);
}

TEST(DatabaseTest, ConcurrentTransfersConserveTotal) {
  auto db_or = Database::Open({});
  Database* db = db_or->get();
  TableSchema schema;
  schema.table_name = "accounts";
  schema.columns = {{"balance", ValueType::kInt}};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  constexpr int kAccounts = 8;
  constexpr int64_t kInitial = 100;
  {
    auto txn = db->Begin();
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(txn->Insert("accounts", {Value::Int(kInitial)}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Several threads move money between random accounts; deadlock aborts
  // are retried. The invariant: total balance never changes.
  std::vector<std::thread> threads;
  std::atomic<int> aborts{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int op = 0; op < 50; ++op) {
        RowId from = rng.NextBounded(kAccounts);
        RowId to = rng.NextBounded(kAccounts);
        if (from == to) continue;
        auto txn = db->Begin();
        auto do_transfer = [&]() -> Status {
          STRUCTURA_ASSIGN_OR_RETURN(Row f, txn->Get("accounts", from));
          STRUCTURA_ASSIGN_OR_RETURN(Row g, txn->Get("accounts", to));
          STRUCTURA_RETURN_IF_ERROR(txn->Update(
              "accounts", from, {Value::Int(f[0].as_int() - 1)}));
          STRUCTURA_RETURN_IF_ERROR(
              txn->Update("accounts", to, {Value::Int(g[0].as_int() + 1)}));
          return txn->Commit();
        };
        Status s = do_transfer();
        if (!s.ok()) {
          ++aborts;
          if (txn->active()) txn->Abort();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto txn = db->Begin();
  auto rows = txn->Scan("accounts");
  ASSERT_TRUE(rows.ok());
  int64_t total = 0;
  for (const auto& [id, row] : *rows) total += row[0].as_int();
  EXPECT_EQ(total, kAccounts * kInitial);
  txn->Commit();
}

}  // namespace
}  // namespace structura::rdbms
