#include <set>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/names.h"
#include "text/wiki_markup.h"

namespace structura::corpus {
namespace {

CorpusOptions SmallOptions() {
  CorpusOptions o;
  o.num_cities = 10;
  o.num_people = 20;
  o.num_companies = 5;
  o.news_pages = 3;
  o.seed = 99;
  return o;
}

TEST(NamesTest, CityNamesUniqueAndMadisonFirst) {
  EXPECT_EQ(CityName(0), "Madison");
  std::set<std::string> seen;
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(seen.insert(CityName(i)).second) << i;
  }
}

TEST(NamesTest, PersonNamesUnique) {
  std::set<std::string> seen;
  for (size_t i = 0; i < 800; ++i) {
    EXPECT_TRUE(seen.insert(PersonName(i)).second) << i;
  }
}

TEST(NamesTest, PersonVariants) {
  EXPECT_EQ(PersonNameVariant("David Smith", 0), "David Smith");
  EXPECT_EQ(PersonNameVariant("David Smith", 1), "D. Smith");
  EXPECT_EQ(PersonNameVariant("David Smith", 2), "Smith, David");
}

TEST(NamesTest, CityVariants) {
  EXPECT_EQ(CityNameVariant("Madison", "Wisconsin", 0), "Madison");
  EXPECT_EQ(CityNameVariant("Madison", "Wisconsin", 1),
            "Madison, Wisconsin");
  EXPECT_EQ(CityNameVariant("Madison", "Wisconsin", 2),
            "City of Madison");
}

TEST(GeneratorTest, DeterministicFromSeed) {
  text::DocumentCollection d1, d2;
  GroundTruth t1, t2;
  GenerateCorpus(SmallOptions(), &d1, &t1);
  GenerateCorpus(SmallOptions(), &d2, &t2);
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1.docs[i].text, d2.docs[i].text);
  }
  EXPECT_EQ(t1.facts.size(), t2.facts.size());
  EXPECT_EQ(t1.mentions.size(), t2.mentions.size());
}

TEST(GeneratorTest, ProducesExpectedPageCounts) {
  text::DocumentCollection docs;
  GroundTruth truth;
  CorpusOptions o = SmallOptions();
  GenerateCorpus(o, &docs, &truth);
  EXPECT_EQ(docs.size(),
            o.num_cities + o.num_people + o.num_companies + o.news_pages);
  EXPECT_EQ(truth.cities.size(), o.num_cities);
  EXPECT_EQ(truth.people.size(), o.num_people);
  EXPECT_EQ(truth.companies.size(), o.num_companies);
}

TEST(GeneratorTest, CityPageHasParsableInfobox) {
  text::DocumentCollection docs;
  GroundTruth truth;
  CorpusOptions o = SmallOptions();
  o.infobox_dropout = 0;
  o.attribute_missing = 0;
  GenerateCorpus(o, &docs, &truth);
  const text::Document& madison = docs.docs[0];
  EXPECT_EQ(madison.title, "Madison");
  std::vector<text::Infobox> boxes = text::ParseInfoboxes(madison.text);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].type, "city");
  EXPECT_EQ(boxes[0].Get("name"), "Madison");
  // With zero dropout, all 12 monthly temperatures are in the infobox.
  for (int m = 1; m <= 12; ++m) {
    EXPECT_TRUE(boxes[0].Has(
        m < 10 ? "temp_0" + std::to_string(m) : "temp_" + std::to_string(m)))
        << m;
  }
}

TEST(GeneratorTest, FactTruthValuesAppearInDocuments) {
  text::DocumentCollection docs;
  GroundTruth truth;
  CorpusOptions o = SmallOptions();
  o.typo_prob = 0;  // planted values must appear verbatim
  GenerateCorpus(o, &docs, &truth);
  for (const FactTruth& f : truth.facts) {
    const text::Document* doc = nullptr;
    for (const text::Document& d : docs.docs) {
      if (d.id == f.doc) doc = &d;
    }
    ASSERT_NE(doc, nullptr);
    // Person-valued facts may appear under a surface variant ("G. Smith"
    // for "George Smith") when dropped from the infobox.
    bool found = doc->text.find(f.value) != std::string::npos;
    for (int variant = 1; variant < 3 && !found; ++variant) {
      found = doc->text.find(PersonNameVariant(f.value, variant)) !=
              std::string::npos;
    }
    EXPECT_TRUE(found) << f.attribute << "=" << f.value
                       << " missing from " << doc->title;
  }
}

TEST(GeneratorTest, MentionsResolveToKnownEntities) {
  text::DocumentCollection docs;
  GroundTruth truth;
  GenerateCorpus(SmallOptions(), &docs, &truth);
  EXPECT_FALSE(truth.mentions.empty());
  for (const MentionTruth& m : truth.mentions) {
    EXPECT_TRUE(truth.canonical_names.count(m.entity) > 0)
        << m.surface;
  }
}

TEST(GeneratorTest, DropoutMovesFactsOutOfInfobox) {
  text::DocumentCollection docs;
  GroundTruth truth;
  CorpusOptions o = SmallOptions();
  o.infobox_dropout = 1.0;  // nothing in infoboxes
  o.attribute_missing = 0;
  GenerateCorpus(o, &docs, &truth);
  for (const FactTruth& f : truth.facts) {
    if (f.attribute == "headquarters") continue;  // never in infobox
    EXPECT_FALSE(f.in_infobox) << f.attribute;
  }
}

TEST(GeneratorTest, TemperaturesAreSeasonal) {
  text::DocumentCollection docs;
  GroundTruth truth;
  GenerateCorpus(SmallOptions(), &docs, &truth);
  for (const CityRecord& c : truth.cities) {
    // July warmer than January in this hemisphere's generator.
    EXPECT_GT(c.temps[6], c.temps[0]) << c.name;
  }
}

TEST(MutateCrawlTest, ChurnEditsApproximatelyFraction) {
  text::DocumentCollection docs;
  GroundTruth truth;
  CorpusOptions o = SmallOptions();
  o.num_cities = 100;
  GenerateCorpus(o, &docs, &truth);
  std::vector<std::string> before;
  for (const text::Document& d : docs.docs) before.push_back(d.text);
  MutateCrawl(5, 0.2, &docs);
  size_t changed = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs.docs[i].version, 1u);
    if (docs.docs[i].text != before[i]) ++changed;
  }
  double rate = static_cast<double>(changed) / docs.size();
  EXPECT_NEAR(rate, 0.2, 0.1);
}

}  // namespace
}  // namespace structura::corpus
