#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "obs/flight_recorder.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_json_util.h"

namespace structura {
namespace {

using obs::MetricsRegistry;

// --- Metrics registry ----------------------------------------------------

TEST(MetricsTest, CounterAddAndValue) {
  MetricsRegistry r;
  obs::Counter* c = r.GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(MetricsTest, GetReturnsStableHandle) {
  MetricsRegistry r;
  obs::Counter* a = r.GetCounter("test.same");
  obs::Counter* b = r.GetCounter("test.same");
  EXPECT_EQ(a, b);
  EXPECT_NE(r.GetCounter("test.other"), a);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry r;
  obs::Gauge* g = r.GetGauge("test.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  MetricsRegistry r;
  obs::Histogram* h = r.GetHistogram("test.hist");
  h->Record(0);     // bucket 0
  h->Record(1);     // bucket 1
  h->Record(7);     // bucket 3: [4, 8)
  h->Record(1000);  // bucket 10: [512, 1024)
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_EQ(h->Sum(), 1008u);

  obs::MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hv = snap.histograms[0];
  EXPECT_EQ(hv.name, "test.hist");
  EXPECT_EQ(hv.count, 4u);
  EXPECT_EQ(hv.buckets[0], 1u);
  EXPECT_EQ(hv.buckets[1], 1u);
  EXPECT_EQ(hv.buckets[3], 1u);
  EXPECT_EQ(hv.buckets[10], 1u);
  EXPECT_DOUBLE_EQ(hv.Mean(), 252.0);
  // p50 falls in the second occupied bucket; p100 in the last.
  EXPECT_EQ(hv.Quantile(0.5), obs::BucketUpperBound(1));
  EXPECT_EQ(hv.Quantile(1.0), obs::BucketUpperBound(10));
  EXPECT_EQ(hv.Quantile(0.0), obs::BucketUpperBound(0));
}

TEST(MetricsTest, BucketUpperBounds) {
  EXPECT_EQ(obs::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::BucketUpperBound(1), 1u);
  EXPECT_EQ(obs::BucketUpperBound(4), 15u);
  EXPECT_EQ(obs::BucketUpperBound(64), ~uint64_t{0});
}

TEST(MetricsTest, SnapshotSortedByName) {
  MetricsRegistry r;
  r.GetCounter("test.b")->Increment();
  r.GetCounter("test.a")->Increment();
  r.GetCounter("test.c")->Increment();
  obs::MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "test.a");
  EXPECT_EQ(snap.counters[1].first, "test.b");
  EXPECT_EQ(snap.counters[2].first, "test.c");
}

TEST(MetricsTest, CallbackGauges) {
  MetricsRegistry r;
  int64_t live = 5;
  uint64_t id = r.RegisterGaugeFn("test.fn", [&live] { return live; });
  obs::MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 5);
  live = 9;
  EXPECT_EQ(r.Snapshot().gauges[0].second, 9);

  // Re-registration replaces the callback; the stale id can no longer
  // remove the successor's registration.
  uint64_t id2 = r.RegisterGaugeFn("test.fn", [] { return int64_t{77}; });
  ASSERT_NE(id, id2);
  r.UnregisterGaugeFn("test.fn", id);  // stale: must be a no-op
  ASSERT_EQ(r.Snapshot().gauges.size(), 1u);
  EXPECT_EQ(r.Snapshot().gauges[0].second, 77);
  r.UnregisterGaugeFn("test.fn", id2);
  EXPECT_TRUE(r.Snapshot().gauges.empty());
}

TEST(MetricsTest, KillSwitchGatesHistogramsNotCounters) {
  MetricsRegistry r;
  obs::Counter* c = r.GetCounter("test.gated.counter");
  obs::Histogram* h = r.GetHistogram("test.gated.hist");
  obs::SetMetricsEnabled(false);
  c->Increment();
  h->Record(100);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(c->Value(), 1u) << "counters are never gated";
  EXPECT_EQ(h->Count(), 0u) << "histograms respect the kill-switch";
  h->Record(100);
  EXPECT_EQ(h->Count(), 1u);
}

TEST(MetricsTest, InternNameIsStable) {
  const char* a = obs::InternName("test.interned.name");
  const char* b = obs::InternName("test.interned.name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "test.interned.name");
  EXPECT_STRNE(obs::InternName("test.interned.other"), a);
}

// 16 threads hammer one counter + one histogram concurrently; totals
// must be exact. Run under TSan in the sanitizer CI leg.
TEST(MetricsHammerTest, ConcurrentCountersAreExact) {
  MetricsRegistry r;
  obs::Counter* c = r.GetCounter("test.hammer.counter");
  obs::Histogram* h = r.GetHistogram("test.hammer.hist");
  constexpr int kThreads = 16;
  constexpr int kOps = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  // Concurrent snapshots must be race-free against the writers.
  for (int i = 0; i < 50; ++i) {
    obs::MetricsSnapshot snap = r.Snapshot();
    EXPECT_LE(snap.counters.size(), 1u);
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kOps);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kOps);
}

// --- Exposition ----------------------------------------------------------

TEST(ExpositionTest, Prometheus) {
  MetricsRegistry r;
  r.GetCounter("test.requests.total")->Add(3);
  r.GetGauge("test.queue.depth")->Set(4);
  r.GetHistogram("test.latency_ns")->Record(100);
  std::string out = obs::RenderPrometheus(r.Snapshot());
  EXPECT_NE(out.find("# TYPE test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("test_requests_total 3"), std::string::npos);
  EXPECT_NE(out.find("test_queue_depth 4"), std::string::npos);
  EXPECT_NE(out.find("test_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(out.find("test_latency_ns_sum 100"), std::string::npos);
  EXPECT_NE(out.find("le=\"+Inf\""), std::string::npos);
}

TEST(ExpositionTest, Json) {
  MetricsRegistry r;
  r.GetCounter("test.requests.total")->Add(3);
  r.GetHistogram("test.latency_ns")->Record(100);
  std::string out = obs::RenderJson(r.Snapshot());
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"test.requests.total\":3"), std::string::npos);
  EXPECT_NE(out.find("\"histograms\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":1"), std::string::npos);
}

TEST(ExpositionTest, CompactGroupsByPrefix) {
  MetricsRegistry r;
  r.GetCounter("serve.requests.ok")->Add(7);
  r.GetCounter("serve.requests.shed")->Add(2);
  r.GetCounter("mr.jobs")->Add(1);
  r.GetCounter("test.zero");  // zero-valued: omitted
  std::string out = obs::RenderCompact(r.Snapshot());
  EXPECT_NE(out.find("metrics[serve]"), std::string::npos);
  EXPECT_NE(out.find("requests.ok=7"), std::string::npos);
  EXPECT_NE(out.find("metrics[mr]"), std::string::npos);
  EXPECT_EQ(out.find("test.zero"), std::string::npos);
}

TEST(ExpositionTest, AllFormatsRenderFromOneSnapshot) {
  MetricsRegistry r;
  r.GetCounter("test.one")->Add(11);
  obs::MetricsSnapshot snap = r.Snapshot();
  std::string prom = obs::RenderPrometheus(snap);
  std::string json = obs::RenderJson(snap);
  std::string compact = obs::RenderCompact(snap);
  EXPECT_NE(prom.find("test_one 11"), std::string::npos);
  EXPECT_NE(json.find("\"test.one\":11"), std::string::npos);
  EXPECT_NE(compact.find("one=11"), std::string::npos);
}

TEST(ExpositionTest, SystemEndpointsAgree) {
  MetricsRegistry::Default().GetCounter("test.system.endpoint")->Add(5);
  std::string prom = core::System::MetricsPrometheus();
  std::string json = core::System::MetricsJson();
  EXPECT_NE(prom.find("test_system_endpoint 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.system.endpoint\":5"), std::string::npos);
}

// --- Tracing -------------------------------------------------------------

TEST(TraceTest, RootAndNestedSpans) {
  uint64_t trace = obs::NextTraceId();
  {
    obs::TraceRequestScope root(trace, "test.root");
    {
      TRACE_SPAN("test.child");
      { TRACE_SPAN("test.grandchild"); }
    }
    TRACE_SPAN("test.sibling");
  }
  std::vector<obs::SpanView> spans =
      obs::TraceRecorder::Instance().Collect(trace);
  ASSERT_EQ(spans.size(), 4u);

  const obs::SpanView* root = nullptr;
  const obs::SpanView* child = nullptr;
  const obs::SpanView* grandchild = nullptr;
  const obs::SpanView* sibling = nullptr;
  for (const obs::SpanView& s : spans) {
    std::string name = s.name;
    if (name == "test.root") root = &s;
    if (name == "test.child") child = &s;
    if (name == "test.grandchild") grandchild = &s;
    if (name == "test.sibling") sibling = &s;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_EQ(grandchild->parent_id, child->span_id);
  EXPECT_EQ(sibling->parent_id, root->span_id);
}

TEST(TraceTest, RenderTreeShowsHierarchy) {
  uint64_t trace = obs::NextTraceId();
  {
    obs::TraceRequestScope root(trace, "test.tree.root");
    TRACE_SPAN("test.tree.inner");
  }
  std::string tree = obs::TraceRecorder::Instance().RenderTree(trace);
  EXPECT_NE(tree.find("test.tree.root"), std::string::npos);
  EXPECT_NE(tree.find("test.tree.inner"), std::string::npos);
  // Child is indented under the root.
  EXPECT_LT(tree.find("test.tree.root"), tree.find("test.tree.inner"));
}

TEST(TraceTest, NoSpansWithoutActiveTrace) {
  uint64_t before =
      MetricsRegistry::Default().GetCounter("obs.spans.recorded")->Value();
  { TRACE_SPAN("test.orphan"); }
  uint64_t after =
      MetricsRegistry::Default().GetCounter("obs.spans.recorded")->Value();
  EXPECT_EQ(before, after) << "spans outside a trace are not recorded";
}

TEST(TraceTest, KillSwitchDisablesRecording) {
  obs::SetTracingEnabled(false);
  uint64_t trace = obs::NextTraceId();
  {
    obs::TraceRequestScope root(trace, "test.disabled.root");
    TRACE_SPAN("test.disabled.child");
  }
  obs::SetTracingEnabled(true);
  EXPECT_TRUE(obs::TraceRecorder::Instance().Collect(trace).empty());
}

TEST(TraceTest, CrossThreadAdoption) {
  uint64_t trace = obs::NextTraceId();
  {
    obs::TraceRequestScope root(trace, "test.hop.root");
    obs::TraceHandle handle = obs::CurrentTrace();
    std::thread worker([handle] {
      obs::ScopedTraceContext adopt(handle);
      TRACE_SPAN("test.hop.worker");
    });
    worker.join();
  }
  std::vector<obs::SpanView> spans =
      obs::TraceRecorder::Instance().Collect(trace);
  ASSERT_EQ(spans.size(), 2u);
  bool found_worker = false;
  for (const obs::SpanView& s : spans) {
    if (std::string(s.name) == "test.hop.worker") {
      found_worker = true;
      EXPECT_NE(s.parent_id, 0u) << "worker span parents onto the root";
    }
  }
  EXPECT_TRUE(found_worker);
}

TEST(TraceTest, ConcurrentSpanRecordingReconciles) {
  uint64_t trace = obs::NextTraceId();
  constexpr int kThreads = 16;
  constexpr int kSpansPerThread = 1000;  // < ring capacity per thread
  obs::TraceHandle handle{trace, 0};
  // Barriers keep all threads alive until every one has recorded: a
  // thread that exited early would release its ring for a later thread
  // to reuse, overwriting slots this test wants to count exactly.
  std::atomic<int> started{0};
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, handle] {
      obs::ScopedTraceContext adopt(handle);
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kSpansPerThread; ++i) {
        TRACE_SPAN("test.concurrent.span");
      }
      done.fetch_add(1);
      while (done.load() < kThreads) std::this_thread::yield();
    });
  }
  // Concurrent reads must be race-free against recording threads.
  for (int i = 0; i < 20; ++i) {
    obs::TraceRecorder::Instance().Collect(trace);
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs::TraceRecorder::Instance().Collect(trace).size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST(TraceTest, SlowRequestCaptured) {
  obs::SlowRequestLog::Instance().Clear();
  obs::SetSlowRequestThresholdNanos(1);  // everything is "slow"
  ScopedLogCapture capture;              // swallow the kWarning dump
  uint64_t trace = obs::NextTraceId();
  {
    obs::TraceRequestScope root(trace, "test.slow.root");
    TRACE_SPAN("test.slow.child");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::SetSlowRequestThresholdNanos(0);
  std::vector<obs::SlowRequestLog::Entry> entries =
      obs::SlowRequestLog::Instance().Recent();
  ASSERT_FALSE(entries.empty());
  const obs::SlowRequestLog::Entry& e = entries.back();
  EXPECT_EQ(e.trace_id, trace);
  EXPECT_EQ(e.root_name, "test.slow.root");
  EXPECT_GT(e.duration_ns, 0u);
  EXPECT_NE(e.tree.find("test.slow.child"), std::string::npos);
  EXPECT_GE(capture.CountAtLevel(LogLevel::kWarning), 1u);
  obs::SlowRequestLog::Instance().Clear();
}

// --- Logging sink + counters --------------------------------------------

TEST(LoggingTest, CaptureSinkSeesLines) {
  ScopedLogCapture capture;
  STRUCTURA_LOG(kWarning) << "captured " << 42;
  STRUCTURA_LOG(kError) << "boom";
  std::vector<ScopedLogCapture::Line> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].level, LogLevel::kWarning);
  EXPECT_EQ(lines[0].message, "captured 42");
  EXPECT_EQ(lines[0].file, "obs_test.cc");
  EXPECT_EQ(capture.CountAtLevel(LogLevel::kError), 1u);
  EXPECT_EQ(capture.CountAtLevel(LogLevel::kInfo), 0u);
}

TEST(LoggingTest, LinesBumpRegistryCounters) {
  obs::Counter* warnings =
      MetricsRegistry::Default().GetCounter("log.lines.warning");
  uint64_t before = warnings->Value();
  ScopedLogCapture capture;  // keep stderr clean
  STRUCTURA_LOG(kWarning) << "counted";
  EXPECT_EQ(warnings->Value(), before + 1);
}

TEST(LoggingTest, CustomSinkReceivesAndRestores) {
  std::vector<std::string> seen;
  SetLogSink([&seen](LogLevel, const char*, int, const std::string& msg) {
    seen.push_back(msg);
  });
  STRUCTURA_LOG(kWarning) << "to custom sink";
  SetLogSink(nullptr);  // restore stderr default
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "to custom sink");
}

TEST(LoggingTest, LevelFilterStillApplies) {
  ScopedLogCapture capture;
  SetLogLevel(LogLevel::kError);
  STRUCTURA_LOG(kWarning) << "dropped";
  STRUCTURA_LOG(kError) << "kept";
  SetLogLevel(LogLevel::kInfo);
  std::vector<ScopedLogCapture::Line> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].message, "kept");
}

// --- ThreadPool gauges ---------------------------------------------------

TEST(ThreadPoolMetricsTest, PublishesAndUnpublishesGauges) {
  auto gauge_value = [](const std::string& name,
                        int64_t* out) -> bool {
    obs::MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
    for (const auto& [n, v] : snap.gauges) {
      if (n == name) {
        *out = v;
        return true;
      }
    }
    return false;
  };

  {
    ThreadPool pool(2, /*max_queue=*/4);
    pool.PublishMetrics("obs_test");
    std::atomic<bool> release{false};
    std::atomic<int> running{0};
    for (int i = 0; i < 2; ++i) {
      pool.Post([&] {
        running.fetch_add(1);
        while (!release.load()) std::this_thread::yield();
      });
    }
    while (running.load() < 2) std::this_thread::yield();
    pool.Post([] {});  // queued behind the two busy workers

    int64_t v = -1;
    ASSERT_TRUE(gauge_value("threadpool.obs_test.active_workers", &v));
    EXPECT_EQ(v, 2);
    ASSERT_TRUE(gauge_value("threadpool.obs_test.queue_depth", &v));
    EXPECT_EQ(v, 1);
    ASSERT_TRUE(gauge_value("threadpool.obs_test.queue_high_water", &v));
    EXPECT_GE(v, 1);
    release.store(true);
    pool.WaitIdle();
  }
  // Pool destroyed: its gauges must be unregistered so snapshots cannot
  // call into freed memory.
  int64_t v = 0;
  EXPECT_FALSE(gauge_value("threadpool.obs_test.active_workers", &v));
  EXPECT_FALSE(gauge_value("threadpool.obs_test.queue_depth", &v));
}

TEST(ThreadPoolMetricsTest, StatsCountActiveWorkers) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> running{0};
  pool.Post([&] {
    running.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
  });
  while (running.load() < 1) std::this_thread::yield();
  EXPECT_EQ(pool.stats().active_workers, 1u);
  release.store(true);
  pool.WaitIdle();
  EXPECT_EQ(pool.stats().active_workers, 0u);
}

// --- JSON exposition validity --------------------------------------------

using testutil::IsValidJson;

TEST(JsonExpositionTest, ValidatorSanity) {
  EXPECT_TRUE(IsValidJson("{\"a\":[1,2,{\"b\":\"c\\n\"}],\"d\":null}"));
  EXPECT_FALSE(IsValidJson("{\"a\":}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1"));
  EXPECT_FALSE(IsValidJson(std::string("\"a\x01b\"")));  // raw control char
  EXPECT_FALSE(IsValidJson("{\"a\":1}trailing"));
}

TEST(JsonExpositionTest, JsonEscapeHandlesHostileStrings) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb"), "a\\u000ab");
  std::string ctrl = obs::JsonEscape(std::string("a\x01z"));
  EXPECT_TRUE(IsValidJson("\"" + ctrl + "\""));
}

TEST(JsonExpositionTest, MetricsJsonValidWithHostileNames) {
  MetricsRegistry r;
  r.GetCounter("evil\"counter\\name")->Add(3);
  r.GetGauge("evil\ngauge\x02name")->Set(-7);
  r.GetHistogram("evil\thist")->Record(42);
  std::string json = obs::RenderJson(r.Snapshot());
  EXPECT_TRUE(IsValidJson(json)) << json;
}

TEST(JsonExpositionTest, EventTailAndTrackerJsonValid) {
  obs::RecordEvent(obs::EventCategory::kWatchdog,
                   obs::EventCode::kWatchdogScrub, 1, 2, 3, "json check");
  EXPECT_TRUE(IsValidJson(obs::EventJournal::Instance().TailJson(64)));

  obs::ExpensiveRequestTracker::Instance().Clear();
  obs::CostVector cost;
  cost.v[static_cast<size_t>(obs::CostDim::kRowsScanned)] = 9;
  obs::ExpensiveRequestTracker::Instance().Record(77, "op\"name", 123, cost);
  EXPECT_TRUE(IsValidJson(obs::ExpensiveRequestTracker::Instance().ToJson()));
  EXPECT_TRUE(IsValidJson(cost.ToJson()));
  obs::ExpensiveRequestTracker::Instance().Clear();
}

// --- Event journal -------------------------------------------------------

TEST(EventJournalTest, RecordAndTailRoundTrip) {
  obs::EventJournal& j = obs::EventJournal::Instance();
  uint64_t base = j.recorded();
  obs::RecordEvent(obs::EventCategory::kBreaker,
                   obs::EventCode::kBreakerOpen, 7, 0, 0, "rt breaker");
  obs::RecordEvent(obs::EventCategory::kHealth,
                   obs::EventCode::kHealthDemote, 0, 2, 0, "rt health");
  EXPECT_EQ(j.recorded(), base + 2);

  std::vector<obs::EventView> tail = j.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  // Oldest first, contiguous sequence numbers.
  EXPECT_EQ(tail[0].seq, base);
  EXPECT_EQ(tail[1].seq, base + 1);
  EXPECT_EQ(tail[0].category, obs::EventCategory::kBreaker);
  EXPECT_EQ(tail[0].code, obs::EventCode::kBreakerOpen);
  EXPECT_EQ(tail[0].a, 7u);
  EXPECT_STREQ(tail[0].detail, "rt breaker");
  EXPECT_EQ(tail[1].category, obs::EventCategory::kHealth);
  EXPECT_EQ(tail[1].b, 2u);
  EXPECT_GT(tail[1].nanos, 0);
  EXPECT_GE(tail[1].nanos, tail[0].nanos);
}

TEST(EventJournalTest, StampsAmbientTraceId) {
  uint64_t trace = obs::NextTraceId();
  {
    obs::TraceRequestScope scope(trace, "event.journal.test");
    obs::RecordEvent(obs::EventCategory::kWal,
                     obs::EventCode::kWalStickyLatch, 1, 0, 0, "in trace");
  }
  obs::RecordEvent(obs::EventCategory::kWal, obs::EventCode::kWalStickyLatch,
                   2, 0, 0, "out of trace");
  std::vector<obs::EventView> tail = obs::EventJournal::Instance().Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].trace_id, trace);
  EXPECT_EQ(tail[1].trace_id, 0u);
}

TEST(EventJournalTest, KillSwitchDropsEvents) {
  obs::EventJournal& j = obs::EventJournal::Instance();
  obs::SetEventJournalEnabled(false);
  uint64_t base = j.recorded();
  obs::RecordEvent(obs::EventCategory::kBreaker,
                   obs::EventCode::kBreakerClose, 0, 0, 0, "dropped");
  EXPECT_EQ(j.recorded(), base);
  obs::SetEventJournalEnabled(true);
  obs::RecordEvent(obs::EventCategory::kBreaker,
                   obs::EventCode::kBreakerClose, 0, 0, 0, "kept");
  EXPECT_EQ(j.recorded(), base + 1);
}

TEST(EventJournalTest, WraparoundKeepsNewestRecords) {
  obs::EventJournal& j = obs::EventJournal::Instance();
  const size_t n = obs::EventJournal::kSlots + 300;
  for (size_t i = 0; i < n; ++i) {
    obs::RecordEvent(obs::EventCategory::kCheckpoint,
                     obs::EventCode::kCheckpointBegin, i, 0, 0, "wrap");
  }
  uint64_t last = j.recorded() - 1;
  std::vector<obs::EventView> tail = j.Tail(obs::EventJournal::kSlots);
  // Every slot holds a published record; all of them survive the wrap.
  ASSERT_EQ(tail.size(), obs::EventJournal::kSlots);
  // Newest record present, sequence contiguous from the oldest survivor.
  EXPECT_EQ(tail.back().seq, last);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, tail.back().seq - (tail.size() - 1 - i));
  }
  // A bounded tail returns only the newest records.
  std::vector<obs::EventView> bounded = j.Tail(16);
  ASSERT_EQ(bounded.size(), 16u);
  EXPECT_EQ(bounded.back().seq, last);
  EXPECT_EQ(bounded.front().seq, last - 15);
}

TEST(EventJournalTest, ConcurrentWritersAndReadersStayCoherent) {
  obs::EventJournal& j = obs::EventJournal::Instance();
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const obs::EventView& e : j.Tail(obs::EventJournal::kSlots)) {
        // Published records must never be torn: name lookups stay in
        // range and the detail pointer is always dereferenceable.
        if (std::string(obs::EventCategoryName(e.category)) == "?" ||
            std::string(obs::EventCodeName(e.code)) == "?" ||
            e.detail == nullptr) {
          torn.fetch_add(1);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&j, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        j.Record(obs::EventCategory::kBrownout,
                 obs::EventCode::kBrownoutEngage,
                 static_cast<uint64_t>(w), static_cast<uint64_t>(i), 0,
                 "concurrent");
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  std::vector<obs::EventView> tail = j.Tail(obs::EventJournal::kSlots);
  EXPECT_EQ(tail.size(), obs::EventJournal::kSlots);
}

// --- Cost accounting -----------------------------------------------------

TEST(CostAccountingTest, ChargeOutsideContextIsNoop) {
  ASSERT_EQ(obs::CurrentCost(), nullptr);
  obs::ChargeCost(obs::CostDim::kRowsScanned, 100);  // must not crash
}

TEST(CostAccountingTest, ScopedContextChargesAndRestores) {
  obs::CostAccumulator acc;
  {
    obs::ScopedCostContext scope(&acc);
    EXPECT_EQ(obs::CurrentCost(), &acc);
    obs::ChargeCost(obs::CostDim::kRowsScanned, 5);
    obs::ChargeCost(obs::CostDim::kRowsScanned, 7);
    obs::ChargeCost(obs::CostDim::kSegmentBytesRead, 1024);
    {
      // Nested context diverts charges, then restores the outer one.
      obs::CostAccumulator inner;
      obs::ScopedCostContext nested(&inner);
      obs::ChargeCost(obs::CostDim::kRetries, 1);
      EXPECT_EQ(inner.Snapshot()[obs::CostDim::kRetries], 1u);
    }
    obs::ChargeCost(obs::CostDim::kWalBytesAppended, 64);
  }
  EXPECT_EQ(obs::CurrentCost(), nullptr);
  obs::CostVector cost = acc.Snapshot();
  EXPECT_EQ(cost[obs::CostDim::kRowsScanned], 12u);
  EXPECT_EQ(cost[obs::CostDim::kSegmentBytesRead], 1024u);
  EXPECT_EQ(cost[obs::CostDim::kWalBytesAppended], 64u);
  EXPECT_EQ(cost[obs::CostDim::kRetries], 0u);  // went to the nested acc
}

TEST(CostAccountingTest, CrossThreadChargesAccumulate) {
  obs::CostAccumulator acc;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&acc] {
      obs::ScopedCostContext scope(&acc);
      for (int i = 0; i < 1000; ++i) {
        obs::ChargeCost(obs::CostDim::kRowsScanned, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(acc.Snapshot()[obs::CostDim::kRowsScanned], 4000u);
}

TEST(CostAccountingTest, ScoreWeighsDimensions) {
  obs::CostVector cost;
  cost.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] = 10;
  cost.v[static_cast<size_t>(obs::CostDim::kRowsScanned)] = 2;
  cost.v[static_cast<size_t>(obs::CostDim::kSegmentBytesRead)] = 3;
  cost.v[static_cast<size_t>(obs::CostDim::kWalBytesAppended)] = 4;
  cost.v[static_cast<size_t>(obs::CostDim::kExtractorCalls)] = 5;
  cost.v[static_cast<size_t>(obs::CostDim::kRetries)] = 6;
  EXPECT_EQ(cost.Score(), 10u + 2u * 1'000 + 3u * 10 + 4u * 100 +
                              5u * 10'000 + 6u * 1'000'000);
}

TEST(CostAccountingTest, KillSwitchStopsFrontendAccounting) {
  obs::SetCostAccountingEnabled(false);
  EXPECT_FALSE(obs::CostAccountingEnabled());
  obs::SetCostAccountingEnabled(true);
  EXPECT_TRUE(obs::CostAccountingEnabled());
}

TEST(ExpensiveRequestTrackerTest, KeepsTopKByScore) {
  obs::ExpensiveRequestTracker& tracker =
      obs::ExpensiveRequestTracker::Instance();
  tracker.Clear();
  // More entries than capacity, in a shuffled-ish score order.
  for (uint64_t i = 0; i < obs::ExpensiveRequestTracker::kKeep + 4; ++i) {
    obs::CostVector cost;
    cost.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] =
        ((i * 7) % 12 + 1) * 1000;
    tracker.Record(/*trace_id=*/i + 1, "tracker.test",
                   static_cast<int64_t>(i), cost);
  }
  std::vector<obs::ExpensiveRequestTracker::Entry> top = tracker.TopK();
  ASSERT_EQ(top.size(), obs::ExpensiveRequestTracker::kKeep);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  // The cheapest scores (1000..4000) must have been evicted: capacity 8
  // keeps 12000 down to 5000.
  EXPECT_EQ(top.back().score, 5000u);
  EXPECT_EQ(top.front().score, 12000u);

  // A new cheap request below the current minimum is rejected outright.
  obs::CostVector cheap;
  cheap.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] = 1;
  tracker.Record(999, "tracker.test", 0, cheap);
  EXPECT_EQ(tracker.TopK().back().score, 5000u);
  tracker.Clear();
  EXPECT_TRUE(tracker.TopK().empty());
}

// --- Trace ring wraparound -----------------------------------------------

TEST(TraceRingWrapTest, WrapKeepsOnlyRingCapacity) {
  constexpr size_t kRing = obs::internal::ThreadRing::kSlots;
  uint64_t trace = obs::NextTraceId();
  {
    obs::TraceRequestScope scope(trace, "wrap.root");
    for (size_t i = 0; i < 3 * kRing; ++i) {
      TRACE_SPAN("wrap.child");
    }
  }
  // 3×ring child spans plus the root were recorded into one 4096-slot
  // ring; exactly one ring's worth survives, every record intact.
  std::vector<obs::SpanView> spans =
      obs::TraceRecorder::Instance().Collect(trace);
  EXPECT_EQ(spans.size(), kRing);
  size_t roots = 0;
  for (const obs::SpanView& s : spans) {
    EXPECT_EQ(s.trace_id, trace);
    std::string name = s.name;
    EXPECT_TRUE(name == "wrap.child" || name == "wrap.root") << name;
    if (name == "wrap.root") ++roots;
  }
  // The root closed last, so it must be among the survivors.
  EXPECT_EQ(roots, 1u);
}

TEST(TraceRingWrapTest, CrossThreadAdoptionSurvivesMidWrap) {
  constexpr size_t kRing = obs::internal::ThreadRing::kSlots;
  uint64_t trace = obs::NextTraceId();
  obs::TraceRequestScope scope(trace, "wrap.adopt.root");
  obs::TraceHandle handle = obs::CurrentTrace();

  std::thread worker([&] {
    {
      // First batch of adopted spans — doomed to be overwritten below.
      obs::ScopedTraceContext adopt(handle);
      for (int i = 0; i < 100; ++i) {
        TRACE_SPAN("wrap.adopt.early");
      }
    }
    {
      // Unrelated trace floods this thread's ring past a full lap.
      obs::TraceHandle filler{obs::NextTraceId(), 0};
      obs::ScopedTraceContext adopt(filler);
      for (size_t i = 0; i < kRing; ++i) {
        TRACE_SPAN("wrap.adopt.filler");
      }
    }
    {
      // Adopted spans recorded after the wrap must survive.
      obs::ScopedTraceContext adopt(handle);
      for (int i = 0; i < 50; ++i) {
        TRACE_SPAN("wrap.adopt.late");
      }
    }
  });
  worker.join();

  std::vector<obs::SpanView> spans =
      obs::TraceRecorder::Instance().Collect(trace);
  size_t early = 0, late = 0;
  for (const obs::SpanView& s : spans) {
    std::string name = s.name;
    if (name == "wrap.adopt.early") ++early;
    if (name == "wrap.adopt.late") ++late;
    // Adopted spans keep the root as parent context (parent id from the
    // handle), never a torn id from the filler trace.
    if (name == "wrap.adopt.early" || name == "wrap.adopt.late") {
      EXPECT_EQ(s.parent_id, handle.span_id);
    }
  }
  EXPECT_EQ(early, 0u);  // lapped by the filler trace
  EXPECT_EQ(late, 50u);
}

// --- Incident bundles ----------------------------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(IncidentManagerTest, DumpWritesSectionsAndManifest) {
  ScopedLogCapture capture;  // swallow the kWarning bundle announcement
  std::string dir =
      ::testing::TempDir() + "/structura_incident_dump_test";
  std::filesystem::remove_all(dir);
  obs::IncidentManager::Options options;
  options.dir = dir;
  obs::IncidentManager manager(options);
  manager.AddSection("alpha.txt", [] { return std::string("alpha body"); });
  manager.AddSection("beta.json", [] { return std::string("{\"b\":1}"); });

  uint64_t events_before = obs::EventJournal::Instance().recorded();
  std::string bundle = manager.MaybeDump("health_critical: test");
  ASSERT_FALSE(bundle.empty());
  EXPECT_EQ(manager.dumps(), 1u);
  EXPECT_EQ(manager.suppressed(), 0u);
  EXPECT_GE(manager.last_dump_nanos(), 0);

  EXPECT_EQ(ReadFileOrDie(bundle + "/alpha.txt"), "alpha body");
  EXPECT_EQ(ReadFileOrDie(bundle + "/beta.json"), "{\"b\":1}");
  std::string manifest = ReadFileOrDie(bundle + "/MANIFEST.json");
  EXPECT_TRUE(IsValidJson(manifest)) << manifest;
  EXPECT_NE(manifest.find("\"trigger\":\"health_critical: test\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"alpha.txt\""), std::string::npos);
  EXPECT_NE(manifest.find("\"beta.json\""), std::string::npos);

  // The dump itself lands in the event journal.
  EXPECT_EQ(obs::EventJournal::Instance().recorded(), events_before + 1);
  std::vector<obs::EventView> tail = obs::EventJournal::Instance().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].category, obs::EventCategory::kIncident);
  EXPECT_EQ(tail[0].code, obs::EventCode::kIncidentDump);
  std::filesystem::remove_all(dir);
}

TEST(IncidentManagerTest, CooldownSuppressesRepeatTriggers) {
  ScopedLogCapture capture;
  std::string dir =
      ::testing::TempDir() + "/structura_incident_cooldown_test";
  std::filesystem::remove_all(dir);
  SimulatedClock::Options clock_options;
  clock_options.auto_advance = false;
  SimulatedClock clock(clock_options);
  obs::IncidentManager::Options options;
  options.dir = dir;
  options.cooldown_ms = 1000;
  options.clock = &clock;
  obs::IncidentManager manager(options);
  manager.AddSection("s.txt", [] { return std::string("s"); });

  EXPECT_FALSE(manager.MaybeDump("first").empty());
  // Inside the cooldown window: suppressed, counted, no directory.
  EXPECT_TRUE(manager.MaybeDump("second").empty());
  clock.AdvanceMillis(999);
  EXPECT_TRUE(manager.MaybeDump("third").empty());
  EXPECT_EQ(manager.dumps(), 1u);
  EXPECT_EQ(manager.suppressed(), 2u);
  // One more millisecond crosses the window.
  clock.AdvanceMillis(1);
  EXPECT_FALSE(manager.MaybeDump("fourth").empty());
  EXPECT_EQ(manager.dumps(), 2u);

  size_t bundles = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_directory()) ++bundles;
  }
  EXPECT_EQ(bundles, 2u);
  std::filesystem::remove_all(dir);
}

TEST(IncidentManagerTest, EmptyDirDisablesDumping) {
  obs::IncidentManager manager(obs::IncidentManager::Options{});
  manager.AddSection("s.txt", [] { return std::string("s"); });
  EXPECT_TRUE(manager.MaybeDump("anything").empty());
  EXPECT_EQ(manager.dumps(), 0u);
  EXPECT_EQ(manager.suppressed(), 0u);
  EXPECT_EQ(manager.last_dump_nanos(), -1);
}

}  // namespace
}  // namespace structura
