#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "core/eval.h"
#include "ii/matcher.h"
#include "ii/resolution.h"
#include "ii/schema_matcher.h"
#include "ii/union_find.h"

namespace structura::ii {
namespace {

MentionRecord M(uint64_t id, const std::string& s) {
  MentionRecord m;
  m.id = id;
  m.surface = s;
  return m;
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already connected
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.SetSize(1), 3u);
}

TEST(UnionFindTest, TransitivityProperty) {
  UnionFind uf(100);
  for (size_t i = 0; i + 2 < 100; i += 3) {
    uf.Union(i, i + 1);
    uf.Union(i + 1, i + 2);
  }
  for (size_t i = 0; i + 2 < 100; i += 3) {
    EXPECT_TRUE(uf.Connected(i, i + 2));
  }
}

TEST(NameMatcherTest, PaperExamples) {
  NameMatcher matcher;
  // "the two different names 'David Smith' and 'D. Smith' ... may in
  // fact refer to the same person" (Section 3.2).
  EXPECT_GE(matcher.Score(M(1, "David Smith"), M(2, "D. Smith")), 0.8);
  EXPECT_GE(matcher.Score(M(1, "David Smith"), M(2, "Smith, David")),
            0.8);
  EXPECT_GE(matcher.Score(M(1, "Madison"), M(2, "City of Madison")), 0.8);
  EXPECT_GE(matcher.Score(M(1, "Madison"), M(2, "Madison, Wisconsin")),
            0.8);
  // Different people stay apart.
  EXPECT_LT(matcher.Score(M(1, "David Smith"), M(2, "Sarah Johnson")),
            0.5);
  EXPECT_LT(matcher.Score(M(1, "Madison"), M(2, "Oakfield")), 0.5);
}

TEST(NameMatcherTest, NormalizeTokens) {
  EXPECT_EQ(NameMatcher::NormalizeTokens("City of Madison"),
            (std::vector<std::string>{"madison"}));
  EXPECT_EQ(NameMatcher::NormalizeTokens("Smith, David"),
            (std::vector<std::string>{"smith", "david"}));
  EXPECT_EQ(NameMatcher::NormalizeTokens("Madison, Wisconsin"),
            (std::vector<std::string>{"madison", "wisconsin"}));
}

TEST(MatcherTest, SymmetryProperty) {
  NameMatcher name;
  JaroWinklerMatcher jw;
  LevenshteinMatcher lev;
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"David Smith", "D. Smith"},
      {"Madison", "Madison, Wisconsin"},
      {"abc", "xyz"},
      {"", "x"}};
  for (const SimilarityMatcher* m :
       std::initializer_list<const SimilarityMatcher*>{&name, &jw, &lev}) {
    for (const auto& [a, b] : pairs) {
      double ab = m->Score(M(1, a), M(2, b));
      double ba = m->Score(M(1, b), M(2, a));
      EXPECT_NEAR(ab, ba, 1e-12) << m->name() << ": " << a << "/" << b;
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

TEST(ResolutionTest, ClustersVariantsTogether) {
  std::vector<MentionRecord> mentions = {
      M(0, "David Smith"), M(1, "D. Smith"),     M(2, "Smith, David"),
      M(3, "Sarah Johnson"), M(4, "S. Johnson"), M(5, "Madison")};
  NameMatcher matcher;
  ResolutionOptions options;
  options.matcher = &matcher;
  options.threshold = 0.8;
  ResolutionResult result = ResolveEntities(mentions, options);
  EXPECT_EQ(result.cluster_of[0], result.cluster_of[1]);
  EXPECT_EQ(result.cluster_of[0], result.cluster_of[2]);
  EXPECT_EQ(result.cluster_of[3], result.cluster_of[4]);
  EXPECT_NE(result.cluster_of[0], result.cluster_of[3]);
  EXPECT_NE(result.cluster_of[0], result.cluster_of[5]);
  EXPECT_EQ(result.num_clusters, 3u);
}

TEST(ResolutionTest, BlockingMatchesExhaustiveResults) {
  // Generate realistic mention variants from the corpus.
  corpus::CorpusOptions options;
  options.num_cities = 8;
  options.num_people = 15;
  options.num_companies = 0;
  options.news_pages = 6;
  options.seed = 77;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);
  std::vector<MentionRecord> mentions;
  std::vector<corpus::EntityId> entities;
  for (const corpus::MentionTruth& m : truth.mentions) {
    mentions.push_back(M(mentions.size(), m.surface));
    entities.push_back(m.entity);
  }
  NameMatcher matcher;
  ResolutionOptions blocked, exhaustive;
  blocked.matcher = exhaustive.matcher = &matcher;
  blocked.threshold = exhaustive.threshold = 0.8;
  blocked.use_blocking = true;
  exhaustive.use_blocking = false;
  ResolutionResult rb = ResolveEntities(mentions, blocked);
  ResolutionResult re = ResolveEntities(mentions, exhaustive);
  // Blocking does far less work...
  EXPECT_LT(rb.pairs_scored, re.pairs_scored);
  // ...and loses little accuracy (same or nearly same F1).
  core::Score sb = core::ScoreClustering(entities, rb.cluster_of);
  core::Score se = core::ScoreClustering(entities, re.cluster_of);
  EXPECT_GE(sb.f1(), se.f1() - 0.05);
  // Initial-style variants ("D. Smith") are genuinely ambiguous across
  // people sharing a surname, so automatic-only F1 plateaus well below
  // 1.0 — exactly the gap the paper argues human intervention closes.
  EXPECT_GT(se.f1(), 0.55);
}

TEST(ResolutionTest, ThresholdControlsMerging) {
  std::vector<MentionRecord> mentions = {M(0, "Madison"),
                                         M(1, "Madisen")};
  JaroWinklerMatcher matcher;
  ResolutionOptions strict;
  strict.matcher = &matcher;
  strict.threshold = 0.99;
  EXPECT_EQ(ResolveEntities(mentions, strict).num_clusters, 2u);
  ResolutionOptions loose;
  loose.matcher = &matcher;
  loose.threshold = 0.85;
  EXPECT_EQ(ResolveEntities(mentions, loose).num_clusters, 1u);
}

TEST(TopKTest, ReturnsMostSimilarFirst) {
  std::vector<MentionRecord> mentions = {
      M(0, "David Smith"), M(1, "D. Smith"), M(2, "David Smithson"),
      M(3, "Zebra Crossing"), M(4, "Aardvark")};
  NameMatcher matcher;
  auto top = TopKCandidates(mentions, 0, matcher, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].b, 1u);  // D. Smith is the closest
  EXPECT_GE(top[0].score, top[1].score);
}

TEST(SchemaMatcherTest, SynonymsAndValues) {
  // The paper: "attributes location and address extracted from two
  // Wikipedia infoboxes may in fact match".
  std::vector<AttributeProfile> a = {
      {"location", {"Madison", "Oakfield", "Rivervale"}},
      {"population", {"233,209", "5,000", "120,000"}},
  };
  std::vector<AttributeProfile> b = {
      {"address", {"Madison", "Rivervale", "Summit"}},
      {"inhabitants", {"233209", "88000"}},
  };
  SchemaMatchOptions options;
  options.synonyms = {{"location", "address"}};
  options.threshold = 0.4;
  auto matches = MatchSchemas(a, b, options);
  ASSERT_GE(matches.size(), 1u);
  EXPECT_EQ(matches[0].a_index, 0u);  // location <-> address first
  EXPECT_EQ(matches[0].b_index, 0u);
  // population <-> inhabitants should match on numeric range overlap.
  bool pop_matched = false;
  for (const auto& m : matches) {
    if (m.a_index == 1 && m.b_index == 1) pop_matched = true;
  }
  EXPECT_TRUE(pop_matched);
}

TEST(SchemaMatcherTest, OneToOneAssignment) {
  std::vector<AttributeProfile> a = {{"name", {"x"}}, {"names", {"x"}}};
  std::vector<AttributeProfile> b = {{"name", {"x"}}};
  auto matches = MatchSchemas(a, b, SchemaMatchOptions{});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].a_index, 0u);  // exact name wins the only slot
}

TEST(SchemaMatcherTest, ValueOverlapNumericVsText) {
  AttributeProfile nums1{"a", {"1", "2", "3"}};
  AttributeProfile nums2{"b", {"2", "3", "4"}};
  AttributeProfile text{"c", {"alpha", "beta"}};
  // Ranges [1,3] and [2,4]: overlap 1 over combined span 3.
  EXPECT_NEAR(ValueOverlap(nums1, nums2), 1.0 / 3.0, 1e-9);
  EXPECT_EQ(ValueOverlap(nums1, text), 0.0);
}

}  // namespace
}  // namespace structura::ii
