#include <map>

#include <gtest/gtest.h>

#include "common/random.h"

#include "hi/aggregation.h"
#include "hi/simulated_user.h"
#include "hi/task.h"

namespace structura::hi {
namespace {

TEST(TaskQueueTest, MostUncertainFirst) {
  TaskQueue q;
  q.Push(MakeVerifyFactTask(1, "M", "a", "v", 0.95, 0));
  q.Push(MakeVerifyFactTask(2, "M", "b", "v", 0.51, 0));
  q.Push(MakeVerifyFactTask(3, "M", "c", "v", 0.70, 0));
  EXPECT_EQ(q.Pop()->id, 2u);
  EXPECT_EQ(q.Pop()->id, 3u);
  EXPECT_EQ(q.Pop()->id, 1u);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(TaskQueueTest, FifoAmongTies) {
  TaskQueue q;
  q.Push(MakeVerifyFactTask(1, "M", "a", "v", 0.6, 0));
  q.Push(MakeVerifyFactTask(2, "M", "b", "v", 0.6, 0));
  EXPECT_EQ(q.Pop()->id, 1u);
  EXPECT_EQ(q.Pop()->id, 2u);
}

TEST(TaskTest, RenderedQuestions) {
  Task t = MakeVerifyMatchTask(1, "David Smith", "D. Smith", 0.8, 5);
  EXPECT_NE(t.question.find("David Smith"), std::string::npos);
  EXPECT_EQ(t.options, (std::vector<std::string>{"yes", "no"}));
  EXPECT_EQ(t.ref, 5u);

  Task c = MakeChooseValueTask(2, "Madison", "temp_01", {"20", "90"},
                               0.5, 3);
  EXPECT_EQ(c.options.size(), 2u);
  EXPECT_NE(c.question.find("temp_01"), std::string::npos);
}

TEST(SimulatedUserTest, AccuracyIsCalibrated) {
  SimulatedUser::Profile p;
  p.name = "u";
  p.accuracy = 0.8;
  p.seed = 3;
  SimulatedUser user(p);
  Task task = MakeVerifyFactTask(1, "s", "a", "v", 0.5, 0);
  int correct = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (user.Respond(task, "yes").choice == "yes") ++correct;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, 0.8, 0.03);
}

TEST(SimulatedUserTest, SpammerIgnoresTruth) {
  SimulatedUser::Profile p;
  p.name = "spam";
  p.accuracy = 1.0;
  p.spam_rate = 1.0;
  p.seed = 4;
  SimulatedUser user(p);
  Task task = MakeVerifyFactTask(1, "s", "a", "v", 0.5, 0);
  int yes = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (user.Respond(task, "yes").choice == "yes") ++yes;
  }
  EXPECT_NEAR(static_cast<double>(yes) / n, 0.5, 0.05);
}

TEST(MakeCrowdTest, SpreadsAccuracy) {
  auto crowd = MakeCrowd(5, 0.6, 1.0, 9);
  ASSERT_EQ(crowd.size(), 5u);
  EXPECT_DOUBLE_EQ(crowd.front().true_accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(crowd.back().true_accuracy(), 1.0);
}

std::vector<Answer> Answers(
    uint64_t task, const std::vector<std::pair<std::string, std::string>>&
                       user_choices) {
  std::vector<Answer> out;
  for (const auto& [user, choice] : user_choices) {
    out.push_back(Answer{task, user, choice});
  }
  return out;
}

TEST(MajorityVoteTest, PicksPlurality) {
  auto agg = MajorityVote(
      Answers(1, {{"a", "yes"}, {"b", "yes"}, {"c", "no"}}));
  EXPECT_EQ(agg.choice, "yes");
  EXPECT_NEAR(agg.confidence, 2.0 / 3.0, 1e-9);
}

TEST(MajorityVoteTest, DeterministicTieBreak) {
  auto agg = MajorityVote(Answers(1, {{"a", "no"}, {"b", "yes"}}));
  EXPECT_EQ(agg.choice, "no");  // lexicographically smaller
}

TEST(WeightedVoteTest, ReputationOutweighsCount) {
  std::map<std::string, double> weights{
      {"expert", 0.95}, {"troll1", 0.1}, {"troll2", 0.1}};
  auto agg = WeightedVote(
      Answers(1, {{"expert", "yes"}, {"troll1", "no"}, {"troll2", "no"}}),
      weights);
  EXPECT_EQ(agg.choice, "yes");
}

TEST(DawidSkeneTest, RecoversUserQuality) {
  // 40 binary tasks; 3 good users (always right), 2 spammers answering
  // "no" always. Truth is "yes" for even tasks, "no" for odd.
  std::vector<Answer> answers;
  std::map<uint64_t, std::vector<std::string>> options;
  for (uint64_t t = 1; t <= 40; ++t) {
    std::string truth = (t % 2 == 0) ? "yes" : "no";
    options[t] = {"yes", "no"};
    for (const char* good : {"g1", "g2", "g3"}) {
      answers.push_back(Answer{t, good, truth});
    }
    for (const char* bad : {"b1", "b2"}) {
      answers.push_back(Answer{t, bad, "no"});
    }
  }
  DawidSkeneResult result = DawidSkene(answers, options);
  for (uint64_t t = 1; t <= 40; ++t) {
    std::string truth = (t % 2 == 0) ? "yes" : "no";
    EXPECT_EQ(result.task_answers[t].choice, truth) << t;
  }
  EXPECT_GT(result.user_accuracy["g1"], 0.9);
  // Spammers agree with truth only on odd tasks (half the time).
  EXPECT_LT(result.user_accuracy["b1"], 0.8);
  EXPECT_GT(result.iterations_run, 0);
}

TEST(DawidSkeneTest, AtLeastAsGoodAsMajorityWithRandomSpammers) {
  // Spammers outnumber experts per task but answer at random; experts are
  // consistent, so EM should learn to downweight the spam.
  std::vector<Answer> answers;
  std::map<uint64_t, std::vector<std::string>> options;
  size_t majority_correct = 0, ds_correct = 0;
  const uint64_t kTasks = 60;
  Rng rng(11);
  std::vector<std::string> truths;
  for (uint64_t t = 1; t <= kTasks; ++t) {
    std::string truth = rng.NextBool(0.5) ? "yes" : "no";
    truths.push_back(truth);
    options[t] = {"yes", "no"};
    answers.push_back(Answer{t, "e1", truth});
    answers.push_back(Answer{t, "e2", truth});
    for (const char* s : {"s1", "s2", "s3"}) {
      answers.push_back(Answer{t, s, rng.NextBool(0.5) ? "yes" : "no"});
    }
  }
  std::map<uint64_t, std::vector<Answer>> per_task;
  for (const Answer& a : answers) per_task[a.task_id].push_back(a);
  DawidSkeneResult ds = DawidSkene(answers, options);
  for (uint64_t t = 1; t <= kTasks; ++t) {
    if (MajorityVote(per_task[t]).choice == truths[t - 1]) {
      ++majority_correct;
    }
    if (ds.task_answers[t].choice == truths[t - 1]) ++ds_correct;
  }
  EXPECT_GE(ds_correct, majority_correct);
  EXPECT_GE(ds_correct, kTasks - 3);
  // EM should rank the experts above the spammers.
  EXPECT_GT(ds.user_accuracy["e1"], ds.user_accuracy["s1"]);
}

}  // namespace
}  // namespace structura::hi
