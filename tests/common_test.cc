#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace structura {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not_found: missing thing");
}

TEST(StatusTest, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable);
       ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Result<int> Chained(int v) {
  STRUCTURA_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled + 1;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Chained(5), 11);
  EXPECT_FALSE(Chained(0).ok());
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitAndTrimDropsEmpties) {
  EXPECT_EQ(SplitAndTrim("  a , b ,, c  ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, JoinRoundTrips) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "::"), "x::y::z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(Trim("  hi\t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  double v;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("  -2 ", &v));
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, ParseInt64) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", std::string(500, 'a').c_str()),
            std::string(500, 'a'));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.Next() != b.Next();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  size_t low = 0, n = 10000;
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextZipf(100, 1.2) < 10) ++low;
  }
  // Rank 0-9 out of 100 should receive far more than 10% of draws.
  EXPECT_GT(low, n / 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()),
      b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(HashTest, StableAndSeeded) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(Fnv1a64("hello", 1), Fnv1a64("hello", 2));
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter, i] {
      counter.fetch_add(1);
      return i;
    }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[i].get(), i);
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(pool, 100, [&](size_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WorkerSurvivesThrowingTask) {
  // Regression: a raw Post()ed task that throws used to escape
  // WorkerLoop and std::terminate the process. Now the task is dropped,
  // counted, and the worker keeps serving.
  ThreadPool pool(1);
  pool.Post([] { throw std::runtime_error("boom"); });
  pool.WaitIdle();
  EXPECT_EQ(pool.stats().dropped_tasks, 1u);

  // Same worker still processes later work.
  std::atomic<int> counter{0};
  pool.Post([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(pool.stats().dropped_tasks, 1u);
}

TEST(ThreadPoolTest, BoundedQueueRejectsOverflow) {
  ThreadPool pool(1, /*max_queue=*/2);
  EXPECT_EQ(pool.max_queue(), 2u);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the worker so subsequent posts stay queued.
  ASSERT_TRUE(pool.TryPost([&] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  }));
  // Wait for the blocker to leave the queue and start running.
  while (pool.stats().queue_depth > 0) std::this_thread::yield();

  size_t accepted = 0;
  std::vector<std::optional<std::future<int>>> futures;
  for (int i = 0; i < 6; ++i) {
    auto f = pool.TrySubmit([&ran] {
      ran.fetch_add(1);
      return 1;
    });
    if (f.has_value()) {
      ++accepted;
      futures.push_back(std::move(f));
    }
  }
  EXPECT_EQ(accepted, 2u);  // queue capacity
  EXPECT_EQ(pool.stats().rejected_tasks, 4u);
  EXPECT_GE(pool.stats().queue_high_water, 2u);

  release.store(true);
  for (auto& f : futures) EXPECT_EQ(f->get(), 1);
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 3);  // blocker + the two accepted
}

TEST(ThreadPoolTest, UnboundedSubmitNeverRejects) {
  ThreadPool pool(2);  // max_queue = 0: unbounded
  std::vector<std::optional<std::future<int>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.TrySubmit([i] { return i; }));
    ASSERT_TRUE(futures.back().has_value());
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ((*futures[i]).get(), i);
  EXPECT_EQ(pool.stats().rejected_tasks, 0u);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  // Regression: a throwing body used to strand the `done` counter and
  // hang ParallelFor forever. Now the first exception is rethrown on
  // the calling thread once every index has been attempted.
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 100,
                           [](size_t i) {
                             if (i == 37) throw std::runtime_error("i=37");
                           }),
               std::runtime_error);
  // The pool is still healthy afterwards.
  std::atomic<int> hits{0};
  ParallelFor(pool, 10, [&](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPoolTest, ParallelForGrainYieldsQueueToOtherWork) {
  // Starvation regression for the serve path: a long ParallelFor on a
  // saturated pool used to hold its worker until every index ran,
  // parking concurrently-posted tasks behind the whole scan. With a
  // grain, the chain re-posts itself to the BACK of the queue after
  // `grain` bodies, so the single worker below must run the marker task
  // (posted from inside body 0) before it reaches body 1.
  ThreadPool pool(1);
  std::atomic<bool> marker_ran{false};
  std::atomic<bool> marker_before_body1{false};
  ParallelForOptions opts;
  opts.grain = 1;
  ParallelFor(pool, 4, opts, [&](size_t i) {
    if (i == 0) {
      pool.Post([&] { marker_ran.store(true); });
    } else if (i == 1) {
      marker_before_body1.store(marker_ran.load());
    }
  });
  EXPECT_TRUE(marker_ran.load());
  EXPECT_TRUE(marker_before_body1.load())
      << "grain=1 chain ran body 1 before yielding to the queued marker";
  // Contrast: with no grain the chain keeps its worker to the end, so
  // the marker runs only after every body.
  std::atomic<bool> marker2_ran{false};
  std::atomic<bool> marker2_before_tail{true};
  ParallelFor(pool, 4, [&](size_t i) {
    if (i == 0) {
      pool.Post([&] { marker2_ran.store(true); });
    } else if (i == 3) {
      marker2_before_tail.store(marker2_ran.load());
    }
  });
  pool.WaitIdle();
  EXPECT_TRUE(marker2_ran.load());
  EXPECT_FALSE(marker2_before_tail.load())
      << "ungrained chain unexpectedly yielded mid-range";
}

TEST(ThreadPoolTest, ParallelForGrainCoversAllIndexesAndCapsWorkers) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelForOptions opts;
  opts.grain = 3;
  opts.max_workers = 2;
  ParallelFor(pool, hits.size(), opts,
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(DeadlineTest, InfiniteByDefaultAndExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), UINT64_MAX);

  Deadline past = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(past.IsInfinite());
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.RemainingMillis(), 0u);

  Deadline future = Deadline::AfterMillis(60000);
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.RemainingMillis(), 0u);
  EXPECT_LE(future.RemainingMillis(), 60000u);
}

TEST(CancellationTest, TokenObservesSourceAndIsSticky) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancelled());
  // Copies observe the same flag.
  CancellationToken copy = token;
  EXPECT_TRUE(copy.cancelled());
  // A default token can never be cancelled.
  EXPECT_FALSE(CancellationToken().cancelled());
}

TEST(CancellationTest, InterruptCheckReportsTheRightCode) {
  EXPECT_TRUE(Interrupt{}.Check().ok());
  EXPECT_FALSE(Interrupt{}.CanInterrupt());

  Interrupt timed;
  timed.deadline = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(timed.CanInterrupt());
  EXPECT_EQ(timed.Check().code(), StatusCode::kDeadlineExceeded);

  CancellationSource source;
  source.Cancel();
  Interrupt cancelled;
  cancelled.token = source.token();
  EXPECT_EQ(cancelled.Check().code(), StatusCode::kCancelled);

  // Cancellation wins over an expired deadline: the caller asked first.
  Interrupt both;
  both.deadline = Deadline::AfterMillis(0);
  both.token = source.token();
  EXPECT_EQ(both.Check().code(), StatusCode::kCancelled);
}

using FpSpec = FailpointRegistry::Spec;

TEST(FailpointTest, DisarmedIsFree) {
  EXPECT_FALSE(FailpointRegistry::Active());
  EXPECT_TRUE(MaybeFail("fp.test.unarmed").ok());
  // No registry traffic when nothing is armed: counters stay empty.
  EXPECT_EQ(FailpointRegistry::Instance().GetCounters("fp.test.unarmed").hits,
            0u);
}

TEST(FailpointTest, OnceFiresExactlyOnce) {
  ScopedFailpoint fp("fp.test.once", FpSpec::Once());
  EXPECT_FALSE(MaybeFail("fp.test.once").ok());
  EXPECT_TRUE(MaybeFail("fp.test.once").ok());
  EXPECT_TRUE(MaybeFail("fp.test.once").ok());
  auto counters = FailpointRegistry::Instance().GetCounters("fp.test.once");
  EXPECT_EQ(counters.hits, 3u);
  EXPECT_EQ(counters.fires, 1u);
}

TEST(FailpointTest, NthFiresOnExactHit) {
  ScopedFailpoint fp("fp.test.nth", FpSpec::Nth(3));
  EXPECT_TRUE(MaybeFail("fp.test.nth").ok());
  EXPECT_TRUE(MaybeFail("fp.test.nth").ok());
  EXPECT_FALSE(MaybeFail("fp.test.nth").ok());
  EXPECT_TRUE(MaybeFail("fp.test.nth").ok());
}

TEST(FailpointTest, FromFiresFromHitOnward) {
  ScopedFailpoint fp("fp.test.from", FpSpec::From(2));
  EXPECT_TRUE(MaybeFail("fp.test.from").ok());
  EXPECT_FALSE(MaybeFail("fp.test.from").ok());
  EXPECT_FALSE(MaybeFail("fp.test.from").ok());
  EXPECT_EQ(FailpointRegistry::Instance().GetCounters("fp.test.from").fires,
            2u);
}

TEST(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  auto run = [] {
    ScopedFailpoint fp("fp.test.prob", FpSpec::WithProbability(0.5, 99));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!MaybeFail("fp.test.prob").ok());
    }
    return fired;
  };
  std::vector<bool> first = run();
  EXPECT_EQ(first, run());  // re-arming reseeds: identical sequence
  size_t fires = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fires, 16u);
  EXPECT_LT(fires, 48u);
}

TEST(FailpointTest, CountOnlyNeverFiresButCounts) {
  ScopedFailpoint fp("fp.test.count", FpSpec::CountOnly());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(MaybeFail("fp.test.count").ok());
  auto counters = FailpointRegistry::Instance().GetCounters("fp.test.count");
  EXPECT_EQ(counters.hits, 5u);
  EXPECT_EQ(counters.fires, 0u);
}

TEST(FailpointTest, ScopedGuardDisarmsOnExit) {
  {
    ScopedFailpoint fp("fp.test.scope", FpSpec::Always());
    EXPECT_TRUE(FailpointRegistry::Instance().IsArmed("fp.test.scope"));
    EXPECT_FALSE(MaybeFail("fp.test.scope").ok());
  }
  EXPECT_FALSE(FailpointRegistry::Instance().IsArmed("fp.test.scope"));
  EXPECT_TRUE(MaybeFail("fp.test.scope").ok());
}

TEST(FailpointTest, SuppressionShieldsCurrentThread) {
  ScopedFailpoint fp("fp.test.suppress", FpSpec::Always());
  {
    ScopedFailpointSuppression shield;
    EXPECT_TRUE(MaybeFail("fp.test.suppress").ok());
    {
      ScopedFailpointSuppression nested;  // nesting must compose
      EXPECT_TRUE(MaybeFail("fp.test.suppress").ok());
    }
    EXPECT_TRUE(MaybeFail("fp.test.suppress").ok());
  }
  EXPECT_FALSE(MaybeFail("fp.test.suppress").ok());
}

TEST(FailpointTest, FiredStatusNamesTheFailpoint) {
  ScopedFailpoint fp("fp.test.named", FpSpec::Always());
  Status status = MaybeFail("fp.test.named");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("fp.test.named"), std::string::npos);
}

TEST(FailpointTest, SnapshotListsArmedAndHitFailpoints) {
  ScopedFailpoint a("fp.test.snap_a", FpSpec::Once());
  ScopedFailpoint b("fp.test.snap_b", FpSpec::CountOnly());
  (void)MaybeFail("fp.test.snap_a");
  (void)MaybeFail("fp.test.snap_b");
  auto snapshot = FailpointRegistry::Instance().Snapshot();
  std::map<std::string, FailpointRegistry::Counters> byname(
      snapshot.begin(), snapshot.end());
  ASSERT_TRUE(byname.count("fp.test.snap_a"));
  ASSERT_TRUE(byname.count("fp.test.snap_b"));
  EXPECT_EQ(byname["fp.test.snap_a"].fires, 1u);
  EXPECT_EQ(byname["fp.test.snap_b"].fires, 0u);
}

TEST(FailpointTest, RearmResetsCounters) {
  auto& registry = FailpointRegistry::Instance();
  registry.Arm("fp.test.rearm", FpSpec::Always());
  (void)MaybeFail("fp.test.rearm");
  EXPECT_EQ(registry.GetCounters("fp.test.rearm").fires, 1u);
  registry.Arm("fp.test.rearm", FpSpec::Nth(2));
  EXPECT_EQ(registry.GetCounters("fp.test.rearm").hits, 0u);
  EXPECT_TRUE(MaybeFail("fp.test.rearm").ok());
  EXPECT_FALSE(MaybeFail("fp.test.rearm").ok());
  registry.Disarm("fp.test.rearm");
  EXPECT_FALSE(registry.IsArmed("fp.test.rearm"));
}

TEST(ClockTest, RealClockAdvances) {
  Clock* clock = Clock::Real();
  const int64_t a = clock->NowNanos();
  clock->SleepForNanos(1'000'000);
  EXPECT_GT(clock->NowNanos(), a);
}

TEST(ClockTest, ManualSimClockMovesOnlyWhenAdvanced) {
  SimulatedClock::Options opts;
  opts.auto_advance = false;
  SimulatedClock clock(opts);
  const int64_t a = clock.NowNanos();
  EXPECT_EQ(clock.NowNanos(), a);
  clock.AdvanceMillis(5);
  EXPECT_EQ(clock.NowNanos(), a + 5'000'000);
}

TEST(ClockTest, AutoAdvanceSleepIsImmediate) {
  SimulatedClock clock;  // auto-advance
  const int64_t a = clock.NowNanos();
  const auto real_start = std::chrono::steady_clock::now();
  clock.SleepForMillis(30'000);  // 30 simulated seconds
  EXPECT_GE(clock.NowNanos() - a, int64_t{30'000} * 1'000'000);
  EXPECT_LT(std::chrono::steady_clock::now() - real_start,
            std::chrono::seconds(5));
}

TEST(ClockTest, ManualSleeperWakesWhenAdvancedPastTarget) {
  SimulatedClock::Options opts;
  opts.auto_advance = false;
  SimulatedClock clock(opts);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepForMillis(50);
    woke.store(true);
  });
  // Not yet: time has not moved.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.AdvanceMillis(60);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ClockTest, DeadlineExpiresOnSimulatedTime) {
  SimulatedClock::Options opts;
  opts.auto_advance = false;
  SimulatedClock clock(opts);
  Deadline d = Deadline::AfterMillis(100, &clock);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0);
  clock.AdvanceMillis(99);
  EXPECT_FALSE(d.Expired());
  clock.AdvanceMillis(2);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), 0);
}

TEST(ClockTest, DeadlineInfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
}

TEST(ClockTest, StopwatchMeasuresSimulatedTime) {
  SimulatedClock::Options opts;
  opts.auto_advance = false;
  SimulatedClock clock(opts);
  Stopwatch watch(&clock);
  clock.AdvanceMillis(250);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 250.0);
  watch.Reset();
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 0.0);
}

TEST(ClockTest, WaitForPredHonorsNotification) {
  // Manual mode: simulated time never moves, so the wait can only end
  // via the cross-thread notification.
  SimulatedClock::Options opts;
  opts.auto_advance = false;
  SimulatedClock clock(opts);
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::thread notifier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      std::lock_guard<std::mutex> lock(mu);
      ready = true;
    }
    cv.notify_all();
  });
  bool got = false;
  {
    std::unique_lock<std::mutex> lock(mu);
    got = clock.WaitForPred(cv, lock, int64_t{60'000} * 1'000'000'000,
                            [&] { return ready; });
  }
  notifier.join();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace structura
