#include <gtest/gtest.h>

#include "provenance/lineage.h"

namespace structura::provenance {
namespace {

TEST(LineageTest, AddNodesAndEdges) {
  LineageGraph g;
  NodeId doc = g.AddNode(NodeKind::kDocument, "doc:Madison");
  NodeId fact = g.AddNode(NodeKind::kFact, "fact#1 temp=20");
  ASSERT_TRUE(g.AddEdge(fact, doc, "extracted-from").ok());
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  auto sources = g.SourcesOf(fact);
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(*sources, (std::vector<NodeId>{doc}));
}

TEST(LineageTest, RejectsBadEdges) {
  LineageGraph g;
  NodeId a = g.AddNode(NodeKind::kFact, "a");
  EXPECT_FALSE(g.AddEdge(a, 999).ok());
  EXPECT_FALSE(g.AddEdge(999, a).ok());
  EXPECT_FALSE(g.AddEdge(a, a).ok());
}

TEST(LineageTest, ExplainRendersDerivationTree) {
  LineageGraph g;
  NodeId doc = g.AddNode(NodeKind::kDocument, "doc#1");
  NodeId op = g.AddNode(NodeKind::kOperator, "infobox");
  NodeId fact = g.AddNode(NodeKind::kFact, "temp_01=20");
  NodeId belief = g.AddNode(NodeKind::kBelief, "Madison.temp_01");
  g.AddEdge(fact, doc, "extracted-from");
  g.AddEdge(fact, op, "produced-by");
  g.AddEdge(belief, fact, "aggregates");
  auto text = g.Explain(belief);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("belief: Madison.temp_01"), std::string::npos);
  EXPECT_NE(text->find("aggregates"), std::string::npos);
  EXPECT_NE(text->find("doc#1"), std::string::npos);
  EXPECT_NE(text->find("infobox"), std::string::npos);
}

TEST(LineageTest, ExplainDepthLimit) {
  LineageGraph g;
  NodeId prev = g.AddNode(NodeKind::kDocument, "level0");
  for (int i = 1; i <= 10; ++i) {
    NodeId next =
        g.AddNode(NodeKind::kFact, "level" + std::to_string(i));
    g.AddEdge(next, prev);
    prev = next;
  }
  auto text = g.Explain(prev, 3);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("level7"), std::string::npos);
  EXPECT_EQ(text->find("level2"), std::string::npos);
}

TEST(LineageTest, SupportingDocumentsTransitive) {
  LineageGraph g;
  NodeId d1 = g.AddNode(NodeKind::kDocument, "d1");
  NodeId d2 = g.AddNode(NodeKind::kDocument, "d2");
  NodeId f1 = g.AddNode(NodeKind::kFact, "f1");
  NodeId f2 = g.AddNode(NodeKind::kFact, "f2");
  NodeId tuple = g.AddNode(NodeKind::kTuple, "t");
  g.AddEdge(f1, d1);
  g.AddEdge(f2, d2);
  g.AddEdge(tuple, f1);
  g.AddEdge(tuple, f2);
  auto docs = g.SupportingDocuments(tuple);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 2u);
}

TEST(LineageTest, Bindings) {
  LineageGraph g;
  NodeId n = g.AddNode(NodeKind::kBelief, "b");
  g.Bind("belief:Madison:temp_01", n);
  auto found = g.Lookup("belief:Madison:temp_01");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, n);
  EXPECT_FALSE(g.Lookup("missing").ok());
}

TEST(LineageTest, UnknownNodeErrors) {
  LineageGraph g;
  EXPECT_FALSE(g.Explain(1).ok());
  EXPECT_FALSE(g.SourcesOf(0).ok());
  EXPECT_FALSE(g.SupportingDocuments(5).ok());
}

}  // namespace
}  // namespace structura::provenance
