#include <set>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "ie/standard.h"
#include "lang/executor.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "lang/plan.h"

namespace structura::lang {
namespace {

// ----------------------------------------------------------------- Parser

TEST(ParserTest, SelectStatement) {
  auto stmts = Parse(
      "SELECT subject, AVG(value) AS t FROM facts "
      "WHERE attribute LIKE \"temp_%\" AND value > 10 "
      "GROUP BY subject ORDER BY t DESC LIMIT 5;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  ASSERT_EQ(stmts->size(), 1u);
  const Statement& s = (*stmts)[0];
  EXPECT_EQ(s.kind, Statement::Kind::kSelect);
  const SelectAst& sel = std::get<SelectAst>(s.body);
  ASSERT_EQ(sel.items.size(), 2u);
  EXPECT_FALSE(sel.items[0].is_aggregate);
  EXPECT_TRUE(sel.items[1].is_aggregate);
  EXPECT_EQ(sel.items[1].alias, "t");
  ASSERT_EQ(sel.where.size(), 2u);
  EXPECT_EQ(sel.where[0].op, query::CompareOp::kLike);
  EXPECT_EQ(sel.where[1].op, query::CompareOp::kGt);
  EXPECT_EQ(sel.group_by, (std::vector<std::string>{"subject"}));
  EXPECT_EQ(sel.order_by, "t");
  EXPECT_TRUE(sel.descending);
  EXPECT_EQ(sel.limit, 5u);
}

TEST(ParserTest, CreateViewExtract) {
  auto stmts = Parse(
      "CREATE VIEW raw AS EXTRACT infobox, temp_sentence FROM pages "
      "WHERE category = \"City\" WITH CONFIDENCE >= 0.5;");
  ASSERT_TRUE(stmts.ok());
  const Statement& s = (*stmts)[0];
  EXPECT_EQ(s.kind, Statement::Kind::kCreateView);
  EXPECT_EQ(s.view_name, "raw");
  const ExtractAst& ex = std::get<ExtractAst>(s.body);
  EXPECT_EQ(ex.extractors,
            (std::vector<std::string>{"infobox", "temp_sentence"}));
  EXPECT_EQ(ex.source, "pages");
  ASSERT_EQ(ex.where.size(), 1u);
  EXPECT_DOUBLE_EQ(ex.min_confidence, 0.5);
}

TEST(ParserTest, CreateViewResolve) {
  auto stmts = Parse(
      "CREATE VIEW ents AS RESOLVE ENTITIES FROM raw COLUMN subject "
      "USING name THRESHOLD 0.85 WITH HUMAN REVIEW BUDGET 40;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const ResolveAst& r = std::get<ResolveAst>((*stmts)[0].body);
  EXPECT_EQ(r.source, "raw");
  EXPECT_EQ(r.column, "subject");
  EXPECT_EQ(r.matcher, "name");
  EXPECT_DOUBLE_EQ(r.threshold, 0.85);
  EXPECT_EQ(r.review_budget, 40);
}

TEST(ParserTest, ExplainPrefixAndComments) {
  auto stmts = Parse(
      "# leading comment\n"
      "EXPLAIN SELECT * FROM v; # trailing\n");
  ASSERT_TRUE(stmts.ok());
  EXPECT_TRUE((*stmts)[0].explain);
}

TEST(ParserTest, MultipleStatements) {
  auto stmts = Parse(
      "CREATE VIEW a AS SELECT * FROM x;"
      "SELECT COUNT(*) FROM a;");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 2u);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("SELECT FROM x;").ok());
  EXPECT_FALSE(Parse("CREATE view;").ok());
  EXPECT_FALSE(Parse("SELECT * FROM x").ok());  // missing ';'
  EXPECT_FALSE(Parse("SELECT * FROM x WHERE a ~ 1;").ok());
  EXPECT_FALSE(Parse("SELECT * FROM x WHERE a = ;").ok());
  EXPECT_FALSE(Parse("SELECT a FROM x WHERE s = \"unterminated;").ok());
  EXPECT_FALSE(Parse("RESOLVE ENTITIES FROM a;").ok());
}

TEST(ParserTest, NonGroupedColumnRejectedAtPlanTime) {
  auto stmts = Parse("SELECT subject, AVG(value) FROM v;");
  ASSERT_TRUE(stmts.ok());
  EXPECT_FALSE(BuildPlan((*stmts)[0]).ok());
}

// ------------------------------------------------------------- Optimizer

TEST(OptimizerTest, PatternMayMatchRules) {
  using query::CompareOp;
  using query::Condition;
  using query::Value;
  auto cond = [](CompareOp op, const std::string& lit) {
    return Condition{"attribute", op, Value::Str(lit)};
  };
  // Fixed-attribute extractor vs equality.
  EXPECT_TRUE(PatternMayMatch("population",
                              cond(CompareOp::kEq, "population")));
  EXPECT_FALSE(PatternMayMatch("population",
                               cond(CompareOp::kEq, "founded")));
  // Family pattern vs equality and LIKE.
  EXPECT_TRUE(PatternMayMatch("temp_%", cond(CompareOp::kEq, "temp_03")));
  EXPECT_FALSE(PatternMayMatch("temp_%",
                               cond(CompareOp::kEq, "population")));
  EXPECT_TRUE(PatternMayMatch("temp_%", cond(CompareOp::kLike, "temp_%")));
  EXPECT_TRUE(PatternMayMatch("%", cond(CompareOp::kEq, "anything")));
  // Ranges.
  EXPECT_TRUE(PatternMayMatch("temp_%", cond(CompareOp::kGe, "temp_03")));
  EXPECT_FALSE(PatternMayMatch("temp_%", cond(CompareOp::kLe, "pop")));
  EXPECT_FALSE(PatternMayMatch("population",
                               cond(CompareOp::kGe, "temp_03")));
  // Non-attribute conditions never prune.
  EXPECT_TRUE(PatternMayMatch(
      "temp_%", Condition{"subject", CompareOp::kEq, Value::Str("x")}));
}

std::unique_ptr<ExecutionContext> MakeContext(
    const text::DocumentCollection* docs,
    std::vector<ie::ExtractorPtr>* owned,
    std::vector<std::unique_ptr<ii::SimilarityMatcher>>* matchers) {
  auto ctx = std::make_unique<ExecutionContext>();
  ctx->docs = docs;
  owned->push_back(ie::MakeInfoboxExtractor());
  ctx->extractors["infobox"] = owned->back().get();
  ctx->extractor_attributes["infobox"] = "%";
  owned->push_back(ie::MakeTemperatureExtractor());
  ctx->extractors["temp_sentence"] = owned->back().get();
  ctx->extractor_attributes["temp_sentence"] = "temp_%";
  owned->push_back(ie::MakePopulationExtractor());
  ctx->extractors["population_sentence"] = owned->back().get();
  ctx->extractor_attributes["population_sentence"] = "population";
  owned->push_back(ie::MakeMayorExtractor());
  ctx->extractors["mayor_sentence"] = owned->back().get();
  ctx->extractor_attributes["mayor_sentence"] = "mayor";
  matchers->push_back(std::make_unique<ii::NameMatcher>());
  ctx->matchers["name"] = matchers->back().get();
  return ctx;
}

struct LangFixture : public ::testing::Test {
  void SetUp() override {
    corpus::CorpusOptions options;
    options.num_cities = 12;
    options.num_people = 15;
    options.num_companies = 4;
    options.news_pages = 4;
    options.seed = 21;
    corpus::GenerateCorpus(options, &docs, &truth);
    ctx = MakeContext(&docs, &owned, &matchers);
  }

  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  std::vector<ie::ExtractorPtr> owned;
  std::vector<std::unique_ptr<ii::SimilarityMatcher>> matchers;
  std::unique_ptr<ExecutionContext> ctx;
};

TEST_F(LangFixture, OptimizerPushesAndPrunes) {
  auto stmts = Parse(
      "CREATE VIEW v AS EXTRACT infobox, temp_sentence, "
      "population_sentence FROM pages "
      "WHERE category = \"City\" AND attribute = \"population\" "
      "AND confidence >= 0.5;");
  ASSERT_TRUE(stmts.ok());
  auto plan = BuildPlan((*stmts)[0]);
  ASSERT_TRUE(plan.ok());
  OptimizerReport report;
  PlanPtr optimized = Optimize(std::move(*plan), ctx->Catalog(), &report);
  EXPECT_TRUE(report.pushed_category);
  EXPECT_TRUE(report.pushed_confidence);
  // temp_sentence cannot produce "population": pruned. infobox ("%")
  // kept conservatively.
  EXPECT_EQ(report.pruned_extractors, 1);
  std::string rendered = optimized->ToString();
  EXPECT_NE(rendered.find("category = \"City\""), std::string::npos);
  EXPECT_EQ(rendered.find("temp_sentence"), std::string::npos);
}

TEST_F(LangFixture, OptimizedPlanEquivalentToNaive) {
  const char* program =
      "CREATE VIEW v AS EXTRACT infobox, temp_sentence, "
      "population_sentence FROM pages "
      "WHERE category = \"City\" AND attribute LIKE \"temp_%\";"
      "SELECT subject, COUNT(*) AS n FROM v GROUP BY subject "
      "ORDER BY subject;";
  Interpreter::Options naive_opts;
  naive_opts.optimize = false;
  ExecutionContext naive_ctx = *ctx;
  Interpreter naive(&naive_ctx, naive_opts);
  auto naive_result = naive.Query(program);
  ASSERT_TRUE(naive_result.ok()) << naive_result.status().ToString();

  ExecutionContext opt_ctx = *ctx;
  Interpreter optimized(&opt_ctx);
  auto opt_result = optimized.Query(program);
  ASSERT_TRUE(opt_result.ok());

  // Same rows...
  ASSERT_EQ(naive_result->size(), opt_result->size());
  for (size_t i = 0; i < naive_result->size(); ++i) {
    for (const std::string& col : naive_result->columns()) {
      EXPECT_EQ(naive_result->At(i, col).ToString(),
                opt_result->At(i, col).ToString());
    }
  }
  // ...much less work: fewer docs scanned and extractor invocations.
  EXPECT_LT(opt_ctx.docs_scanned, naive_ctx.docs_scanned);
  EXPECT_LT(opt_ctx.extractor_runs, naive_ctx.extractor_runs);
}

TEST_F(LangFixture, ExplainShowsBothPlans) {
  Interpreter interp(ctx.get());
  auto results = interp.Run(
      "EXPLAIN CREATE VIEW v AS EXTRACT temp_sentence FROM pages "
      "WHERE category = \"City\";");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_NE((*results)[0].text.find("naive plan:"), std::string::npos);
  EXPECT_NE((*results)[0].text.find("optimized plan:"),
            std::string::npos);
  EXPECT_NE((*results)[0].text.find("estimated cost: naive"),
            std::string::npos);
  // EXPLAIN must not materialize the view.
  EXPECT_EQ(ctx->views.count("v"), 0u);
}

TEST_F(LangFixture, CostEstimatesReflectPushdown) {
  auto stmts = Parse(
      "CREATE VIEW v AS EXTRACT infobox, temp_sentence, "
      "population_sentence FROM pages "
      "WHERE category = \"City\" AND attribute = \"population\";");
  ASSERT_TRUE(stmts.ok());
  auto naive = BuildPlan((*stmts)[0]);
  ASSERT_TRUE(naive.ok());
  PlanCost before = EstimatePlanCost(**naive, *ctx);
  PlanPtr optimized = Optimize(std::move(*naive), ctx->Catalog(), nullptr);
  PlanCost after = EstimatePlanCost(*optimized, *ctx);
  // Category pushdown shrinks docs; extractor pruning shrinks cost per
  // doc — both estimates must fall, with docs equal to the actual city
  // count.
  EXPECT_LT(after.docs_scanned, before.docs_scanned);
  EXPECT_LT(after.extractor_cost, before.extractor_cost);
  size_t cities = 0;
  for (const auto& d : docs.docs) {
    if (!d.categories.empty() && d.categories[0] == "City") ++cities;
  }
  EXPECT_DOUBLE_EQ(after.docs_scanned, static_cast<double>(cities));
}

// -------------------------------------------------------------- Executor

TEST_F(LangFixture, ExtractSelectEndToEnd) {
  Interpreter interp(ctx.get());
  auto rel = interp.Query(
      "CREATE VIEW v AS EXTRACT infobox FROM pages "
      "WHERE category = \"City\";"
      "SELECT subject, value FROM v WHERE attribute = \"population\" "
      "AND subject = \"Madison\";");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  // Madison's population may have been dropped from the infobox by the
  // generator; when present it must match ground truth.
  const corpus::CityRecord* madison = truth.FindCity("Madison");
  ASSERT_NE(madison, nullptr);
  for (size_t i = 0; i < rel->size(); ++i) {
    std::string digits;
    for (char c : rel->At(i, "value").ToString()) {
      if (c != ',') digits += c;
    }
    EXPECT_EQ(digits, std::to_string(madison->population));
  }
}

TEST_F(LangFixture, UnknownNamesFailCleanly) {
  Interpreter interp(ctx.get());
  EXPECT_FALSE(
      interp.Query("CREATE VIEW v AS EXTRACT ghost FROM pages;").ok());
  EXPECT_FALSE(interp.Query("SELECT * FROM missing_view;").ok());
  EXPECT_FALSE(interp
                   .Query("CREATE VIEW v AS RESOLVE ENTITIES FROM nope "
                          "USING name THRESHOLD 0.8;")
                   .ok());
  EXPECT_FALSE(interp
                   .Query("CREATE VIEW v AS EXTRACT infobox FROM web;")
                   .ok());
}

TEST_F(LangFixture, ResolveAddsEntityColumn) {
  Interpreter interp(ctx.get());
  auto results = interp.Run(
      "CREATE VIEW raw AS EXTRACT infobox FROM pages;"
      "CREATE VIEW resolved AS RESOLVE ENTITIES FROM raw "
      "USING name THRESHOLD 0.8;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const query::Relation& resolved = ctx->views.at("resolved");
  EXPECT_GE(resolved.ColumnIndex("entity"), 0);
  EXPECT_EQ(resolved.size(), ctx->views.at("raw").size());
}

TEST_F(LangFixture, HumanReviewVetoesBadMerges) {
  // An oracle-backed reviewer: approves a merge only when both surfaces
  // map to the same ground-truth entity... here we simulate with a
  // reviewer that rejects everything, which must only reduce merging.
  ExecutionContext reject_ctx = *ctx;
  reject_ctx.review_fn = [](const hi::Task&) { return false; };
  Interpreter reject(&reject_ctx);
  // Mayor values carry surface variants ("D. Smith"), so resolution on
  // the value column produces genuine merge candidates to review.
  const char* program =
      "CREATE VIEW raw AS EXTRACT infobox, mayor_sentence FROM pages "
      "WHERE attribute = \"mayor\";"
      "CREATE VIEW resolved AS RESOLVE ENTITIES FROM raw COLUMN value "
      "USING name THRESHOLD 0.8 WITH HUMAN REVIEW BUDGET 10000;"
      "SELECT COUNT(*) AS n FROM resolved;";
  ASSERT_TRUE(reject.Query(program).ok());
  EXPECT_GT(reject_ctx.review_questions, 0u);

  // Count distinct entities with and without the vetoes.
  auto distinct_entities = [](const query::Relation& rel) {
    std::set<std::string> entities;
    int col = rel.ColumnIndex("entity");
    for (size_t i = 0; i < rel.size(); ++i) {
      entities.insert(rel.rows()[i][static_cast<size_t>(col)].ToString());
    }
    return entities.size();
  };
  ExecutionContext accept_ctx = *ctx;
  Interpreter accept(&accept_ctx);
  ASSERT_TRUE(accept.Query(program).ok());
  EXPECT_GE(distinct_entities(reject_ctx.views.at("resolved")),
            distinct_entities(accept_ctx.views.at("resolved")));
}

TEST(ParserTest, JoinAndDistinct) {
  auto stmts = Parse(
      "SELECT DISTINCT subject FROM a JOIN b ON subject = entity "
      "WHERE value > 3;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const SelectAst& sel = std::get<SelectAst>((*stmts)[0].body);
  EXPECT_TRUE(sel.distinct);
  EXPECT_EQ(sel.from, "a");
  EXPECT_EQ(sel.join_view, "b");
  EXPECT_EQ(sel.join_left_col, "subject");
  EXPECT_EQ(sel.join_right_col, "entity");
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b;").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b ON x;").ok());
}

TEST_F(LangFixture, JoinExecutesAcrossViews) {
  Interpreter interp(ctx.get());
  auto rel = interp.Query(
      "CREATE VIEW temps AS EXTRACT temp_sentence FROM pages "
      "WHERE category = \"City\";"
      "CREATE VIEW pops AS SELECT subject AS pop_subject, value AS pop "
      "FROM ignored_placeholder;");
  // The second statement references a missing view: expect an error,
  // then run the real join program.
  EXPECT_FALSE(rel.ok());
  auto joined = interp.Query(
      "CREATE VIEW pops AS EXTRACT population_sentence FROM pages "
      "WHERE category = \"City\";"
      "SELECT DISTINCT subject, value FROM temps "
      "JOIN pops ON subject = subject WHERE attribute LIKE \"temp_%\";");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_GT(joined->size(), 0u);
}

TEST_F(LangFixture, RefreshViewReextractsOnlyDirtyDocs) {
  Interpreter interp(ctx.get());
  ASSERT_TRUE(interp
                  .Run("CREATE VIEW v AS EXTRACT infobox FROM pages "
                       "WHERE category = \"City\";")
                  .ok());
  size_t before_rows = ctx->views.at("v").size();

  // Simulate a crawl where two city pages changed: their temperature
  // infobox entry gains a new value.
  ctx->dirty_docs.clear();
  text::DocumentCollection& mutable_docs =
      const_cast<text::DocumentCollection&>(*ctx->docs);
  size_t changed = 0;
  for (text::Document& d : mutable_docs.docs) {
    if (changed >= 2) break;
    if (d.categories.empty() || d.categories[0] != "City") continue;
    size_t pos = d.text.find("| population = ");
    if (pos == std::string::npos) continue;
    d.text.insert(pos, "| landmark = Grand Fountain\n");
    ctx->dirty_docs.insert(d.id);
    ++changed;
  }
  ASSERT_EQ(changed, 2u);

  size_t runs_before = ctx->extractor_runs;
  auto results = interp.Run("REFRESH VIEW v;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  // Only the two dirty documents were re-extracted.
  EXPECT_EQ(ctx->extractor_runs - runs_before, 2u);
  // The new attribute is now visible; row count grew by the two new
  // landmark facts.
  const query::Relation& v = ctx->views.at("v");
  EXPECT_EQ(v.size(), before_rows + 2);
  auto landmarks = query::Filter(
      v, {query::Condition{"attribute", query::CompareOp::kEq,
                           query::Value::Str("landmark")}});
  ASSERT_TRUE(landmarks.ok());
  EXPECT_EQ(landmarks->size(), 2u);
}

TEST_F(LangFixture, RefreshWithoutDefinitionFails) {
  Interpreter interp(ctx.get());
  ASSERT_TRUE(interp
                  .Run("CREATE VIEW sel AS SELECT * FROM missing;")
                  .ok() == false);
  EXPECT_FALSE(interp.Run("REFRESH VIEW ghost;").ok());
}

TEST_F(LangFixture, RefreshNoDirtyDocsIsNoop) {
  Interpreter interp(ctx.get());
  ASSERT_TRUE(interp
                  .Run("CREATE VIEW v AS EXTRACT infobox FROM pages;")
                  .ok());
  ctx->dirty_docs.clear();
  size_t before = ctx->views.at("v").size();
  auto results = interp.Run("REFRESH VIEW v;");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(ctx->views.at("v").size(), before);
  EXPECT_NE((*results)[0].text.find("unchanged"), std::string::npos);
}

TEST_F(LangFixture, MaterializeIntoDatabase) {
  auto db = rdbms::Database::Open({});
  ASSERT_TRUE(db.ok());
  ctx->db = db->get();
  Interpreter interp(ctx.get());
  auto results = interp.Run(
      "CREATE VIEW v AS EXTRACT infobox FROM pages "
      "WHERE category = \"City\" AND attribute = \"population\";"
      "MATERIALIZE VIEW v INTO city_pop;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  rdbms::Table* table = (*db)->GetTable("city_pop");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->LiveRowCount(), ctx->views.at("v").size());
  // Inferred types: doc is int, subject/attribute/value strings,
  // confidence double.
  EXPECT_EQ(table->schema().columns[0].name, "doc");
  EXPECT_EQ(table->schema().columns[0].type, rdbms::ValueType::kInt);
  int conf = table->schema().ColumnIndex("confidence");
  ASSERT_GE(conf, 0);
  EXPECT_EQ(table->schema().columns[static_cast<size_t>(conf)].type,
            rdbms::ValueType::kDouble);
  // Unknown view / missing db fail cleanly.
  EXPECT_FALSE(interp.Run("MATERIALIZE VIEW ghost INTO t;").ok());
  ctx->db = nullptr;
  EXPECT_FALSE(interp.Run("MATERIALIZE VIEW v INTO t2;").ok());
}

TEST_F(LangFixture, ViewsComposeAcrossStatements) {
  Interpreter interp(ctx.get());
  auto rel = interp.Query(
      "CREATE VIEW a AS EXTRACT infobox FROM pages "
      "WHERE category = \"City\";"
      "CREATE VIEW b AS SELECT subject, attribute, value FROM a "
      "WHERE attribute LIKE \"temp_%\";"
      "SELECT subject, AVG(value) AS avg_temp FROM b GROUP BY subject "
      "ORDER BY avg_temp DESC LIMIT 3;");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_LE(rel->size(), 3u);
  ASSERT_GE(rel->size(), 1u);
  // Descending order.
  for (size_t i = 1; i < rel->size(); ++i) {
    EXPECT_GE(rel->At(i - 1, "avg_temp").as_double(),
              rel->At(i, "avg_temp").as_double());
  }
}

}  // namespace
}  // namespace structura::lang
