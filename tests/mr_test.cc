#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "mr/mapreduce.h"

namespace structura::mr {
namespace {

using WordCount = std::pair<std::string, int>;

/// Canonical word-count job over sentences.
MapReduceJob<std::string, std::string, int, WordCount> WordCountJob() {
  MapReduceJob<std::string, std::string, int, WordCount> job;
  job.set_mapper([](const std::string& line, const auto& emit) {
    std::string word;
    for (char c : line + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word, 1);
        word.clear();
      } else {
        word += c;
      }
    }
  });
  job.set_reducer([](const std::string& k, const std::vector<int>& vs,
                     const auto& out) {
    out(WordCount{k, std::accumulate(vs.begin(), vs.end(), 0)});
  });
  return job;
}

std::map<std::string, int> AsMap(const std::vector<WordCount>& v) {
  return {v.begin(), v.end()};
}

TEST(MapReduceTest, WordCount) {
  ThreadPool pool(4);
  auto job = WordCountJob();
  std::vector<std::string> input{"a b a", "b c", "a"};
  JobConfig config;
  config.split_size = 1;
  auto result = job.Run(pool, input, config);
  ASSERT_TRUE(result.ok());
  auto counts = AsMap(*result);
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST(MapReduceTest, EmptyInput) {
  ThreadPool pool(2);
  auto job = WordCountJob();
  auto result = job.Run(pool, {}, JobConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MapReduceTest, MissingMapperFails) {
  ThreadPool pool(1);
  MapReduceJob<int, int, int, int> job;
  auto result = job.Run(pool, {1, 2}, JobConfig{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MapReduceTest, CombinerPreservesResult) {
  ThreadPool pool(4);
  auto plain = WordCountJob();
  auto combined = WordCountJob();
  combined.set_combiner(
      [](const std::string&, std::vector<int> vs) -> std::vector<int> {
        return {std::accumulate(vs.begin(), vs.end(), 0)};
      });
  std::vector<std::string> input;
  for (int i = 0; i < 200; ++i) {
    input.push_back("x y " + std::to_string(i % 7));
  }
  JobConfig config;
  config.split_size = 16;
  JobStats stats_plain, stats_combined;
  auto r1 = plain.Run(pool, input, config, &stats_plain);
  auto r2 = combined.Run(pool, input, config, &stats_combined);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(AsMap(*r1), AsMap(*r2));
  // The combiner must shrink the shuffle volume.
  EXPECT_LT(stats_combined.pairs_shuffled, stats_plain.pairs_shuffled);
}

// Property: the result is identical regardless of parallelism knobs.
class MrDeterminismTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {
};

TEST_P(MrDeterminismTest, SameResultAnyConfiguration) {
  auto [workers, partitions, split] = GetParam();
  ThreadPool pool(workers);
  auto job = WordCountJob();
  std::vector<std::string> input;
  for (int i = 0; i < 100; ++i) {
    input.push_back("w" + std::to_string(i % 13) + " shared w" +
                    std::to_string(i % 5));
  }
  JobConfig config;
  config.num_partitions = partitions;
  config.split_size = split;
  auto result = job.Run(pool, input, config);
  ASSERT_TRUE(result.ok());
  auto counts = AsMap(*result);
  EXPECT_EQ(counts["shared"], 100);
  EXPECT_EQ(counts["w0"], 8 + 20);  // i%13==0 (8 times) + i%5==0 (20)
  size_t total = 0;
  for (const auto& [w, c] : counts) total += static_cast<size_t>(c);
  EXPECT_EQ(total, 300u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MrDeterminismTest,
    ::testing::Combine(::testing::Values(1, 2, 8),
                       ::testing::Values(1, 4, 16),
                       ::testing::Values(1, 7, 64)));

TEST(MapReduceTest, FaultInjectionRetriesAndSucceeds) {
  ThreadPool pool(4);
  auto job = WordCountJob();
  std::vector<std::string> input;
  for (int i = 0; i < 100; ++i) input.push_back("tok");
  JobConfig config;
  config.split_size = 4;
  config.map_failure_prob = 0.4;
  config.max_attempts = 50;  // retries practically always succeed
  JobStats stats;
  auto result = job.Run(pool, input, config, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsMap(*result)["tok"], 100);
  EXPECT_GT(stats.map_retries, 0u);
}

TEST(MapReduceTest, ExhaustedAttemptsAbort) {
  ThreadPool pool(2);
  auto job = WordCountJob();
  std::vector<std::string> input(50, "x");
  JobConfig config;
  config.split_size = 1;
  config.map_failure_prob = 1.0;  // every attempt fails
  config.max_attempts = 3;
  auto result = job.Run(pool, input, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

// Regression for the fault-injection off-by-one: fail_at was drawn from
// [begin, end] instead of [begin, end) — with split_size=1 a scheduled
// failure silently missed the split half the time, so a prob=1.0 job
// could spuriously succeed and retry counts were unstable. With the fix
// every attempt of every split fails, making the retry count exact.
TEST(MapReduceTest, MapFaultOffByOneRegressionPinsRetryCount) {
  ThreadPool pool(4);
  auto job = WordCountJob();
  std::vector<std::string> input(10, "x");
  JobConfig config;
  config.split_size = 1;
  config.map_failure_prob = 1.0;
  config.max_attempts = 3;
  JobStats stats;
  auto result = job.Run(pool, input, config, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  // 10 splits x 3 failed attempts each, deterministic for any seed.
  EXPECT_EQ(stats.map_retries, 30u);
}

TEST(MapReduceTest, RetryCountIsDeterministicForFixedSeed) {
  std::vector<std::string> input(100, "tok");
  auto run = [&](size_t workers) {
    ThreadPool local(workers);
    auto job = WordCountJob();
    JobConfig config;
    config.split_size = 4;
    config.map_failure_prob = 0.4;
    config.max_attempts = 50;
    config.fault_seed = 1234;
    JobStats stats;
    auto result = job.Run(local, input, config, &stats);
    EXPECT_TRUE(result.ok());
    return stats.map_retries;
  };
  size_t first = run(1);
  EXPECT_GT(first, 0u);
  // Per-split seeding makes the retry schedule independent of thread
  // count and scheduling.
  EXPECT_EQ(first, run(8));
  EXPECT_EQ(first, run(8));
}

TEST(MapReduceTest, ReduceFaultsRetryWithBackoff) {
  ThreadPool pool(4);
  auto job = WordCountJob();
  std::vector<std::string> input(100, "tok");
  JobConfig config;
  config.split_size = 8;
  config.reduce_failure_prob = 0.5;
  config.max_attempts = 50;
  config.retry_backoff_ms = 1;
  config.backoff_multiplier = 1.5;
  JobStats stats;
  auto result = job.Run(pool, input, config, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsMap(*result)["tok"], 100);
  EXPECT_GT(stats.reduce_retries, 0u);
  EXPECT_EQ(stats.map_retries, 0u);
  // Every retry schedules at least retry_backoff_ms of delay.
  EXPECT_GE(stats.backoff_ms, stats.reduce_retries);
}

TEST(MapReduceTest, ReduceExhaustedAttemptsAbortWithStats) {
  ThreadPool pool(2);
  auto job = WordCountJob();
  std::vector<std::string> input(10, "x");
  JobConfig config;
  config.reduce_failure_prob = 1.0;
  config.max_attempts = 2;
  config.num_partitions = 8;
  JobStats stats;
  auto result = job.Run(pool, input, config, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().message().find("reduce"), std::string::npos);
  // Stats survive the failure path: 8 partitions x 2 failed attempts.
  EXPECT_EQ(stats.reduce_retries, 16u);
}

TEST(MapReduceTest, ReduceFailpointDrivesRetry) {
  ThreadPool pool(4);
  auto job = WordCountJob();
  std::vector<std::string> input(20, "w");
  JobConfig config;
  config.retry_backoff_ms = 2;
  JobStats stats;
  // Exactly the first reduce attempt evaluated anywhere fires.
  ScopedFailpoint fp("mr.reduce", FailpointRegistry::Spec::Nth(1));
  auto result = job.Run(pool, input, config, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsMap(*result)["w"], 20);
  EXPECT_EQ(stats.reduce_retries, 1u);
  // One retry => one backoff of retry_backoff_ms (first re-attempt).
  EXPECT_EQ(stats.backoff_ms, 2u);
  EXPECT_EQ(FailpointRegistry::Instance().GetCounters("mr.reduce").fires,
            1u);
}

TEST(MapReduceTest, StatsAreReported) {
  ThreadPool pool(2);
  auto job = WordCountJob();
  std::vector<std::string> input(40, "a b");
  JobConfig config;
  config.split_size = 10;
  config.num_partitions = 4;
  JobStats stats;
  ASSERT_TRUE(job.Run(pool, input, config, &stats).ok());
  EXPECT_EQ(stats.map_tasks, 4u);
  EXPECT_EQ(stats.reduce_tasks, 4u);
  EXPECT_EQ(stats.records_mapped, 40u);
  EXPECT_EQ(stats.pairs_shuffled, 80u);
  EXPECT_EQ(stats.keys_reduced, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace structura::mr
