// Cross-cutting property and fuzz tests: malformed inputs never crash,
// algebraic identities hold, and persistence layers tolerate arbitrary
// truncation.

#include <filesystem>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "lang/parser.h"
#include "lang/plan.h"
#include "query/relation.h"
#include "rdbms/wal.h"
#include "storage/snapshot_store.h"
#include "text/tokenizer.h"
#include "text/wiki_markup.h"

namespace structura {
namespace {

std::string TempDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_prop_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string RandomText(Rng& rng, size_t max_len) {
  static const char* kPieces[] = {
      "SELECT", "FROM", "WHERE", "CREATE", "VIEW", "EXTRACT", "AS",
      "GROUP", "BY", "LIMIT", "AND", "RESOLVE", "ENTITIES", "USING",
      "THRESHOLD", "REFRESH", "JOIN", "ON", "DISTINCT",
      "\"str", "ing\"", ";", ",", "(", ")", "*", "=", "!=", "<=", ">=",
      "<", ">", "%", "ident", "temp_03", "0.5", "42", "-7", "#cmt\n",
      "{{", "}}", "[[", "]]", "|", "'", "\\", "\x01", "\n", "  "};
  std::string out;
  size_t n = rng.NextBounded(max_len);
  for (size_t i = 0; i < n; ++i) {
    out += kPieces[rng.NextBounded(std::size(kPieces))];
    out += ' ';
  }
  return out;
}

// ---------------------------------------------------------------- Parser

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, NeverCrashesOnGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string program = RandomText(rng, 40);
    auto result = lang::Parse(program);  // must return, never crash
    if (result.ok()) {
      // Whatever parsed must also plan (or fail cleanly).
      for (const lang::Statement& stmt : *result) {
        if (stmt.kind == lang::Statement::Kind::kRefresh) continue;
        lang::BuildPlan(stmt).ok();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

// ----------------------------------------------------------- Wiki markup

class MarkupFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarkupFuzzTest, ParsersToleratateBrokenMarkup) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string page = RandomText(rng, 60);
    text::ParseInfoboxes(page);
    text::ParseLinks(page);
    text::ParseCategories(page);
    std::string plain = text::StripMarkup(page);
    text::Tokenize(plain);
    text::SplitSentences(plain);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkupFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

// -------------------------------------------------------------- Relation

query::Relation RandomRelation(Rng& rng, size_t rows) {
  query::Relation rel({"a", "b", "c"});
  for (size_t i = 0; i < rows; ++i) {
    rel.Append({query::Value::Int(static_cast<int64_t>(
                    rng.NextBounded(10))),
                query::Value::Str(std::string(1, static_cast<char>(
                                                     'x' + rng.NextBounded(3)))),
                query::Value::Double(rng.NextDouble())})
        .ok();
  }
  return rel;
}

class RelationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationPropertyTest, FilterConjunctionEqualsComposition) {
  Rng rng(GetParam());
  query::Relation rel = RandomRelation(rng, 200);
  query::Condition c1{"a", query::CompareOp::kGe, query::Value::Int(3)};
  query::Condition c2{"b", query::CompareOp::kEq, query::Value::Str("x")};
  auto both = query::Filter(rel, {c1, c2});
  auto composed = query::Filter(*query::Filter(rel, {c1}), {c2});
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(both->size(), composed->size());
}

TEST_P(RelationPropertyTest, ProjectCommutesWithFilterOnKeptColumns) {
  Rng rng(GetParam());
  query::Relation rel = RandomRelation(rng, 150);
  query::Condition cond{"a", query::CompareOp::kLt, query::Value::Int(5)};
  auto filter_then_project =
      query::Project(*query::Filter(rel, {cond}), {"a", "b"});
  auto project_then_filter =
      query::Filter(*query::Project(rel, {"a", "b"}), {cond});
  ASSERT_TRUE(filter_then_project.ok());
  ASSERT_TRUE(project_then_filter.ok());
  ASSERT_EQ(filter_then_project->size(), project_then_filter->size());
  for (size_t i = 0; i < filter_then_project->size(); ++i) {
    EXPECT_EQ(filter_then_project->rows()[i][0].Compare(
                  project_then_filter->rows()[i][0]),
              0);
  }
}

TEST_P(RelationPropertyTest, JoinSizeSymmetric) {
  Rng rng(GetParam());
  query::Relation left = RandomRelation(rng, 60);
  query::Relation right = RandomRelation(rng, 60);
  auto lr = query::HashJoin(left, right, "a", "a");
  auto rl = query::HashJoin(right, left, "a", "a");
  ASSERT_TRUE(lr.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_EQ(lr->size(), rl->size());
}

TEST_P(RelationPropertyTest, DistinctIdempotent) {
  Rng rng(GetParam());
  query::Relation rel = RandomRelation(rng, 120);
  query::Relation once = query::Distinct(rel);
  query::Relation twice = query::Distinct(once);
  EXPECT_EQ(once.size(), twice.size());
  EXPECT_LE(once.size(), rel.size());
}

TEST_P(RelationPropertyTest, OrderByPreservesMultiset) {
  Rng rng(GetParam());
  query::Relation rel = RandomRelation(rng, 120);
  auto sorted = query::OrderBy(rel, "c", rng.NextBool(0.5));
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->size(), rel.size());
  double sum_before = 0, sum_after = 0;
  for (const auto& r : rel.rows()) sum_before += r[2].as_double();
  for (const auto& r : sorted->rows()) sum_after += r[2].as_double();
  EXPECT_NEAR(sum_before, sum_after, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

// ------------------------------------------------------------------- WAL

class WalTruncationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalTruncationTest, ArbitraryTruncationYieldsCleanPrefix) {
  Rng rng(GetParam());
  std::string dir = TempDir("wal" + std::to_string(GetParam()));
  std::string path = dir + "/wal.log";
  size_t full_size;
  {
    auto wal = rdbms::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 30; ++i) {
      rdbms::LogRecord rec;
      rec.type = rdbms::LogRecord::Type::kInsert;
      rec.txn = static_cast<rdbms::TxnId>(i);
      rec.table = "t";
      rec.row_id = static_cast<rdbms::RowId>(i);
      rec.after = {rdbms::Value::Str(RandomText(rng, 4)),
                   rdbms::Value::Int(static_cast<int64_t>(i))};
      ASSERT_TRUE((*wal)->Append(rec).ok());
    }
    ASSERT_TRUE((*wal)->Flush().ok());
    full_size = std::filesystem::file_size(path);
  }
  auto complete = rdbms::WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(complete.ok());
  ASSERT_EQ(complete->records.size(), 30u);
  ASSERT_TRUE(complete->clean());
  // Truncate at 20 random byte offsets; ReadAll must return a clean
  // prefix of the full record sequence, never an error or crash.
  for (int trial = 0; trial < 20; ++trial) {
    size_t cut = rng.NextBounded(full_size + 1);
    std::filesystem::resize_file(path, cut);
    auto partial = rdbms::WriteAheadLog::ReadAll(path);
    ASSERT_TRUE(partial.ok());
    ASSERT_LE(partial->records.size(), complete->records.size());
    for (size_t i = 0; i < partial->records.size(); ++i) {
      EXPECT_EQ(partial->records[i].txn, complete->records[i].txn);
      EXPECT_EQ(partial->records[i].row_id, complete->records[i].row_id);
    }
    // Restore for the next trial.
    std::filesystem::remove(path);
    auto wal = rdbms::WriteAheadLog::Open(path);
    for (const rdbms::LogRecord& rec : complete->records) {
      ASSERT_TRUE((*wal)->Append(rec).ok());
    }
    ASSERT_TRUE((*wal)->Flush().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalTruncationTest,
                         ::testing::Range<uint64_t>(1, 6));

// -------------------------------------------------------- Snapshot store

class SnapshotPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotPropertyTest, EveryVersionReconstructs) {
  Rng rng(GetParam());
  storage::SnapshotStore store;
  std::vector<std::string> history;
  std::string text;
  for (int i = 0; i < 30; ++i) {
    text += RandomText(rng, 6) + "\n";
    if (rng.NextBool(0.3) && text.size() > 40) {
      text.erase(rng.NextBounded(text.size() / 2),
                 rng.NextBounded(20));
    }
    history.push_back(text);
    ASSERT_TRUE(store.Append(5, text).ok());
  }
  for (uint32_t v = 0; v < history.size(); ++v) {
    auto got = store.Get(5, v);
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(*got, history[v]) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace structura
