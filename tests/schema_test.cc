#include <gtest/gtest.h>

#include "schema/evolution.h"

namespace structura::schema {
namespace {

using rdbms::Value;
using rdbms::ValueType;

TEST(EvolvingSchemaTest, AddsVersionedAttributes) {
  EvolvingSchema s("facts");
  EXPECT_EQ(s.current_version(), 0u);
  EXPECT_TRUE(s.AttributesAt(0).empty());
  ASSERT_TRUE(s.AddAttribute("temp_01", ValueType::kInt, "temps first").ok());
  ASSERT_TRUE(s.AddAttribute("population", ValueType::kInt).ok());
  EXPECT_EQ(s.current_version(), 2u);
  EXPECT_EQ(s.AttributesAt(1).size(), 1u);
  EXPECT_EQ(s.CurrentAttributes().size(), 2u);
  EXPECT_TRUE(s.HasAttribute("population"));
  EXPECT_FALSE(s.HasAttribute("elevation"));
}

TEST(EvolvingSchemaTest, DuplicateAddRejected) {
  EvolvingSchema s("facts");
  ASSERT_TRUE(s.AddAttribute("a", ValueType::kString).ok());
  EXPECT_FALSE(s.AddAttribute("a", ValueType::kInt).ok());
}

TEST(EvolvingSchemaTest, RenameTracksHistory) {
  EvolvingSchema s("facts");
  s.AddAttribute("location", ValueType::kString).value();
  ASSERT_TRUE(
      s.RenameAttribute("location", "address", "schema match").ok());
  EXPECT_FALSE(s.HasAttribute("location"));
  EXPECT_TRUE(s.HasAttribute("address"));
  // Older versions still show the old name.
  EXPECT_EQ(s.AttributesAt(1)[0].name, "location");
  EXPECT_EQ(s.AttributesAt(2)[0].name, "address");
  EXPECT_FALSE(s.RenameAttribute("ghost", "x").ok());
  s.AddAttribute("other", ValueType::kString).value();
  EXPECT_FALSE(s.RenameAttribute("address", "other").ok());
}

TEST(EvolvingSchemaTest, DropRemovesAttribute) {
  EvolvingSchema s("facts");
  s.AddAttribute("a", ValueType::kString).value();
  s.AddAttribute("b", ValueType::kString).value();
  ASSERT_TRUE(s.DropAttribute("a").ok());
  EXPECT_FALSE(s.HasAttribute("a"));
  EXPECT_EQ(s.CurrentAttributes().size(), 1u);
  EXPECT_FALSE(s.DropAttribute("a").ok());
  // Time travel: version 2 still had both.
  EXPECT_EQ(s.AttributesAt(2).size(), 2u);
}

TEST(EvolvingSchemaTest, HistoryRecordsReasons) {
  EvolvingSchema s("facts");
  s.AddAttribute("temp_01", ValueType::kInt, "user wanted temps").value();
  ASSERT_EQ(s.history().size(), 1u);
  EXPECT_EQ(s.history()[0].reason, "user wanted temps");
}

TEST(MigrateTableTest, CopiesRenamesAndNulls) {
  auto db = rdbms::Database::Open({});
  ASSERT_TRUE(db.ok());
  rdbms::TableSchema schema;
  schema.table_name = "cities";
  schema.columns = {{"location", ValueType::kString},
                    {"population", ValueType::kInt}};
  ASSERT_TRUE((*db)->CreateTable(schema).ok());
  {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(
        txn->Insert("cities", {Value::Str("Madison"), Value::Int(233209)})
            .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Evolve: rename location->address, add elevation, keep population.
  EvolvingSchema evolved("cities");
  evolved.AddAttribute("location", ValueType::kString).value();
  evolved.AddAttribute("population", ValueType::kInt).value();
  evolved.RenameAttribute("location", "address").value();
  evolved.AddAttribute("elevation", ValueType::kDouble).value();

  auto new_name = MigrateTable(db->get(), "cities", evolved);
  ASSERT_TRUE(new_name.ok()) << new_name.status().ToString();
  EXPECT_EQ(*new_name, "cities_v4");
  auto txn = (*db)->Begin();
  auto rows = txn->Scan(*new_name);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const rdbms::Row& row = (*rows)[0].second;
  rdbms::Table* table = (*db)->GetTable(*new_name);
  int addr = table->schema().ColumnIndex("address");
  int pop = table->schema().ColumnIndex("population");
  int elev = table->schema().ColumnIndex("elevation");
  ASSERT_GE(addr, 0);
  ASSERT_GE(pop, 0);
  ASSERT_GE(elev, 0);
  EXPECT_EQ(row[static_cast<size_t>(addr)].ToString(), "Madison");
  EXPECT_EQ(row[static_cast<size_t>(pop)].as_int(), 233209);
  EXPECT_TRUE(row[static_cast<size_t>(elev)].is_null());
  txn->Commit();
  // The old table survives (time travel).
  EXPECT_NE((*db)->GetTable("cities"), nullptr);
}

TEST(MigrateTableTest, UnknownTableFails) {
  auto db = rdbms::Database::Open({});
  EvolvingSchema s("ghost");
  s.AddAttribute("a", ValueType::kString).value();
  EXPECT_FALSE(MigrateTable(db->get(), "ghost", s).ok());
}

}  // namespace
}  // namespace structura::schema
