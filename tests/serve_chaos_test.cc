// Resilient-serving tests: circuit breaker and frontend unit coverage,
// plus the concurrent chaos harness — a multi-threaded mixed workload
// (keyword + hybrid + structured + translate + write + extract) under
// probabilistic failpoints and randomized 1–50ms deadlines. Run plain
// and under -DSTRUCTURA_SANITIZE=thread.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/env.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "corpus/generator.h"
#include "ie/pipeline.h"
#include "ie/standard.h"
#include "obs/flight_recorder.h"
#include "rdbms/database.h"
#include "serve/frontend.h"
#include "test_json_util.h"

namespace structura::serve {
namespace {

// ------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndProbesClosed) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 3;
  opts.open_ms = 20;
  CircuitBreaker cb(opts);

  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  cb.RecordFailure();
  cb.RecordFailure();
  // A success resets the *consecutive* count.
  cb.RecordSuccess();
  cb.RecordFailure();
  cb.RecordFailure();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  cb.RecordFailure();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.open_transitions(), 1u);

  // Open: traffic is refused until the cooldown elapses.
  EXPECT_FALSE(cb.Allow());
  EXPECT_GE(cb.rejected(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  // Cooldown over: exactly one probe is admitted (half_open_probes=1).
  EXPECT_TRUE(cb.Allow());
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(cb.Allow());  // probe slot taken

  cb.RecordSuccess();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithFreshCooldown) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 1;
  opts.open_ms = 20;
  CircuitBreaker cb(opts);

  cb.RecordFailure();
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  ASSERT_TRUE(cb.Allow());
  cb.RecordFailure();  // probe failed
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.open_transitions(), 2u);
  // The cooldown restarted: still refusing immediately after.
  EXPECT_FALSE(cb.Allow());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(cb.Allow());
  cb.RecordSuccess();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ReleasedProbeFreesSlotWithoutReclosing) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 1;
  opts.open_ms = 10;
  CircuitBreaker cb(opts);

  cb.RecordFailure();
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));

  uint64_t probe = 0;
  ASSERT_TRUE(cb.Allow(&probe));
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(cb.Allow());  // the single probe slot is taken

  // The probe was cancelled by the client: no evidence either way. The
  // slot frees up, but the breaker must NOT re-close.
  cb.ReleaseProbe(probe);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);

  uint64_t retry = 0;
  EXPECT_TRUE(cb.Allow(&retry));  // slot available again
  cb.RecordSuccess(retry);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StaleProbeResultsAreIgnoredAfterReclose) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 1;  // any counted failure would re-open
  opts.open_ms = 10;
  opts.half_open_probes = 2;
  CircuitBreaker cb(opts);

  cb.RecordFailure();
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));

  uint64_t p1 = 0, p2 = 0;
  ASSERT_TRUE(cb.Allow(&p1));
  ASSERT_TRUE(cb.Allow(&p2));

  // First probe recovers the operator while the second is still out.
  cb.RecordSuccess(p1);
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kClosed);

  // The straggler was admitted before recovery; its failure says
  // nothing about the re-closed breaker and must not re-open it (with
  // failure_threshold=1 a counted failure would).
  cb.RecordFailure(p2);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(cb.open_transitions(), 1u);

  // A post-recovery failure still counts normally.
  cb.RecordFailure();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.open_transitions(), 2u);
}

TEST(CircuitBreakerTest, StuckProbeSlotIsReclaimedAfterTimeout) {
  CircuitBreaker::Options opts;
  opts.failure_threshold = 1;
  opts.open_ms = 10;
  opts.probe_timeout_ms = 100;
  CircuitBreaker cb(opts);

  cb.RecordFailure();
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));

  // The probe is admitted... and its handler hangs, never reporting.
  uint64_t stuck = 0;
  ASSERT_TRUE(cb.Allow(&stuck));
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(cb.Allow());  // slot taken, timeout not yet elapsed

  // Past the probe timeout the slot is reclaimed: a probe that never
  // completes must not wedge the breaker in half-open forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  uint64_t fresh = 0;
  EXPECT_TRUE(cb.Allow(&fresh));
  EXPECT_EQ(cb.probe_reclaims(), 1u);

  // The reclaimed probe's admission was invalidated: if the stuck
  // handler ever does report, the result is discarded (an honored
  // failure would re-open the breaker here).
  cb.RecordFailure(stuck);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);

  cb.RecordSuccess(fresh);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

// --------------------------------------------------------- Frontend

TEST(FrontendTest, ResolvesBasicStatuses) {
  Frontend::Options opts;
  opts.num_threads = 2;
  Frontend fe(opts);
  fe.RegisterOperator("ok", [](const RequestContext&) { return Status::OK(); });

  EXPECT_TRUE(fe.Call("ok", RequestContext{}).ok());
  EXPECT_EQ(fe.Call("missing", RequestContext{}).code(),
            StatusCode::kNotFound);

  RequestContext expired;
  expired.interrupt.deadline = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fe.Call("ok", std::move(expired)).code(),
            StatusCode::kDeadlineExceeded);

  CancellationSource source;
  source.Cancel();
  RequestContext cancelled;
  cancelled.interrupt.token = source.token();
  EXPECT_EQ(fe.Call("ok", std::move(cancelled)).code(),
            StatusCode::kCancelled);

  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.issued, 4u);
  EXPECT_EQ(c.admitted, 3u);   // "missing" was refused at admission
  EXPECT_EQ(c.not_found, 1u);  // ... and tracked as such, not as a shed
  EXPECT_EQ(c.shed, 0u);
  EXPECT_EQ(c.ok, 1u);
  EXPECT_EQ(c.deadline_exceeded, 1u);
  EXPECT_EQ(c.cancelled, 1u);
  EXPECT_EQ(c.root_spans, c.admitted);  // one root span per admitted request
}

TEST(FrontendTest, ShedsAtAdmissionWhenQueueIsFull) {
  Frontend::Options opts;
  opts.num_threads = 1;
  opts.max_queue_depth = 1;
  opts.max_queue_wait_ms = 10000;  // isolate admission-control shedding
  Frontend fe(opts);

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  fe.RegisterOperator("slow", [&](const RequestContext&) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
    return Status::OK();
  });

  // One request occupies the worker; wait until it is actually running
  // so the queue-depth accounting below is deterministic.
  std::future<Status> running = fe.Submit("slow", RequestContext{});
  while (fe.Counters().queue_high_water < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Fill the queue (depth 1), then overflow it.
  std::vector<std::future<Status>> waiting;
  size_t shed = 0;
  for (int i = 0; i < 8; ++i) {
    std::future<Status> f = fe.Submit("slow", RequestContext{});
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      Status s = f.get();
      EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
      ++shed;
    } else {
      waiting.push_back(std::move(f));
    }
  }
  EXPECT_GE(shed, 6u);  // 8 submitted, at most ~2 fit (queue + races)

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(running.get().ok());
  for (auto& f : waiting) EXPECT_TRUE(f.get().ok());

  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.issued, 9u);
  EXPECT_EQ(c.admitted + c.shed + c.not_found, c.issued);
  EXPECT_EQ(c.shed, shed);
}

TEST(FrontendTest, ShedsRequestsThatWaitedPastTheQueueBudget) {
  Frontend::Options opts;
  opts.num_threads = 1;
  opts.max_queue_depth = 16;
  opts.max_queue_wait_ms = 5;
  Frontend fe(opts);

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  fe.RegisterOperator("slow", [&](const RequestContext&) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
    return Status::OK();
  });
  fe.RegisterOperator("fast",
                      [](const RequestContext&) { return Status::OK(); });

  std::future<Status> head = fe.Submit("slow", RequestContext{});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // This request sits behind `slow` far longer than its 5ms budget.
  std::future<Status> stale = fe.Submit("fast", RequestContext{});
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();

  EXPECT_TRUE(head.get().ok());
  Status s = stale.get();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.shed_queued_wait, 1u);
  EXPECT_EQ(c.admitted, 2u);  // it *was* admitted, then shed at dequeue
}

TEST(FrontendTest, RetriesInjectedFaultWithinBudget) {
  Frontend::Options opts;
  opts.num_threads = 1;
  Frontend fe(opts);
  fe.RegisterOperator("flaky",
                      [](const RequestContext&) { return Status::OK(); });

  ScopedFailpoint fp("serve.op.flaky", FailpointRegistry::Spec::Nth(1));
  RequestContext ctx;
  ctx.retry_budget = 2;
  EXPECT_TRUE(fe.Call("flaky", std::move(ctx)).ok());

  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.ok, 1u);
  EXPECT_EQ(c.retries, 1u);
}

TEST(FrontendTest, ExhaustedRetryBudgetResolvesUnavailable) {
  Frontend::Options opts;
  opts.num_threads = 1;
  opts.breaker.failure_threshold = 100;  // keep the breaker out of this
  Frontend fe(opts);
  fe.RegisterOperator("down",
                      [](const RequestContext&) { return Status::OK(); });

  ScopedFailpoint fp("serve.op.down", FailpointRegistry::Spec::Always());
  RequestContext ctx;
  ctx.retry_budget = 2;
  Status s = fe.Call("down", std::move(ctx));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();

  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.unavailable, 1u);
  EXPECT_EQ(c.retries, 2u);  // the whole budget was spent
}

TEST(FrontendTest, BreakerOpensUnderFaultBurstAndRecloses) {
  Frontend::Options opts;
  opts.num_threads = 1;
  opts.breaker.failure_threshold = 3;
  opts.breaker.open_ms = 20;
  Frontend fe(opts);
  fe.RegisterOperator("svc",
                      [](const RequestContext&) { return Status::OK(); });

  {
    ScopedFailpoint fp("serve.op.svc", FailpointRegistry::Spec::Always());
    for (int i = 0; i < 3; ++i) {
      RequestContext ctx;
      ctx.retry_budget = 0;
      EXPECT_EQ(fe.Call("svc", std::move(ctx)).code(),
                StatusCode::kUnavailable);
    }
    EXPECT_EQ(fe.BreakerState("svc"), CircuitBreaker::State::kOpen);

    // While open, calls fail fast without touching the operator.
    Status s = fe.Call("svc", RequestContext{});
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
    EXPECT_GE(fe.Counters().breaker_rejected, 1u);
  }

  // Faults stopped; after the cooldown a probe succeeds and re-closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(fe.Call("svc", RequestContext{}).ok());
  EXPECT_EQ(fe.BreakerState("svc"), CircuitBreaker::State::kClosed);
}

TEST(FrontendTest, CancelledProbeDoesNotRecloseBreaker) {
  Frontend::Options opts;
  opts.num_threads = 1;
  opts.breaker.failure_threshold = 1;
  opts.breaker.open_ms = 20;
  Frontend fe(opts);
  std::atomic<bool> cancel_in_handler{true};
  fe.RegisterOperator("svc", [&](const RequestContext&) {
    // Models an operator noticing mid-work that the client went away.
    return cancel_in_handler ? Status::Cancelled("client went away")
                             : Status::OK();
  });

  {
    ScopedFailpoint fp("serve.op.svc", FailpointRegistry::Spec::Always());
    RequestContext ctx;
    ctx.retry_budget = 0;
    EXPECT_EQ(fe.Call("svc", std::move(ctx)).code(),
              StatusCode::kUnavailable);
  }
  ASSERT_EQ(fe.BreakerState("svc"), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  // The recovery probe is cancelled: no health evidence, so the breaker
  // must stay half-open rather than re-admitting full traffic.
  EXPECT_EQ(fe.Call("svc", RequestContext{}).code(), StatusCode::kCancelled);
  EXPECT_EQ(fe.BreakerState("svc"), CircuitBreaker::State::kHalfOpen);

  // A genuinely healthy probe re-closes it.
  cancel_in_handler = false;
  EXPECT_TRUE(fe.Call("svc", RequestContext{}).ok());
  EXPECT_EQ(fe.BreakerState("svc"), CircuitBreaker::State::kClosed);
}

TEST(FrontendTest, DestructionDrainsQueuedRequests) {
  // Destroying a Frontend with work still queued must resolve every
  // future and must not touch freed state: the queued Execute() tasks
  // dereference the operator map and bump the counters while the pool
  // drains, so those members have to outlive the pool (run under
  // ASan/TSan via scripts/check.sh).
  std::vector<std::future<Status>> futures;
  {
    Frontend::Options opts;
    opts.num_threads = 1;
    opts.max_queue_depth = 64;
    opts.max_queue_wait_ms = 10000;  // nothing sheds at dequeue
    Frontend fe(opts);
    fe.RegisterOperator("slowish", [](const RequestContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return Status::OK();
    });
    for (int i = 0; i < 32; ++i) {
      futures.push_back(fe.Submit("slowish", RequestContext{}));
    }
  }  // ~Frontend drains the backlog with every other member still alive
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
}

// ------------------------------------------------------- Health model

TEST(HealthModelTest, DemotesImmediatelyAndPromotesAfterStreak) {
  HealthModel::Options hopts;
  hopts.promote_after = 2;
  HealthModel hm(hopts);

  std::mutex m;
  HealthSample next;  // what the signal reports on the next Evaluate()
  hm.Register("storage.wal", "integrity", [&] {
    std::lock_guard<std::mutex> lock(m);
    return next;
  });
  EXPECT_EQ(hm.StateOf("storage.wal"), HealthState::kHealthy);
  EXPECT_EQ(hm.StateOf("no.such.subsystem"), HealthState::kHealthy);

  auto set = [&](HealthState s, const std::string& reason) {
    std::lock_guard<std::mutex> lock(m);
    next = HealthSample{s, reason};
  };

  // Demotion is immediate: one bad sample flips the state.
  set(HealthState::kCritical, "wal torn");
  hm.Evaluate();
  EXPECT_EQ(hm.StateOf("storage.wal"), HealthState::kCritical);
  EXPECT_EQ(hm.ReasonOf("storage.wal"), "wal torn");
  EXPECT_EQ(hm.Overall(), HealthState::kCritical);
  EXPECT_EQ(hm.transitions(), 1u);

  // Promotion needs promote_after consecutive better samples: one lucky
  // probe is not recovery.
  set(HealthState::kDegraded, "replaying");
  hm.Evaluate();
  EXPECT_EQ(hm.StateOf("storage.wal"), HealthState::kCritical);
  hm.Evaluate();
  EXPECT_EQ(hm.StateOf("storage.wal"), HealthState::kDegraded);
  EXPECT_EQ(hm.ReasonOf("storage.wal"), "replaying");

  // A relapse mid-streak demotes immediately and resets the streak.
  set(HealthState::kHealthy, "");
  hm.Evaluate();
  EXPECT_EQ(hm.StateOf("storage.wal"), HealthState::kDegraded);
  set(HealthState::kCritical, "torn again");
  hm.Evaluate();
  EXPECT_EQ(hm.StateOf("storage.wal"), HealthState::kCritical);

  // Two consecutive clean samples promote straight back to healthy.
  set(HealthState::kHealthy, "");
  hm.Evaluate();
  hm.Evaluate();
  EXPECT_EQ(hm.StateOf("storage.wal"), HealthState::kHealthy);
  EXPECT_EQ(hm.ReasonOf("storage.wal"), "");
  EXPECT_EQ(hm.Overall(), HealthState::kHealthy);
  EXPECT_EQ(hm.evaluations(), 7u);
}

TEST(HealthModelTest, SubsystemIsWorstOfItsSourcesAndJsonRenders) {
  HealthModel hm;
  hm.Register("query.structured", "breakers", [] { return HealthSample{}; });
  uint64_t latency_id = hm.Register("query.structured", "latency", [] {
    return HealthSample{HealthState::kDegraded, "p99 over budget"};
  });
  hm.Register("ie", "faults", [] { return HealthSample{}; });
  hm.Evaluate();

  EXPECT_EQ(hm.StateOf("query.structured"), HealthState::kDegraded);
  EXPECT_EQ(hm.ReasonOf("query.structured"), "p99 over budget");
  EXPECT_EQ(hm.StateOf("ie"), HealthState::kHealthy);
  EXPECT_EQ(hm.ReasonOf("ie"), "");
  EXPECT_EQ(hm.Overall(), HealthState::kDegraded);

  std::vector<HealthModel::SourceStatus> snap = hm.Snapshot();
  ASSERT_EQ(snap.size(), 3u);  // sorted by (subsystem, source)
  EXPECT_EQ(snap[0].subsystem, "ie");
  EXPECT_EQ(snap[1].source, "breakers");
  EXPECT_EQ(snap[2].source, "latency");
  EXPECT_EQ(snap[2].transitions, 1u);

  std::string json = hm.ToJson();
  EXPECT_NE(json.find("\"overall\":\"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"query.structured\":{\"state\":\"degraded\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"latency\":{\"state\":\"degraded\",\"reason\":"
                      "\"p99 over budget\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ie\":{\"state\":\"healthy\""), std::string::npos)
      << json;

  // A detached source stops voting.
  hm.Detach(latency_id);
  EXPECT_EQ(hm.StateOf("query.structured"), HealthState::kHealthy);
  EXPECT_EQ(hm.Overall(), HealthState::kHealthy);
}

TEST(HealthModelTest, DetachedSignalNeverRunsAgain) {
  HealthModel hm;
  std::atomic<uint64_t> runs{0};
  uint64_t id = hm.Register("svc", "probe", [&] {
    ++runs;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return HealthSample{HealthState::kDegraded, "still counting"};
  });
  std::atomic<bool> stop{false};
  std::thread evaluator([&] {
    while (!stop.load()) hm.Evaluate();
  });
  while (runs.load() == 0) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  // Detach drains any in-flight evaluation: after it returns the signal
  // fn is guaranteed to never run again, even with Evaluate() looping.
  hm.Detach(id);
  uint64_t at_detach = runs.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(runs.load(), at_detach);
  // ... and the detached source no longer votes.
  EXPECT_EQ(hm.StateOf("svc"), HealthState::kHealthy);

  stop.store(true);
  evaluator.join();
}

// ------------------------------------------------- Brownout admission

TEST(DegradationPolicyTest, LowerTiersShedFirstAsHealthWorsens) {
  HealthModel hm;
  std::mutex m;
  HealthSample next;
  hm.Register("svc", "probe", [&] {
    std::lock_guard<std::mutex> lock(m);
    return next;
  });
  DegradationPolicy::Options opts;
  opts.batch_queue_fraction = 0.5;
  opts.background_queue_fraction = 0.25;
  opts.degraded_tighten = 0.5;
  DegradationPolicy policy(opts, &hm);
  const size_t kCap = 100;

  // Healthy: interactive owns the whole queue; the lower tiers only
  // their shares (background's ⊂ batch's ⊂ everything).
  EXPECT_TRUE(policy.Admit(Priority::kInteractive, 99, kCap).admit);
  EXPECT_TRUE(policy.Admit(Priority::kBatch, 49, kCap).admit);
  EXPECT_FALSE(policy.Admit(Priority::kBatch, 50, kCap).admit);
  EXPECT_TRUE(policy.Admit(Priority::kBackground, 24, kCap).admit);
  EXPECT_FALSE(policy.Admit(Priority::kBackground, 25, kCap).admit);

  // Degraded: the shares tighten.
  {
    std::lock_guard<std::mutex> lock(m);
    next = HealthSample{HealthState::kDegraded, "wobbling"};
  }
  hm.Evaluate();  // demotion is immediate
  EXPECT_TRUE(policy.Admit(Priority::kInteractive, 99, kCap).admit);
  EXPECT_TRUE(policy.Admit(Priority::kBatch, 24, kCap).admit);
  EXPECT_FALSE(policy.Admit(Priority::kBatch, 25, kCap).admit);
  EXPECT_TRUE(policy.Admit(Priority::kBackground, 12, kCap).admit);
  EXPECT_FALSE(policy.Admit(Priority::kBackground, 13, kCap).admit);

  // Critical: background is refused outright, batch tightens again.
  {
    std::lock_guard<std::mutex> lock(m);
    next = HealthSample{HealthState::kCritical, "on fire"};
  }
  hm.Evaluate();
  DegradationPolicy::Decision d = policy.Admit(Priority::kBackground, 0, kCap);
  EXPECT_FALSE(d.admit);
  EXPECT_NE(std::string(d.reason).find("critical"), std::string::npos)
      << d.reason;
  EXPECT_TRUE(policy.Admit(Priority::kBatch, 12, kCap).admit);
  EXPECT_FALSE(policy.Admit(Priority::kBatch, 13, kCap).admit);
  EXPECT_TRUE(policy.Admit(Priority::kInteractive, 99, kCap).admit);

  // Disabled policy (the bench baseline) or an unbounded queue admits
  // every tier regardless of health.
  DegradationPolicy::Options off = opts;
  off.enabled = false;
  DegradationPolicy no_brownout(off, &hm);
  EXPECT_TRUE(no_brownout.Admit(Priority::kBackground, 99, kCap).admit);
  EXPECT_TRUE(policy.Admit(Priority::kBackground, 99, 0).admit);
}

// ------------------------------------------------- Fallback ladder

TEST(FrontendTest, BreakerRefusalServesFallbackMarkedDegraded) {
  Frontend::Options opts;
  opts.num_threads = 1;
  opts.breaker.failure_threshold = 1;
  opts.breaker.open_ms = 60000;  // stays open for the whole test
  Frontend fe(opts);
  fe.RegisterOperator("hybrid",
                      [](const RequestContext&) { return Status::OK(); });
  std::atomic<uint64_t> keyword_calls{0};
  fe.RegisterOperator("keyword", [&](const RequestContext&) {
    ++keyword_calls;
    return Status::OK();
  });
  fe.SetFallback("hybrid", "keyword");

  {  // The failing attempt exhausts its budget and opens the breaker;
     // the very same request is already answered through the fallback
     // (marked degraded through its response channel).
    ScopedFailpoint fp("serve.op.hybrid", FailpointRegistry::Spec::Always());
    RequestContext ctx;
    ctx.retry_budget = 0;
    ctx.response = std::make_shared<ResponseMeta>();
    std::shared_ptr<ResponseMeta> first_response = ctx.response;
    Status s = fe.Call("hybrid", std::move(ctx));
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(first_response->degraded);
    EXPECT_EQ(first_response->served_by, "keyword");
  }
  ASSERT_EQ(fe.BreakerState("hybrid"), CircuitBreaker::State::kOpen);

  // While the breaker refuses the primary, the fallback serves — and
  // the answer says so. A degraded answer is a contract, not a secret.
  RequestContext ctx;
  ctx.response = std::make_shared<ResponseMeta>();
  std::shared_ptr<ResponseMeta> response = ctx.response;
  Status s = fe.Call("hybrid", std::move(ctx));
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->served_by, "keyword");
  EXPECT_NE(response->degraded_reason.find("breaker open"), std::string::npos)
      << response->degraded_reason;
  EXPECT_EQ(keyword_calls.load(), 2u);

  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.issued, 2u);
  EXPECT_EQ(c.ok, 2u);  // both answered despite the primary being down
  EXPECT_EQ(c.fallback_served, 2u);
  EXPECT_EQ(c.degraded_answers, 2u);
  EXPECT_EQ(c.breaker_rejected, 1u);
  EXPECT_EQ(c.unavailable, 0u);
}

TEST(FrontendTest, NoResponseChannelMeansNoFallback) {
  // A request that allocated no ctx.response has no way to receive the
  // degraded flag, so serving the fallback would be exactly the silent
  // substitution the contract forbids. The ladder must be skipped and
  // the primary's refusal must stand.
  Frontend::Options opts;
  opts.num_threads = 1;
  opts.breaker.failure_threshold = 1;
  opts.breaker.open_ms = 60000;  // stays open for the whole test
  Frontend fe(opts);
  fe.RegisterOperator("hybrid",
                      [](const RequestContext&) { return Status::OK(); });
  std::atomic<uint64_t> keyword_calls{0};
  fe.RegisterOperator("keyword", [&](const RequestContext&) {
    ++keyword_calls;
    return Status::OK();
  });
  fe.SetFallback("hybrid", "keyword");

  {  // Open the breaker; without a response channel even this failing
     // request fails outright instead of degrading silently.
    ScopedFailpoint fp("serve.op.hybrid", FailpointRegistry::Spec::Always());
    RequestContext ctx;
    ctx.retry_budget = 0;
    Status s = fe.Call("hybrid", std::move(ctx));
    EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  }
  ASSERT_EQ(fe.BreakerState("hybrid"), CircuitBreaker::State::kOpen);

  Status s = fe.Call("hybrid", RequestContext{});
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  EXPECT_EQ(keyword_calls.load(), 0u);  // the fallback never ran

  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.fallback_served, 0u);
  EXPECT_EQ(c.degraded_answers, 0u);
  EXPECT_EQ(c.unavailable, 2u);
}

TEST(FrontendTest, CriticalSubsystemIsBypassedViaFallback) {
  HealthModel hm;
  hm.Register("query.structured", "test", [] {
    return HealthSample{HealthState::kCritical, "index wedged"};
  });
  hm.Evaluate();

  Frontend::Options opts;
  opts.num_threads = 1;
  opts.health = &hm;
  Frontend fe(opts);
  std::atomic<uint64_t> hybrid_calls{0}, keyword_calls{0};
  fe.RegisterOperator("hybrid", [&](const RequestContext&) {
    ++hybrid_calls;
    return Status::OK();
  });
  fe.RegisterOperator("keyword", [&](const RequestContext&) {
    ++keyword_calls;
    return Status::OK();
  });
  fe.TagOperator("hybrid", "query.structured");
  fe.SetFallback("hybrid", "keyword");

  RequestContext ctx;
  ctx.response = std::make_shared<ResponseMeta>();
  std::shared_ptr<ResponseMeta> response = ctx.response;
  EXPECT_TRUE(fe.Call("hybrid", std::move(ctx)).ok());
  EXPECT_EQ(hybrid_calls.load(), 0u);  // never touched the sick subsystem
  EXPECT_EQ(keyword_calls.load(), 1u);
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->served_by, "keyword");
  EXPECT_NE(response->degraded_reason.find("critical"), std::string::npos)
      << response->degraded_reason;

  // The subsystem recovers: traffic returns to the primary.
  hm.Register("query.structured", "test", [] { return HealthSample{}; });
  hm.Evaluate();
  EXPECT_TRUE(fe.Call("hybrid", RequestContext{}).ok());
  EXPECT_EQ(hybrid_calls.load(), 1u);
}

TEST(FrontendTest, DestructionDetachesHealthSignalsUnderLiveEvaluation) {
  // Regression: a watchdog evaluating health signals concurrently with
  // ~Frontend must never touch freed breakers or counters. The
  // destructor detaches its registrations (draining any in-flight
  // evaluation) before any member dies. Run under TSan via
  // scripts/check.sh.
  HealthModel hm;
  std::atomic<bool> stop{false};
  std::thread evaluator([&] {
    while (!stop.load()) hm.Evaluate();
  });
  for (int round = 0; round < 16; ++round) {
    std::vector<std::future<Status>> futures;
    Frontend::Options opts;
    opts.num_threads = 2;
    opts.max_queue_depth = 64;
    opts.max_queue_wait_ms = 10000;
    opts.health = &hm;
    Frontend fe(opts);
    fe.RegisterOperator("q", [](const RequestContext&) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      return Status::OK();
    });
    fe.TagOperator("q", "query.keyword");
    for (int i = 0; i < 16; ++i) {
      futures.push_back(fe.Submit("q", RequestContext{}));
    }
    // fe is destroyed here with work still queued and the evaluator
    // polling its breaker signal.
  }
  stop.store(true);
  evaluator.join();
  // Every frontend detached on destruction: nothing votes any more.
  EXPECT_EQ(hm.StateOf("query.keyword"), HealthState::kHealthy);
  EXPECT_EQ(hm.StateOf("serve"), HealthState::kHealthy);
}

// ------------------------------------------------------- Chaos harness

std::string TempDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_serve_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// When a chaos leg fails in CI, the counters and the health ledger are
// the first things an investigator wants. scripts/check.sh and the CI
// workflow point STRUCTURA_ARTIFACT_DIR at a directory they upload.
void DumpArtifactsOnFailure(core::System* sys, const std::string& tag) {
  if (!::testing::Test::HasFailure()) return;
  const char* dir = std::getenv("STRUCTURA_ARTIFACT_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream(std::string(dir) + "/" + tag + "-metrics.prom")
      << core::System::MetricsPrometheus();
  if (sys != nullptr) {
    std::ofstream(std::string(dir) + "/" + tag + "-health.json")
        << sys->HealthJson();
  }
}

// Mixed workload under probabilistic faults: every request must
// terminate with a well-formed Status, counters must reconcile with the
// number of issued requests, and breakers must re-close once the fault
// burst ends. No crashes, no hangs, no leaked promises.
TEST(ServeChaosTest, MixedWorkloadUnderFaultsTerminatesAndReconciles) {
  corpus::CorpusOptions copts;
  copts.num_cities = 15;
  copts.num_people = 20;
  copts.num_companies = 5;
  copts.seed = 41;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(copts, &docs, &truth);

  // A real workspace so the final store has a WAL — the wal.append
  // failpoint needs one to fire through.
  core::System::Options sopts;
  sopts.workspace = TempDir("chaos");
  auto sys_or = core::System::Create(sopts);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
  std::unique_ptr<core::System> sys = std::move(sys_or).value();
  sys->RegisterStandardOperators();
  ASSERT_TRUE(sys->IngestCrawl(docs).ok());
  // Bind a fact view so translate/structured/hybrid have data to serve.
  ASSERT_TRUE(
      sys->RunProgram("CREATE VIEW facts AS EXTRACT infobox FROM pages;")
          .ok());
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());

  rdbms::TableSchema schema;
  schema.table_name = "chaos_log";
  schema.columns = {{"client", rdbms::ValueType::kInt},
                    {"seq", rdbms::ValueType::kInt}};
  ASSERT_TRUE(sys->database()->CreateTable(schema).ok());

  // Extraction runs as a Map-Reduce job on its own pool (a frontend
  // worker must never run ParallelFor on the frontend's pool).
  ThreadPool mr_pool(4);
  std::vector<ie::ExtractorPtr> suite = ie::MakeStandardSuite();
  std::vector<const ie::Extractor*> extractors = ie::Views(suite);

  Frontend::Options fopts;
  fopts.num_threads = 8;
  fopts.max_queue_depth = 256;
  fopts.max_queue_wait_ms = 40;
  fopts.breaker.failure_threshold = 8;
  fopts.breaker.open_ms = 30;
  fopts.breaker.half_open_probes = 2;
  Frontend fe(fopts);
  sys->SetServingStatsProvider([&fe] { return fe.Counters(); });

  const std::vector<std::string> kQueries = {
      "Madison", "population", "mayor", "temperature", "company",
      "founded", "elevation"};

  fe.RegisterOperator("keyword", [&](const RequestContext& ctx) {
    auto hits = sys->KeywordSearch(kQueries[ctx.id % kQueries.size()], 5,
                                   ctx.interrupt);
    return hits.status();
  });
  fe.RegisterOperator("translate", [&](const RequestContext& ctx) {
    auto forms = sys->SuggestQueries(kQueries[ctx.id % kQueries.size()],
                                     ctx.interrupt);
    return forms.status();
  });
  fe.RegisterOperator("structured", [&](const RequestContext& ctx) {
    auto forms = sys->SuggestQueries("population", ctx.interrupt);
    if (!forms.ok()) return forms.status();
    if (forms->empty()) return Status::OK();  // nothing to run is fine
    auto rel = sys->RunForm((*forms)[0], ctx.interrupt);
    return rel.status();
  });
  fe.RegisterOperator("hybrid", [&](const RequestContext& ctx) {
    std::vector<query::Condition> conds;
    conds.push_back({"attribute", query::CompareOp::kEq,
                     rdbms::Value::Str("population")});
    auto hits = sys->HybridSearch(kQueries[ctx.id % kQueries.size()], conds,
                                  5, ctx.interrupt);
    return hits.status();
  });
  std::mutex write_mutex;
  std::atomic<uint64_t> write_seq{0};
  fe.RegisterOperator("write", [&](const RequestContext& ctx) {
    // One writer at a time: lock conflicts aren't what this harness is
    // probing — WAL faults and retry/deadline behaviour are.
    std::lock_guard<std::mutex> lock(write_mutex);
    auto txn = sys->database()->Begin();
    auto row = txn->Insert(
        "chaos_log",
        {rdbms::Value::Int(static_cast<int64_t>(ctx.id)),
         rdbms::Value::Int(static_cast<int64_t>(write_seq.fetch_add(1)))});
    if (!row.ok()) return row.status();
    return txn->Commit();
  });
  fe.RegisterOperator("extract", [&](const RequestContext& ctx) {
    mr::JobConfig config;
    config.num_workers = 2;
    config.split_size = 8;
    config.max_attempts = 2;
    auto facts = ie::RunExtractorsMapReduce(extractors, docs, mr_pool,
                                            config, nullptr, ctx.interrupt);
    return facts.status();
  });

  const std::vector<std::string> kOps = {
      "keyword", "keyword", "keyword",  // weight the cheap reads
      "translate", "translate", "structured", "structured",
      "hybrid",    "hybrid",   "write",      "write",
      "extract"};

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 250;  // 2000 total
  std::atomic<uint64_t> client_ok{0}, client_deadline{0}, client_cancel{0},
      client_unavailable{0};

  {
    // Probabilistic faults across WAL, extraction, reduce, and the
    // serving layer itself, all live while the workload runs.
    ScopedFailpoint wal_fp(
        "wal.append", FailpointRegistry::Spec::WithProbability(0.05, 11));
    ScopedFailpoint ie_fp(
        "ie.extract", FailpointRegistry::Spec::WithProbability(0.05, 12));
    ScopedFailpoint mr_fp(
        "mr.reduce", FailpointRegistry::Spec::WithProbability(0.05, 13));
    ScopedFailpoint serve_fp(
        "serve.op", FailpointRegistry::Spec::WithProbability(0.05, 14));

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(1000 + static_cast<uint64_t>(c));
        for (int i = 0; i < kRequestsPerClient; ++i) {
          RequestContext ctx;
          ctx.id = static_cast<uint64_t>(c) * kRequestsPerClient + i;
          ctx.interrupt.deadline =
              Deadline::AfterMillis(1 + rng.NextBounded(50));
          ctx.retry_budget = static_cast<uint32_t>(rng.NextBounded(3));
          CancellationSource source;
          bool cancel = rng.NextBool(0.05);
          if (cancel) ctx.interrupt.token = source.token();
          const std::string& op = kOps[rng.NextBounded(kOps.size())];
          std::future<Status> fut = fe.Submit(op, std::move(ctx));
          if (cancel) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng.NextBounded(3000)));
            source.Cancel();
          }
          Status result = fut.get();
          switch (result.code()) {
            case StatusCode::kOk:
              ++client_ok;
              break;
            case StatusCode::kDeadlineExceeded:
              ++client_deadline;
              break;
            case StatusCode::kCancelled:
              ++client_cancel;
              break;
            case StatusCode::kUnavailable:
              ++client_unavailable;
              break;
            default:
              ADD_FAILURE() << "unexpected terminal status "
                            << result.ToString();
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }  // fault scope ends: failpoints disarmed

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kClients) * kRequestsPerClient;
  EXPECT_EQ(client_ok + client_deadline + client_cancel + client_unavailable,
            kTotal);

  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.issued, kTotal);
  EXPECT_EQ(c.not_found, 0u);  // every op in kOps is registered
  EXPECT_EQ(c.admitted + c.shed + c.not_found, c.issued);
  // Every admitted request resolved to exactly one terminal status.
  EXPECT_EQ(c.ok + c.deadline_exceeded + c.cancelled + c.unavailable,
            c.admitted);
  // Client-observed outcomes match the frontend's accounting (queue-full
  // sheds surface to clients as kUnavailable).
  EXPECT_EQ(client_ok.load(), c.ok);
  EXPECT_EQ(client_deadline.load(), c.deadline_exceeded);
  EXPECT_EQ(client_cancel.load(), c.cancelled);
  EXPECT_EQ(client_unavailable.load(), c.unavailable + c.shed);
  EXPECT_GT(c.ok, 0u);  // the system did real work under chaos
  // Tracing reconciles with admission control: every admitted request —
  // and only admitted requests — recorded exactly one root span.
  EXPECT_EQ(c.root_spans, c.admitted);

  // The serving section of the status report reflects the live counters.
  std::string report = sys->StatusReport();
  EXPECT_NE(report.find("serving:"), std::string::npos);
  EXPECT_NE(report.find("keyword("), std::string::npos);
  // And the registry-rendered metrics section agrees with the same
  // snapshot the Prometheus/JSON endpoints use.
  EXPECT_NE(report.find("metrics[serve]"), std::string::npos);
  EXPECT_NE(core::System::MetricsPrometheus().find("serve_requests_issued"),
            std::string::npos);

  // Faults stopped: every operator must recover. Generous deadlines,
  // polling through breaker cooldowns until traffic flows again.
  for (const std::string op :
       {"keyword", "translate", "structured", "hybrid", "write", "extract"}) {
    Status last;
    bool recovered = false;
    for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
      RequestContext ctx;
      ctx.interrupt.deadline = Deadline::AfterMillis(2000);
      last = fe.Call(op, std::move(ctx));
      if (last.ok()) {
        recovered = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(recovered) << op << " never recovered: " << last.ToString();
    EXPECT_EQ(fe.BreakerState(op), CircuitBreaker::State::kClosed) << op;
  }

  DumpArtifactsOnFailure(sys.get(), "chaos");
  sys->SetServingStatsProvider(nullptr);
  std::filesystem::remove_all(sopts.workspace);
}

// Mixed-priority workload under faults: the brownout ladder must shed
// background before batch before interactive, per-tier accounting must
// reconcile, every fallback-served answer must be explicitly marked
// degraded (no silent wrong answers), and once the faults clear the
// watchdog must walk every subsystem back to healthy.
TEST(ServeChaosTest, MixedPriorityBrownoutShedsLowerTiersFirst) {
  corpus::CorpusOptions copts;
  copts.num_cities = 10;
  copts.num_people = 10;
  copts.num_companies = 3;
  copts.seed = 43;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(copts, &docs, &truth);

  core::System::Options sopts;
  sopts.workspace = TempDir("brownout");
  auto sys_or = core::System::Create(sopts);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
  std::unique_ptr<core::System> sys = std::move(sys_or).value();
  sys->RegisterStandardOperators();
  ASSERT_TRUE(sys->IngestCrawl(docs).ok());
  ASSERT_TRUE(
      sys->RunProgram("CREATE VIEW facts AS EXTRACT infobox FROM pages;")
          .ok());
  ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());

  Frontend::Options fopts;
  fopts.num_threads = 4;
  fopts.max_queue_depth = 32;
  fopts.max_queue_wait_ms = 10000;  // shed by brownout, not queue age
  fopts.breaker.failure_threshold = 3;
  fopts.breaker.open_ms = 30;
  fopts.brownout.batch_queue_fraction = 0.5;
  fopts.brownout.background_queue_fraction = 0.25;
  fopts.health = &sys->health();
  Frontend fe(fopts);
  sys->SetServingStatsProvider([&fe] { return fe.Counters(); });

  const std::vector<std::string> kQueries = {"Madison", "population",
                                             "mayor", "company"};
  fe.RegisterOperator("keyword", [&](const RequestContext& ctx) {
    auto hits = sys->KeywordSearch(kQueries[ctx.id % kQueries.size()], 5,
                                   ctx.interrupt);
    return hits.status();
  });
  fe.RegisterOperator("hybrid", [&](const RequestContext& ctx) {
    std::vector<query::Condition> conds;
    conds.push_back({"attribute", query::CompareOp::kEq,
                     rdbms::Value::Str("population")});
    auto hits = sys->HybridSearch(kQueries[ctx.id % kQueries.size()], conds,
                                  5, ctx.interrupt);
    return hits.status();
  });
  fe.TagOperator("keyword", "query.keyword");
  fe.TagOperator("hybrid", "query.structured");
  fe.SetFallback("hybrid", "keyword");

  core::System::WatchdogOptions wopts;
  wopts.interval_ms = 10;
  sys->StartWatchdog(wopts);
  ASSERT_TRUE(sys->WatchdogRunning());

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 300;  // 100 per tier per client
  std::atomic<uint64_t> interactive_ok{0};
  std::atomic<uint64_t> degraded_seen{0};
  std::atomic<uint64_t> silent_degraded{0};

  {
    // The hybrid operator is in real trouble; everything else sees only
    // the background fault rate. Heavy enough that the hybrid breaker
    // opens and the fallback ladder carries its traffic.
    ScopedFailpoint hybrid_fp(
        "serve.op.hybrid", FailpointRegistry::Spec::WithProbability(0.5, 21));
    ScopedFailpoint serve_fp(
        "serve.op", FailpointRegistry::Spec::WithProbability(0.05, 22));

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(2000 + static_cast<uint64_t>(c));
        struct Pending {
          std::future<Status> fut;
          std::shared_ptr<ResponseMeta> response;
          Priority tier;
        };
        std::vector<Pending> pending;
        pending.reserve(kRequestsPerClient);
        // Submit the whole batch as fast as possible so the queue
        // actually fills and the brownout thresholds bite, then drain.
        for (int i = 0; i < kRequestsPerClient; ++i) {
          RequestContext ctx;
          ctx.id = static_cast<uint64_t>(c) * kRequestsPerClient + i;
          ctx.priority = static_cast<Priority>(i % kNumPriorities);
          ctx.interrupt.deadline = Deadline::AfterMillis(2000);
          ctx.retry_budget = static_cast<uint32_t>(rng.NextBounded(2));
          ctx.response = std::make_shared<ResponseMeta>();
          Pending p;
          p.response = ctx.response;
          p.tier = ctx.priority;
          const std::string& op = (i % 2 == 0) ? "hybrid" : "keyword";
          p.fut = fe.Submit(op, std::move(ctx));
          pending.push_back(std::move(p));
        }
        for (Pending& p : pending) {
          Status result = p.fut.get();
          if (!result.ok()) continue;
          if (p.tier == Priority::kInteractive) ++interactive_ok;
          if (p.response->degraded) {
            ++degraded_seen;
            EXPECT_FALSE(p.response->served_by.empty());
            EXPECT_FALSE(p.response->degraded_reason.empty());
          } else if (!p.response->served_by.empty()) {
            ++silent_degraded;  // answered by a stand-in, not marked
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }  // failpoints disarmed

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kClients) * kRequestsPerClient;
  ServingCounters c = fe.Counters();
  EXPECT_EQ(c.issued, kTotal);
  EXPECT_EQ(c.admitted + c.shed + c.not_found, c.issued);
  uint64_t tier_issued_sum = 0;
  for (size_t t = 0; t < kNumPriorities; ++t) {
    const ServingCounters::Tier& tier = c.tiers[t];
    EXPECT_EQ(tier.admitted + tier.shed + tier.not_found, tier.issued)
        << PriorityName(static_cast<Priority>(t));
    EXPECT_EQ(tier.issued, kTotal / kNumPriorities);
    tier_issued_sum += tier.issued;
  }
  EXPECT_EQ(tier_issued_sum, c.issued);

  const ServingCounters::Tier& interactive =
      c.tiers[static_cast<size_t>(Priority::kInteractive)];
  const ServingCounters::Tier& batch =
      c.tiers[static_cast<size_t>(Priority::kBatch)];
  const ServingCounters::Tier& background =
      c.tiers[static_cast<size_t>(Priority::kBackground)];
  // The brownout ladder: refusal thresholds are nested (background's
  // queue share ⊂ batch's ⊂ the full queue), so with equal per-tier
  // issue rates the shed counts must come out ordered.
  EXPECT_GE(background.shed, batch.shed);
  EXPECT_GE(batch.shed, interactive.shed);
  EXPECT_GE(interactive.admitted, batch.admitted);
  EXPECT_GE(batch.admitted, background.admitted);
  EXPECT_GT(c.shed_brownout, 0u);        // the ladder actually engaged
  EXPECT_GT(interactive_ok.load(), 0u);  // interactive goodput survived

  // Degradation is a contract: every stand-in answer was marked, and
  // the frontend's count of degraded answers matches what the clients
  // actually observed — nothing degraded silently in either direction.
  EXPECT_EQ(silent_degraded.load(), 0u);
  EXPECT_GT(c.fallback_served, 0u);
  EXPECT_EQ(degraded_seen.load(), c.degraded_answers);

  // StatusReport carries the health line an operator reads first.
  std::string report = sys->StatusReport();
  EXPECT_NE(report.find("health: overall"), std::string::npos) << report;

  // Faults cleared: drive traffic until the breakers re-close, then the
  // watchdog must promote every subsystem back to healthy.
  for (const std::string op : {"keyword", "hybrid"}) {
    Status last;
    bool recovered = false;
    for (int attempt = 0; attempt < 200 && !recovered; ++attempt) {
      RequestContext ctx;
      ctx.interrupt.deadline = Deadline::AfterMillis(2000);
      last = fe.Call(op, std::move(ctx));
      recovered = last.ok() &&
                  fe.BreakerState(op) == CircuitBreaker::State::kClosed;
      if (!recovered) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(recovered) << op << ": " << last.ToString();
  }
  HealthState overall = sys->health().Overall();
  for (int attempt = 0; attempt < 500 && overall != HealthState::kHealthy;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    overall = sys->health().Overall();
  }
  EXPECT_EQ(overall, HealthState::kHealthy) << sys->HealthJson();
  EXPECT_GT(sys->WatchdogTicks(), 0u);
  std::string health_json = sys->HealthJson();
  EXPECT_NE(health_json.find("\"overall\":\"healthy\""), std::string::npos)
      << health_json;
  EXPECT_NE(health_json.find("\"running\":true"), std::string::npos)
      << health_json;
  EXPECT_NE(health_json.find("\"ie\""), std::string::npos) << health_json;

  DumpArtifactsOnFailure(sys.get(), "brownout");
  sys->SetServingStatsProvider(nullptr);
  sys->StopWatchdog();
  std::filesystem::remove_all(sopts.workspace);
}

// Deterministic self-healing: tear the intermediate segment log's tail,
// reopen, and let the watchdog notice (degraded), auto-scrub, and
// promote the subsystem back to healthy — no operator in the loop.
TEST(ServeChaosTest, WatchdogAutoScrubHealsTornSegmentTail) {
  corpus::CorpusOptions copts;
  copts.num_cities = 6;
  copts.num_people = 6;
  copts.num_companies = 2;
  copts.seed = 47;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(copts, &docs, &truth);

  core::System::Options sopts;
  sopts.workspace = TempDir("heal");
  {
    auto sys_or = core::System::Create(sopts);
    ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
    std::unique_ptr<core::System> sys = std::move(sys_or).value();
    sys->RegisterStandardOperators();
    ASSERT_TRUE(sys->IngestCrawl(docs).ok());
    ASSERT_TRUE(
        sys->RunProgram("CREATE VIEW facts AS EXTRACT infobox FROM pages;")
            .ok());
    ASSERT_TRUE(sys->BuildBeliefsFromView("facts").ok());
    // Feeds the intermediate segment log (the torn-tail victim below).
    ASSERT_TRUE(sys->MaterializeBeliefs("beliefs_out").ok());
  }  // clean shutdown: everything flushed

  // A crash mid-append: garbage after the last valid frame, too short
  // to even be a frame header.
  const std::string seg0 = sopts.workspace + "/intermediate/seg-000000.log";
  ASSERT_TRUE(std::filesystem::exists(seg0));
  {
    std::ofstream out(seg0, std::ios::binary | std::ios::app);
    out << "TORNTAIL";
  }

  auto sys_or = core::System::Create(sopts);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
  std::unique_ptr<core::System> sys = std::move(sys_or).value();
  // Reopen recovery spotted (and truncated) the torn tail...
  ASSERT_NE(sys->intermediate_store(), nullptr);
  EXPECT_GT(sys->intermediate_store()->recovery_report().torn_tail_bytes, 0u);
  // ...so the first health evaluation demotes storage.segments.
  sys->health().Evaluate();
  ASSERT_EQ(sys->health().StateOf("storage.segments"), HealthState::kDegraded)
      << sys->health().ToJson();

  core::System::WatchdogOptions wopts;
  wopts.interval_ms = 5;
  wopts.scrub_cooldown_ms = 20;
  sys->StartWatchdog(wopts);

  // The watchdog auto-scrubs (the truncated log verifies clean) and the
  // promote-slow streak walks the subsystem back to healthy.
  HealthState state = sys->health().StateOf("storage.segments");
  for (int attempt = 0; attempt < 400 && state != HealthState::kHealthy;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    state = sys->health().StateOf("storage.segments");
  }
  EXPECT_EQ(state, HealthState::kHealthy) << sys->HealthJson();
  EXPECT_GE(sys->WatchdogAutoScrubs(), 1u);
  EXPECT_EQ(sys->health().Overall(), HealthState::kHealthy)
      << sys->HealthJson();
  std::string json = sys->HealthJson();
  EXPECT_NE(json.find("\"storage.segments\":{\"state\":\"healthy\""),
            std::string::npos)
      << json;

  DumpArtifactsOnFailure(sys.get(), "heal");
  sys->StopWatchdog();
  std::filesystem::remove_all(sopts.workspace);
}

// A dying disk must brown the system out to read-only — writes refused
// with an explained kUnavailable, reads serving the durable prefix —
// and once the device recovers the watchdog must probe, heal the
// latched WAL, and lift the brownout without operator intervention.
TEST(ServeChaosTest, DiskFaultEngagesReadOnlyBrownoutAndHeals) {
  core::System::Options sopts;
  sopts.workspace = TempDir("readonly");
  FaultInjectingEnv fenv;
  sopts.env = &fenv;
  auto sys_or = core::System::Create(sopts);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
  std::unique_ptr<core::System> sys = std::move(sys_or).value();

  text::DocumentCollection docs;
  text::Document doc;
  doc.id = 1;
  doc.title = "Madison";
  doc.text = "Madison has a population of 233,209.";
  docs.docs.push_back(doc);
  ASSERT_TRUE(sys->IngestCrawl(docs).ok());

  rdbms::TableSchema schema;
  schema.table_name = "ro_log";
  schema.columns = {{"seq", rdbms::ValueType::kInt}};
  ASSERT_TRUE(sys->database()->CreateTable(schema).ok());

  Frontend::Options fopts;
  fopts.num_threads = 2;
  // Breakers stay out of the picture: this test isolates the read-only
  // gate (Options::read_only_gate defaults to "storage.disk").
  fopts.breaker.failure_threshold = 1000;
  fopts.health = &sys->health();
  Frontend fe(fopts);
  std::atomic<int64_t> seq{0};
  fe.RegisterOperator("read", [&](const RequestContext& ctx) {
    auto hits = sys->KeywordSearch("Madison", 3, ctx.interrupt);
    return hits.status();
  });
  fe.RegisterOperator("write", [&](const RequestContext& ctx) {
    (void)ctx;
    auto txn = sys->database()->Begin();
    auto row = txn->Insert("ro_log", {rdbms::Value::Int(seq.fetch_add(1))});
    if (!row.ok()) {
      (void)txn->Abort();
      return row.status();
    }
    return txn->Commit();
  });
  fe.MarkWrite("write");

  // Healthy baseline: both paths serve.
  ASSERT_TRUE(fe.Call("read", RequestContext{}).ok());
  ASSERT_TRUE(fe.Call("write", RequestContext{}).ok());
  sys->health().Evaluate();
  ASSERT_EQ(sys->health().StateOf("storage.disk"), HealthState::kHealthy);

  {
    // The device stops accepting fsyncs: the next commit fails at its
    // durability point and latches the WAL sticky.
    ScopedFailpoint fp("env.sync", FailpointRegistry::Spec::Always());
    Status failed = fe.Call("write", RequestContext{});
    EXPECT_FALSE(failed.ok()) << failed.ToString();
    EXPECT_TRUE(sys->ReadOnly()) << sys->ReadOnlyReason();

    // The health signal probes the device (the probe fails too — the
    // disk really is unwritable) and demotes storage.disk to critical.
    sys->health().Evaluate();
    ASSERT_EQ(sys->health().StateOf("storage.disk"), HealthState::kCritical)
        << sys->HealthJson();

    // Writes are now refused at the frontend with an explained
    // kUnavailable; the handler (and the dying disk) is never touched.
    auto meta = std::make_shared<ResponseMeta>();
    RequestContext wctx;
    wctx.response = meta;
    Status refused = fe.Call("write", std::move(wctx));
    EXPECT_EQ(refused.code(), StatusCode::kUnavailable)
        << refused.ToString();
    EXPECT_TRUE(meta->degraded);
    EXPECT_NE(meta->degraded_reason.find("read-only"), std::string::npos)
        << meta->degraded_reason;

    // Reads keep serving the durable prefix.
    EXPECT_TRUE(fe.Call("read", RequestContext{}).ok());

    // The operator-facing report says so in as many words.
    std::string report = sys->StatusReport();
    EXPECT_NE(report.find("READ-ONLY"), std::string::npos) << report;
  }  // the device recovers: failpoint disarmed

  // The watchdog re-probes, heals the WAL via checkpoint, and the
  // brownout lifts — no operator intervention.
  core::System::WatchdogOptions wopts;
  wopts.interval_ms = 5;
  wopts.heal_cooldown_ms = 10;
  sys->StartWatchdog(wopts);
  Status write_again;
  for (int attempt = 0; attempt < 400; ++attempt) {
    write_again = fe.Call("write", RequestContext{});
    if (write_again.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(write_again.ok())
      << write_again.ToString() << "\n" << sys->HealthJson();
  EXPECT_FALSE(sys->ReadOnly()) << sys->ReadOnlyReason();
  EXPECT_GE(sys->WatchdogAutoHeals(), 1u);

  // The promote-slow streak walks storage.disk back to healthy.
  HealthState state = sys->health().StateOf("storage.disk");
  for (int attempt = 0; attempt < 400 && state != HealthState::kHealthy;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    state = sys->health().StateOf("storage.disk");
  }
  EXPECT_EQ(state, HealthState::kHealthy) << sys->HealthJson();

  ServingCounters c = fe.Counters();
  EXPECT_GE(c.read_only_refused, 1u);
  EXPECT_GE(c.unavailable, c.read_only_refused);

  DumpArtifactsOnFailure(sys.get(), "readonly");
  sys->StopWatchdog();
  std::filesystem::remove_all(sopts.workspace);
}

// ------------------------------------------------- Incident forensics

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::vector<std::string> IncidentBundleDirs(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_directory()) out.push_back(entry.path().string());
  }
  return out;
}

/// Extracts the string value of `"key":"…"` from a hand-rolled JSON blob.
std::string JsonStringField(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  size_t end = json.find('"', pos);
  if (end == std::string::npos) return "";
  return json.substr(pos, end - pos);
}

// A breaker flapping under a persistent fault demotes its subsystem to
// critical; the watchdog must dump exactly ONE incident bundle (the
// cooldown suppresses every repeat trigger while the flap continues),
// and the bundle must be self-contained: metrics, health, the event
// journal tail, and at least one expensive-request span tree.
TEST(ServeChaosTest, BreakerTripToCriticalDumpsExactlyOneIncidentBundle) {
  obs::ExpensiveRequestTracker::Instance().Clear();
  core::System::Options sopts;
  sopts.workspace = TempDir("incident");
  sopts.incident_dir = TempDir("incident_bundles");
  sopts.incident_cooldown_ms = 60'000;  // longer than the whole test
  auto sys_or = core::System::Create(sopts);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
  std::unique_ptr<core::System> sys = std::move(sys_or).value();
  ASSERT_NE(sys->incidents(), nullptr);

  text::DocumentCollection docs;
  text::Document doc;
  doc.id = 1;
  doc.title = "Madison";
  doc.text = "Madison has a population of 233,209.";
  docs.docs.push_back(doc);
  ASSERT_TRUE(sys->IngestCrawl(docs).ok());

  Frontend::Options fopts;
  fopts.num_threads = 2;
  fopts.breaker.failure_threshold = 2;
  fopts.breaker.open_ms = 5;
  fopts.health = &sys->health();
  Frontend fe(fopts);
  fe.RegisterOperator("search", [&](const RequestContext& ctx) {
    auto hits = sys->KeywordSearch("Madison", 3, ctx.interrupt);
    return hits.status();
  });
  fe.RegisterOperator("flaky", [](const RequestContext&) {
    return Status::IoError("injected persistent fault");
  });
  fe.TagOperator("flaky", "query.flaky");

  // A healthy request first, so the expensive-request tracker has a
  // span tree with real cost (rows scanned) before the incident fires.
  ASSERT_TRUE(fe.Call("search", RequestContext{}).ok());

  core::System::WatchdogOptions wopts;
  wopts.interval_ms = 20;
  wopts.breaker_flap_threshold = 3;
  sys->StartWatchdog(wopts);

  // Keep the fault flapping until the watchdog has dumped a bundle AND
  // suppressed at least one repeat trigger inside the cooldown window.
  for (int i = 0; i < 6000 && sys->incidents()->suppressed() < 1; ++i) {
    (void)fe.Call("flaky", RequestContext{});
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sys->StopWatchdog();

  EXPECT_EQ(sys->incidents()->dumps(), 1u)
      << "cooldown must hold the flap to one bundle";
  EXPECT_GE(sys->incidents()->suppressed(), 1u);

  std::vector<std::string> bundles = IncidentBundleDirs(sopts.incident_dir);
  ASSERT_EQ(bundles.size(), 1u);
  const std::string& bundle = bundles[0];

  std::string manifest = ReadWholeFile(bundle + "/MANIFEST.json");
  EXPECT_TRUE(testutil::IsValidJson(manifest)) << manifest;
  std::string trigger = JsonStringField(manifest, "trigger");
  EXPECT_TRUE(trigger == "health_critical" || trigger == "breaker_flap")
      << trigger;

  std::string metrics = ReadWholeFile(bundle + "/metrics.json");
  EXPECT_TRUE(testutil::IsValidJson(metrics));
  EXPECT_NE(metrics.find("serve.breaker.open_transitions"),
            std::string::npos);

  std::string health = ReadWholeFile(bundle + "/health.json");
  EXPECT_TRUE(testutil::IsValidJson(health));
  EXPECT_NE(health.find("query.flaky"), std::string::npos) << health;

  std::string events = ReadWholeFile(bundle + "/events.json");
  EXPECT_TRUE(testutil::IsValidJson(events));
  EXPECT_NE(events.find("\"code\":\"breaker_open\""), std::string::npos)
      << events;
  EXPECT_NE(events.find("\"code\":\"health_demote\""), std::string::npos)
      << events;

  std::string expensive = ReadWholeFile(bundle + "/expensive.json");
  EXPECT_TRUE(testutil::IsValidJson(expensive));
  EXPECT_NE(expensive.find("\"op\":\"serve."), std::string::npos)
      << expensive;
  EXPECT_NE(expensive.find("\"tree\":\""), std::string::npos);

  EXPECT_TRUE(
      testutil::IsValidJson(ReadWholeFile(bundle + "/slow.json")));
  EXPECT_FALSE(ReadWholeFile(bundle + "/status.txt").empty());

  // The operator-facing report points at the forensics.
  std::string report = sys->StatusReport();
  EXPECT_NE(report.find("forensics:"), std::string::npos) << report;
  EXPECT_NE(report.find("bundles=1"), std::string::npos) << report;

  std::filesystem::remove_all(sopts.workspace);
  std::filesystem::remove_all(sopts.incident_dir);
}

// The bundle is a replayable record: walking its event-journal tail
// with the watchdog's own trigger rules must re-derive the trigger
// named in MANIFEST.json.
TEST(ServeChaosTest, IncidentBundleTimelineReplaysItsTrigger) {
  obs::ExpensiveRequestTracker::Instance().Clear();
  constexpr uint32_t kFlapThreshold = 3;
  core::System::Options sopts;
  sopts.workspace = TempDir("replay");
  sopts.incident_dir = TempDir("replay_bundles");
  sopts.incident_cooldown_ms = 60'000;
  auto sys_or = core::System::Create(sopts);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
  std::unique_ptr<core::System> sys = std::move(sys_or).value();
  ASSERT_NE(sys->incidents(), nullptr);

  Frontend::Options fopts;
  fopts.num_threads = 1;
  fopts.breaker.failure_threshold = 2;
  fopts.breaker.open_ms = 5;
  // No TagOperator: health stays out of it, so the flap detector is the
  // only trigger that can fire and the manifest is deterministic.
  Frontend fe(fopts);
  fe.RegisterOperator("flaky", [](const RequestContext&) {
    return Status::IoError("injected persistent fault");
  });

  core::System::WatchdogOptions wopts;
  wopts.interval_ms = 20;
  wopts.breaker_flap_threshold = kFlapThreshold;
  sys->StartWatchdog(wopts);
  for (int i = 0; i < 6000 && sys->incidents()->dumps() < 1; ++i) {
    (void)fe.Call("flaky", RequestContext{});
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sys->StopWatchdog();
  ASSERT_GE(sys->incidents()->dumps(), 1u);

  std::vector<std::string> bundles = IncidentBundleDirs(sopts.incident_dir);
  ASSERT_EQ(bundles.size(), 1u);
  std::string manifest = ReadWholeFile(bundles[0] + "/MANIFEST.json");
  std::string trigger = JsonStringField(manifest, "trigger");
  ASSERT_FALSE(trigger.empty()) << manifest;

  // Replay: walk the bundle's event timeline in order and apply the
  // watchdog's trigger rules to re-derive what could have fired.
  std::string events = ReadWholeFile(bundles[0] + "/events.json");
  ASSERT_TRUE(testutil::IsValidJson(events));
  std::vector<std::string> derived;
  uint64_t breaker_opens = 0;
  size_t pos = 0;
  while (true) {
    size_t at = events.find("\"nanos\":", pos);
    if (at == std::string::npos) break;
    std::string code =
        JsonStringField(events.substr(at, events.find('}', at) - at),
                        "code");
    if (code == "breaker_open") {
      if (++breaker_opens >= kFlapThreshold) {
        derived.push_back("breaker_flap");
      }
    } else if (code == "health_demote") {
      derived.push_back("health_critical");
    } else if (code == "read_only_enter") {
      derived.push_back("read_only_entered");
    }
    pos = at + 8;
  }
  EXPECT_NE(std::find(derived.begin(), derived.end(), trigger),
            derived.end())
      << "trigger '" << trigger << "' not derivable from the timeline:\n"
      << events;
  EXPECT_EQ(trigger, "breaker_flap");
  EXPECT_GE(breaker_opens, kFlapThreshold);

  std::filesystem::remove_all(sopts.workspace);
  std::filesystem::remove_all(sopts.incident_dir);
}

}  // namespace
}  // namespace structura::serve
