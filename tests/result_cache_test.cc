// The epoch-versioned query result cache, unit-tested and then locked
// down by a property-based coherence sweep: under seeded random
// interleavings of committed writes, aborted transactions, DDL, and
// cached queries wired through a real rdbms::Database commit listener,
// a cache hit may NEVER reflect state older than the latest committed
// write, and an aborted transaction may never bump an epoch. The sweep
// (CacheSweepTest.*, ctest -L parallel) reproduces any failure from the
// printed STRUCTURA_CACHE_SEED; STRUCTURA_CACHE_ITERS scales it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "query/relation.h"
#include "query/result_cache.h"
#include "rdbms/database.h"
#include "rdbms/schema.h"
#include "rdbms/value.h"

namespace structura::query {
namespace {

using rdbms::Database;
using rdbms::TableSchema;
using rdbms::Transaction;
using rdbms::ValueType;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 10);
}

Relation OneCell(int64_t v) {
  Relation rel({"v"});
  rel.Append({Value::Int(v)}).ok();
  return rel;
}

obs::CostVector CostOf(uint64_t score_nanos) {
  obs::CostVector cost;
  cost.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] = score_nanos;
  return cost;
}

TEST(ResultCacheTest, HitReturnsInsertedResult) {
  QueryResultCache cache;
  EXPECT_FALSE(cache.Lookup("q1").has_value());
  EpochVector at = cache.epochs().Snapshot({"table:t"});
  cache.Insert("q1", at, OneCell(7), CostOf(1000));
  auto hit = cache.Lookup("q1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->At(0, "v").as_int(), 7);
  QueryResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);  // the pre-insert lookup
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheTest, BumpInvalidatesLazily) {
  QueryResultCache cache;
  cache.Insert("q", cache.epochs().Snapshot({"table:t"}), OneCell(1),
               CostOf(1000));
  ASSERT_TRUE(cache.Lookup("q").has_value());
  cache.epochs().Bump("table:t");
  EXPECT_FALSE(cache.Lookup("q").has_value());
  QueryResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.entries, 0u);
  // An input the entry does not read leaves it valid.
  cache.Insert("q2", cache.epochs().Snapshot({"table:t"}), OneCell(2),
               CostOf(1000));
  cache.epochs().Bump("table:other");
  EXPECT_TRUE(cache.Lookup("q2").has_value());
}

TEST(ResultCacheTest, SnapshotBeforeExecutionCatchesMidRunWrites) {
  // The insert below records epochs snapshotted BEFORE a write landed
  // mid-"execution" — so the entry must be discarded at first lookup.
  QueryResultCache cache;
  EpochVector at = cache.epochs().Snapshot({"table:t"});
  cache.epochs().Bump("table:t");  // write commits while query runs
  cache.Insert("q", at, OneCell(42), CostOf(1000));
  EXPECT_FALSE(cache.Lookup("q").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResultCacheTest, LruEvictsByEntryBudget) {
  QueryResultCache::Options opts;
  opts.max_entries = 2;
  QueryResultCache cache(opts);
  cache.Insert("a", {}, OneCell(1), CostOf(1000));
  cache.Insert("b", {}, OneCell(2), CostOf(1000));
  ASSERT_TRUE(cache.Lookup("a").has_value());  // a is now MRU
  cache.Insert("c", {}, OneCell(3), CostOf(1000));
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());  // LRU victim
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, ByteBudgetEvictsAndRejectsOversized) {
  QueryResultCache::Options opts;
  opts.max_bytes = 600;
  QueryResultCache cache(opts);
  Relation big({"s"});
  big.Append({Value::Str(std::string(10000, 'x'))}).ok();
  cache.Insert("big", {}, big, CostOf(1000));  // alone over budget
  EXPECT_FALSE(cache.Lookup("big").has_value());
  EXPECT_EQ(cache.stats().rejected, 1u);
  cache.Insert("a", {}, OneCell(1), CostOf(1000));
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_LE(cache.stats().bytes, 600u);
}

TEST(ResultCacheTest, CostFloorRejectsCheapResults) {
  QueryResultCache::Options opts;
  opts.min_cost_score = 1000000;
  QueryResultCache cache(opts);
  cache.Insert("cheap", {}, OneCell(1), CostOf(10));
  EXPECT_FALSE(cache.Lookup("cheap").has_value());
  EXPECT_EQ(cache.stats().rejected, 1u);
  cache.Insert("dear", {}, OneCell(2), CostOf(2000000));
  EXPECT_TRUE(cache.Lookup("dear").has_value());
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsEpochs) {
  QueryResultCache cache;
  cache.epochs().Bump("table:t");
  cache.Insert("q", cache.epochs().Snapshot({"table:t"}), OneCell(1),
               CostOf(1000));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("q").has_value());
  EXPECT_EQ(cache.epochs().Get("table:t"), 1u);
}

TEST(ResultCacheTest, CommitListenerBumpsOnCommitOnly) {
  auto db = Database::Open({});
  ASSERT_TRUE(db.ok());
  QueryResultCache cache;
  (*db)->SetCommitListener([&](const std::vector<std::string>& tables) {
    for (const std::string& t : tables) cache.epochs().Bump("table:" + t);
  });
  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"k", ValueType::kString}, {"n", ValueType::kInt}};
  ASSERT_TRUE((*db)->CreateTable(schema).ok());
  EXPECT_EQ(cache.epochs().Get("table:t"), 1u);  // DDL bumps
  {
    auto txn = (*db)->Begin();
    txn->Insert("t", {Value::Str("a"), Value::Int(1)}).value();
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(cache.epochs().Get("table:t"), 2u);  // committed write bumps
  {
    auto txn = (*db)->Begin();
    txn->Insert("t", {Value::Str("b"), Value::Int(2)}).value();
    ASSERT_TRUE(txn->Abort().ok());
  }
  EXPECT_EQ(cache.epochs().Get("table:t"), 2u);  // abort never bumps
  {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn->Commit().ok());  // empty commit: nothing touched
  }
  EXPECT_EQ(cache.epochs().Get("table:t"), 2u);
  (*db)->SetCommitListener(nullptr);
}

TEST(ResultCacheTest, ConcurrentLookupInsertBumpIsRaceFree) {
  // Hammer the cache from four threads; correctness here is "no data
  // race, internally consistent stats" (TSan does the heavy lifting).
  QueryResultCache::Options opts;
  opts.max_entries = 16;
  QueryResultCache cache(opts);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &stop, t] {
      std::mt19937_64 rng(t);
      while (!stop.load()) {
        std::string name = "q" + std::to_string(rng() % 32);
        switch (rng() % 3) {
          case 0:
            cache.Insert(name,
                         cache.epochs().Snapshot({"table:x"}),
                         OneCell(static_cast<int64_t>(rng() % 100)),
                         CostOf(1000));
            break;
          case 1:
            cache.Lookup(name);
            break;
          default:
            cache.epochs().Bump("table:x");
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (std::thread& th : threads) th.join();
  QueryResultCache::Stats s = cache.stats();
  EXPECT_LE(s.entries, 16u);
}

// --------------------------------------------------------------- sweep

/// Property-based coherence: random interleavings of committed writes,
/// aborts, DDL, and cached queries against a real database wired to the
/// cache via the commit listener. Invariants, checked at every step:
///   1. a cache hit equals the model recomputed from committed state —
///      a hit can never be older than the latest committed write;
///   2. aborted transactions never move an epoch;
///   3. a miss recomputed from the database always matches the model
///      (the database and the mirror agree).
TEST(CacheSweepTest, RandomInterleavingsNeverServeStale) {
  const uint64_t base_seed = EnvU64("STRUCTURA_CACHE_SEED", 20260808);
  const uint64_t iters = EnvU64("STRUCTURA_CACHE_ITERS", 1000);
  for (uint64_t iter = 0; iter < iters; ++iter) {
    uint64_t seed = base_seed + iter;
    SCOPED_TRACE("STRUCTURA_CACHE_SEED=" + std::to_string(seed) +
                 " (iteration " + std::to_string(iter) + ")");
    std::mt19937_64 rng(seed);
    auto db = Database::Open({});
    ASSERT_TRUE(db.ok());
    QueryResultCache cache;
    (*db)->SetCommitListener(
        [&](const std::vector<std::string>& tables) {
          for (const std::string& t : tables) {
            cache.epochs().Bump("table:" + t);
          }
        });
    // Committed-state mirror: table -> sum of its committed ints.
    std::map<std::string, int64_t> mirror;
    const int kTables = 3;
    for (int t = 0; t < kTables; ++t) {
      TableSchema schema;
      schema.table_name = "t" + std::to_string(t);
      schema.columns = {{"n", ValueType::kInt}};
      ASSERT_TRUE((*db)->CreateTable(schema).ok());
      mirror[schema.table_name] = 0;
    }
    auto db_sum = [&](const std::string& table) {
      auto txn = (*db)->Begin();
      auto rows = txn->Scan(table);
      EXPECT_TRUE(rows.ok());
      int64_t sum = 0;
      for (const auto& [id, row] : *rows) sum += row[0].as_int();
      EXPECT_TRUE(txn->Commit().ok());
      return sum;
    };
    const int kSteps = 40;
    for (int step = 0; step < kSteps; ++step) {
      std::string table = "t" + std::to_string(rng() % kTables);
      switch (rng() % 4) {
        case 0: {  // committed write
          int64_t v = static_cast<int64_t>(rng() % 1000);
          auto txn = (*db)->Begin();
          txn->Insert(table, {Value::Int(v)}).value();
          ASSERT_TRUE(txn->Commit().ok());
          mirror[table] += v;
          break;
        }
        case 1: {  // aborted write: must not bump, must not change state
          uint64_t epoch_before = cache.epochs().Get("table:" + table);
          auto txn = (*db)->Begin();
          txn->Insert(table, {Value::Int(12345)}).value();
          ASSERT_TRUE(txn->Abort().ok());
          ASSERT_EQ(cache.epochs().Get("table:" + table), epoch_before)
              << "aborted txn bumped " << table;
          break;
        }
        default: {  // cached query
          std::string fingerprint = "sum:" + table;
          EpochVector at = cache.epochs().Snapshot({"table:" + table});
          if (auto hit = cache.Lookup(fingerprint)) {
            ASSERT_EQ(hit->At(0, "v").as_int(), mirror[table])
                << "STALE HIT on " << table << " at step " << step;
          } else {
            int64_t fresh = db_sum(table);
            ASSERT_EQ(fresh, mirror[table]);
            cache.Insert(fingerprint, std::move(at), OneCell(fresh),
                         CostOf(1000));
          }
          break;
        }
      }
    }
    (*db)->SetCommitListener(nullptr);
  }
}

}  // namespace
}  // namespace structura::query
