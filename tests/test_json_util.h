#ifndef STRUCTURA_TESTS_TEST_JSON_UTIL_H_
#define STRUCTURA_TESTS_TEST_JSON_UTIL_H_

#include <cctype>
#include <cstddef>
#include <string>

namespace structura::testutil {

/// Minimal recursive-descent JSON validator: enough grammar to prove the
/// hand-rolled renderers (metrics, health, events, incidents) emit
/// parseable output even with hostile names. Strict on the details that
/// escaping bugs break: raw control characters inside strings, bad
/// escape sequences, unterminated values, trailing garbage.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') return ++pos_, true;
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') return ++pos_, true;
      return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') return ++pos_, true;
      if (c < 0x20) return false;  // raw control char = broken escaping
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

inline bool IsValidJson(const std::string& s) {
  return JsonValidator(s).Valid();
}

}  // namespace structura::testutil

#endif  // STRUCTURA_TESTS_TEST_JSON_UTIL_H_
