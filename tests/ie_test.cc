#include <set>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "corpus/generator.h"
#include "ie/dictionary.h"
#include "ie/infobox_extractor.h"
#include "ie/nb_tagger.h"
#include "ie/pattern_learner.h"
#include "ie/pipeline.h"
#include "ie/regex_extractor.h"
#include "ie/standard.h"
#include "ie/template_extractor.h"

namespace structura::ie {
namespace {

text::Document MakeDoc(const std::string& text,
                       const std::string& title = "Test") {
  text::Document doc;
  doc.id = 1;
  doc.title = title;
  doc.text = text;
  return doc;
}

TEST(DictionaryTest, CaseInsensitiveLookup) {
  Dictionary dict;
  dict.Add("January", "01");
  EXPECT_TRUE(dict.Contains("january"));
  EXPECT_TRUE(dict.Contains("JANUARY"));
  EXPECT_FALSE(dict.Contains("janu"));
  EXPECT_EQ(*dict.Lookup("January"), "01");
}

TEST(DictionaryTest, MonthsComplete) {
  Dictionary months = Dictionary::Months();
  EXPECT_EQ(months.size(), 12u);
  EXPECT_EQ(*months.Lookup("september"), "09");
  EXPECT_EQ(*months.Lookup("December"), "12");
}

TEST(InfoboxExtractorTest, ExtractsAllEntries) {
  InfoboxExtractor ex;
  auto facts = ex.Extract(MakeDoc(
      "{{Infobox city\n| name = Madison\n| population = 233,209\n"
      "| temp_01 = 20\n}}\ntext\n"));
  ASSERT_EQ(facts.size(), 2u);  // name becomes the subject, not a fact
  EXPECT_EQ(facts[0].subject, "Madison");
  EXPECT_EQ(facts[0].attribute, "population");
  EXPECT_EQ(facts[0].value, "233,209");
  EXPECT_EQ(facts[1].attribute, "temp_01");
  EXPECT_EQ(facts[0].extractor, "infobox");
  EXPECT_GT(facts[0].confidence, 0.9);
}

TEST(InfoboxExtractorTest, TypeFilter) {
  InfoboxExtractor::Options options;
  options.type_filter = "person";
  InfoboxExtractor ex(options);
  EXPECT_TRUE(
      ex.Extract(MakeDoc("{{Infobox city\n| name = X\n| a = b\n}}"))
          .empty());
  EXPECT_EQ(
      ex.Extract(MakeDoc("{{Infobox person\n| name = X\n| a = b\n}}"))
          .size(),
      1u);
}

TEST(InfoboxExtractorTest, KeyFilter) {
  InfoboxExtractor::Options options;
  options.keys = {"population"};
  InfoboxExtractor ex(options);
  auto facts = ex.Extract(MakeDoc(
      "{{Infobox city\n| name = X\n| population = 5\n| founded = 1900\n}}"));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].attribute, "population");
}

TEST(TemplateExtractorTest, TemperatureSentences) {
  ExtractorPtr ex = MakeTemperatureExtractor();
  auto facts = ex->Extract(MakeDoc(
      "The average temperature in September is 70 degrees.\n"
      "The average temperature in January is -5 degrees.\n"));
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(facts[0].attribute, "temp_09");
  EXPECT_EQ(facts[0].value, "70");
  EXPECT_EQ(facts[1].attribute, "temp_01");
  EXPECT_EQ(facts[1].value, "-5");
}

TEST(TemplateExtractorTest, SpanPointsAtValue) {
  ExtractorPtr ex = MakeTemperatureExtractor();
  std::string text = "The average temperature in March is 34 degrees.";
  auto facts = ex->Extract(MakeDoc(text));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(text.substr(facts[0].span.begin, facts[0].span.length()),
            "34");
}

TEST(TemplateExtractorTest, PopulationWithCommas) {
  ExtractorPtr ex = MakePopulationExtractor();
  auto facts = ex->Extract(
      MakeDoc("Madison has a population of 233,209 people."));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].value, "233,209");
}

TEST(TemplateExtractorTest, MayorNamesWithVariants) {
  ExtractorPtr ex = MakeMayorExtractor();
  auto facts = ex->Extract(MakeDoc("The mayor of Madison is D. Smith."));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].subject, "Madison");
  EXPECT_EQ(facts[0].value, "D. Smith");
  facts = ex->Extract(
      MakeDoc("The mayor of Oakfield Heights is Sarah Johnson."));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].subject, "Oakfield Heights");
  EXPECT_EQ(facts[0].value, "Sarah Johnson");
}

TEST(TemplateExtractorTest, LinkSlotCapturesTarget) {
  ExtractorPtr ex = MakeResidenceExtractor();
  auto facts = ex->Extract(
      MakeDoc("They live in [[Madison|City of Madison]].\n"));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].value, "Madison");
}

TEST(TemplateExtractorTest, NoMatchNoFacts) {
  ExtractorPtr ex = MakeTemperatureExtractor();
  EXPECT_TRUE(
      ex->Extract(MakeDoc("Nothing relevant here at all.")).empty());
  EXPECT_TRUE(ex->Extract(MakeDoc("")).empty());
}

TEST(TemplateExtractorTest, CreateRejectsBadSpecs) {
  TemplateExtractor::Spec spec;
  spec.extractor_name = "bad";
  spec.pattern = "hello <x:unknown_type>";
  spec.value_slot = "x";
  EXPECT_FALSE(TemplateExtractor::Create(spec).ok());

  spec.pattern = "hello <x:dict:missing>";
  EXPECT_FALSE(TemplateExtractor::Create(spec).ok());

  spec.pattern = "hello <y:number>";
  spec.value_slot = "x";  // not in pattern
  EXPECT_FALSE(TemplateExtractor::Create(spec).ok());

  spec.pattern = "";
  EXPECT_FALSE(TemplateExtractor::Create(spec).ok());
}

TEST(RegexExtractorTest, ExtractsCaptureGroup) {
  RegexExtractor::Spec spec;
  spec.extractor_name = "founded_rx";
  spec.pattern = "founded in (\\d{4})";
  spec.attribute = "founded";
  auto ex = RegexExtractor::Create(spec);
  ASSERT_TRUE(ex.ok());
  auto facts =
      (*ex)->Extract(MakeDoc("The city was founded in 1846. Later..."));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].value, "1846");
  EXPECT_EQ(facts[0].attribute, "founded");
}

TEST(RegexExtractorTest, BadPatternRejected) {
  RegexExtractor::Spec spec;
  spec.extractor_name = "broken";
  spec.pattern = "([unclosed";
  EXPECT_FALSE(RegexExtractor::Create(spec).ok());
}

TEST(MentionCandidatesTest, FindsCapitalizedRuns) {
  auto mentions = FindCandidateMentions(
      MakeDoc("David Smith met D. Brown in Madison, Wisconsin today."));
  std::vector<std::string> surfaces;
  for (const auto& m : mentions) surfaces.push_back(m.surface);
  EXPECT_EQ(surfaces,
            (std::vector<std::string>{"David Smith", "D. Brown",
                                      "Madison, Wisconsin"}));
}

TEST(NbTaggerTest, LearnsMentionTypesFromCorpus) {
  corpus::CorpusOptions options;
  options.num_cities = 15;
  options.num_people = 30;
  options.num_companies = 5;
  options.news_pages = 10;
  options.seed = 4;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);

  NaiveBayesTagger tagger;
  tagger.Train(BuildMentionTrainingSet(docs, truth));
  EXPECT_TRUE(tagger.trained());
  EXPECT_GT(tagger.vocabulary_size(), 10u);

  // On a fresh news-like sentence, the tagger should label a person
  // mention in "visited" context as person and a city context as city.
  text::Document probe = MakeDoc(
      "Laura Walker, a teacher, visited City of Rivervale this week.\n");
  auto facts = tagger.Extract(probe);
  bool saw_person = false;
  for (const auto& f : facts) {
    if (f.attribute == "mention_person" &&
        f.value.find("Laura") != std::string::npos) {
      saw_person = true;
      EXPECT_GT(f.confidence, 0.3);
    }
  }
  EXPECT_TRUE(saw_person);
}

TEST(PatternLearnerTest, InducesPatternsFromLabeledPages) {
  corpus::CorpusOptions options;
  options.num_cities = 30;
  options.num_people = 0;
  options.num_companies = 0;
  options.seed = 12;
  options.infobox_dropout = 0;
  options.attribute_missing = 0;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);

  // Train on the first 10 city pages only.
  auto examples = BuildPatternExamples(docs, truth, 10);
  EXPECT_GT(examples.size(), 50u);
  PatternLearner learner;
  learner.Learn(examples);
  EXPECT_FALSE(learner.patterns().empty());
  // The population context must be among the induced rules.
  bool has_population = false;
  for (const LearnedPattern& p : learner.patterns()) {
    EXPECT_GE(p.support, 3u);
    if (p.attribute == "population" &&
        p.ToPatternString().find("population of <v:number>") !=
            std::string::npos) {
      has_population = true;
    }
  }
  EXPECT_TRUE(has_population);

  // Apply learned extractors to unseen pages and score them.
  auto compiled = learner.Compile();
  ASSERT_TRUE(compiled.ok());
  text::DocumentCollection held_out;
  for (size_t i = 10; i < docs.size(); ++i) {
    held_out.docs.push_back(docs.docs[i]);
  }
  FactSet facts = RunExtractors(Views(*compiled), held_out);
  EXPECT_GT(facts.size(), 100u);
  // Per-fact correctness against planted truth: high precision.
  size_t correct = 0, scored = 0;
  for (const ExtractedFact& f : facts.facts) {
    for (const corpus::FactTruth& t : truth.facts) {
      if (t.doc == f.doc && t.attribute == f.attribute) {
        ++scored;
        if (t.value == f.value) ++correct;
        break;
      }
    }
  }
  ASSERT_GT(scored, 0u);
  EXPECT_GT(static_cast<double>(correct) / scored, 0.95);
}

TEST(PatternLearnerTest, MinSupportFiltersNoise) {
  PatternLearner::Options options;
  options.min_support = 100;  // nothing survives
  PatternLearner learner(options);
  corpus::CorpusOptions copts;
  copts.num_cities = 5;
  copts.num_people = 0;
  copts.num_companies = 0;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(copts, &docs, &truth);
  learner.Learn(BuildPatternExamples(docs, truth));
  EXPECT_TRUE(learner.patterns().empty());
  EXPECT_TRUE(learner.Compile()->empty());
}

TEST(PipelineTest, SequentialMatchesMapReduce) {
  corpus::CorpusOptions options;
  options.num_cities = 10;
  options.num_people = 10;
  options.num_companies = 3;
  options.seed = 8;
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
  corpus::GenerateCorpus(options, &docs, &truth);

  std::vector<ExtractorPtr> suite = MakeStandardSuite();
  std::vector<const Extractor*> views = Views(suite);

  FactSet sequential = RunExtractors(views, docs);
  ThreadPool pool(4);
  mr::JobConfig config;
  config.split_size = 3;
  auto parallel = RunExtractorsMapReduce(views, docs, pool, config);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential.size(), parallel->size());
  // Same multiset of (doc, attribute, value) triples.
  auto key_of = [](const ExtractedFact& f) {
    return std::to_string(f.doc) + "|" + f.attribute + "|" + f.value;
  };
  std::multiset<std::string> a, b;
  for (const auto& f : sequential.facts) a.insert(key_of(f));
  for (const auto& f : parallel->facts) b.insert(key_of(f));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace structura::ie
