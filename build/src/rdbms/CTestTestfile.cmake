# CMake generated Testfile for 
# Source directory: /root/repo/src/rdbms
# Build directory: /root/repo/build/src/rdbms
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
