# CMake generated Testfile for 
# Source directory: /root/repo/src/hi
# Build directory: /root/repo/build/src/hi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
