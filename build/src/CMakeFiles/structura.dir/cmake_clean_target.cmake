file(REMOVE_RECURSE
  "libstructura.a"
)
