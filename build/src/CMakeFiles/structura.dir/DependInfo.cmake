
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/structura.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/structura.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/structura.dir/common/status.cc.o" "gcc" "src/CMakeFiles/structura.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/structura.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/structura.dir/common/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/structura.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/structura.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/CMakeFiles/structura.dir/core/eval.cc.o" "gcc" "src/CMakeFiles/structura.dir/core/eval.cc.o.d"
  "/root/repo/src/core/schema_unify.cc" "src/CMakeFiles/structura.dir/core/schema_unify.cc.o" "gcc" "src/CMakeFiles/structura.dir/core/schema_unify.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/structura.dir/core/system.cc.o" "gcc" "src/CMakeFiles/structura.dir/core/system.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/CMakeFiles/structura.dir/corpus/generator.cc.o" "gcc" "src/CMakeFiles/structura.dir/corpus/generator.cc.o.d"
  "/root/repo/src/corpus/names.cc" "src/CMakeFiles/structura.dir/corpus/names.cc.o" "gcc" "src/CMakeFiles/structura.dir/corpus/names.cc.o.d"
  "/root/repo/src/debugger/semantic_debugger.cc" "src/CMakeFiles/structura.dir/debugger/semantic_debugger.cc.o" "gcc" "src/CMakeFiles/structura.dir/debugger/semantic_debugger.cc.o.d"
  "/root/repo/src/hi/aggregation.cc" "src/CMakeFiles/structura.dir/hi/aggregation.cc.o" "gcc" "src/CMakeFiles/structura.dir/hi/aggregation.cc.o.d"
  "/root/repo/src/hi/simulated_user.cc" "src/CMakeFiles/structura.dir/hi/simulated_user.cc.o" "gcc" "src/CMakeFiles/structura.dir/hi/simulated_user.cc.o.d"
  "/root/repo/src/hi/task.cc" "src/CMakeFiles/structura.dir/hi/task.cc.o" "gcc" "src/CMakeFiles/structura.dir/hi/task.cc.o.d"
  "/root/repo/src/ie/dictionary.cc" "src/CMakeFiles/structura.dir/ie/dictionary.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/dictionary.cc.o.d"
  "/root/repo/src/ie/infobox_extractor.cc" "src/CMakeFiles/structura.dir/ie/infobox_extractor.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/infobox_extractor.cc.o.d"
  "/root/repo/src/ie/nb_tagger.cc" "src/CMakeFiles/structura.dir/ie/nb_tagger.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/nb_tagger.cc.o.d"
  "/root/repo/src/ie/pattern_learner.cc" "src/CMakeFiles/structura.dir/ie/pattern_learner.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/pattern_learner.cc.o.d"
  "/root/repo/src/ie/pipeline.cc" "src/CMakeFiles/structura.dir/ie/pipeline.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/pipeline.cc.o.d"
  "/root/repo/src/ie/regex_extractor.cc" "src/CMakeFiles/structura.dir/ie/regex_extractor.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/regex_extractor.cc.o.d"
  "/root/repo/src/ie/standard.cc" "src/CMakeFiles/structura.dir/ie/standard.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/standard.cc.o.d"
  "/root/repo/src/ie/template_extractor.cc" "src/CMakeFiles/structura.dir/ie/template_extractor.cc.o" "gcc" "src/CMakeFiles/structura.dir/ie/template_extractor.cc.o.d"
  "/root/repo/src/ii/matcher.cc" "src/CMakeFiles/structura.dir/ii/matcher.cc.o" "gcc" "src/CMakeFiles/structura.dir/ii/matcher.cc.o.d"
  "/root/repo/src/ii/resolution.cc" "src/CMakeFiles/structura.dir/ii/resolution.cc.o" "gcc" "src/CMakeFiles/structura.dir/ii/resolution.cc.o.d"
  "/root/repo/src/ii/schema_matcher.cc" "src/CMakeFiles/structura.dir/ii/schema_matcher.cc.o" "gcc" "src/CMakeFiles/structura.dir/ii/schema_matcher.cc.o.d"
  "/root/repo/src/lang/executor.cc" "src/CMakeFiles/structura.dir/lang/executor.cc.o" "gcc" "src/CMakeFiles/structura.dir/lang/executor.cc.o.d"
  "/root/repo/src/lang/optimizer.cc" "src/CMakeFiles/structura.dir/lang/optimizer.cc.o" "gcc" "src/CMakeFiles/structura.dir/lang/optimizer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/structura.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/structura.dir/lang/parser.cc.o.d"
  "/root/repo/src/lang/plan.cc" "src/CMakeFiles/structura.dir/lang/plan.cc.o" "gcc" "src/CMakeFiles/structura.dir/lang/plan.cc.o.d"
  "/root/repo/src/mr/stats.cc" "src/CMakeFiles/structura.dir/mr/stats.cc.o" "gcc" "src/CMakeFiles/structura.dir/mr/stats.cc.o.d"
  "/root/repo/src/provenance/lineage.cc" "src/CMakeFiles/structura.dir/provenance/lineage.cc.o" "gcc" "src/CMakeFiles/structura.dir/provenance/lineage.cc.o.d"
  "/root/repo/src/query/browse.cc" "src/CMakeFiles/structura.dir/query/browse.cc.o" "gcc" "src/CMakeFiles/structura.dir/query/browse.cc.o.d"
  "/root/repo/src/query/hybrid.cc" "src/CMakeFiles/structura.dir/query/hybrid.cc.o" "gcc" "src/CMakeFiles/structura.dir/query/hybrid.cc.o.d"
  "/root/repo/src/query/keyword_index.cc" "src/CMakeFiles/structura.dir/query/keyword_index.cc.o" "gcc" "src/CMakeFiles/structura.dir/query/keyword_index.cc.o.d"
  "/root/repo/src/query/relation.cc" "src/CMakeFiles/structura.dir/query/relation.cc.o" "gcc" "src/CMakeFiles/structura.dir/query/relation.cc.o.d"
  "/root/repo/src/query/standing_query.cc" "src/CMakeFiles/structura.dir/query/standing_query.cc.o" "gcc" "src/CMakeFiles/structura.dir/query/standing_query.cc.o.d"
  "/root/repo/src/query/structured_query.cc" "src/CMakeFiles/structura.dir/query/structured_query.cc.o" "gcc" "src/CMakeFiles/structura.dir/query/structured_query.cc.o.d"
  "/root/repo/src/query/translator.cc" "src/CMakeFiles/structura.dir/query/translator.cc.o" "gcc" "src/CMakeFiles/structura.dir/query/translator.cc.o.d"
  "/root/repo/src/rdbms/btree.cc" "src/CMakeFiles/structura.dir/rdbms/btree.cc.o" "gcc" "src/CMakeFiles/structura.dir/rdbms/btree.cc.o.d"
  "/root/repo/src/rdbms/database.cc" "src/CMakeFiles/structura.dir/rdbms/database.cc.o" "gcc" "src/CMakeFiles/structura.dir/rdbms/database.cc.o.d"
  "/root/repo/src/rdbms/lock_manager.cc" "src/CMakeFiles/structura.dir/rdbms/lock_manager.cc.o" "gcc" "src/CMakeFiles/structura.dir/rdbms/lock_manager.cc.o.d"
  "/root/repo/src/rdbms/table.cc" "src/CMakeFiles/structura.dir/rdbms/table.cc.o" "gcc" "src/CMakeFiles/structura.dir/rdbms/table.cc.o.d"
  "/root/repo/src/rdbms/value.cc" "src/CMakeFiles/structura.dir/rdbms/value.cc.o" "gcc" "src/CMakeFiles/structura.dir/rdbms/value.cc.o.d"
  "/root/repo/src/rdbms/wal.cc" "src/CMakeFiles/structura.dir/rdbms/wal.cc.o" "gcc" "src/CMakeFiles/structura.dir/rdbms/wal.cc.o.d"
  "/root/repo/src/schema/evolution.cc" "src/CMakeFiles/structura.dir/schema/evolution.cc.o" "gcc" "src/CMakeFiles/structura.dir/schema/evolution.cc.o.d"
  "/root/repo/src/sensors/sensor_events.cc" "src/CMakeFiles/structura.dir/sensors/sensor_events.cc.o" "gcc" "src/CMakeFiles/structura.dir/sensors/sensor_events.cc.o.d"
  "/root/repo/src/storage/diff.cc" "src/CMakeFiles/structura.dir/storage/diff.cc.o" "gcc" "src/CMakeFiles/structura.dir/storage/diff.cc.o.d"
  "/root/repo/src/storage/segment_store.cc" "src/CMakeFiles/structura.dir/storage/segment_store.cc.o" "gcc" "src/CMakeFiles/structura.dir/storage/segment_store.cc.o.d"
  "/root/repo/src/storage/snapshot_store.cc" "src/CMakeFiles/structura.dir/storage/snapshot_store.cc.o" "gcc" "src/CMakeFiles/structura.dir/storage/snapshot_store.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/CMakeFiles/structura.dir/text/similarity.cc.o" "gcc" "src/CMakeFiles/structura.dir/text/similarity.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/structura.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/structura.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/wiki_markup.cc" "src/CMakeFiles/structura.dir/text/wiki_markup.cc.o" "gcc" "src/CMakeFiles/structura.dir/text/wiki_markup.cc.o.d"
  "/root/repo/src/uncertainty/confidence.cc" "src/CMakeFiles/structura.dir/uncertainty/confidence.cc.o" "gcc" "src/CMakeFiles/structura.dir/uncertainty/confidence.cc.o.d"
  "/root/repo/src/uncertainty/possible_worlds.cc" "src/CMakeFiles/structura.dir/uncertainty/possible_worlds.cc.o" "gcc" "src/CMakeFiles/structura.dir/uncertainty/possible_worlds.cc.o.d"
  "/root/repo/src/user/accounts.cc" "src/CMakeFiles/structura.dir/user/accounts.cc.o" "gcc" "src/CMakeFiles/structura.dir/user/accounts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
