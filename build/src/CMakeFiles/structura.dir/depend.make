# Empty dependencies file for structura.
# This may be replaced when dependencies are built.
