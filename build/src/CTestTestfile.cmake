# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("text")
subdirs("corpus")
subdirs("mr")
subdirs("storage")
subdirs("rdbms")
subdirs("ie")
subdirs("ii")
subdirs("uncertainty")
subdirs("provenance")
subdirs("schema")
subdirs("hi")
subdirs("debugger")
subdirs("lang")
subdirs("query")
subdirs("user")
subdirs("sensors")
subdirs("core")
