# Empty dependencies file for semantic_debugging.
# This may be replaced when dependencies are built.
