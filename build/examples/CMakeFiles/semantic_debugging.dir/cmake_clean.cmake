file(REMOVE_RECURSE
  "CMakeFiles/semantic_debugging.dir/semantic_debugging.cpp.o"
  "CMakeFiles/semantic_debugging.dir/semantic_debugging.cpp.o.d"
  "semantic_debugging"
  "semantic_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
