# Empty compiler generated dependencies file for sensor_rooms.
# This may be replaced when dependencies are built.
