file(REMOVE_RECURSE
  "CMakeFiles/sensor_rooms.dir/sensor_rooms.cpp.o"
  "CMakeFiles/sensor_rooms.dir/sensor_rooms.cpp.o.d"
  "sensor_rooms"
  "sensor_rooms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_rooms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
