file(REMOVE_RECURSE
  "CMakeFiles/community_portal.dir/community_portal.cpp.o"
  "CMakeFiles/community_portal.dir/community_portal.cpp.o.d"
  "community_portal"
  "community_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
