# Empty dependencies file for community_portal.
# This may be replaced when dependencies are built.
