# Empty compiler generated dependencies file for incremental_jobsearch.
# This may be replaced when dependencies are built.
