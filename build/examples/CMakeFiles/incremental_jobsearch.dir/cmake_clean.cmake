file(REMOVE_RECURSE
  "CMakeFiles/incremental_jobsearch.dir/incremental_jobsearch.cpp.o"
  "CMakeFiles/incremental_jobsearch.dir/incremental_jobsearch.cpp.o.d"
  "incremental_jobsearch"
  "incremental_jobsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_jobsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
