file(REMOVE_RECURSE
  "CMakeFiles/sdl_shell.dir/sdl_shell.cpp.o"
  "CMakeFiles/sdl_shell.dir/sdl_shell.cpp.o.d"
  "sdl_shell"
  "sdl_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdl_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
