# Empty dependencies file for sdl_shell.
# This may be replaced when dependencies are built.
