# Empty dependencies file for two_sources.
# This may be replaced when dependencies are built.
