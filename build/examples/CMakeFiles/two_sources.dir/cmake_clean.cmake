file(REMOVE_RECURSE
  "CMakeFiles/two_sources.dir/two_sources.cpp.o"
  "CMakeFiles/two_sources.dir/two_sources.cpp.o.d"
  "two_sources"
  "two_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
