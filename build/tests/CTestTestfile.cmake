# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/mr_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/rdbms_test[1]_include.cmake")
include("/root/repo/build/tests/ie_test[1]_include.cmake")
include("/root/repo/build/tests/ii_test[1]_include.cmake")
include("/root/repo/build/tests/uncertainty_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/hi_test[1]_include.cmake")
include("/root/repo/build/tests/user_test[1]_include.cmake")
include("/root/repo/build/tests/debugger_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sensors_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
