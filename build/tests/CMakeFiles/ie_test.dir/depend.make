# Empty dependencies file for ie_test.
# This may be replaced when dependencies are built.
