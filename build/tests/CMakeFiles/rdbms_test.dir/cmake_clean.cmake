file(REMOVE_RECURSE
  "CMakeFiles/rdbms_test.dir/rdbms_test.cc.o"
  "CMakeFiles/rdbms_test.dir/rdbms_test.cc.o.d"
  "rdbms_test"
  "rdbms_test.pdb"
  "rdbms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdbms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
