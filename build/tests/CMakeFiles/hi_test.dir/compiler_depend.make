# Empty compiler generated dependencies file for hi_test.
# This may be replaced when dependencies are built.
