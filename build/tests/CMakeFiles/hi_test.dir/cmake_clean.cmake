file(REMOVE_RECURSE
  "CMakeFiles/hi_test.dir/hi_test.cc.o"
  "CMakeFiles/hi_test.dir/hi_test.cc.o.d"
  "hi_test"
  "hi_test.pdb"
  "hi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
