# Empty dependencies file for ii_test.
# This may be replaced when dependencies are built.
