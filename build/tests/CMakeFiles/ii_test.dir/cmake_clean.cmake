file(REMOVE_RECURSE
  "CMakeFiles/ii_test.dir/ii_test.cc.o"
  "CMakeFiles/ii_test.dir/ii_test.cc.o.d"
  "ii_test"
  "ii_test.pdb"
  "ii_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
