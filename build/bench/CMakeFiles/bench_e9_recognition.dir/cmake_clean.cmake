file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_recognition.dir/bench_e9_recognition.cc.o"
  "CMakeFiles/bench_e9_recognition.dir/bench_e9_recognition.cc.o.d"
  "bench_e9_recognition"
  "bench_e9_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
