file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_optimizer.dir/bench_e7_optimizer.cc.o"
  "CMakeFiles/bench_e7_optimizer.dir/bench_e7_optimizer.cc.o.d"
  "bench_e7_optimizer"
  "bench_e7_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
