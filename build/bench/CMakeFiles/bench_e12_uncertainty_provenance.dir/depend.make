# Empty dependencies file for bench_e12_uncertainty_provenance.
# This may be replaced when dependencies are built.
