file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_uncertainty_provenance.dir/bench_e12_uncertainty_provenance.cc.o"
  "CMakeFiles/bench_e12_uncertainty_provenance.dir/bench_e12_uncertainty_provenance.cc.o.d"
  "bench_e12_uncertainty_provenance"
  "bench_e12_uncertainty_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_uncertainty_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
