# Empty compiler generated dependencies file for bench_e13_intermediate_store.
# This may be replaced when dependencies are built.
