file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_intermediate_store.dir/bench_e13_intermediate_store.cc.o"
  "CMakeFiles/bench_e13_intermediate_store.dir/bench_e13_intermediate_store.cc.o.d"
  "bench_e13_intermediate_store"
  "bench_e13_intermediate_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_intermediate_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
