file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_mapreduce.dir/bench_e5_mapreduce.cc.o"
  "CMakeFiles/bench_e5_mapreduce.dir/bench_e5_mapreduce.cc.o.d"
  "bench_e5_mapreduce"
  "bench_e5_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
