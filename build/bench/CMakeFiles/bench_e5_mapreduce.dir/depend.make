# Empty dependencies file for bench_e5_mapreduce.
# This may be replaced when dependencies are built.
