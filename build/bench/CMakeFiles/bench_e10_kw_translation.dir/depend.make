# Empty dependencies file for bench_e10_kw_translation.
# This may be replaced when dependencies are built.
