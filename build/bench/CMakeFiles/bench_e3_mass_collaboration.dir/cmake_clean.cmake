file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_mass_collaboration.dir/bench_e3_mass_collaboration.cc.o"
  "CMakeFiles/bench_e3_mass_collaboration.dir/bench_e3_mass_collaboration.cc.o.d"
  "bench_e3_mass_collaboration"
  "bench_e3_mass_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_mass_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
