# Empty dependencies file for bench_e3_mass_collaboration.
# This may be replaced when dependencies are built.
