# Empty compiler generated dependencies file for bench_e8_semantic_debugger.
# This may be replaced when dependencies are built.
