file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_semantic_debugger.dir/bench_e8_semantic_debugger.cc.o"
  "CMakeFiles/bench_e8_semantic_debugger.dir/bench_e8_semantic_debugger.cc.o.d"
  "bench_e8_semantic_debugger"
  "bench_e8_semantic_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_semantic_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
