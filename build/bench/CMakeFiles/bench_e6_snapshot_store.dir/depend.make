# Empty dependencies file for bench_e6_snapshot_store.
# This may be replaced when dependencies are built.
