file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_transactions.dir/bench_e11_transactions.cc.o"
  "CMakeFiles/bench_e11_transactions.dir/bench_e11_transactions.cc.o.d"
  "bench_e11_transactions"
  "bench_e11_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
