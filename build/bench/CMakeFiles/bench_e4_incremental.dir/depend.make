# Empty dependencies file for bench_e4_incremental.
# This may be replaced when dependencies are built.
