file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_incremental.dir/bench_e4_incremental.cc.o"
  "CMakeFiles/bench_e4_incremental.dir/bench_e4_incremental.cc.o.d"
  "bench_e4_incremental"
  "bench_e4_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
