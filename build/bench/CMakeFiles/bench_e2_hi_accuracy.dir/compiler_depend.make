# Empty compiler generated dependencies file for bench_e2_hi_accuracy.
# This may be replaced when dependencies are built.
