# Empty dependencies file for bench_e1_structure_vs_keyword.
# This may be replaced when dependencies are built.
