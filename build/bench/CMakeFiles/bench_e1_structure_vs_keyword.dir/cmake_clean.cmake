file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_structure_vs_keyword.dir/bench_e1_structure_vs_keyword.cc.o"
  "CMakeFiles/bench_e1_structure_vs_keyword.dir/bench_e1_structure_vs_keyword.cc.o.d"
  "bench_e1_structure_vs_keyword"
  "bench_e1_structure_vs_keyword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_structure_vs_keyword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
