// E1 — Section 2's motivating claim: keyword search cannot answer
// "find the average March-September temperature in Madison, Wisconsin",
// while structure extracted from the same pages can.
//
// Task: for every city, compute its average March-September temperature.
//  * keyword baseline: BM25 retrieves pages for "average March September
//    temperature <city>" — it can locate the page (hit@1 counter) but
//    returns no number; its task accuracy is 0 by construction, which we
//    report honestly as answerable_rate = 0.
//  * structured path: SDL extraction + beliefs answer per city; we report
//    the fraction of cities answered exactly (vs ground truth) and the
//    mean absolute error.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "core/system.h"
#include "uncertainty/possible_worlds.h"

namespace structura {
namespace {

void BM_KeywordBaseline(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  core::System::Options options;
  auto sys = std::move(core::System::Create(options)).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);

  size_t page_hits = 0, queries = 0;
  for (auto _ : state) {
    page_hits = 0;
    queries = 0;
    for (const corpus::CityRecord& city : w.truth.cities) {
      auto hits = sys->KeywordSearch(
          "average March September temperature " + city.name, 1);
      ++queries;
      if (!hits.empty() && hits[0].title == city.name) ++page_hits;
    }
  }
  state.counters["page_hit_at_1"] =
      static_cast<double>(page_hits) / static_cast<double>(queries);
  // Keyword search returns documents, not aggregates: the task itself
  // is unanswerable in this mode.
  state.counters["answerable_rate"] = 0.0;
  state.counters["exact_answers"] = 0.0;
}
BENCHMARK(BM_KeywordBaseline)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_StructuredAnswer(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  core::System::Options options;
  auto sys = std::move(core::System::Create(options)).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);

  size_t exact = 0, answered = 0;
  double abs_err = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sys->context().views.clear();
    state.ResumeTiming();
    // Generation: extract temperature structure once.
    sys->RunProgram(
           "CREATE VIEW temps AS EXTRACT infobox, temp_sentence "
           "FROM pages WHERE category = \"City\" "
           "AND attribute LIKE \"temp_%\";")
        .value();
    sys->BuildBeliefsFromView("temps");
    // Exploitation: one aggregate answer per city from beliefs.
    exact = answered = 0;
    abs_err = 0;
    for (const corpus::CityRecord& city : w.truth.cities) {
      double sum = 0;
      int months = 0;
      for (const auto& belief : sys->beliefs()) {
        if (belief.subject != city.name) continue;
        if (belief.attribute < "temp_03" || belief.attribute > "temp_09") {
          continue;
        }
        auto ev = uncertainty::ExpectedNumeric(belief);
        if (ev.p_present <= 0) continue;
        sum += ev.expectation;
        ++months;
      }
      if (months == 0) continue;
      ++answered;
      double got = sum / months;
      double want = 0;
      for (int m = 2; m <= 8; ++m) want += city.temps[m];
      want /= 7.0;
      abs_err += std::abs(got - want);
      if (std::abs(got - want) < 0.75) ++exact;
    }
  }
  double n_cities = static_cast<double>(w.truth.cities.size());
  state.counters["answerable_rate"] =
      static_cast<double>(answered) / n_cities;
  state.counters["exact_answers"] =
      static_cast<double>(exact) / n_cities;
  state.counters["mean_abs_error"] =
      answered == 0 ? 0 : abs_err / static_cast<double>(answered);
}
BENCHMARK(BM_StructuredAnswer)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
