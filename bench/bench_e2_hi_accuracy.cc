// E2 — Section 3.2: "automatic IE and II often will not be 100% accurate
// ... applications often want to have a human in the loop, to help
// improve the accuracy". We corrupt free text with digit typos and drop
// attributes from infoboxes, then measure belief F1 after 0..4 rounds of
// simulated crowd feedback. Expected shape: F1 rises monotonically with
// feedback and saturates.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/eval.h"
#include "core/system.h"
#include "hi/simulated_user.h"
#include "ie/pattern_learner.h"
#include "ie/pipeline.h"
#include "ie/standard.h"

namespace structura {
namespace {

void BM_FeedbackRounds(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  bench::Workload w =
      bench::MakeWorkload(30, /*dropout=*/0.5, /*typo=*/0.25);
  double f1_before = 0, f1_after = 0;
  size_t tasks = 0;
  for (auto _ : state) {
    auto sys = std::move(core::System::Create({})).value();
    sys->RegisterStandardOperators();
    sys->IngestCrawl(w.docs);
    sys->RunProgram(
           "CREATE VIEW facts AS EXTRACT infobox, temp_sentence, "
           "population_sentence, founded_sentence, elevation_sentence "
           "FROM pages;")
        .value();
    sys->BuildBeliefsFromView("facts");
    f1_before = core::ScoreBeliefs(sys->beliefs(), w.truth).f1();
    auto crowd = hi::MakeCrowd(9, 0.7, 0.95, 17);
    auto oracle = bench::MakeOracle(w.truth);
    tasks = 0;
    for (int r = 0; r < rounds; ++r) {
      core::System::FeedbackOptions options;
      options.budget = 60;
      options.answers_per_task = 5;
      options.aggregation = core::System::Aggregation::kMajority;
      tasks += sys->RunFeedbackRound(oracle, &crowd, options).value_or(0);
    }
    f1_after = core::ScoreBeliefs(sys->beliefs(), w.truth).f1();
  }
  state.counters["f1_before"] = f1_before;
  state.counters["f1_after"] = f1_after;
  state.counters["tasks_asked"] = static_cast<double>(tasks);
}
BENCHMARK(BM_FeedbackRounds)->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

// Ablation: the same budget spent with differently skilled crowds.
void BM_CrowdQuality(benchmark::State& state) {
  const double min_acc = static_cast<double>(state.range(0)) / 100.0;
  bench::Workload w =
      bench::MakeWorkload(30, /*dropout=*/0.5, /*typo=*/0.25);
  double f1_after = 0;
  for (auto _ : state) {
    auto sys = std::move(core::System::Create({})).value();
    sys->RegisterStandardOperators();
    sys->IngestCrawl(w.docs);
    sys->RunProgram(
           "CREATE VIEW facts AS EXTRACT infobox, temp_sentence, "
           "population_sentence FROM pages;")
        .value();
    sys->BuildBeliefsFromView("facts");
    auto crowd = hi::MakeCrowd(9, min_acc, min_acc + 0.1, 23);
    auto oracle = bench::MakeOracle(w.truth);
    core::System::FeedbackOptions options;
    options.budget = 120;
    options.answers_per_task = 5;
    sys->RunFeedbackRound(oracle, &crowd, options).value_or(0);
    f1_after = core::ScoreBeliefs(sys->beliefs(), w.truth).f1();
  }
  state.counters["crowd_accuracy"] = min_acc + 0.05;
  state.counters["f1_after"] = f1_after;
}
BENCHMARK(BM_CrowdQuality)->Arg(55)->Arg(70)->Arg(85)
    ->Unit(benchmark::kMillisecond);

// Extension: extraction rules induced from a handful of labeled pages
// (wrapper-induction lite) vs the hand-written suite — the "developers
// may have to write domain-specific operators" burden, partly automated.
void BM_LearnedVsHandwrittenExtractors(benchmark::State& state) {
  const size_t train_docs = static_cast<size_t>(state.range(0));
  bench::Workload w = bench::MakeWorkload(60, /*dropout=*/0.0);
  double learned_f1 = 0, handwritten_f1 = 0;
  size_t rules = 0;
  for (auto _ : state) {
    ie::PatternLearner learner;
    learner.Learn(ie::BuildPatternExamples(w.docs, w.truth, train_docs));
    auto compiled = learner.Compile();
    rules = compiled->size();
    ie::FactSet learned_facts =
        ie::RunExtractors(ie::Views(*compiled), w.docs);
    learned_f1 =
        core::ScoreExtraction(learned_facts, w.truth, "temp_%").f1();
    auto handwritten = ie::MakeTemperatureExtractor();
    std::vector<const ie::Extractor*> views{handwritten.get()};
    ie::FactSet hw_facts = ie::RunExtractors(views, w.docs);
    handwritten_f1 =
        core::ScoreExtraction(hw_facts, w.truth, "temp_%").f1();
  }
  state.counters["learned_rules"] = static_cast<double>(rules);
  state.counters["learned_f1"] = learned_f1;
  state.counters["handwritten_f1"] = handwritten_f1;
}
BENCHMARK(BM_LearnedVsHandwrittenExtractors)->Arg(5)->Arg(15)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
