// E22 — morsel-parallel query execution and the epoch-versioned result
// cache. Three questions: (a) how does scan/aggregate throughput scale
// with worker count (1/2/4/8) under the byte-identical-results
// contract; (b) what does a warm cache hit cost relative to the cold
// execution it replaces; (c) what does an invalidation storm (a writer
// bumping epochs between every query) cost — O(1) bumps plus lazy
// entry teardown, never a cache walk.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "query/relation.h"
#include "query/result_cache.h"
#include "query/structured_query.h"

namespace structura {
namespace {

using query::AggFn;
using query::AggSpec;
using query::CompareOp;
using query::Condition;
using query::EpochVector;
using query::ExecutorOptions;
using query::QueryResultCache;
using query::Relation;
using query::StructuredQuery;
using query::Value;

Relation MakeFacts(size_t rows) {
  Relation rel({"g", "x", "y"});
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t i = 0; i < rows; ++i) {
    rel.Append({Value::Str("g" + std::to_string(next() % 64)),
                Value::Int(static_cast<int64_t>(next() % 10000)),
                Value::Double(static_cast<double>(next() % 1000000) / 997.0)})
        .ok();
  }
  return rel;
}

ExecutorOptions OptsFor(ThreadPool* pool, size_t parallelism) {
  ExecutorOptions o;
  o.parallelism = parallelism;
  o.pool = parallelism > 1 ? pool : nullptr;
  return o;
}

void BM_ParallelFilterScan(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  static Relation facts = MakeFacts(400000);
  static ThreadPool pool(8);
  ExecutorOptions opts = OptsFor(&pool, parallelism);
  std::vector<Condition> conds{
      Condition{"x", CompareOp::kGt, Value::Int(2500)},
      Condition{"x", CompareOp::kLe, Value::Int(7500)}};
  for (auto _ : state) {
    auto out = query::Filter(facts, conds, Interrupt{}, opts);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(facts.size()));
}
BENCHMARK(BM_ParallelFilterScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ParallelGroupAggregate(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  static Relation facts = MakeFacts(400000);
  static ThreadPool pool(8);
  ExecutorOptions opts = OptsFor(&pool, parallelism);
  std::vector<AggSpec> aggs{AggSpec{AggFn::kCount, "", "cnt"},
                            AggSpec{AggFn::kSum, "y", "sum_y"},
                            AggSpec{AggFn::kAvg, "y", "avg_y"},
                            AggSpec{AggFn::kMin, "x", "min_x"}};
  for (auto _ : state) {
    auto out = query::Aggregate(facts, {"g"}, aggs, Interrupt{}, opts);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(facts.size()));
}
BENCHMARK(BM_ParallelGroupAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_CacheColdExecution(benchmark::State& state) {
  static Relation facts = MakeFacts(200000);
  StructuredQuery q;
  q.where = {Condition{"x", CompareOp::kGt, Value::Int(5000)}};
  q.group_by = {"g"};
  q.aggregates = {AggSpec{AggFn::kAvg, "y", "avg_y"}};
  for (auto _ : state) {
    auto out = query::ExecuteStructuredQuery(q, facts);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_CacheColdExecution)->Unit(benchmark::kMicrosecond);

void BM_CacheWarmHit(benchmark::State& state) {
  static Relation facts = MakeFacts(200000);
  StructuredQuery q;
  q.where = {Condition{"x", CompareOp::kGt, Value::Int(5000)}};
  q.group_by = {"g"};
  q.aggregates = {AggSpec{AggFn::kAvg, "y", "avg_y"}};
  QueryResultCache cache;
  auto cold = query::ExecuteStructuredQuery(q, facts);
  if (!cold.ok()) std::abort();
  obs::CostVector cost;
  cost.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] = 1000000;
  cache.Insert("q", cache.epochs().Snapshot({"view:facts"}), *cold, cost);
  for (auto _ : state) {
    auto hit = cache.Lookup("q");
    if (!hit.has_value()) std::abort();
    benchmark::DoNotOptimize(hit->size());
  }
}
BENCHMARK(BM_CacheWarmHit)->Unit(benchmark::kMicrosecond);

void BM_CacheInvalidationStorm(benchmark::State& state) {
  // A writer bumps the epoch before every lookup: every query pays a
  // miss + re-insert, and the bump itself must stay O(1).
  static Relation facts = MakeFacts(50000);
  StructuredQuery q;
  q.group_by = {"g"};
  q.aggregates = {AggSpec{AggFn::kCount, "", "cnt"}};
  QueryResultCache cache;
  obs::CostVector cost;
  cost.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] = 1000000;
  for (auto _ : state) {
    cache.epochs().Bump("view:facts");
    EpochVector at = cache.epochs().Snapshot({"view:facts"});
    if (auto hit = cache.Lookup("q")) {
      std::abort();  // storm must never hit
    }
    auto out = query::ExecuteStructuredQuery(q, facts);
    if (!out.ok()) std::abort();
    cache.Insert("q", std::move(at), std::move(*out), cost);
  }
}
BENCHMARK(BM_CacheInvalidationStorm)->Unit(benchmark::kMicrosecond);

void BM_EpochBump(benchmark::State& state) {
  QueryResultCache cache;
  for (auto _ : state) {
    cache.epochs().Bump("table:beliefs");
  }
}
BENCHMARK(BM_EpochBump);

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  return structura::bench::BenchmarkMainWithJson(
      argc, argv, "e22_parallel_query", "BENCH_e22.json");
}
