// E5 — Section 4, physical layer: "IE and II are often very computation
// intensive ... we need parallel processing in the physical layer,"
// via "Map-Reduce-like processes". We run the extraction pipeline as a
// Map-Reduce job and sweep worker counts. NOTE: the benchmark host has a
// single CPU core, so wall-clock speedup saturates at 1x; the docs/sec
// and overhead-vs-sequential counters still characterize the engine, and
// the fault-injection run exercises retry correctness under load.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "ie/pipeline.h"
#include "ie/standard.h"

namespace structura {
namespace {

void BM_SequentialExtraction(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  auto suite = ie::MakeStandardSuite();
  auto views = ie::Views(suite);
  size_t facts = 0;
  for (auto _ : state) {
    ie::FactSet set = ie::RunExtractors(views, w.docs);
    facts = set.size();
    benchmark::DoNotOptimize(set);
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(w.docs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialExtraction)->Arg(50)->Arg(150)
    ->Unit(benchmark::kMillisecond);

void BM_MapReduceExtraction(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(150);
  auto suite = ie::MakeStandardSuite();
  auto views = ie::Views(suite);
  const size_t workers = static_cast<size_t>(state.range(0));
  ThreadPool pool(workers);
  mr::JobConfig config;
  config.num_workers = workers;
  config.split_size = 16;
  size_t facts = 0;
  mr::JobStats stats;
  for (auto _ : state) {
    auto set = ie::RunExtractorsMapReduce(views, w.docs, pool, config,
                                          &stats);
    facts = set->size();
    benchmark::DoNotOptimize(set);
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["map_tasks"] = static_cast<double>(stats.map_tasks);
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(w.docs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MapReduceExtraction)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MapReduceWithFaults(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(100);
  auto suite = ie::MakeStandardSuite();
  auto views = ie::Views(suite);
  ThreadPool pool(4);
  mr::JobConfig config;
  config.split_size = 8;
  config.map_failure_prob =
      static_cast<double>(state.range(0)) / 100.0;
  config.max_attempts = 50;
  size_t retries = 0, facts = 0;
  mr::JobStats stats;
  for (auto _ : state) {
    auto set = ie::RunExtractorsMapReduce(views, w.docs, pool, config,
                                          &stats);
    retries = stats.map_retries;
    facts = set->size();
  }
  state.counters["map_retries"] = static_cast<double>(retries);
  state.counters["facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_MapReduceWithFaults)->Arg(0)->Arg(10)->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
