// E19 — the price of durability, and buying it back with group commit.
// The WAL's sync policy decides when a commit is acknowledged relative
// to fsync: kAlways pays one fsync per commit (or shares one that is
// already in flight), kGroupCommit makes the sync leader wait a short
// coalescing window so concurrent commits ride the same fsync, and
// kOff never waits (a crash can lose the acked tail). We measure
// committed-transaction throughput across the three policies, single-
// threaded and with concurrent committers, on a real on-disk WAL.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "rdbms/database.h"
#include "rdbms/wal.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::Row;
using rdbms::TableSchema;
using rdbms::Value;
using rdbms::ValueType;
using rdbms::WalSyncPolicy;

constexpr int kRows = 64;

const char* PolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kAlways:
      return "fsync-per-commit";
    case WalSyncPolicy::kGroupCommit:
      return "group-commit";
    case WalSyncPolicy::kOff:
      return "no-fsync";
  }
  return "?";
}

std::unique_ptr<Database> FreshDb(const std::string& dir,
                                  WalSyncPolicy policy) {
  std::filesystem::remove_all(dir);
  rdbms::DatabaseOptions options;
  options.dir = dir;
  options.wal.sync_policy = policy;
  auto db = std::move(Database::Open(options)).value();
  TableSchema schema;
  schema.table_name = "final";
  schema.columns = {{"subject", ValueType::kString},
                    {"value", ValueType::kInt}};
  db->CreateTable(schema).value();
  auto txn = db->Begin();
  for (int i = 0; i < kRows; ++i) {
    txn->Insert("final",
                {Value::Str("s" + std::to_string(i)), Value::Int(0)})
        .value();
  }
  (void)txn->Commit().ok();
  return db;
}

/// Single committer: the per-commit durability cost in isolation.
void BM_CommitThroughputByPolicy(benchmark::State& state) {
  const auto policy = static_cast<WalSyncPolicy>(state.range(0));
  auto db = FreshDb("/tmp/structura_bench_e19_single", policy);
  Rng rng(7);
  long committed = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    rdbms::RowId row = rng.NextBounded(kRows);
    Row r = txn->Get("final", row).value();
    (void)txn->Update("final", row,
                      {r[0], Value::Int(r[1].as_int() + 1)})
        .ok();
    (void)txn->Commit().ok();
    ++committed;
  }
  state.SetLabel(PolicyName(policy));
  state.counters["txn_per_sec"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CommitThroughputByPolicy)
    ->Arg(static_cast<int>(WalSyncPolicy::kAlways))
    ->Arg(static_cast<int>(WalSyncPolicy::kGroupCommit))
    ->Arg(static_cast<int>(WalSyncPolicy::kOff))
    ->Unit(benchmark::kMicrosecond);

/// Concurrent committers on disjoint rows: where group commit earns its
/// keep — N commits arriving inside one coalescing window pay one
/// fsync between them instead of N.
void BM_ConcurrentCommitByPolicy(benchmark::State& state) {
  const auto policy = static_cast<WalSyncPolicy>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto db = FreshDb("/tmp/structura_bench_e19_mt", policy);
  std::atomic<long> committed{0};
  constexpr int kCommitsPerIter = 64;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Disjoint row ranges: no lock conflicts, the WAL's durability
        // protocol is the only contended resource.
        const int base = t * (kRows / threads);
        Rng rng(100 + t);
        for (int i = 0; i < kCommitsPerIter / threads; ++i) {
          auto txn = db->Begin();
          rdbms::RowId row =
              base + rng.NextBounded(kRows / threads);
          Row r = txn->Get("final", row).value();
          (void)txn->Update("final", row,
                            {r[0], Value::Int(r[1].as_int() + 1)})
              .ok();
          (void)txn->Commit().ok();
          committed.fetch_add(1);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  state.SetLabel(PolicyName(policy));
  state.counters["txn_per_sec"] = benchmark::Counter(
      static_cast<double>(committed.load()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrentCommitByPolicy)
    ->Args({static_cast<int>(WalSyncPolicy::kAlways), 1})
    ->Args({static_cast<int>(WalSyncPolicy::kAlways), 4})
    ->Args({static_cast<int>(WalSyncPolicy::kAlways), 8})
    ->Args({static_cast<int>(WalSyncPolicy::kGroupCommit), 1})
    ->Args({static_cast<int>(WalSyncPolicy::kGroupCommit), 4})
    ->Args({static_cast<int>(WalSyncPolicy::kGroupCommit), 8})
    ->Args({static_cast<int>(WalSyncPolicy::kOff), 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  return structura::bench::BenchmarkMainWithJson(
      argc, argv, "e19_durable_wal", "BENCH_e19.json");
}
