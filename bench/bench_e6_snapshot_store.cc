// E6 — Section 4, storage layer: "the daily snapshots will overlap a
// lot, and hence may be best stored in a device such as Subversion,
// which only stores the 'diff' across the snapshots, to save space."
// We simulate 30 daily crawls at several churn rates and report the
// bytes stored by the diff store vs. storing every version in full,
// plus reconstruction latency for old and new versions.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "corpus/generator.h"
#include "storage/snapshot_store.h"

namespace structura {
namespace {

constexpr int kDays = 30;

storage::SnapshotStore BuildStore(double churn, uint64_t seed,
                                  text::DocumentCollection* final_docs) {
  bench::Workload w = bench::MakeWorkload(40, 0.25, 0.0, 0, seed);
  storage::SnapshotStore store;
  for (int day = 0; day < kDays; ++day) {
    if (day > 0) corpus::MutateCrawl(seed + day, churn, &w.docs);
    for (const text::Document& d : w.docs.docs) {
      store.Append(d.id, d.text).value();
    }
  }
  if (final_docs != nullptr) *final_docs = w.docs;
  return store;
}

void BM_DiffStorageSpace(benchmark::State& state) {
  const double churn = static_cast<double>(state.range(0)) / 100.0;
  size_t stored = 0, full = 0;
  for (auto _ : state) {
    storage::SnapshotStore store = BuildStore(churn, 11, nullptr);
    stored = store.StoredBytes();
    full = store.FullCopyBytes();
  }
  state.counters["stored_mb"] = static_cast<double>(stored) / 1e6;
  state.counters["full_copy_mb"] = static_cast<double>(full) / 1e6;
  state.counters["space_ratio"] =
      static_cast<double>(stored) / static_cast<double>(full);
}
BENCHMARK(BM_DiffStorageSpace)->Arg(1)->Arg(5)->Arg(10)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_ReconstructLatest(benchmark::State& state) {
  text::DocumentCollection docs;
  storage::SnapshotStore store = BuildStore(0.1, 11, &docs);
  size_t i = 0;
  for (auto _ : state) {
    const text::Document& d = docs.docs[i++ % docs.size()];
    auto text = store.Get(d.id, kDays - 1);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_ReconstructLatest)->Unit(benchmark::kMicrosecond);

void BM_ReconstructOldVersion(benchmark::State& state) {
  text::DocumentCollection docs;
  storage::SnapshotStore store = BuildStore(0.1, 11, &docs);
  const uint32_t version = static_cast<uint32_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    const text::Document& d = docs.docs[i++ % docs.size()];
    auto text = store.Get(d.id, version);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_ReconstructOldVersion)->Arg(0)->Arg(7)->Arg(15)->Arg(29)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
