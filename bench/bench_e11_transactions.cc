// E11 — Section 4, Part III: once "the system allows concurrent editing
// by multiple users on the final structure, then this structure may be
// best stored in an RDBMS, to ensure fast and correct concurrency
// control" — plus transaction management and crash recovery. We measure
// committed-transaction throughput under concurrent updaters, WAL
// overhead, and recovery time/correctness.

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "common/random.h"
#include "rdbms/database.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::Row;
using rdbms::TableSchema;
using rdbms::Value;
using rdbms::ValueType;

constexpr int kRows = 64;

std::unique_ptr<Database> FreshDb(const std::string& dir) {
  if (!dir.empty()) std::filesystem::remove_all(dir);
  rdbms::DatabaseOptions options;
  options.dir = dir;
  auto db = std::move(Database::Open(options)).value();
  TableSchema schema;
  schema.table_name = "final";
  schema.columns = {{"subject", ValueType::kString},
                    {"value", ValueType::kInt}};
  db->CreateTable(schema).value();
  auto txn = db->Begin();
  for (int i = 0; i < kRows; ++i) {
    txn->Insert("final",
                {Value::Str("s" + std::to_string(i)), Value::Int(0)})
        .value();
  }
  txn->Commit();
  return db;
}

void BM_ConcurrentUpdaters(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto db = FreshDb("");  // in-memory: isolates lock-manager cost
  std::atomic<long> committed{0}, aborted{0};
  for (auto _ : state) {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(1000 + t);
        for (int op = 0; op < 200 / threads; ++op) {
          auto txn = db->Begin();
          rdbms::RowId row = rng.NextBounded(kRows);
          auto run = [&]() -> Status {
            STRUCTURA_ASSIGN_OR_RETURN(Row r, txn->Get("final", row));
            STRUCTURA_RETURN_IF_ERROR(txn->Update(
                "final", row,
                {r[0], Value::Int(r[1].as_int() + 1)}));
            return txn->Commit();
          };
          if (run().ok()) {
            committed.fetch_add(1);
          } else {
            aborted.fetch_add(1);
            if (txn->active()) txn->Abort();
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  state.counters["committed"] = static_cast<double>(committed.load());
  state.counters["deadlock_aborts"] = static_cast<double>(aborted.load());
  state.counters["txn_per_sec"] = benchmark::Counter(
      static_cast<double>(committed.load()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrentUpdaters)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_DurableCommitOverhead(benchmark::State& state) {
  const bool durable = state.range(0) == 1;
  std::string dir = durable ? "/tmp/structura_bench_e11_wal" : "";
  auto db = FreshDb(dir);
  Rng rng(5);
  for (auto _ : state) {
    auto txn = db->Begin();
    rdbms::RowId row = rng.NextBounded(kRows);
    Row r = txn->Get("final", row).value();
    txn->Update("final", row, {r[0], Value::Int(r[1].as_int() + 1)})
        .ok();
    txn->Commit().ok();
  }
  state.SetLabel(durable ? "wal+flush" : "in-memory");
}
BENCHMARK(BM_DurableCommitOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_RecoveryReplay(benchmark::State& state) {
  const int committed_txns = static_cast<int>(state.range(0));
  std::string dir = "/tmp/structura_bench_e11_recover";
  {
    auto db = FreshDb(dir);
    Rng rng(5);
    for (int i = 0; i < committed_txns; ++i) {
      auto txn = db->Begin();
      rdbms::RowId row = rng.NextBounded(kRows);
      Row r = txn->Get("final", row).value();
      txn->Update("final", row, {r[0], Value::Int(r[1].as_int() + 1)})
          .ok();
      txn->Commit().ok();
    }
  }
  long recovered_sum = 0;
  for (auto _ : state) {
    rdbms::DatabaseOptions options;
    options.dir = dir;
    auto db = std::move(Database::Open(options)).value();
    recovered_sum = 0;
    db->GetTable("final")->Scan([&](rdbms::RowId, const Row& r) {
      recovered_sum += r[1].as_int();
    });
  }
  // Correctness: every committed increment survived the "crash".
  state.counters["recovered_sum"] = static_cast<double>(recovered_sum);
  state.counters["expected_sum"] = static_cast<double>(committed_txns);
}
BENCHMARK(BM_RecoveryReplay)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
