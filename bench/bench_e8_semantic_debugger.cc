// E8 — Section 4, Part VI: the semantic debugger "monitors the data
// generation process" and flags values "not in sync" with learned
// application semantics (the temperature-135 example). We corrupt a
// controlled fraction of extracted numeric facts and measure flagging
// precision/recall at several corruption rates. Expected shape: high
// precision throughout; recall bounded by how far a corrupted digit
// moves the value outside the learned range.

#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.h"
#include "common/random.h"
#include "common/strings.h"
#include "debugger/semantic_debugger.h"
#include "ie/pipeline.h"
#include "ie/standard.h"

namespace structura {
namespace {

/// Corrupts numeric facts in place; returns the ids of corrupted facts.
std::set<uint64_t> InjectCorruption(ie::FactSet* facts, double rate,
                                    uint64_t seed) {
  Rng rng(seed);
  std::set<uint64_t> corrupted;
  for (ie::ExtractedFact& f : facts->facts) {
    double unused;
    std::string cleaned;
    for (char c : f.value) {
      if (c != ',') cleaned += c;
    }
    if (!ParseDouble(cleaned, &unused)) continue;
    if (!rng.NextBool(rate)) continue;
    // Gross corruption: append a digit (value inflates ~10x) — the
    // "135 degrees" class of error.
    f.value += std::to_string(rng.NextBounded(10));
    corrupted.insert(f.id);
  }
  return corrupted;
}

void BM_FlagCorruption(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  bench::Workload w = bench::MakeWorkload(60);
  auto suite = ie::MakeStandardSuite();
  ie::FactSet facts = ie::RunExtractors(ie::Views(suite), w.docs);
  std::set<uint64_t> corrupted = InjectCorruption(&facts, rate, 3);

  double precision = 0, recall = 0;
  size_t flagged = 0;
  for (auto _ : state) {
    debugger::SemanticDebugger dbg;
    dbg.LearnFromFacts(facts);
    std::vector<debugger::Violation> violations = dbg.Check(facts);
    flagged = violations.size();
    size_t tp = 0;
    for (const debugger::Violation& v : violations) {
      if (corrupted.count(v.fact_id) > 0) ++tp;
    }
    precision = flagged == 0
                    ? 1.0
                    : static_cast<double>(tp) / static_cast<double>(flagged);
    recall = corrupted.empty()
                 ? 1.0
                 : static_cast<double>(tp) /
                       static_cast<double>(corrupted.size());
  }
  state.counters["corruption_rate"] = rate;
  state.counters["flag_precision"] = precision;
  state.counters["flag_recall"] = recall;
  state.counters["flagged"] = static_cast<double>(flagged);
}
BENCHMARK(BM_FlagCorruption)->Arg(1)->Arg(10)->Arg(30)->Arg(50)
    ->Unit(benchmark::kMillisecond);

// Streaming check latency: one fact at a time (monitor mode).
void BM_StreamingCheck(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(60);
  auto suite = ie::MakeStandardSuite();
  ie::FactSet facts = ie::RunExtractors(ie::Views(suite), w.docs);
  debugger::SemanticDebugger dbg;
  dbg.LearnFromFacts(facts);
  size_t i = 0;
  for (auto _ : state) {
    auto v = dbg.CheckOne(facts.facts[i++ % facts.facts.size()]);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_StreamingCheck)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
