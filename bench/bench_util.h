#ifndef STRUCTURA_BENCH_BENCH_UTIL_H_
#define STRUCTURA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "corpus/generator.h"
#include "corpus/records.h"
#include "obs/metrics.h"
#include "text/document.h"

namespace structura::bench {

/// A generated corpus plus its truth, sized by `cities` with proportional
/// people/companies. Every experiment derives its workload from this.
struct Workload {
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
};

inline Workload MakeWorkload(size_t cities, double dropout = 0.25,
                             double typo = 0.0, size_t news_pages = 0,
                             uint64_t seed = 42) {
  corpus::CorpusOptions options;
  options.num_cities = cities;
  options.num_people = cities * 2;
  options.num_companies = cities / 2;
  options.news_pages = news_pages;
  options.infobox_dropout = dropout;
  options.typo_prob = typo;
  options.seed = seed;
  Workload w;
  corpus::GenerateCorpus(options, &w.docs, &w.truth);
  return w;
}

/// Ground-truth oracle for simulated human feedback.
inline auto MakeOracle(const corpus::GroundTruth& truth) {
  return [&truth](const std::string& subject, const std::string& attribute)
             -> std::optional<std::string> {
    for (const corpus::FactTruth& f : truth.facts) {
      auto it = truth.canonical_names.find(f.entity);
      if (it == truth.canonical_names.end()) continue;
      if (it->second == subject && f.attribute == attribute) {
        return f.value;
      }
    }
    return std::nullopt;
  };
}

// ------------------------------------------------ bench JSON artifacts

/// Collects named scalar results and writes the BENCH_*.json artifact
/// every experiment emits (the bench-artifact trajectory started by
/// bench_e20): {"bench": id, "results": [{"name","value","unit"},…]}.
/// Output path resolution matches bench_e20: an explicit path argument
/// wins, then $STRUCTURA_BENCH_OUT, then `default_path`.
class BenchResultWriter {
 public:
  BenchResultWriter(std::string bench_id, std::string default_path)
      : bench_id_(std::move(bench_id)),
        default_path_(std::move(default_path)) {}

  void Add(const std::string& name, double value, const std::string& unit) {
    rows_.push_back(Row{name, value, unit});
  }

  std::string ToJson() const {
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\n  \"bench\": \"" << obs::JsonEscape(bench_id_)
        << "\",\n  \"results\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out << "    {\"name\": \"" << obs::JsonEscape(rows_[i].name)
          << "\", \"value\": " << rows_[i].value << ", \"unit\": \""
          << obs::JsonEscape(rows_[i].unit) << "\"}"
          << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
  }

  /// Writes the artifact; `explicit_path` (e.g. a leftover argv[1])
  /// overrides the env/default resolution. Returns false on I/O error.
  bool Write(const std::string& explicit_path = "") const {
    std::string path = explicit_path;
    if (path.empty()) {
      const char* env_out = std::getenv("STRUCTURA_BENCH_OUT");
      path = env_out != nullptr ? env_out : default_path_;
    }
    std::ofstream out(path, std::ios::trunc);
    out << ToJson();
    out.close();
    if (!out) {
      std::fprintf(stderr, "bench %s: failed writing %s\n",
                   bench_id_.c_str(), path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string name;
    double value = 0;
    std::string unit;
  };

  std::string bench_id_;
  std::string default_path_;
  std::vector<Row> rows_;
};

#if defined(BENCHMARK_BENCHMARK_H_)
// Only for binaries that included <benchmark/benchmark.h> *before* this
// header: a console reporter that also tees every per-iteration run into
// a BenchResultWriter, and a drop-in BENCHMARK_MAIN() replacement that
// writes the JSON artifact after the console table.

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchResultWriter* writer) : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      // Aggregates (mean/median/stddev of --benchmark_repetitions) would
      // double-count the per-repetition rows.
      if (run.run_type == Run::RT_Aggregate) continue;
      writer_->Add(run.benchmark_name(), run.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(run.time_unit));
    }
  }

 private:
  BenchResultWriter* writer_;
};

/// BENCHMARK_MAIN() replacement: runs the registered benchmarks with the
/// tee reporter, then writes BENCH_<id>.json (argv[1] overrides the
/// output path after benchmark flags are consumed, as in bench_e20).
inline int BenchmarkMainWithJson(int argc, char** argv,
                                 const std::string& bench_id,
                                 const std::string& default_path) {
  benchmark::Initialize(&argc, argv);
  std::string explicit_path;
  if (argc > 1 && argv[1][0] != '-') {
    explicit_path = argv[1];
    // Consume it so ReportUnrecognizedArguments stays quiet.
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
  }
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchResultWriter writer(bench_id, default_path);
  JsonTeeReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return writer.Write(explicit_path) ? 0 : 1;
}
#endif  // defined(BENCHMARK_BENCHMARK_H_)

}  // namespace structura::bench

#endif  // STRUCTURA_BENCH_BENCH_UTIL_H_
