#ifndef STRUCTURA_BENCH_BENCH_UTIL_H_
#define STRUCTURA_BENCH_BENCH_UTIL_H_

#include <optional>
#include <string>

#include "corpus/generator.h"
#include "corpus/records.h"
#include "text/document.h"

namespace structura::bench {

/// A generated corpus plus its truth, sized by `cities` with proportional
/// people/companies. Every experiment derives its workload from this.
struct Workload {
  text::DocumentCollection docs;
  corpus::GroundTruth truth;
};

inline Workload MakeWorkload(size_t cities, double dropout = 0.25,
                             double typo = 0.0, size_t news_pages = 0,
                             uint64_t seed = 42) {
  corpus::CorpusOptions options;
  options.num_cities = cities;
  options.num_people = cities * 2;
  options.num_companies = cities / 2;
  options.news_pages = news_pages;
  options.infobox_dropout = dropout;
  options.typo_prob = typo;
  options.seed = seed;
  Workload w;
  corpus::GenerateCorpus(options, &w.docs, &w.truth);
  return w;
}

/// Ground-truth oracle for simulated human feedback.
inline auto MakeOracle(const corpus::GroundTruth& truth) {
  return [&truth](const std::string& subject, const std::string& attribute)
             -> std::optional<std::string> {
    for (const corpus::FactTruth& f : truth.facts) {
      auto it = truth.canonical_names.find(f.entity);
      if (it == truth.canonical_names.end()) continue;
      if (it->second == subject && f.attribute == attribute) {
        return f.value;
      }
    }
    return std::nullopt;
  };
}

}  // namespace structura::bench

#endif  // STRUCTURA_BENCH_BENCH_UTIL_H_
