// E7 — Section 4, processing layer: declarative IE+II+HI programs "can
// be parsed, reformulated ..., optimized, then executed." We run the
// same SDL program with the optimizer off and on. Expected shape:
// identical results, with the optimized plan scanning a fraction of the
// documents (category pushdown) and skipping extractors that cannot
// produce the requested attributes (pruning).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/system.h"

namespace structura {
namespace {

const char* kProgram =
    "CREATE VIEW v AS EXTRACT infobox, temp_sentence, "
    "population_sentence, founded_sentence, elevation_sentence, "
    "mayor_sentence, residence_sentence FROM pages "
    "WHERE category = \"City\" AND attribute LIKE \"temp_%\";"
    "SELECT subject, AVG(value) AS avg_temp FROM v GROUP BY subject;";

void RunWithOptimizer(benchmark::State& state, bool optimize) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  core::System::Options options;
  options.optimize_plans = optimize;
  auto sys = std::move(core::System::Create(options)).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);
  size_t scanned = 0, runs = 0, rows = 0;
  for (auto _ : state) {
    sys->context().views.clear();
    sys->context().docs_scanned = 0;
    sys->context().extractor_runs = 0;
    auto rel = sys->Query(kProgram);
    rows = rel->size();
    scanned = sys->context().docs_scanned;
    runs = sys->context().extractor_runs;
    benchmark::DoNotOptimize(rel);
  }
  state.counters["docs_scanned"] = static_cast<double>(scanned);
  state.counters["extractor_runs"] = static_cast<double>(runs);
  state.counters["result_rows"] = static_cast<double>(rows);
}

void BM_NaivePlan(benchmark::State& state) {
  RunWithOptimizer(state, false);
}
void BM_OptimizedPlan(benchmark::State& state) {
  RunWithOptimizer(state, true);
}

BENCHMARK(BM_NaivePlan)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptimizedPlan)->Arg(50)->Arg(150)
    ->Unit(benchmark::kMillisecond);

// Micro: parse + plan + optimize time alone (compilation overhead).
void BM_CompileOnly(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(10);
  auto sys = std::move(core::System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);
  for (auto _ : state) {
    auto stmts = lang::Parse(kProgram);
    for (const lang::Statement& s : *stmts) {
      auto plan = lang::BuildPlan(s);
      auto optimized = lang::Optimize(std::move(*plan),
                                      sys->context().Catalog(), nullptr);
      benchmark::DoNotOptimize(optimized);
    }
  }
}
BENCHMARK(BM_CompileOnly)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
