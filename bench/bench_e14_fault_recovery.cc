// E14 — cost of robustness. The failpoint framework sits on the hot
// path of every WAL append and extractor invocation, so its disarmed
// fast path must be near-free; and Section 4's crash-recovery promise
// is only usable if replaying the log after a crash is fast. We measure
// (a) failpoint evaluation overhead disarmed vs armed, (b) WAL append
// throughput with the hooks in place, and (c) recovery latency as a
// function of the committed-transaction count at crash time.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "common/failpoint.h"
#include "rdbms/database.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::TableSchema;
using rdbms::Value;
using rdbms::ValueType;

std::string BenchDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_e14_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TableSchema FinalSchema() {
  TableSchema schema;
  schema.table_name = "final";
  schema.columns = {{"subject", ValueType::kString},
                    {"value", ValueType::kInt}};
  return schema;
}

/// The common case: nothing armed, one relaxed atomic load per check.
void BM_FailpointDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaybeFail("wal.append").ok());
  }
}
BENCHMARK(BM_FailpointDisarmed);

/// Worst case for a disarmed site: some *other* failpoint is armed, so
/// every check takes the registry lock to look itself up.
void BM_FailpointOtherArmed(benchmark::State& state) {
  ScopedFailpoint other("bench.unrelated",
                        FailpointRegistry::Spec::CountOnly());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaybeFail("wal.append").ok());
  }
}
BENCHMARK(BM_FailpointOtherArmed);

/// Armed-but-counting at the checked site itself.
void BM_FailpointArmedCounting(benchmark::State& state) {
  ScopedFailpoint fp("bench.self", FailpointRegistry::Spec::CountOnly());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaybeFail("bench.self").ok());
  }
}
BENCHMARK(BM_FailpointArmedCounting);

/// Durable committed transactions per second with the failpoint hooks
/// compiled into Append/Flush (all disarmed).
void BM_WalCommitThroughput(benchmark::State& state) {
  std::string dir = BenchDir("wal");
  auto db = std::move(Database::Open({dir})).value();
  db->CreateTable(FinalSchema()).value();
  int i = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    txn->Insert("final", {Value::Str("s" + std::to_string(i++)),
                          Value::Int(i)})
        .value();
    benchmark::DoNotOptimize(txn->Commit().ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalCommitThroughput);

/// Crash-recovery latency: reopen a database whose WAL holds `range(0)`
/// committed single-insert transactions (no checkpoint — worst case,
/// full replay).
void BM_CrashRecoveryReplay(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  std::string dir = BenchDir("recover" + std::to_string(txns));
  {
    auto db = std::move(Database::Open({dir})).value();
    db->CreateTable(FinalSchema()).value();
    for (int i = 0; i < txns; ++i) {
      auto txn = db->Begin();
      txn->Insert("final", {Value::Str("s" + std::to_string(i)),
                            Value::Int(i)})
          .value();
      txn->Commit();
    }
    // Drop without checkpoint: the log is the only durable state.
  }
  for (auto _ : state) {
    auto db = std::move(Database::Open({dir})).value();
    benchmark::DoNotOptimize(db->GetTable("final"));
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_CrashRecoveryReplay)->Arg(64)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
