// E17 — observability overhead: what instrumentation costs. The metric
// hot paths are sharded relaxed atomics and span recording is one ring
// write at scope exit, budgeted at ≤100 ns per counter/histogram op and
// ≤250 ns per span (single-threaded; sharding keeps the multithreaded
// cost flat instead of line-bouncing). The serving benchmark runs the
// same closed-loop keyword workload with histograms+tracing enabled vs
// killed and reports throughput for both — the delta is the end-to-end
// tax, budgeted at ≤5%.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/frontend.h"

namespace structura {
namespace {

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("bench.obs.counter");
  for (auto _ : state) {
    c->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement)->ThreadRange(1, 8);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram* h =
      obs::MetricsRegistry::Default().GetHistogram("bench.obs.hist");
  uint64_t v = 0;
  for (auto _ : state) {
    h->Record(v++ & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->ThreadRange(1, 8);

void BM_SpanRecord(benchmark::State& state) {
  // Each benchmark thread adopts a live trace so spans actually record.
  obs::ScopedTraceContext adopt({obs::NextTraceId(), 0});
  for (auto _ : state) {
    TRACE_SPAN("bench.obs.span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecord)->ThreadRange(1, 8);

void BM_SpanDisabled(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  obs::ScopedTraceContext adopt({obs::NextTraceId(), 0});
  for (auto _ : state) {
    TRACE_SPAN("bench.obs.span.off");
  }
  obs::SetTracingEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_RegistrySnapshot(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::MetricsRegistry::Default().Snapshot());
  }
}
BENCHMARK(BM_RegistrySnapshot);

/// Closed-loop serve throughput with instrumentation on vs off. Arg(1)
/// = instrumented (histograms recorded, spans traced), Arg(0) = both
/// kill-switches thrown. Correctness counters stay on in both modes —
/// they are part of the serving contract, not optional measurement.
void BM_ServeThroughput(benchmark::State& state) {
  const bool instrumented = state.range(0) == 1;
  static core::System* sys = [] {
    bench::Workload w = bench::MakeWorkload(20);
    auto sys_or = core::System::Create(core::System::Options{});
    core::System* s = sys_or.value().release();
    s->RegisterStandardOperators();
    s->IngestCrawl(w.docs).ok();
    return s;
  }();

  serve::Frontend::Options fopts;
  fopts.num_threads = 4;
  fopts.max_queue_depth = 1024;
  fopts.max_queue_wait_ms = 10000;
  serve::Frontend fe(fopts);
  const std::vector<std::string> kQueries = {"Madison", "population",
                                             "mayor", "temperature"};
  fe.RegisterOperator("keyword", [&](const serve::RequestContext& ctx) {
    auto hits = sys->KeywordSearch(kQueries[ctx.id % kQueries.size()], 5,
                                   ctx.interrupt);
    return hits.status();
  });

  obs::SetMetricsEnabled(instrumented);
  obs::SetTracingEnabled(instrumented);
  uint64_t id = 0;
  for (auto _ : state) {
    serve::RequestContext ctx;
    ctx.id = id++;
    benchmark::DoNotOptimize(fe.Call("keyword", std::move(ctx)));
  }
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(instrumented ? "instrumented" : "uninstrumented");
}
BENCHMARK(BM_ServeThroughput)->Arg(1)->Arg(0)->UseRealTime();

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  return structura::bench::BenchmarkMainWithJson(argc, argv,
                                                 "e17_observability_overhead",
                                                 "BENCH_e17.json");
}
