// E4 — Section 3.2's job-seeker scenario: "a user ... may start out
// extracting only monthly temperatures ... later if the user wants to
// examine only cities with at least 500,000 people, then he or she may
// want to also extract city populations, and so on." Incremental,
// best-effort generation should cost proportionally to what is asked
// for, not to the full schema.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "corpus/generator.h"
#include "core/system.h"

namespace structura {
namespace {

std::unique_ptr<core::System> Boot(const bench::Workload& w) {
  auto sys = std::move(core::System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);
  return sys;
}

// Stage 1 only: temperatures.
void BM_IncrementalStage1(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  size_t runs = 0;
  for (auto _ : state) {
    auto sys = Boot(w);
    sys->RunProgram(
           "CREATE VIEW temps AS EXTRACT infobox, temp_sentence "
           "FROM pages WHERE category = \"City\" "
           "AND attribute LIKE \"temp_%\";")
        .value();
    runs = sys->context().extractor_runs;
  }
  state.counters["extractor_runs"] = static_cast<double>(runs);
}
BENCHMARK(BM_IncrementalStage1)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Stage 1 + later stage 2 (populations) — the user's need grew.
void BM_IncrementalStage1Plus2(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  size_t runs = 0;
  for (auto _ : state) {
    auto sys = Boot(w);
    sys->RunProgram(
           "CREATE VIEW temps AS EXTRACT infobox, temp_sentence "
           "FROM pages WHERE category = \"City\" "
           "AND attribute LIKE \"temp_%\";")
        .value();
    sys->RunProgram(
           "CREATE VIEW pops AS EXTRACT infobox, population_sentence "
           "FROM pages WHERE category = \"City\" "
           "AND attribute = \"population\";")
        .value();
    runs = sys->context().extractor_runs;
  }
  state.counters["extractor_runs"] = static_cast<double>(runs);
}
BENCHMARK(BM_IncrementalStage1Plus2)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// One-shot everything: the non-incremental alternative.
void BM_OneShotFullSchema(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  size_t runs = 0;
  for (auto _ : state) {
    auto sys = Boot(w);
    sys->RunProgram(
           "CREATE VIEW all_facts AS EXTRACT infobox, temp_sentence, "
           "population_sentence, founded_sentence, elevation_sentence, "
           "mayor_sentence, residence_sentence FROM pages;")
        .value();
    runs = sys->context().extractor_runs;
  }
  state.counters["extractor_runs"] = static_cast<double>(runs);
}
BENCHMARK(BM_OneShotFullSchema)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Re-crawl ablation: day-2 crawl with a given churn rate. REFRESH VIEW
// re-extracts only the changed pages; the baseline rebuilds the view
// from scratch. Expected shape: refresh cost ~ churn * full cost.
void BM_RefreshAfterChurn(benchmark::State& state) {
  const double churn = static_cast<double>(state.range(0)) / 100.0;
  bench::Workload w = bench::MakeWorkload(100);
  size_t refresh_runs = 0, full_runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto sys = Boot(w);
    sys->RunProgram(
           "CREATE VIEW facts AS EXTRACT infobox, temp_sentence "
           "FROM pages;")
        .value();
    text::DocumentCollection day2 = w.docs;
    corpus::MutateCrawl(7, churn, &day2);
    sys->IngestCrawl(day2).ok();
    size_t base = sys->context().extractor_runs;
    state.ResumeTiming();
    sys->RunProgram("REFRESH VIEW facts;").value();
    refresh_runs = sys->context().extractor_runs - base;
    state.PauseTiming();
    base = sys->context().extractor_runs;
    sys->RunProgram(
           "CREATE VIEW rebuilt AS EXTRACT infobox, temp_sentence "
           "FROM pages;")
        .value();
    full_runs = sys->context().extractor_runs - base;
    state.ResumeTiming();
  }
  state.counters["refresh_extractor_runs"] =
      static_cast<double>(refresh_runs);
  state.counters["full_rebuild_runs"] = static_cast<double>(full_runs);
  state.counters["work_ratio"] =
      full_runs == 0 ? 0
                     : static_cast<double>(refresh_runs) /
                           static_cast<double>(full_runs);
}
BENCHMARK(BM_RefreshAfterChurn)->Arg(1)->Arg(5)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
