// E16 — cost of integrity. The record framing (magic + header/payload
// CRC32C) taxes every WAL and segment write, the scrubber re-reads
// whole files, and salvage recovery must stay cheap even when the log
// is damaged. We measure (a) raw CRC32C throughput, (b) scrub
// throughput over WAL and segment files, (c) clean replay vs salvage
// replay of a damaged WAL, and (d) checkpoint footer verification.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/integrity.h"
#include "rdbms/database.h"
#include "rdbms/wal.h"
#include "storage/segment_store.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::LogRecord;
using rdbms::RowId;
using rdbms::TableSchema;
using rdbms::TxnId;
using rdbms::Value;
using rdbms::ValueType;
using rdbms::WriteAheadLog;
using storage::SegmentStore;

void Check(const Status& status) {
  if (!status.ok()) std::abort();
}

std::string BenchDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("structura_e16_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void WriteCommittedTxns(const std::string& path, int n) {
  auto wal = std::move(WriteAheadLog::Open(path)).value();
  for (int t = 1; t <= n; ++t) {
    LogRecord begin;
    begin.type = LogRecord::Type::kBegin;
    begin.txn = static_cast<TxnId>(t);
    Check(wal->Append(begin));
    LogRecord insert;
    insert.type = LogRecord::Type::kInsert;
    insert.txn = static_cast<TxnId>(t);
    insert.table = "kv";
    insert.row_id = static_cast<RowId>(t);
    insert.after = {Value::Str("subject-" + std::to_string(t)),
                    Value::Int(t)};
    Check(wal->Append(insert));
    LogRecord commit;
    commit.type = LogRecord::Type::kCommit;
    commit.txn = static_cast<TxnId>(t);
    Check(wal->Append(commit));
  }
}

/// Raw checksum throughput: the per-byte floor every write and every
/// scrub pays.
void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + i % 26);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// Scrub throughput over a WAL file (read + frame validation + decode).
void BM_WalScrub(benchmark::State& state) {
  std::string dir = BenchDir("wal_scrub");
  std::string path = dir + "/wal.log";
  WriteCommittedTxns(path, static_cast<int>(state.range(0)));
  int64_t bytes = static_cast<int64_t>(std::filesystem::file_size(path));
  for (auto _ : state) {
    IntegrityCounters counters;
    Check(WriteAheadLog::Scrub(path, &counters));
    benchmark::DoNotOptimize(counters.records_verified);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_WalScrub)->Arg(1000)->Arg(10000);

/// Scrub throughput over segment files (frame validation only — the
/// sequential-device pass).
void BM_SegmentScrub(benchmark::State& state) {
  std::string dir = BenchDir("seg_scrub");
  auto store = std::move(SegmentStore::Open(dir)).value();
  std::string payload(256, 'p');
  for (int i = 0; i < state.range(0); ++i) {
    store->Append(payload).value();
  }
  Check(store->Flush());
  int64_t bytes = 0;
  for (size_t s = 0; s < store->NumSegments(); ++s) {
    bytes += static_cast<int64_t>(std::filesystem::file_size(
        dir + "/seg-" + std::string(6 - std::to_string(s).size(), '0') +
        std::to_string(s) + ".log"));
  }
  for (auto _ : state) {
    IntegrityCounters counters;
    Check(store->Scrub(&counters));
    benchmark::DoNotOptimize(counters.records_verified);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_SegmentScrub)->Arg(1000)->Arg(10000);

/// Replay cost of a clean log: the recovery-latency baseline.
void BM_WalReplayClean(benchmark::State& state) {
  std::string dir = BenchDir("replay_clean");
  std::string path = dir + "/wal.log";
  WriteCommittedTxns(path, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = WriteAheadLog::ReadAll(path).value();
    benchmark::DoNotOptimize(result.records.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_WalReplayClean)->Arg(1000)->Arg(10000);

/// Replay cost when the log carries scattered bit-rot: each damaged
/// frame forces a resync scan to the next magic marker.
void BM_WalReplaySalvage(benchmark::State& state) {
  std::string dir = BenchDir("replay_salvage");
  std::string path = dir + "/wal.log";
  WriteCommittedTxns(path, static_cast<int>(state.range(0)));
  // Flip one byte every ~4 KiB.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  for (size_t off = 2048; off < data.size(); off += 4096) {
    data[off] = static_cast<char>(data[off] ^ 0xFF);
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  for (auto _ : state) {
    auto result = WriteAheadLog::ReadAll(path).value();
    benchmark::DoNotOptimize(result.records.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_WalReplaySalvage)->Arg(1000)->Arg(10000);

/// Full database scrub: checkpoint footer verification plus WAL frames.
void BM_DatabaseScrub(benchmark::State& state) {
  std::string dir = BenchDir("db_scrub");
  auto db = std::move(Database::Open({dir})).value();
  TableSchema schema;
  schema.table_name = "kv";
  schema.columns = {{"name", ValueType::kString},
                    {"val", ValueType::kInt}};
  db->CreateTable(schema).value();
  for (int t = 0; t < state.range(0); ++t) {
    auto txn = db->Begin();
    txn->Insert("kv", {Value::Str("k" + std::to_string(t)),
                       Value::Int(t)})
        .value();
    Check(txn->Commit());
  }
  // Half the rows live in the checkpoint, half in the post-checkpoint
  // WAL, so the scrub touches both.
  Check(db->Checkpoint());
  for (int t = 0; t < state.range(0); ++t) {
    auto txn = db->Begin();
    txn->Insert("kv", {Value::Str("p" + std::to_string(t)),
                       Value::Int(t)})
        .value();
    Check(txn->Commit());
  }
  for (auto _ : state) {
    IntegrityCounters counters;
    Check(db->Scrub(&counters));
    benchmark::DoNotOptimize(counters.records_verified);
  }
}
BENCHMARK(BM_DatabaseScrub)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  return structura::bench::BenchmarkMainWithJson(
      argc, argv, "e16_integrity_scrub", "BENCH_e16.json");
}
