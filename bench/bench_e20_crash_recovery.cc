// E20 — crash-recovery cost curve. The crash-simulation harness
// (tests/crash_sim_test.cc) proves recovery is *correct* at every cut
// point; this bench measures what recovery *costs* as a function of the
// two knobs an operator actually controls: how long the WAL is allowed
// to grow and how stale the last checkpoint is. Each scenario builds a
// workspace with a known (checkpoint_rows, wal_records) shape, then
// times cold `Database::Open` — checkpoint load + full log replay —
// several times. Results land in BENCH_e20.json so successive runs are
// diffable; this seeds the repo's bench-artifact trajectory.
//
// Usage: bench_e20_crash_recovery [out.json]
//   (default output path: BENCH_e20.json in the working directory;
//    $STRUCTURA_BENCH_OUT overrides when no argument is given)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rdbms/database.h"

namespace structura {
namespace {

using rdbms::Database;
using rdbms::TableSchema;
using rdbms::Value;
using rdbms::ValueType;

constexpr int kRepeats = 7;

struct Scenario {
  // Rows committed before the checkpoint (0 = no checkpoint at all).
  int checkpoint_rows = 0;
  // Committed single-insert transactions left in the WAL after the
  // checkpoint — the "checkpoint age" measured in transactions.
  int wal_records = 0;
};

struct RunResult {
  Scenario scenario;
  std::vector<double> open_ms;  // sorted ascending after Measure()
};

double NowMs() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TableSchema FinalSchema() {
  TableSchema schema;
  schema.table_name = "final";
  schema.columns = {{"subject", ValueType::kString},
                    {"value", ValueType::kInt}};
  return schema;
}

std::string BenchDir(const Scenario& s) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("structura_e20_c" + std::to_string(s.checkpoint_rows) +
                      "_w" + std::to_string(s.wal_records)))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

void InsertRows(Database* db, int begin, int count) {
  for (int i = begin; i < begin + count; ++i) {
    auto txn = db->Begin();
    txn->Insert("final",
                {Value::Str("s" + std::to_string(i)), Value::Int(i)})
        .value();
    if (!txn->Commit().ok()) std::abort();
  }
}

// Builds a workspace whose durable state has exactly the scenario's
// shape, then times cold opens over it.
RunResult Measure(const Scenario& s) {
  std::string dir = BenchDir(s);
  {
    auto db = std::move(Database::Open({dir})).value();
    db->CreateTable(FinalSchema()).value();
    if (s.checkpoint_rows > 0) {
      InsertRows(db.get(), 0, s.checkpoint_rows);
      if (!db->Checkpoint().ok()) std::abort();
    }
    InsertRows(db.get(), s.checkpoint_rows, s.wal_records);
    // Drop without a final checkpoint: the WAL tail is live and every
    // Open below replays it in full, as after a crash.
  }

  RunResult result;
  result.scenario = s;
  for (int r = 0; r < kRepeats; ++r) {
    double start = NowMs();
    auto db = std::move(Database::Open({dir})).value();
    double elapsed = NowMs() - start;
    if (db->GetTable("final") == nullptr) {
      std::fprintf(stderr, "e20: table missing after recovery\n");
      std::abort();
    }
    result.open_ms.push_back(elapsed);
  }
  std::sort(result.open_ms.begin(), result.open_ms.end());
  std::filesystem::remove_all(dir);
  return result;
}

std::string ToJson(const std::vector<RunResult>& runs) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\n"
      << "  \"bench\": \"e20_crash_recovery\",\n"
      << "  \"unit\": \"ms\",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    const std::vector<double>& ms = r.open_ms;
    out << "    {\"checkpoint_rows\": " << r.scenario.checkpoint_rows
        << ", \"wal_records\": " << r.scenario.wal_records
        << ", \"open_ms_min\": " << ms.front()
        << ", \"open_ms_p50\": " << ms[ms.size() / 2]
        << ", \"open_ms_max\": " << ms.back() << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  using structura::Measure;
  using structura::RunResult;
  using structura::Scenario;

  // Axis 1: recovery time vs. WAL length, no checkpoint (worst case —
  // the whole history replays). Axis 2: a fixed 4096-row table with
  // checkpoints of varying age, isolating replay cost from image load.
  const std::vector<Scenario> scenarios = {
      {0, 0},       {0, 256},     {0, 1024},   {0, 4096},
      {4096, 0},    {3584, 512},  {2048, 2048},
  };

  std::vector<RunResult> runs;
  for (const Scenario& s : scenarios) {
    RunResult r = Measure(s);
    std::printf("checkpoint_rows=%-5d wal_records=%-5d open_p50=%.3fms\n",
                s.checkpoint_rows, s.wal_records,
                r.open_ms[r.open_ms.size() / 2]);
    runs.push_back(std::move(r));
  }

  const char* env_out = std::getenv("STRUCTURA_BENCH_OUT");
  std::string out_path =
      argc > 1 ? argv[1] : (env_out != nullptr ? env_out : "BENCH_e20.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << structura::ToJson(runs);
  out.close();
  if (!out) {
    std::fprintf(stderr, "e20: failed writing %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
