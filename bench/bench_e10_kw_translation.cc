// E10 — Section 3.2, exploitation: ordinary users "start with a keyword
// query" and the system should "guide the user ... to a structured-query
// reformulation", e.g. by showing candidate query forms. We generate
// keyword queries whose intended structured query is known from ground
// truth and measure hit@1 / hit@3 of the translator, plus translation
// latency. Expected shape: high hit@k for in-vocabulary queries; answers
// produced by the top form agree with ground truth.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "common/strings.h"
#include "core/system.h"

namespace structura {
namespace {

struct Probe {
  std::string keywords;
  std::string subject;      // expected subject filter
  std::string attr_value;   // expected attribute (Eq) — empty if range
  bool expect_avg = false;
};

std::vector<Probe> MakeProbes(const corpus::GroundTruth& truth) {
  std::vector<Probe> probes;
  const char* month_words[12] = {
      "january", "february", "march",     "april",   "may",      "june",
      "july",    "august",   "september", "october", "november",
      "december"};
  for (size_t i = 0; i < truth.cities.size() && probes.size() < 40; ++i) {
    const corpus::CityRecord& c = truth.cities[i];
    int m = static_cast<int>(i % 12);
    probes.push_back(Probe{
        StrFormat("average %s temperature %s", month_words[m],
                  ToLower(c.name).c_str()),
        c.name, StrFormat("temp_%02d", m + 1), true});
    probes.push_back(Probe{
        StrFormat("population %s", ToLower(c.name).c_str()), c.name,
        "population", false});
  }
  return probes;
}

bool FormMatches(const query::QueryForm& form, const Probe& probe) {
  bool subject_ok = false, attr_ok = probe.attr_value.empty();
  for (const query::Condition& c : form.query.where) {
    if (c.column == "subject" &&
        c.literal.ToString() == probe.subject) {
      subject_ok = true;
    }
    if (c.column == "attribute" &&
        c.literal.ToString() == probe.attr_value) {
      attr_ok = true;
    }
  }
  bool agg_ok = !probe.expect_avg;
  for (const query::AggSpec& a : form.query.aggregates) {
    if (a.fn == query::AggFn::kAvg) agg_ok = true;
  }
  return subject_ok && attr_ok && agg_ok;
}

void BM_TranslationAccuracy(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  auto sys = std::move(core::System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);
  sys->RunProgram(
         "CREATE VIEW facts AS EXTRACT infobox, temp_sentence, "
         "population_sentence FROM pages;")
      .value();
  sys->BuildBeliefsFromView("facts");
  std::vector<Probe> probes = MakeProbes(w.truth);

  double hit1 = 0, hit3 = 0;
  for (auto _ : state) {
    size_t h1 = 0, h3 = 0;
    for (const Probe& p : probes) {
      auto forms = sys->SuggestQueries(p.keywords);
      for (size_t i = 0; i < forms.size() && i < 3; ++i) {
        if (FormMatches(forms[i], p)) {
          if (i == 0) ++h1;
          ++h3;
          break;
        }
      }
    }
    hit1 = static_cast<double>(h1) / probes.size();
    hit3 = static_cast<double>(h3) / probes.size();
  }
  state.counters["hit_at_1"] = hit1;
  state.counters["hit_at_3"] = hit3;
  state.counters["probes"] = static_cast<double>(probes.size());
}
BENCHMARK(BM_TranslationAccuracy)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond);

// Answer fidelity: run the top form and compare with ground truth.
void BM_TranslatedAnswerFidelity(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(30, /*dropout=*/0.0);
  auto sys = std::move(core::System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);
  sys->RunProgram(
         "CREATE VIEW facts AS EXTRACT infobox FROM pages;")
      .value();
  sys->BuildBeliefsFromView("facts");
  double correct_rate = 0;
  for (auto _ : state) {
    size_t correct = 0, total = 0;
    for (const corpus::CityRecord& c : w.truth.cities) {
      auto forms = sys->SuggestQueries("population " + ToLower(c.name));
      if (forms.empty()) continue;
      auto rel = sys->RunForm(forms[0]);
      if (!rel.ok() || rel->empty()) continue;
      ++total;
      std::string digits;
      for (char ch : rel->At(0, "value").ToString()) {
        if (ch != ',') digits += ch;
      }
      if (digits == std::to_string(c.population)) ++correct;
    }
    correct_rate =
        total == 0 ? 0 : static_cast<double>(correct) / total;
  }
  state.counters["answer_correct_rate"] = correct_rate;
}
BENCHMARK(BM_TranslatedAnswerFidelity)->Unit(benchmark::kMillisecond);

// Pure translation latency.
void BM_TranslationLatency(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(100);
  auto sys = std::move(core::System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);
  sys->RunProgram(
         "CREATE VIEW facts AS EXTRACT infobox FROM pages;")
      .value();
  sys->BuildBeliefsFromView("facts");
  for (auto _ : state) {
    auto forms =
        sys->SuggestQueries("average march september temperature madison");
    benchmark::DoNotOptimize(forms);
  }
}
BENCHMARK(BM_TranslationLatency)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
