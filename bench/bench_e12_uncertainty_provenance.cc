// E12 — Section 4, Part V: the system "handles the uncertainty that
// arise during the IE, II, and HI processes" and "provides the
// provenance and explanation for the derived structured data." Both
// cost something; this experiment quantifies the overhead of belief
// construction and lineage tracking over the raw pipeline, and the
// latency of answering "why is this value here?".

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/system.h"
#include "ie/pipeline.h"
#include "ie/standard.h"
#include "provenance/lineage.h"
#include "uncertainty/confidence.h"
#include "uncertainty/possible_worlds.h"

namespace structura {
namespace {

void BM_PipelineRawFacts(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  auto suite = ie::MakeStandardSuite();
  auto views = ie::Views(suite);
  for (auto _ : state) {
    ie::FactSet facts = ie::RunExtractors(views, w.docs);
    benchmark::DoNotOptimize(facts);
  }
}
BENCHMARK(BM_PipelineRawFacts)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineWithBeliefs(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  auto suite = ie::MakeStandardSuite();
  auto views = ie::Views(suite);
  size_t beliefs = 0;
  for (auto _ : state) {
    ie::FactSet facts = ie::RunExtractors(views, w.docs);
    auto b = uncertainty::BuildBeliefs(facts);
    beliefs = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["beliefs"] = static_cast<double>(beliefs);
}
BENCHMARK(BM_PipelineWithBeliefs)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineWithBeliefsAndLineage(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(state.range(0));
  size_t lineage_nodes = 0;
  for (auto _ : state) {
    auto sys = std::move(core::System::Create({})).value();
    sys->RegisterStandardOperators();
    sys->IngestCrawl(w.docs);
    sys->RunProgram(
           "CREATE VIEW facts AS EXTRACT infobox, temp_sentence, "
           "population_sentence, founded_sentence, elevation_sentence, "
           "mayor_sentence, residence_sentence FROM pages;")
        .value();
    sys->BuildBeliefsFromView("facts");
    lineage_nodes = sys->lineage().NumNodes();
  }
  state.counters["lineage_nodes"] = static_cast<double>(lineage_nodes);
}
BENCHMARK(BM_PipelineWithBeliefsAndLineage)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_ExplainLatency(benchmark::State& state) {
  bench::Workload w = bench::MakeWorkload(100);
  auto sys = std::move(core::System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(w.docs);
  sys->RunProgram(
         "CREATE VIEW facts AS EXTRACT infobox, temp_sentence "
         "FROM pages;")
      .value();
  sys->BuildBeliefsFromView("facts");
  const auto& beliefs = sys->beliefs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& b = beliefs[i++ % beliefs.size()];
    auto text = sys->Explain(b.subject, b.attribute);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_ExplainLatency)->Unit(benchmark::kMicrosecond);

void BM_PossibleWorldsAggregate(benchmark::State& state) {
  const size_t samples = static_cast<size_t>(state.range(0));
  bench::Workload w = bench::MakeWorkload(40, 0.5, 0.2);
  auto suite = ie::MakeStandardSuite();
  ie::FactSet facts = ie::RunExtractors(ie::Views(suite), w.docs);
  auto beliefs = uncertainty::BuildBeliefs(facts);
  double stddev = 0;
  for (auto _ : state) {
    auto est = uncertainty::EstimateAggregate(
        beliefs, samples, 3,
        [](const uncertainty::World& world) -> std::optional<double> {
          double sum = 0;
          size_t n = 0;
          for (const auto& v : world) {
            if (!v.has_value()) continue;
            double x;
            if (ParseDouble(*v, &x)) {
              sum += x;
              ++n;
            }
          }
          if (n == 0) return std::nullopt;
          return sum / static_cast<double>(n);
        });
    stddev = est.stddev;
    benchmark::DoNotOptimize(est);
  }
  state.counters["stddev"] = stddev;
}
BENCHMARK(BM_PossibleWorldsAggregate)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
