// E9 — Section 3.3's principle: "narrowing the set of potential matches
// to a manageable number allows users to spot the correct match, when
// they would be swamped by the total number of potential matches." For
// each mention with a true co-referent, we build a top-k candidate list
// and measure (a) how often the true match is inside it, and (b) the
// simulated user's success rate, which decays with list length (longer
// lists mean more chances to misfire). Expected shape: recall@k rises
// steeply for small k; user success peaks at small k and the candidate
// list beats the "swamped" full-list baseline.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "common/random.h"
#include "ii/matcher.h"
#include "ii/resolution.h"

namespace structura {
namespace {

struct MentionSet {
  std::vector<ii::MentionRecord> mentions;
  std::vector<corpus::EntityId> entities;
};

MentionSet BuildMentions() {
  bench::Workload w =
      bench::MakeWorkload(30, 0.25, 0.0, /*news_pages=*/40, 99);
  MentionSet set;
  for (const corpus::MentionTruth& m : w.truth.mentions) {
    ii::MentionRecord rec;
    rec.id = set.mentions.size();
    rec.surface = m.surface;
    set.mentions.push_back(std::move(rec));
    set.entities.push_back(m.entity);
  }
  return set;
}

/// A user model for scanning a candidate list: examines entries in
/// order; for each entry, with probability `attention` decides
/// correctly whether it is the true match; attention decays with list
/// position (fatigue).
bool UserFindsMatch(const std::vector<ii::ScoredPair>& candidates,
                    const std::vector<corpus::EntityId>& entities,
                    corpus::EntityId truth, Rng& rng) {
  double attention = 0.98;
  for (const ii::ScoredPair& c : candidates) {
    bool is_match = entities[c.b] == truth;
    bool judged_correctly = rng.NextBool(attention);
    bool judged_match = judged_correctly ? is_match : !is_match;
    if (judged_match) return is_match;  // user commits to this entry
    attention *= 0.97;                  // fatigue per examined entry
  }
  return false;
}

void BM_TopKCandidates(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  static const MentionSet& set = *new MentionSet(BuildMentions());
  ii::NameMatcher matcher;

  double recall_at_k = 0, user_success = 0;
  for (auto _ : state) {
    Rng rng(17);
    size_t has_coref = 0, found = 0, user_found = 0;
    for (size_t i = 0; i < set.mentions.size(); i += 7) {
      // Does mention i have a true co-referent elsewhere?
      bool any = false;
      for (size_t j = 0; j < set.mentions.size(); ++j) {
        if (j != i && set.entities[j] == set.entities[i]) any = true;
      }
      if (!any) continue;
      ++has_coref;
      auto top = ii::TopKCandidates(set.mentions, i, matcher, k);
      bool hit = false;
      for (const ii::ScoredPair& c : top) {
        if (set.entities[c.b] == set.entities[i]) hit = true;
      }
      if (hit) ++found;
      if (UserFindsMatch(top, set.entities, set.entities[i], rng)) {
        ++user_found;
      }
    }
    recall_at_k = static_cast<double>(found) / has_coref;
    user_success = static_cast<double>(user_found) / has_coref;
  }
  state.counters["recall_at_k"] = recall_at_k;
  state.counters["user_success"] = user_success;
}
BENCHMARK(BM_TopKCandidates)
    ->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond);

// Baseline: the user scans the entire unsorted mention list ("swamped").
void BM_FullListBaseline(benchmark::State& state) {
  static const MentionSet& set = *new MentionSet(BuildMentions());
  double user_success = 0;
  for (auto _ : state) {
    Rng rng(17);
    size_t has_coref = 0, user_found = 0;
    for (size_t i = 0; i < set.mentions.size(); i += 7) {
      bool any = false;
      for (size_t j = 0; j < set.mentions.size(); ++j) {
        if (j != i && set.entities[j] == set.entities[i]) any = true;
      }
      if (!any) continue;
      ++has_coref;
      // Unranked candidate list: everything, arbitrary order.
      std::vector<ii::ScoredPair> all;
      for (size_t j = 0; j < set.mentions.size(); ++j) {
        if (j != i) all.push_back(ii::ScoredPair{i, j, 0});
      }
      if (UserFindsMatch(all, set.entities, set.entities[i], rng)) {
        ++user_found;
      }
    }
    user_success = static_cast<double>(user_found) / has_coref;
  }
  state.counters["user_success"] = user_success;
}
BENCHMARK(BM_FullListBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
