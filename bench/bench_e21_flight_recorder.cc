// E21 — flight-recorder overhead. The always-on premise of the event
// journal and per-request cost accounting (DESIGN.md 5.8) only holds if
// recording is effectively free: an event append must stay in the tens
// of nanoseconds, and end-to-end serve throughput with the recorder on
// must sit within a few percent of the recorder off. This bench
// measures both directly: a tight journal-append loop (enabled and
// kill-switched), a ChargeCost loop, and a trivial-operator frontend
// driven at full speed with the recorder+accounting on vs off.
//
// Usage: bench_e21_flight_recorder [out.json]
//   (default output path: BENCH_e21.json in the working directory;
//    $STRUCTURA_BENCH_OUT overrides when no argument is given)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/flight_recorder.h"
#include "serve/frontend.h"

namespace structura {
namespace {

constexpr int kRepeats = 5;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// ns per journal append over `ops` records.
double EventRecordNs(size_t ops) {
  std::vector<double> runs;
  for (int r = 0; r < kRepeats; ++r) {
    double start = NowNs();
    for (size_t i = 0; i < ops; ++i) {
      obs::RecordEvent(obs::EventCategory::kCheckpoint,
                       obs::EventCode::kCheckpointBegin, i, 0, 0, "bench");
    }
    runs.push_back((NowNs() - start) / static_cast<double>(ops));
  }
  return Median(runs);
}

/// ns per ChargeCost inside an installed cost context.
double ChargeCostNs(size_t ops) {
  obs::CostAccumulator acc;
  obs::ScopedCostContext scope(&acc);
  std::vector<double> runs;
  for (int r = 0; r < kRepeats; ++r) {
    double start = NowNs();
    for (size_t i = 0; i < ops; ++i) {
      obs::ChargeCost(obs::CostDim::kRowsScanned, 1);
    }
    runs.push_back((NowNs() - start) / static_cast<double>(ops));
  }
  return Median(runs);
}

/// End-to-end frontend throughput over a trivial operator, submitted in
/// batches so the worker pool stays saturated.
double ServeOpsPerSec(size_t total_ops) {
  serve::Frontend::Options options;
  options.num_threads = 2;
  options.max_queue_depth = 4096;
  serve::Frontend fe(options);
  fe.RegisterOperator("noop",
                      [](const serve::RequestContext&) { return Status::OK(); });
  // Warm the pool and the operator's metric handles.
  for (int i = 0; i < 256; ++i) {
    (void)fe.Call("noop", serve::RequestContext{});
  }
  constexpr size_t kBatch = 512;
  std::vector<std::future<Status>> batch;
  batch.reserve(kBatch);
  std::vector<double> runs;
  for (int r = 0; r < kRepeats; ++r) {
    double start = NowNs();
    size_t done = 0;
    while (done < total_ops) {
      size_t n = std::min(kBatch, total_ops - done);
      batch.clear();
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(fe.Submit("noop", serve::RequestContext{}));
      }
      for (std::future<Status>& f : batch) (void)f.get();
      done += n;
    }
    runs.push_back(static_cast<double>(total_ops) /
                   ((NowNs() - start) / 1e9));
  }
  return Median(runs);
}

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  using structura::bench::BenchResultWriter;

  constexpr size_t kEventOps = 1'000'000;
  constexpr size_t kServeOps = 20'000;

  double record_ns = structura::EventRecordNs(kEventOps);
  structura::obs::SetEventJournalEnabled(false);
  double record_off_ns = structura::EventRecordNs(kEventOps);
  structura::obs::SetEventJournalEnabled(true);
  double charge_ns = structura::ChargeCostNs(kEventOps);

  double serve_on = structura::ServeOpsPerSec(kServeOps);
  structura::obs::SetEventJournalEnabled(false);
  structura::obs::SetCostAccountingEnabled(false);
  double serve_off = structura::ServeOpsPerSec(kServeOps);
  structura::obs::SetEventJournalEnabled(true);
  structura::obs::SetCostAccountingEnabled(true);
  double ratio = serve_off > 0 ? serve_on / serve_off : 0;

  std::printf("event_record            %8.1f ns/op\n", record_ns);
  std::printf("event_record_disabled   %8.1f ns/op\n", record_off_ns);
  std::printf("charge_cost             %8.1f ns/op\n", charge_ns);
  std::printf("serve_recorder_on       %10.0f ops/s\n", serve_on);
  std::printf("serve_recorder_off      %10.0f ops/s\n", serve_off);
  std::printf("serve_on_off_ratio      %8.3f\n", ratio);

  BenchResultWriter writer("e21_flight_recorder", "BENCH_e21.json");
  writer.Add("event_record", record_ns, "ns/op");
  writer.Add("event_record_disabled", record_off_ns, "ns/op");
  writer.Add("charge_cost", charge_ns, "ns/op");
  writer.Add("serve_recorder_on", serve_on, "ops/s");
  writer.Add("serve_recorder_off", serve_off, "ops/s");
  writer.Add("serve_on_off_ratio", ratio, "ratio");
  return writer.Write(argc > 1 ? argv[1] : "") ? 0 : 1;
}
