// E3 — Section 3.2: "it may be highly beneficial to allow a multitude of
// users, instead of just a single one, to provide feedback, in a mass
// collaboration fashion". Fixed task set; sweep crowd size and compare
// aggregation schemes. Expected shape: consensus accuracy rises with
// crowd size; with a noisy crowd, reputation weighting and Dawid-Skene
// beat plain majority.

#include <benchmark/benchmark.h>

#include <map>

#include "common/random.h"
#include "common/strings.h"
#include "hi/aggregation.h"
#include "hi/simulated_user.h"
#include "user/accounts.h"

namespace structura {
namespace {

struct TaskSet {
  std::vector<hi::Task> tasks;
  std::vector<std::string> truths;
  std::map<uint64_t, std::vector<std::string>> options;
};

TaskSet MakeTasks(size_t n, uint64_t seed) {
  TaskSet set;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> candidates = {
        StrFormat("%llu", (unsigned long long)rng.NextBounded(100)),
        StrFormat("%llu", (unsigned long long)(100 + rng.NextBounded(100)))};
    hi::Task t = hi::MakeChooseValueTask(i + 1, "subject", "attr",
                                         candidates, 0.5, i);
    set.options[t.id] = t.options;
    set.truths.push_back(
        t.options[rng.NextBounded(t.options.size())]);
    set.tasks.push_back(std::move(t));
  }
  return set;
}

/// A crowd with a spammy tail: 1/3 of users answer nearly at random.
std::vector<hi::SimulatedUser> NoisyCrowd(size_t n, uint64_t seed) {
  std::vector<hi::SimulatedUser> crowd;
  for (size_t i = 0; i < n; ++i) {
    hi::SimulatedUser::Profile p;
    p.name = StrFormat("user_%03zu", i);
    p.accuracy = (i % 3 == 0) ? 0.55 : 0.9;
    p.seed = seed + i * 31;
    crowd.emplace_back(std::move(p));
  }
  return crowd;
}

enum class Mode { kMajority, kWeighted, kDawidSkene };

double RunConsensus(Mode mode, size_t crowd_size, uint64_t seed) {
  TaskSet set = MakeTasks(120, seed);
  auto crowd = NoisyCrowd(crowd_size, seed * 7 + 1);
  std::vector<hi::Answer> all;
  std::map<uint64_t, std::vector<hi::Answer>> per_task;
  for (size_t t = 0; t < set.tasks.size(); ++t) {
    for (hi::SimulatedUser& u : crowd) {
      hi::Answer a = u.Respond(set.tasks[t], set.truths[t]);
      per_task[set.tasks[t].id].push_back(a);
      all.push_back(std::move(a));
    }
  }
  // Reputation weights, learned from the first half of tasks (gold
  // bootstrap), then applied to consensus scoring.
  std::map<std::string, double> weights;
  if (mode == Mode::kWeighted) {
    user::UserDirectory users;
    for (const auto& u : crowd) {
      users.Register(u.name(), "pw", user::Role::kOrdinary);
    }
    for (size_t t = 0; t < set.tasks.size() / 2; ++t) {
      for (const hi::Answer& a : per_task[set.tasks[t].id]) {
        users.RecordFeedback(a.user, a.choice == set.truths[t]);
      }
    }
    weights = users.ReputationWeights();
  }
  std::map<uint64_t, hi::AggregatedAnswer> consensus;
  if (mode == Mode::kDawidSkene) {
    consensus = hi::DawidSkene(all, set.options).task_answers;
  } else {
    for (auto& [task_id, answers] : per_task) {
      consensus[task_id] = mode == Mode::kMajority
                               ? hi::MajorityVote(answers)
                               : hi::WeightedVote(answers, weights);
    }
  }
  size_t correct = 0;
  for (size_t t = 0; t < set.tasks.size(); ++t) {
    if (consensus[set.tasks[t].id].choice == set.truths[t]) ++correct;
  }
  return static_cast<double>(correct) / set.tasks.size();
}

void RunMode(benchmark::State& state, Mode mode) {
  const size_t crowd_size = static_cast<size_t>(state.range(0));
  double accuracy = 0;
  for (auto _ : state) {
    accuracy = RunConsensus(mode, crowd_size, 5);
  }
  state.counters["consensus_accuracy"] = accuracy;
}

void BM_Majority(benchmark::State& state) {
  RunMode(state, Mode::kMajority);
}
void BM_ReputationWeighted(benchmark::State& state) {
  RunMode(state, Mode::kWeighted);
}
void BM_DawidSkene(benchmark::State& state) {
  RunMode(state, Mode::kDawidSkene);
}

BENCHMARK(BM_Majority)->Arg(1)->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReputationWeighted)
    ->Arg(1)->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DawidSkene)->Arg(1)->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
