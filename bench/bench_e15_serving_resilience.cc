// E15 — serving resilience: what the overload policy buys. We drive an
// open-loop request stream at 1x/4x/16x the measured service capacity
// with admission control + queued-wait shedding ON vs OFF and report
// p50/p99 latency of successful requests plus goodput. With shedding on,
// admitted requests ride a short bounded queue, so p99 stays within a
// small multiple of the unloaded p99 even at 16x; with shedding off,
// every request queues and tail latency grows with the backlog. A second
// benchmark measures how long an operator takes to recover (breaker
// re-close) after a fault burst stops.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/system.h"
#include "serve/frontend.h"

namespace structura {
namespace {

using Clock = std::chrono::steady_clock;

/// A System serving hybrid search (the heaviest read operator) behind a
/// Frontend, plus the measured single-request service time.
struct ServingHarness {
  explicit ServingHarness(bool shed_enabled) {
    bench::Workload w = bench::MakeWorkload(30);
    auto sys_or = core::System::Create(core::System::Options{});
    sys = std::move(sys_or).value();
    sys->RegisterStandardOperators();
    sys->IngestCrawl(w.docs).ok();
    sys->RunProgram("CREATE VIEW facts AS EXTRACT infobox FROM pages;")
        .value();
    sys->BuildBeliefsFromView("facts").ok();

    serve::Frontend::Options fopts;
    fopts.num_threads = 4;
    // A short queue and a wait budget of a few service times: requests
    // that cannot be served promptly are refused, not parked.
    fopts.max_queue_depth = 8;
    fopts.max_queue_wait_ms = 3;
    fopts.shed_enabled = shed_enabled;
    frontend = std::make_unique<serve::Frontend>(fopts);
    // Each request runs hybrid probes for a fixed ~300us of work — a
    // single probe on this corpus is too cheap (~20us) for queueing
    // effects to dominate over scheduler noise.
    frontend->RegisterOperator(
        "hybrid", [this](const serve::RequestContext& ctx) {
          std::vector<query::Condition> conds;
          conds.push_back({"attribute", query::CompareOp::kEq,
                           rdbms::Value::Str("population")});
          Clock::time_point t0 = Clock::now();
          Status last = Status::OK();
          do {
            last = sys->HybridSearch("population city", conds, 5,
                                     ctx.interrupt)
                       .status();
          } while (last.ok() &&
                   Clock::now() - t0 < std::chrono::microseconds(300));
          return last;
        });

    // Calibrate: unloaded sequential service time.
    Clock::time_point t0 = Clock::now();
    constexpr int kProbes = 30;
    for (int i = 0; i < kProbes; ++i) {
      frontend->Call("hybrid", serve::RequestContext{});
    }
    service_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - t0)
                     .count() /
                 kProbes;
    if (service_us < 1) service_us = 1;
  }

  std::unique_ptr<core::System> sys;
  std::unique_ptr<serve::Frontend> frontend;
  int64_t service_us = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * (v->size() - 1));
  return (*v)[idx];
}

void RunLoadBenchmark(benchmark::State& state, bool shed_enabled) {
  const int64_t multiplier = state.range(0);
  static ServingHarness* shed_harness = new ServingHarness(true);
  static ServingHarness* noshed_harness = new ServingHarness(false);
  ServingHarness& h = shed_enabled ? *shed_harness : *noshed_harness;

  constexpr int kClients = 8;
  constexpr int kWorkers = 4;
  // Per-client inter-arrival gap that offers `multiplier` times the
  // measured capacity of the worker pool.
  const int64_t gap_us =
      std::max<int64_t>(1, h.service_us * kClients /
                               (kWorkers * std::max<int64_t>(1, multiplier)));

  std::vector<double> ok_latencies_us;
  uint64_t issued = 0, ok = 0;
  double elapsed_s = 0;
  for (auto _ : state) {
    std::mutex merge_mutex;
    Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<double> local;
        std::vector<std::future<Status>> inflight;
        std::vector<Clock::time_point> sent;
        std::vector<bool> resolved;
        size_t done = 0;
        // Sweep ready futures so completion times are observed promptly
        // (latency is measured submit -> observed-ready).
        auto sweep = [&] {
          for (size_t i = 0; i < inflight.size(); ++i) {
            if (resolved[i] ||
                inflight[i].wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
              continue;
            }
            resolved[i] = true;
            ++done;
            if (inflight[i].get().ok()) {
              local.push_back(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - sent[i])
                      .count());
            }
          }
        };
        for (int i = 0; i < 50; ++i) {
          serve::RequestContext ctx;
          ctx.id = static_cast<uint64_t>(c) * 1000 + i;
          sent.push_back(Clock::now());
          inflight.push_back(h.frontend->Submit("hybrid", std::move(ctx)));
          resolved.push_back(false);
          std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
          sweep();
        }
        while (done < inflight.size()) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          sweep();
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        ok += local.size();
        issued += inflight.size();
        ok_latencies_us.insert(ok_latencies_us.end(), local.begin(),
                               local.end());
      });
    }
    for (std::thread& t : clients) t.join();
    elapsed_s += std::chrono::duration_cast<std::chrono::duration<double>>(
                     Clock::now() - start)
                     .count();
  }

  state.counters["service_us"] = static_cast<double>(h.service_us);
  state.counters["p50_us"] = Percentile(&ok_latencies_us, 0.50);
  state.counters["p99_us"] = Percentile(&ok_latencies_us, 0.99);
  state.counters["goodput_rps"] =
      elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0;
  state.counters["served_frac"] =
      issued > 0 ? static_cast<double>(ok) / static_cast<double>(issued) : 0;
}

void BM_ServingShedOn(benchmark::State& state) {
  RunLoadBenchmark(state, /*shed_enabled=*/true);
}
BENCHMARK(BM_ServingShedOn)->Arg(1)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

void BM_ServingShedOff(benchmark::State& state) {
  RunLoadBenchmark(state, /*shed_enabled=*/false);
}
BENCHMARK(BM_ServingShedOff)->Arg(1)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

// Time from "faults stop" to "operator serves again" — dominated by the
// breaker cooldown plus the first successful probe.
void BM_BreakerRecovery(benchmark::State& state) {
  serve::Frontend::Options fopts;
  fopts.num_threads = 2;
  fopts.breaker.failure_threshold = 4;
  fopts.breaker.open_ms = 25;
  serve::Frontend fe(fopts);
  fe.RegisterOperator(
      "op", [](const serve::RequestContext&) { return Status::OK(); });

  double total_recovery_ms = 0;
  uint64_t bursts = 0;
  for (auto _ : state) {
    {
      ScopedFailpoint fp("serve.op.op", FailpointRegistry::Spec::Always());
      for (uint32_t i = 0; i < fopts.breaker.failure_threshold; ++i) {
        serve::RequestContext ctx;
        ctx.retry_budget = 0;
        fe.Call("op", std::move(ctx));
      }
    }
    Clock::time_point t0 = Clock::now();
    while (!fe.Call("op", serve::RequestContext{}).ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    total_recovery_ms +=
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            Clock::now() - t0)
            .count();
    ++bursts;
  }
  state.counters["recovery_ms"] =
      bursts > 0 ? total_recovery_ms / static_cast<double>(bursts) : 0;
}
BENCHMARK(BM_BreakerRecovery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  return structura::bench::BenchmarkMainWithJson(argc, argv,
                                                 "e15_serving_resilience",
                                                 "BENCH_e15.json");
}
