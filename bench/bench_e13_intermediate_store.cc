// E13 — Section 4, storage layer: "the system often executes only
// sequential reads and writes over intermediate structured data, in
// which case such data can best be kept in the file systems." We
// serialize extracted facts into the append-only segment store and
// compare sequential-scan throughput against random point reads and
// against keeping the intermediates in the transactional RDBMS (which
// pays locking and latching for guarantees the access pattern does not
// need).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_util.h"
#include "common/random.h"
#include "common/strings.h"
#include "ie/pipeline.h"
#include "ie/standard.h"
#include "rdbms/database.h"
#include "storage/segment_store.h"

namespace structura {
namespace {

std::vector<std::string> FactBlobs(size_t cities) {
  bench::Workload w = bench::MakeWorkload(cities);
  auto suite = ie::MakeStandardSuite();
  ie::FactSet facts = ie::RunExtractors(ie::Views(suite), w.docs);
  std::vector<std::string> blobs;
  blobs.reserve(facts.size());
  for (const ie::ExtractedFact& f : facts.facts) {
    blobs.push_back(StrFormat(
        "%llu|%s|%s|%s|%.3f", static_cast<unsigned long long>(f.doc),
        f.subject.c_str(), f.attribute.c_str(), f.value.c_str(),
        f.confidence));
  }
  return blobs;
}

std::unique_ptr<storage::SegmentStore> BuildSegmentStore(
    const std::vector<std::string>& blobs) {
  std::string dir = "/tmp/structura_bench_e13_segs";
  std::filesystem::remove_all(dir);
  auto store = std::move(storage::SegmentStore::Open(dir)).value();
  for (const std::string& b : blobs) store->Append(b).value();
  store->Flush().ok();
  return store;
}

void BM_SegmentAppend(benchmark::State& state) {
  static const std::vector<std::string>& blobs =
      *new std::vector<std::string>(FactBlobs(100));
  for (auto _ : state) {
    auto store = BuildSegmentStore(blobs);
    benchmark::DoNotOptimize(store);
  }
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(blobs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SegmentAppend)->Unit(benchmark::kMillisecond);

void BM_SegmentSequentialScan(benchmark::State& state) {
  static const std::vector<std::string>& blobs =
      *new std::vector<std::string>(FactBlobs(100));
  auto store = BuildSegmentStore(blobs);
  size_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (auto it = store->Scan(); it.Valid(); it.Next()) {
      bytes += it.record().size();
    }
  }
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(blobs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["mb_scanned"] = static_cast<double>(bytes) / 1e6;
}
BENCHMARK(BM_SegmentSequentialScan)->Unit(benchmark::kMillisecond);

void BM_SegmentRandomRead(benchmark::State& state) {
  static const std::vector<std::string>& blobs =
      *new std::vector<std::string>(FactBlobs(100));
  auto store = BuildSegmentStore(blobs);
  Rng rng(3);
  for (auto _ : state) {
    auto rec = store->Read(rng.NextBounded(store->NumRecords()));
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_SegmentRandomRead)->Unit(benchmark::kMicrosecond);

void BM_RdbmsAsIntermediateStore(benchmark::State& state) {
  static const std::vector<std::string>& blobs =
      *new std::vector<std::string>(FactBlobs(100));
  auto db = std::move(rdbms::Database::Open({})).value();
  rdbms::TableSchema schema;
  schema.table_name = "intermediate";
  schema.columns = {{"blob", rdbms::ValueType::kString}};
  db->CreateTable(schema).value();
  {
    auto txn = db->Begin();
    for (const std::string& b : blobs) {
      txn->Insert("intermediate", {rdbms::Value::Str(b)}).value();
    }
    txn->Commit().ok();
  }
  size_t bytes = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    auto rows = txn->Scan("intermediate");
    bytes = 0;
    for (const auto& [id, row] : *rows) {
      bytes += row[0].as_string().size();
    }
    txn->Commit().ok();
  }
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(blobs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["mb_scanned"] = static_cast<double>(bytes) / 1e6;
}
BENCHMARK(BM_RdbmsAsIntermediateStore)->Unit(benchmark::kMillisecond);

// The write-path comparison that actually motivates the design: the
// intermediates are written once, sequentially; the segment store does
// that with a checksummed append, while the transactional store pays
// locking + WAL for guarantees a write-once stream never uses.
void BM_RdbmsDurableInsert(benchmark::State& state) {
  static const std::vector<std::string>& blobs =
      *new std::vector<std::string>(FactBlobs(100));
  std::string dir = "/tmp/structura_bench_e13_db";
  std::filesystem::remove_all(dir);
  rdbms::DatabaseOptions options;
  options.dir = dir;
  auto db = std::move(rdbms::Database::Open(options)).value();
  rdbms::TableSchema schema;
  schema.table_name = "intermediate";
  schema.columns = {{"blob", rdbms::ValueType::kString}};
  db->CreateTable(schema).value();
  size_t i = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    txn->Insert("intermediate",
                {rdbms::Value::Str(blobs[i++ % blobs.size()])})
        .value();
    txn->Commit().ok();  // durable: WAL append + flush
  }
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RdbmsDurableInsert)->Unit(benchmark::kMicrosecond);

// Durable segment append, one flush per record, for a like-for-like
// durability story.
void BM_SegmentDurableAppend(benchmark::State& state) {
  static const std::vector<std::string>& blobs =
      *new std::vector<std::string>(FactBlobs(100));
  std::string dir = "/tmp/structura_bench_e13_segdur";
  std::filesystem::remove_all(dir);
  auto store = std::move(storage::SegmentStore::Open(dir)).value();
  size_t i = 0;
  for (auto _ : state) {
    store->Append(blobs[i++ % blobs.size()]).value();
    store->Flush().ok();
  }
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SegmentDurableAppend)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace structura

BENCHMARK_MAIN();
