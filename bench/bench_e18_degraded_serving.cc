// E18 — degraded serving: what the health-driven degradation ladder
// buys. We drive a mixed-priority open-loop stream at 1x/4x/16x the
// measured capacity while the hybrid operator suffers a 40% fault rate,
// with the degradation machinery (priority brownout + health model +
// fallback ladder) ON vs OFF, and report goodput, the p99 latency of
// successful *interactive* requests, the fraction of interactive
// requests that succeeded, and the fraction of answers served degraded.
// With degradation on, breaker-open windows are carried by the keyword
// fallback (answers marked degraded, never silently wrong) and brownout
// sheds background/batch first, so interactive goodput holds; with it
// off, every breaker-open window is an outage for all tiers equally. A
// second benchmark measures fallback switch latency: the time from "the
// primary starts failing" to "a degraded answer is served through the
// fallback".

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/failpoint.h"
#include "core/system.h"
#include "serve/frontend.h"

namespace structura {
namespace {

using Clock = std::chrono::steady_clock;

/// A System serving hybrid search behind a Frontend with the degradation
/// ladder either fully wired (brownout + health + keyword fallback +
/// watchdog) or fully off (the documented DegradationPolicy baseline),
/// plus the measured single-request service time.
struct DegradedHarness {
  explicit DegradedHarness(bool degradation_on) {
    bench::Workload w = bench::MakeWorkload(30);
    auto sys_or = core::System::Create(core::System::Options{});
    sys = std::move(sys_or).value();
    sys->RegisterStandardOperators();
    sys->IngestCrawl(w.docs).ok();
    sys->RunProgram("CREATE VIEW facts AS EXTRACT infobox FROM pages;")
        .value();
    sys->BuildBeliefsFromView("facts").ok();

    serve::Frontend::Options fopts;
    fopts.num_threads = 4;
    fopts.max_queue_depth = 16;
    // Shed by brownout / breaker, not queue age, so the two harnesses
    // differ only in the degradation machinery under test.
    fopts.max_queue_wait_ms = 10000;
    fopts.breaker.failure_threshold = 4;
    fopts.breaker.open_ms = 20;
    fopts.brownout.enabled = degradation_on;
    fopts.health = degradation_on ? &sys->health() : nullptr;
    frontend = std::make_unique<serve::Frontend>(fopts);

    frontend->RegisterOperator(
        "keyword", [this](const serve::RequestContext& ctx) {
          return sys->KeywordSearch("population city", 5, ctx.interrupt)
              .status();
        });
    // Each request runs hybrid probes for a fixed ~300us of work — a
    // single probe on this corpus is too cheap (~20us) for queueing
    // effects to dominate over scheduler noise.
    frontend->RegisterOperator(
        "hybrid", [this](const serve::RequestContext& ctx) {
          std::vector<query::Condition> conds;
          conds.push_back({"attribute", query::CompareOp::kEq,
                           rdbms::Value::Str("population")});
          Clock::time_point t0 = Clock::now();
          Status last = Status::OK();
          do {
            last = sys->HybridSearch("population city", conds, 5,
                                     ctx.interrupt)
                       .status();
          } while (last.ok() &&
                   Clock::now() - t0 < std::chrono::microseconds(300));
          return last;
        });
    if (degradation_on) {
      frontend->TagOperator("hybrid", "query.structured");
      frontend->TagOperator("keyword", "query.keyword");
      frontend->SetFallback("hybrid", "keyword");
      core::System::WatchdogOptions wopts;
      wopts.interval_ms = 10;
      sys->StartWatchdog(wopts);
    }

    // Calibrate: unloaded sequential service time.
    Clock::time_point t0 = Clock::now();
    constexpr int kProbes = 30;
    for (int i = 0; i < kProbes; ++i) {
      frontend->Call("hybrid", serve::RequestContext{});
    }
    service_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - t0)
                     .count() /
                 kProbes;
    if (service_us < 1) service_us = 1;
  }

  std::unique_ptr<core::System> sys;
  std::unique_ptr<serve::Frontend> frontend;
  int64_t service_us = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * (v->size() - 1));
  return (*v)[idx];
}

void RunDegradedLoad(benchmark::State& state, bool degradation_on) {
  const int64_t multiplier = state.range(0);
  static DegradedHarness* on_harness = new DegradedHarness(true);
  static DegradedHarness* off_harness = new DegradedHarness(false);
  DegradedHarness& h = degradation_on ? *on_harness : *off_harness;

  constexpr int kClients = 6;
  constexpr int kWorkers = 4;
  constexpr int kPerClient = 60;  // 20 per tier per client
  const int64_t gap_us =
      std::max<int64_t>(1, h.service_us * kClients /
                               (kWorkers * std::max<int64_t>(1, multiplier)));

  std::vector<double> interactive_ok_us;
  uint64_t issued = 0, ok = 0, degraded = 0;
  uint64_t interactive_issued = 0, interactive_ok = 0;
  double elapsed_s = 0;
  for (auto _ : state) {
    // The hybrid operator is in real trouble for the whole run: its
    // breaker flaps open, and what happens during the open windows is
    // exactly what the two harnesses disagree about.
    ScopedFailpoint hybrid_fault(
        "serve.op.hybrid", FailpointRegistry::Spec::WithProbability(0.4, 18));
    std::mutex merge_mutex;
    Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        struct Pending {
          std::future<Status> fut;
          std::shared_ptr<serve::ResponseMeta> response;
          serve::Priority tier;
          Clock::time_point sent;
          bool resolved = false;
        };
        std::vector<Pending> pending;
        pending.reserve(kPerClient);
        std::vector<double> local_int_us;
        uint64_t lok = 0, ldeg = 0, lint_issued = 0, lint_ok = 0;
        size_t done = 0;
        // Sweep ready futures so completion times are observed promptly
        // (latency is measured submit -> observed-ready).
        auto sweep = [&] {
          for (Pending& p : pending) {
            if (p.resolved ||
                p.fut.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
              continue;
            }
            p.resolved = true;
            ++done;
            if (!p.fut.get().ok()) continue;
            ++lok;
            if (p.response->degraded) ++ldeg;
            if (p.tier == serve::Priority::kInteractive) {
              ++lint_ok;
              local_int_us.push_back(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - p.sent)
                      .count());
            }
          }
        };
        for (int i = 0; i < kPerClient; ++i) {
          serve::RequestContext ctx;
          ctx.id = static_cast<uint64_t>(c) * kPerClient + i;
          ctx.priority = static_cast<serve::Priority>(i % serve::kNumPriorities);
          ctx.response = std::make_shared<serve::ResponseMeta>();
          if (ctx.priority == serve::Priority::kInteractive) ++lint_issued;
          Pending p;
          p.response = ctx.response;
          p.tier = ctx.priority;
          p.sent = Clock::now();
          p.fut = h.frontend->Submit("hybrid", std::move(ctx));
          pending.push_back(std::move(p));
          std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
          sweep();
        }
        while (done < pending.size()) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          sweep();
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        issued += pending.size();
        ok += lok;
        degraded += ldeg;
        interactive_issued += lint_issued;
        interactive_ok += lint_ok;
        interactive_ok_us.insert(interactive_ok_us.end(),
                                 local_int_us.begin(), local_int_us.end());
      });
    }
    for (std::thread& t : clients) t.join();
    elapsed_s += std::chrono::duration_cast<std::chrono::duration<double>>(
                     Clock::now() - start)
                     .count();
  }

  state.counters["service_us"] = static_cast<double>(h.service_us);
  state.counters["goodput_rps"] =
      elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0;
  state.counters["interactive_p99_us"] = Percentile(&interactive_ok_us, 0.99);
  state.counters["interactive_ok_frac"] =
      interactive_issued > 0
          ? static_cast<double>(interactive_ok) /
                static_cast<double>(interactive_issued)
          : 0;
  state.counters["degraded_frac"] =
      ok > 0 ? static_cast<double>(degraded) / static_cast<double>(ok) : 0;
}

void BM_DegradedServingOn(benchmark::State& state) {
  RunDegradedLoad(state, /*degradation_on=*/true);
}
BENCHMARK(BM_DegradedServingOn)->Arg(1)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

void BM_DegradedServingOff(benchmark::State& state) {
  RunDegradedLoad(state, /*degradation_on=*/false);
}
BENCHMARK(BM_DegradedServingOff)->Arg(1)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

// Fallback switch latency: from the instant the primary starts failing
// hard to the first answer served (degraded) through the fallback —
// i.e. the cost of burning the breaker threshold plus one fallback
// call. Measured on bare operators so the number is the frontend
// mechanism, not query time.
void BM_FallbackSwitchLatency(benchmark::State& state) {
  serve::Frontend::Options fopts;
  fopts.num_threads = 2;
  fopts.breaker.failure_threshold = 3;
  fopts.breaker.open_ms = 10;
  serve::Frontend fe(fopts);
  fe.RegisterOperator(
      "hybrid", [](const serve::RequestContext&) { return Status::OK(); });
  fe.RegisterOperator(
      "keyword", [](const serve::RequestContext&) { return Status::OK(); });
  fe.SetFallback("hybrid", "keyword");

  double total_switch_ms = 0;
  uint64_t bursts = 0;
  for (auto _ : state) {
    {
      ScopedFailpoint fp("serve.op.hybrid",
                         FailpointRegistry::Spec::Always());
      Clock::time_point t0 = Clock::now();
      // Drive until a degraded (fallback-served) answer comes back: the
      // first few calls burn the breaker threshold, then the ladder has
      // switched.
      while (true) {
        serve::RequestContext ctx;
        ctx.retry_budget = 0;
        ctx.response = std::make_shared<serve::ResponseMeta>();
        std::shared_ptr<serve::ResponseMeta> resp = ctx.response;
        Status s = fe.Call("hybrid", std::move(ctx));
        if (s.ok() && resp->degraded) break;
      }
      total_switch_ms +=
          std::chrono::duration_cast<
              std::chrono::duration<double, std::milli>>(Clock::now() - t0)
              .count();
      ++bursts;
    }
    // Recover to the healthy steady state (breaker re-closed, primary
    // serving) so the next burst measures a fresh switch.
    while (true) {
      serve::RequestContext ctx;
      ctx.response = std::make_shared<serve::ResponseMeta>();
      std::shared_ptr<serve::ResponseMeta> resp = ctx.response;
      Status s = fe.Call("hybrid", std::move(ctx));
      if (s.ok() && !resp->degraded) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  state.counters["switch_ms"] =
      bursts > 0 ? total_switch_ms / static_cast<double>(bursts) : 0;
}
BENCHMARK(BM_FallbackSwitchLatency)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace structura

int main(int argc, char** argv) {
  return structura::bench::BenchmarkMainWithJson(argc, argv,
                                                 "e18_degraded_serving",
                                                 "BENCH_e18.json");
}
