#include "sensors/sensor_events.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace structura::sensors {

void GenerateTrace(const TraceOptions& options, SensorTrace* trace,
                   std::vector<EventTruth>* truth) {
  Rng rng(options.seed);
  // Occupancy per room over time, toggled by planted events.
  std::map<std::string, std::vector<bool>> occupied;
  for (size_t r = 0; r < options.rooms; ++r) {
    std::string room = StrFormat("room_%zu", r);
    std::vector<bool>& occ = occupied[room];
    occ.assign(options.duration, false);
    // Alternate entries and exits at random, ordered times.
    std::vector<uint32_t> times;
    for (size_t e = 0; e < options.events_per_room; ++e) {
      times.push_back(static_cast<uint32_t>(
          5 + rng.NextBounded(options.duration - 20)));
    }
    std::sort(times.begin(), times.end());
    // Enforce a minimum gap so motion windows do not overlap.
    std::vector<uint32_t> spaced;
    for (uint32_t t : times) {
      if (spaced.empty() || t > spaced.back() + 12) spaced.push_back(t);
    }
    bool inside = false;
    for (uint32_t t : spaced) {
      inside = !inside;
      truth->push_back(
          EventTruth{t, room, inside ? "entered" : "left"});
      for (uint32_t u = t; u < options.duration; ++u) occ[u] = inside;
    }
  }
  // Render sensor readings per tick.
  for (uint32_t t = 0; t < options.duration; ++t) {
    for (auto& [room, occ] : occupied) {
      // Door sensor: spikes exactly at planted event times.
      double door = 0;
      for (const EventTruth& e : *truth) {
        if (e.room == room && e.time == t) door = 1.0;
      }
      if (rng.NextBool(options.glitch_rate)) door = 1.0;  // spurious
      door += rng.NextGaussian() * options.noise_stddev * 0.3;
      // Motion sensor: high while occupied.
      double motion = (occ[t] ? 0.8 : 0.05) +
                      rng.NextGaussian() * options.noise_stddev;
      trace->readings.push_back(Reading{t, "door_" + room, door});
      trace->readings.push_back(Reading{t, "motion_" + room, motion});
    }
  }
}

std::vector<ie::ExtractedFact> EventExtractor::Extract(
    const SensorTrace& trace) const {
  // Index readings: sensor -> time -> value.
  std::map<std::string, std::map<uint32_t, double>> by_sensor;
  uint32_t max_time = 0;
  for (const Reading& r : trace.readings) {
    by_sensor[r.sensor][r.time] = r.value;
    max_time = std::max(max_time, r.time);
  }
  std::vector<ie::ExtractedFact> out;
  for (const auto& [sensor, series] : by_sensor) {
    if (!StartsWith(sensor, "door_")) continue;
    std::string room = sensor.substr(5);
    auto motion_it = by_sensor.find("motion_" + room);
    if (motion_it == by_sensor.end()) continue;
    const auto& motion = motion_it->second;
    auto motion_at = [&](uint32_t t) {
      auto it = motion.find(t);
      return it == motion.end() ? 0.0 : it->second;
    };
    for (const auto& [t, door_value] : series) {
      if (door_value < options_.door_threshold) continue;
      // Compare average motion before vs after the door spike.
      double before = 0, after = 0;
      uint32_t w = options_.motion_window;
      for (uint32_t u = 1; u <= w; ++u) {
        before += t >= u ? motion_at(t - u) : 0.0;
        after += motion_at(t + u);
      }
      before /= w;
      after /= w;
      double delta = after - before;
      if (std::abs(delta) < options_.motion_delta) continue;  // glitch
      ie::ExtractedFact fact;
      fact.subject = room;
      fact.attribute = delta > 0 ? "entered" : "left";
      fact.value = StrFormat("%u", t);
      fact.extractor = "sensor_event_rule";
      // Cleaner motion transitions yield higher confidence.
      fact.confidence =
          std::min(1.0, 0.5 + std::abs(delta));
      out.push_back(std::move(fact));
    }
  }
  return out;
}

EventScore ScoreEvents(const std::vector<ie::ExtractedFact>& extracted,
                       const std::vector<EventTruth>& truth,
                       uint32_t tolerance) {
  EventScore score;
  std::vector<bool> matched(truth.size(), false);
  for (const ie::ExtractedFact& f : extracted) {
    int64_t time = 0;
    if (!ParseInt64(f.value, &time)) {
      ++score.false_positives;
      continue;
    }
    bool hit = false;
    for (size_t i = 0; i < truth.size(); ++i) {
      if (matched[i]) continue;
      const EventTruth& t = truth[i];
      if (t.room != f.subject || t.event != f.attribute) continue;
      if (static_cast<uint32_t>(std::abs(
              time - static_cast<int64_t>(t.time))) > tolerance) {
        continue;
      }
      matched[i] = true;
      hit = true;
      break;
    }
    if (hit) {
      ++score.true_positives;
    } else {
      ++score.false_positives;
    }
  }
  for (bool m : matched) {
    if (!m) ++score.false_negatives;
  }
  return score;
}

}  // namespace structura::sensors
