#ifndef STRUCTURA_SENSORS_SENSOR_EVENTS_H_
#define STRUCTURA_SENSORS_SENSOR_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "ie/fact.h"

namespace structura::sensors {

/// Section 6 of the paper: the structured approach generalizes — "sensor
/// data from which we want to infer real-world events (e.g., someone has
/// entered the room)". This module is that generalization: raw readings
/// in, attribute-value event facts out, flowing into the same belief /
/// provenance / HI machinery as text extraction.

/// One raw reading from a sensor.
struct Reading {
  uint32_t time = 0;       // discrete ticks
  std::string sensor;      // e.g. "door_12", "motion_3"
  double value = 0;        // sensor-specific magnitude
};

/// A stream of readings from one deployment.
struct SensorTrace {
  std::vector<Reading> readings;
};

/// Ground truth for evaluation: the events the simulator planted.
struct EventTruth {
  uint32_t time = 0;
  std::string room;
  std::string event;  // "entered", "left"
};

struct TraceOptions {
  size_t rooms = 4;
  size_t events_per_room = 10;
  uint32_t duration = 2000;
  double noise_stddev = 0.08;
  /// Probability of a spurious sensor blip (no underlying event).
  double glitch_rate = 0.01;
  uint64_t seed = 42;
};

/// Simulates room-entry/exit events observed through noisy door and
/// motion sensors: an entry fires door_<room> (~1.0) followed by rising
/// motion_<room> activity; an exit fires door then falling motion.
void GenerateTrace(const TraceOptions& options, SensorTrace* trace,
                   std::vector<EventTruth>* truth);

/// Event extractor: a windowed rule ("door spike then sustained motion
/// change") producing event facts shaped exactly like text-extracted
/// facts — subject = room, attribute = "entered"/"left", value = time.
/// Confidence reflects how cleanly the window matched.
class EventExtractor {
 public:
  struct Options {
    double door_threshold = 0.6;
    uint32_t motion_window = 5;   // ticks after the door spike
    double motion_delta = 0.25;   // required activity change
  };

  EventExtractor() : EventExtractor(Options()) {}
  explicit EventExtractor(Options options) : options_(options) {}

  /// Extracts event facts from a trace. Best-effort, like every
  /// extractor in the system.
  std::vector<ie::ExtractedFact> Extract(const SensorTrace& trace) const;

 private:
  Options options_;
};

/// Scores extracted events against truth: an extraction is correct when
/// an identical (room, event) occurs in truth within `tolerance` ticks.
struct EventScore {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision() const {
    size_t d = true_positives + false_positives;
    return d == 0 ? 0 : static_cast<double>(true_positives) / d;
  }
  double recall() const {
    size_t d = true_positives + false_negatives;
    return d == 0 ? 0 : static_cast<double>(true_positives) / d;
  }
  double f1() const {
    double p = precision(), r = recall();
    return p + r == 0 ? 0 : 2 * p * r / (p + r);
  }
};

EventScore ScoreEvents(const std::vector<ie::ExtractedFact>& extracted,
                       const std::vector<EventTruth>& truth,
                       uint32_t tolerance = 3);

}  // namespace structura::sensors

#endif  // STRUCTURA_SENSORS_SENSOR_EVENTS_H_
