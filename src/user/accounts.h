#ifndef STRUCTURA_USER_ACCOUNTS_H_
#define STRUCTURA_USER_ACCOUNTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace structura::user {

/// User roles from the DGE model: sophisticated developers write SDL and
/// structured queries; ordinary users search, browse, and give feedback.
enum class Role : uint8_t { kOrdinary, kDeveloper };

struct UserInfo {
  std::string name;
  Role role = Role::kOrdinary;
  /// Incentive points earned for feedback (Section 4, user layer:
  /// "manage incentive schemes for soliciting user feedback").
  int64_t points = 0;
  /// Smoothed estimate of answer quality in [0, 1], driven by agreement
  /// with consensus; weights this user's votes.
  double reputation = 0.5;
  size_t feedback_count = 0;
};

/// Registry + authentication + reputation + incentives. Passwords are
/// stored salted-and-hashed (FNV — a stand-in, not cryptographic; the
/// layer's role in the blueprint is structural). Sessions are opaque
/// random tokens.
class UserDirectory {
 public:
  explicit UserDirectory(uint64_t seed = 42) : rng_(seed) {}

  Status Register(const std::string& name, const std::string& password,
                  Role role);

  /// Returns a session token on success.
  Result<std::string> Login(const std::string& name,
                            const std::string& password);
  Status Logout(const std::string& token);

  /// Resolves a session token to the logged-in user name.
  Result<std::string> Authenticate(const std::string& token) const;

  Result<UserInfo> GetUser(const std::string& name) const;

  /// Updates reputation from one consensus round: exponential moving
  /// average toward 1 (agreed) or 0 (disagreed); awards participation
  /// points plus an agreement bonus.
  Status RecordFeedback(const std::string& name, bool agreed_with_consensus);

  /// Current reputations as vote weights for hi::WeightedVote.
  std::map<std::string, double> ReputationWeights() const;

  /// Users sorted by points, descending — the incentive leaderboard.
  std::vector<UserInfo> Leaderboard() const;

  size_t NumUsers() const { return users_.size(); }

 private:
  struct Credential {
    uint64_t salt = 0;
    uint64_t password_hash = 0;
  };

  std::map<std::string, UserInfo> users_;
  std::map<std::string, Credential> credentials_;
  std::map<std::string, std::string> sessions_;  // token -> user
  Rng rng_;
};

}  // namespace structura::user

#endif  // STRUCTURA_USER_ACCOUNTS_H_
