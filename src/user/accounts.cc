#include "user/accounts.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace structura::user {

Status UserDirectory::Register(const std::string& name,
                               const std::string& password, Role role) {
  if (name.empty()) return Status::InvalidArgument("empty user name");
  if (users_.count(name) > 0) {
    return Status::AlreadyExists("user " + name);
  }
  UserInfo info;
  info.name = name;
  info.role = role;
  users_[name] = std::move(info);
  Credential cred;
  cred.salt = rng_.Next();
  cred.password_hash = Fnv1a64(password, cred.salt);
  credentials_[name] = cred;
  return Status::OK();
}

Result<std::string> UserDirectory::Login(const std::string& name,
                                         const std::string& password) {
  auto it = credentials_.find(name);
  if (it == credentials_.end()) {
    return Status::NotFound("unknown user " + name);
  }
  if (Fnv1a64(password, it->second.salt) != it->second.password_hash) {
    return Status::InvalidArgument("bad password");
  }
  std::string token =
      StrFormat("s%016llx%016llx",
                static_cast<unsigned long long>(rng_.Next()),
                static_cast<unsigned long long>(rng_.Next()));
  sessions_[token] = name;
  return token;
}

Status UserDirectory::Logout(const std::string& token) {
  return sessions_.erase(token) > 0
             ? Status::OK()
             : Status::NotFound("no such session");
}

Result<std::string> UserDirectory::Authenticate(
    const std::string& token) const {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  return it->second;
}

Result<UserInfo> UserDirectory::GetUser(const std::string& name) const {
  auto it = users_.find(name);
  if (it == users_.end()) return Status::NotFound("unknown user " + name);
  return it->second;
}

Status UserDirectory::RecordFeedback(const std::string& name,
                                     bool agreed_with_consensus) {
  auto it = users_.find(name);
  if (it == users_.end()) return Status::NotFound("unknown user " + name);
  UserInfo& u = it->second;
  constexpr double kAlpha = 0.15;  // EMA step
  u.reputation =
      (1 - kAlpha) * u.reputation + kAlpha * (agreed_with_consensus ? 1 : 0);
  u.feedback_count += 1;
  u.points += 1 + (agreed_with_consensus ? 2 : 0);
  return Status::OK();
}

std::map<std::string, double> UserDirectory::ReputationWeights() const {
  std::map<std::string, double> weights;
  for (const auto& [name, info] : users_) {
    weights[name] = info.reputation;
  }
  return weights;
}

std::vector<UserInfo> UserDirectory::Leaderboard() const {
  std::vector<UserInfo> out;
  out.reserve(users_.size());
  for (const auto& [name, info] : users_) out.push_back(info);
  std::sort(out.begin(), out.end(), [](const UserInfo& a, const UserInfo& b) {
    if (a.points != b.points) return a.points > b.points;
    return a.name < b.name;
  });
  return out;
}

}  // namespace structura::user
