#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace structura::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size(), n = b.size();
  if (m == 0) return n;
  std::vector<size_t> row(m + 1);
  for (size_t i = 0; i <= m; ++i) row[i] = i;
  for (size_t j = 1; j <= n; ++j) {
    size_t prev = row[0];
    row[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      size_t cur = row[i];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev + cost});
      prev = cur;
    }
  }
  return row[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size(), lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;
  const size_t window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_match(la, false), b_match(lb, false);
  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_match[j] || a[i] != b[j]) continue;
      a_match[i] = b_match[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t t = 0, k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[k]) ++k;
    if (a[i] != b[k]) ++t;
    ++k;
  }
  double m = static_cast<double>(matches);
  return (m / la + m / lb + (m - t / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const std::string& s : sa) {
    if (sb.count(s)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  auto grams = [n](std::string_view s) {
    std::unordered_set<std::string> out;
    if (s.size() < n) {
      if (!s.empty()) out.emplace(s);
      return out;
    }
    for (size_t i = 0; i + n <= s.size(); ++i) {
      out.emplace(s.substr(i, n));
    }
    return out;
  };
  auto ga = grams(a), gb = grams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& g : ga) {
    if (gb.count(g)) ++inter;
  }
  size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

void TfIdfModel::AddDocument(const std::vector<std::string>& tokens) {
  std::unordered_set<std::string> uniq(tokens.begin(), tokens.end());
  for (const std::string& t : uniq) ++doc_freq_[t];
  ++num_docs_;
}

void TfIdfModel::Finalize() { finalized_ = true; }

double TfIdfModel::Idf(const std::string& term) const {
  auto it = doc_freq_.find(term);
  double df = it == doc_freq_.end() ? 0.0 : it->second;
  return std::log((static_cast<double>(num_docs_) + 1.0) / (df + 1.0)) +
         1.0;
}

double TfIdfModel::Cosine(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) const {
  std::unordered_map<std::string, double> va, vb;
  for (const std::string& t : a) va[t] += 1.0;
  for (const std::string& t : b) vb[t] += 1.0;
  double dot = 0, na = 0, nb = 0;
  for (auto& [t, tf] : va) {
    double w = tf * Idf(t);
    va[t] = w;
    na += w * w;
  }
  for (auto& [t, tf] : vb) {
    double w = tf * Idf(t);
    vb[t] = w;
    nb += w * w;
  }
  for (const auto& [t, w] : va) {
    auto it = vb.find(t);
    if (it != vb.end()) dot += w * it->second;
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace structura::text
