#include "text/tokenizer.h"

#include <cctype>

#include "common/strings.h"

namespace structura::text {
namespace {

bool IsWordChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c));
}

bool IsDigitChar(char c) {
  return std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

std::vector<Token> Tokenize(std::string_view source) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.span.begin = static_cast<uint32_t>(i);
    if (IsWordChar(c)) {
      size_t j = i + 1;
      while (j < n && (IsWordChar(source[j]) ||
                       (source[j] == '\'' && j + 1 < n &&
                        IsWordChar(source[j + 1])))) {
        ++j;
      }
      tok.span.end = static_cast<uint32_t>(j);
      tok.is_word = true;
      i = j;
    } else if (IsDigitChar(c) ||
               ((c == '-' || c == '+') && i + 1 < n &&
                IsDigitChar(source[i + 1]))) {
      size_t j = i + 1;
      bool seen_dot = false;
      while (j < n) {
        char d = source[j];
        if (IsDigitChar(d)) {
          ++j;
        } else if (d == ',' && j + 1 < n && IsDigitChar(source[j + 1])) {
          ++j;  // thousands separator
        } else if (d == '.' && !seen_dot && j + 1 < n &&
                   IsDigitChar(source[j + 1])) {
          seen_dot = true;
          ++j;
        } else {
          break;
        }
      }
      tok.span.end = static_cast<uint32_t>(j);
      tok.is_word = false;
      i = j;
    } else {
      tok.span.end = static_cast<uint32_t>(i + 1);
      tok.is_word = false;
      ++i;
    }
    out.push_back(tok);
  }
  return out;
}

std::vector<Span> SplitSentences(std::string_view source) {
  std::vector<Span> out;
  const size_t n = source.size();
  size_t start = 0;
  size_t i = 0;
  auto flush = [&](size_t end) {
    // Trim whitespace off the sentence boundaries.
    size_t b = start, e = end;
    while (b < e &&
           std::isspace(static_cast<unsigned char>(source[b]))) ++b;
    while (e > b &&
           std::isspace(static_cast<unsigned char>(source[e - 1]))) --e;
    if (e > b) {
      out.push_back(
          Span{static_cast<uint32_t>(b), static_cast<uint32_t>(e)});
    }
  };
  while (i < n) {
    char c = source[i];
    if (c == '.' || c == '!' || c == '?') {
      // Abbreviation heuristic: single letter before the period
      // ("U.S.", middle initials) does not end a sentence.
      bool abbrev = false;
      if (c == '.' && i >= 1 &&
          std::isupper(static_cast<unsigned char>(source[i - 1])) &&
          (i < 2 || !std::isalpha(static_cast<unsigned char>(source[i - 2])))) {
        abbrev = true;
      }
      // Look ahead: end of text, or whitespace then capital/digit.
      size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) ++j;
      bool boundary =
          !abbrev &&
          (j >= n || source[j] == '\n' ||
           std::isupper(static_cast<unsigned char>(source[j])) ||
           std::isdigit(static_cast<unsigned char>(source[j])));
      if (boundary && j > i + 1 + 0) {
        flush(i + 1);
        start = j;
        i = j;
        continue;
      }
      if (boundary && j >= n) {
        flush(i + 1);
        start = n;
        break;
      }
    } else if (c == '\n' && i + 1 < n && source[i + 1] == '\n') {
      flush(i);
      while (i < n && source[i] == '\n') ++i;
      start = i;
      continue;
    }
    ++i;
  }
  if (start < n) flush(n);
  return out;
}

std::vector<std::string> WordTokens(std::string_view source) {
  std::vector<std::string> out;
  for (const Token& t : Tokenize(source)) {
    if (!t.is_word) continue;
    std::string_view sv = source.substr(t.span.begin, t.span.length());
    out.push_back(ToLower(sv));
  }
  return out;
}

}  // namespace structura::text
