#ifndef STRUCTURA_TEXT_TOKENIZER_H_
#define STRUCTURA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/document.h"

namespace structura::text {

/// Splits `source` into word, number, and punctuation tokens. Words are
/// maximal [A-Za-z]+ runs (apostrophes kept inside, e.g. "don't"); numbers
/// are digit runs with optional decimal point and thousands separators
/// ("233,209" is one token). Whitespace never appears in tokens.
std::vector<Token> Tokenize(std::string_view source);

/// Splits `source` into sentence spans. A sentence ends at '.', '!' or '?'
/// followed by whitespace and an uppercase letter/digit, or at a blank line.
/// Abbreviation-like patterns ("U.S.", "Dr.") do not end sentences.
std::vector<Span> SplitSentences(std::string_view source);

/// Lowercased word tokens only — the unit used by the inverted index and
/// TF-IDF similarity.
std::vector<std::string> WordTokens(std::string_view source);

}  // namespace structura::text

#endif  // STRUCTURA_TEXT_TOKENIZER_H_
