#ifndef STRUCTURA_TEXT_WIKI_MARKUP_H_
#define STRUCTURA_TEXT_WIKI_MARKUP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "text/document.h"

namespace structura::text {

/// A parsed `{{Infobox <type> | key = value | ... }}` template. Entry order
/// is preserved; keys are trimmed and lowercased, values trimmed verbatim.
struct Infobox {
  std::string type;  // e.g. "city", "person"
  std::vector<std::pair<std::string, std::string>> entries;
  Span span;  // location of the whole template in the source text

  /// First value for `key`, or empty string when absent.
  std::string Get(std::string_view key) const;
  bool Has(std::string_view key) const;
};

/// A `[[Target|anchor]]` (or `[[Target]]`) internal link.
struct WikiLink {
  std::string target;
  std::string anchor;  // equals target when no pipe is present
  Span span;
};

/// Parses every infobox template in `source`. Malformed templates (no
/// closing braces) are skipped rather than reported — real crawls contain
/// broken markup and extraction is best-effort by design (Section 3.2).
std::vector<Infobox> ParseInfoboxes(std::string_view source);

/// Parses internal links, excluding `[[Category:...]]` tags.
std::vector<WikiLink> ParseLinks(std::string_view source);

/// Returns the names of `[[Category:...]]` tags in order of appearance.
std::vector<std::string> ParseCategories(std::string_view source);

/// Produces plain text: templates removed, links replaced by their anchor
/// text, heading markers (`==`), bold/italic quotes and category tags
/// stripped. The result is what keyword indexing and free-text extraction
/// operate on.
std::string StripMarkup(std::string_view source);

}  // namespace structura::text

#endif  // STRUCTURA_TEXT_WIKI_MARKUP_H_
