#ifndef STRUCTURA_TEXT_SIMILARITY_H_
#define STRUCTURA_TEXT_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace structura::text {

/// Classic edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); 1.0 for identical strings, in [0, 1].
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by common-prefix weight (p = 0.1, max 4).
/// The paper's entity-resolution examples ("David Smith" vs "D. Smith")
/// motivate a prefix-sensitive measure.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard overlap of the two token multiset supports (set semantics).
double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

/// Jaccard over character n-grams of the raw strings (default trigrams).
double NgramJaccard(std::string_view a, std::string_view b, size_t n = 3);

/// Corpus-level TF-IDF model. Build once from tokenized documents, then
/// compare any two token vectors by cosine similarity in the weighted
/// space. Unknown terms get IDF of log(N + 1).
class TfIdfModel {
 public:
  /// Accumulates document frequencies from one document's tokens.
  void AddDocument(const std::vector<std::string>& tokens);

  /// Must be called after all AddDocument calls and before Cosine.
  void Finalize();

  /// Cosine similarity of the TF-IDF vectors of `a` and `b`, in [0, 1].
  double Cosine(const std::vector<std::string>& a,
                const std::vector<std::string>& b) const;

  /// IDF weight of `term` under this corpus.
  double Idf(const std::string& term) const;

  size_t num_documents() const { return num_docs_; }

 private:
  std::unordered_map<std::string, uint32_t> doc_freq_;
  size_t num_docs_ = 0;
  bool finalized_ = false;
};

}  // namespace structura::text

#endif  // STRUCTURA_TEXT_SIMILARITY_H_
