#include "text/wiki_markup.h"

#include <cctype>

#include "common/strings.h"

namespace structura::text {
namespace {

constexpr std::string_view kInfoboxOpen = "{{Infobox";
constexpr std::string_view kCategoryOpen = "[[Category:";

/// Finds the matching "}}" for the "{{" at `open`, honoring nesting.
/// Returns npos when unbalanced.
size_t FindTemplateClose(std::string_view s, size_t open) {
  int depth = 0;
  for (size_t i = open; i + 1 < s.size(); ++i) {
    if (s[i] == '{' && s[i + 1] == '{') {
      ++depth;
      ++i;
    } else if (s[i] == '}' && s[i + 1] == '}') {
      --depth;
      ++i;
      if (depth == 0) return i + 1;  // one past the closing brace pair
    }
  }
  return std::string_view::npos;
}

}  // namespace

std::string Infobox::Get(std::string_view key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return v;
  }
  return "";
}

bool Infobox::Has(std::string_view key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return true;
  }
  return false;
}

std::vector<Infobox> ParseInfoboxes(std::string_view source) {
  std::vector<Infobox> out;
  size_t pos = 0;
  while (true) {
    size_t open = source.find(kInfoboxOpen, pos);
    if (open == std::string_view::npos) break;
    size_t close = FindTemplateClose(source, open);
    if (close == std::string_view::npos) break;  // broken markup: stop here
    pos = close;

    Infobox box;
    box.span = Span{static_cast<uint32_t>(open),
                    static_cast<uint32_t>(close)};
    std::string_view body =
        source.substr(open + kInfoboxOpen.size(),
                      close - 2 - (open + kInfoboxOpen.size()));
    // First segment up to the first '|' is the infobox type.
    size_t bar = body.find('|');
    std::string_view type_sv =
        bar == std::string_view::npos ? body : body.substr(0, bar);
    box.type = ToLower(Trim(type_sv));
    if (bar != std::string_view::npos) {
      std::string_view rest = body.substr(bar + 1);
      // Split on '|' at top level (nested templates were rare enough to
      // ignore inside values for this corpus; values with '|' inside
      // nested braces are not split).
      size_t start = 0;
      int depth = 0;
      auto emit = [&](std::string_view piece) {
        size_t eq = piece.find('=');
        if (eq == std::string_view::npos) return;
        std::string key = ToLower(Trim(piece.substr(0, eq)));
        std::string value(Trim(piece.substr(eq + 1)));
        if (!key.empty()) box.entries.emplace_back(key, value);
      };
      for (size_t i = 0; i <= rest.size(); ++i) {
        if (i == rest.size() || (rest[i] == '|' && depth == 0)) {
          emit(rest.substr(start, i - start));
          start = i + 1;
        } else if (i + 1 < rest.size() && rest[i] == '{' &&
                   rest[i + 1] == '{') {
          ++depth;
          ++i;
        } else if (i + 1 < rest.size() && rest[i] == '}' &&
                   rest[i + 1] == '}') {
          --depth;
          ++i;
        }
      }
    }
    out.push_back(std::move(box));
  }
  return out;
}

std::vector<WikiLink> ParseLinks(std::string_view source) {
  std::vector<WikiLink> out;
  size_t pos = 0;
  while (true) {
    size_t open = source.find("[[", pos);
    if (open == std::string_view::npos) break;
    size_t close = source.find("]]", open + 2);
    if (close == std::string_view::npos) break;
    pos = close + 2;
    std::string_view body = source.substr(open + 2, close - open - 2);
    if (StartsWith(body, "Category:")) continue;
    WikiLink link;
    link.span = Span{static_cast<uint32_t>(open),
                     static_cast<uint32_t>(close + 2)};
    size_t bar = body.find('|');
    if (bar == std::string_view::npos) {
      link.target = std::string(Trim(body));
      link.anchor = link.target;
    } else {
      link.target = std::string(Trim(body.substr(0, bar)));
      link.anchor = std::string(Trim(body.substr(bar + 1)));
    }
    out.push_back(std::move(link));
  }
  return out;
}

std::vector<std::string> ParseCategories(std::string_view source) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t open = source.find(kCategoryOpen, pos);
    if (open == std::string_view::npos) break;
    size_t close = source.find("]]", open);
    if (close == std::string_view::npos) break;
    pos = close + 2;
    std::string_view name = source.substr(
        open + kCategoryOpen.size(), close - open - kCategoryOpen.size());
    out.emplace_back(Trim(name));
  }
  return out;
}

std::string StripMarkup(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    // Templates: skip entirely.
    if (i + 1 < n && source[i] == '{' && source[i + 1] == '{') {
      size_t close = FindTemplateClose(source, i);
      if (close == std::string_view::npos) break;
      i = close;
      continue;
    }
    // Links: category tags vanish, others contribute their anchor.
    if (i + 1 < n && source[i] == '[' && source[i + 1] == '[') {
      size_t close = source.find("]]", i + 2);
      if (close == std::string_view::npos) {
        out += source[i++];
        continue;
      }
      std::string_view body = source.substr(i + 2, close - i - 2);
      if (!StartsWith(body, "Category:")) {
        size_t bar = body.find('|');
        out.append(bar == std::string_view::npos ? body
                                                 : body.substr(bar + 1));
      }
      i = close + 2;
      continue;
    }
    // Heading markers and quote runs.
    if (source[i] == '=' && (i == 0 || source[i - 1] == '\n' ||
                             source[i + 1] == '=' ||
                             (i + 1 < n && source[i + 1] == '\n'))) {
      // Consume '=' runs used as heading fences.
      size_t j = i;
      while (j < n && source[j] == '=') ++j;
      if (j - i >= 2) {
        i = j;
        continue;
      }
    }
    if (source[i] == '\'' && i + 1 < n && source[i + 1] == '\'') {
      size_t j = i;
      while (j < n && source[j] == '\'') ++j;
      i = j;
      continue;
    }
    out += source[i++];
  }
  return out;
}

}  // namespace structura::text
