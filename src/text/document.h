#ifndef STRUCTURA_TEXT_DOCUMENT_H_
#define STRUCTURA_TEXT_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace structura::text {

/// Identifies a document within a collection. Stable across versions of the
/// same logical page (a re-crawl of "Madison, Wisconsin" keeps its id).
using DocId = uint64_t;

/// Half-open character range [begin, end) into a document's raw text.
struct Span {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t length() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool Contains(const Span& other) const {
    return begin <= other.begin && other.end <= end;
  }
  bool Overlaps(const Span& other) const {
    return begin < other.end && other.begin < end;
  }
  friend bool operator==(const Span& a, const Span& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// A token produced by the tokenizer: the surface text plus its span in the
/// source document.
struct Token {
  std::string Text(const std::string& source) const {
    return source.substr(span.begin, span.length());
  }
  Span span;
  bool is_word = true;  // false for punctuation/number-only tokens
};

/// An unstructured document: wiki-style page with title, category tags and
/// raw markup text. Versions model daily re-crawls (Section 4, storage
/// layer discussion).
struct Document {
  DocId id = 0;
  std::string title;
  std::vector<std::string> categories;
  std::string text;      // raw wiki markup
  uint32_t version = 0;  // crawl/snapshot number
};

/// An in-memory set of documents; the unit the generation pipeline runs on.
struct DocumentCollection {
  std::vector<Document> docs;

  size_t size() const { return docs.size(); }
  const Document& operator[](size_t i) const { return docs[i]; }
};

}  // namespace structura::text

#endif  // STRUCTURA_TEXT_DOCUMENT_H_
