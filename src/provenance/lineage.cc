#include "provenance/lineage.h"

#include <functional>
#include <set>

namespace structura::provenance {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument: return "document";
    case NodeKind::kFact: return "fact";
    case NodeKind::kEntity: return "entity";
    case NodeKind::kBelief: return "belief";
    case NodeKind::kTuple: return "tuple";
    case NodeKind::kOperator: return "operator";
    case NodeKind::kUserFeedback: return "user_feedback";
  }
  return "?";
}

NodeId LineageGraph::AddNode(NodeKind kind, std::string label) {
  nodes_.push_back(Node{kind, std::move(label), {}});
  return nodes_.size();
}

Status LineageGraph::AddEdge(NodeId derived, NodeId source,
                             std::string relation) {
  if (!ValidNode(derived) || !ValidNode(source)) {
    return Status::InvalidArgument("unknown lineage node");
  }
  if (derived == source) {
    return Status::InvalidArgument("self-edge in lineage");
  }
  nodes_[derived - 1].sources.push_back(
      Edge{source, std::move(relation)});
  ++num_edges_;
  return Status::OK();
}

Result<std::string> LineageGraph::Explain(NodeId node,
                                          int max_depth) const {
  if (!ValidNode(node)) {
    return Status::InvalidArgument("unknown lineage node");
  }
  std::string out;
  // Iterative DFS with explicit depth; cycles are impossible if callers
  // only add derived->source edges for freshly created derived nodes,
  // but guard with a visited set anyway.
  std::set<NodeId> on_path;
  std::function<void(NodeId, int, const std::string&)> rec =
      [&](NodeId id, int depth, const std::string& relation) {
        const Node& n = At(id);
        out.append(static_cast<size_t>(depth) * 2, ' ');
        if (!relation.empty()) {
          out += "<- (" + relation + ") ";
        }
        out += NodeKindName(n.kind);
        out += ": ";
        out += n.label;
        out += '\n';
        if (depth >= max_depth || on_path.count(id) > 0) return;
        on_path.insert(id);
        for (const Edge& e : n.sources) {
          rec(e.source, depth + 1, e.relation);
        }
        on_path.erase(id);
      };
  rec(node, 0, "");
  return out;
}

Result<std::vector<NodeId>> LineageGraph::SourcesOf(NodeId node) const {
  if (!ValidNode(node)) {
    return Status::InvalidArgument("unknown lineage node");
  }
  std::vector<NodeId> out;
  for (const Edge& e : At(node).sources) out.push_back(e.source);
  return out;
}

Result<std::vector<NodeId>> LineageGraph::SupportingDocuments(
    NodeId node) const {
  if (!ValidNode(node)) {
    return Status::InvalidArgument("unknown lineage node");
  }
  std::set<NodeId> docs;
  std::set<NodeId> visited;
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) continue;
    const Node& n = At(id);
    if (n.kind == NodeKind::kDocument) docs.insert(id);
    for (const Edge& e : n.sources) stack.push_back(e.source);
  }
  return std::vector<NodeId>(docs.begin(), docs.end());
}

void LineageGraph::Bind(const std::string& external_key, NodeId node) {
  bindings_[external_key] = node;
}

Result<NodeId> LineageGraph::Lookup(const std::string& external_key) const {
  auto it = bindings_.find(external_key);
  if (it == bindings_.end()) {
    return Status::NotFound("no lineage binding for " + external_key);
  }
  return it->second;
}

}  // namespace structura::provenance
