#ifndef STRUCTURA_PROVENANCE_LINEAGE_H_
#define STRUCTURA_PROVENANCE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace structura::provenance {

using NodeId = uint64_t;

enum class NodeKind : uint8_t {
  kDocument,
  kFact,
  kEntity,       // resolved cluster
  kBelief,       // (subject, attribute) distribution
  kTuple,        // row in the final structured store
  kOperator,     // extractor / matcher / aggregator instance
  kUserFeedback, // one human answer
};

const char* NodeKindName(NodeKind kind);

/// Provenance DAG: every derived artifact points back at what produced it
/// ("Part V ... provides the provenance and explanation for the derived
/// structured data"). Edges go from derived node to its sources.
class LineageGraph {
 public:
  LineageGraph() = default;

  /// Creates a node. `label` is a short human-readable description
  /// ("doc:Madison", "fact#42 population=233,209").
  NodeId AddNode(NodeKind kind, std::string label);

  /// Records that `derived` was produced from `source` (optionally via a
  /// named relationship, default "derived-from").
  Status AddEdge(NodeId derived, NodeId source,
                 std::string relation = "derived-from");

  /// Multi-line, indented derivation tree for `node`, following source
  /// edges up to `max_depth`. The "explanation" surface of Part V.
  Result<std::string> Explain(NodeId node, int max_depth = 6) const;

  /// Direct sources of a node.
  Result<std::vector<NodeId>> SourcesOf(NodeId node) const;

  /// All transitive source documents of a node ("why is this tuple
  /// here?" reduced to "which pages support it?").
  Result<std::vector<NodeId>> SupportingDocuments(NodeId node) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// Convenience registry: map an external id (e.g. fact id) to a node.
  void Bind(const std::string& external_key, NodeId node);
  Result<NodeId> Lookup(const std::string& external_key) const;

 private:
  struct Edge {
    NodeId source;
    std::string relation;
  };
  struct Node {
    NodeKind kind;
    std::string label;
    std::vector<Edge> sources;
  };

  bool ValidNode(NodeId id) const { return id >= 1 && id <= nodes_.size(); }
  const Node& At(NodeId id) const { return nodes_[id - 1]; }

  std::vector<Node> nodes_;  // ids are 1-based indexes
  size_t num_edges_ = 0;
  std::unordered_map<std::string, NodeId> bindings_;
};

}  // namespace structura::provenance

#endif  // STRUCTURA_PROVENANCE_LINEAGE_H_
