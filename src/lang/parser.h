#ifndef STRUCTURA_LANG_PARSER_H_
#define STRUCTURA_LANG_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"

namespace structura::lang {

/// Parses an SDL program (';'-separated statements). Keywords are
/// case-insensitive; identifiers are [A-Za-z_][A-Za-z0-9_]*; strings are
/// double-quoted; '#' starts a comment to end of line.
Result<std::vector<Statement>> Parse(const std::string& program);

}  // namespace structura::lang

#endif  // STRUCTURA_LANG_PARSER_H_
