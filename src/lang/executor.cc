#include "lang/executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <set>

#include "common/failpoint.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "ii/resolution.h"
#include "ii/union_find.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::lang {
namespace {

/// Span name per plan node type (string literals: process-lifetime, as
/// the trace ring requires). Recursive ExecutePlan() calls nest, so a
/// trace of one query renders as its plan tree.
const char* PlanSpanName(PlanNode::Type t) {
  switch (t) {
    case PlanNode::Type::kScanDocs: return "query.eval.scan_docs";
    case PlanNode::Type::kExtract: return "query.eval.extract";
    case PlanNode::Type::kViewRef: return "query.eval.view_ref";
    case PlanNode::Type::kFilter: return "query.eval.filter";
    case PlanNode::Type::kProject: return "query.eval.project";
    case PlanNode::Type::kJoin: return "query.eval.join";
    case PlanNode::Type::kDistinct: return "query.eval.distinct";
    case PlanNode::Type::kAggregate: return "query.eval.aggregate";
    case PlanNode::Type::kResolve: return "query.eval.resolve";
    case PlanNode::Type::kOrderBy: return "query.eval.order_by";
    case PlanNode::Type::kLimit: return "query.eval.limit";
  }
  return "query.eval.unknown";
}

const std::vector<std::string>& ExtractionColumns() {
  static const std::vector<std::string>& cols =
      *new std::vector<std::string>{"doc",   "title",      "category",
                                    "subject", "attribute", "value",
                                    "confidence", "extractor"};
  return cols;
}

Result<query::Relation> ExecuteExtract(const PlanNode& plan,
                                       ExecutionContext* ctx) {
  if (ctx->docs == nullptr) {
    return Status::FailedPrecondition("no document collection bound");
  }
  if (plan.children.size() != 1 ||
      plan.children[0]->type != PlanNode::Type::kScanDocs) {
    return Status::Internal("Extract expects a ScanDocs child");
  }
  const std::string& category = plan.children[0]->category_filter;

  std::vector<const ie::Extractor*> ops;
  for (const std::string& name : plan.extractors) {
    auto it = ctx->extractors.find(name);
    if (it == ctx->extractors.end()) {
      return Status::NotFound("unknown extractor: " + name);
    }
    ops.push_back(it->second);
  }

  std::set<text::DocId> restriction(plan.children[0]->doc_restriction.begin(),
                                    plan.children[0]->doc_restriction.end());
  // Select the docs to extract from up front (cheap, serial); the
  // expensive extractor work then runs per-doc, morsel-parallel when
  // the context says so, with per-morsel row buffers merged in doc
  // order so output order matches the serial path exactly.
  std::vector<size_t> selected;
  for (size_t d = 0; d < ctx->docs->docs.size(); ++d) {
    const text::Document& doc = ctx->docs->docs[d];
    if (!restriction.empty() && restriction.count(doc.id) == 0) continue;
    if (!category.empty()) {
      bool match = false;
      for (const std::string& c : doc.categories) {
        if (c == category) match = true;
      }
      if (!match) continue;
    }
    selected.push_back(d);
  }

  // Fault/quarantine bookkeeping is shared across morsels; one local
  // mutex covers it. (ExecutionContext stays copyable — the lock lives
  // on this frame, not in the context.)
  std::mutex fault_mu;
  auto extract_doc = [&](const text::Document& doc,
                         std::vector<query::Row>* rows, size_t* runs) {
    std::string doc_category =
        doc.categories.empty() ? "" : doc.categories.front();
    for (size_t op_index = 0; op_index < ops.size(); ++op_index) {
      const std::string& op_name = plan.extractors[op_index];
      bool quarantined;
      {
        std::lock_guard<std::mutex> lock(fault_mu);
        quarantined = ctx->quarantined_extractors.count(op_name) > 0;
      }
      if (quarantined) continue;
      Status injected = MaybeFail("ie.extract");
      if (injected.ok()) injected = MaybeFail("ie.extract." + op_name);
      if (!injected.ok()) {
        // A failing extractor degrades the answer, never the program:
        // charge the fault, quarantine past the budget, move on. The
        // registry mirror of these counts is what the health model's
        // "ie" signal reads — it must never touch ctx directly (the
        // watchdog runs concurrently with this loop).
        static obs::Counter* fault_counter =
            obs::MetricsRegistry::Default().GetCounter("ie.extract.faults");
        static obs::Gauge* quarantined_gauge =
            obs::MetricsRegistry::Default().GetGauge(
                "ie.quarantined_extractors");
        fault_counter->Increment();
        std::lock_guard<std::mutex> lock(fault_mu);
        size_t faults = ++ctx->extractor_faults[op_name];
        if (faults >= ctx->extractor_error_budget &&
            ctx->quarantined_extractors.insert(op_name).second) {
          quarantined_gauge->Add(1);
        }
        continue;
      }
      const ie::Extractor* op = ops[op_index];
      ++*runs;
      obs::ChargeCost(obs::CostDim::kExtractorCalls, 1);
      for (const ie::ExtractedFact& fact : op->Extract(doc)) {
        if (plan.min_confidence >= 0 &&
            fact.confidence < plan.min_confidence) {
          continue;
        }
        query::Row row;
        row.push_back(query::Value::Int(static_cast<int64_t>(fact.doc)));
        row.push_back(query::Value::Str(doc.title));
        row.push_back(query::Value::Str(doc_category));
        row.push_back(query::Value::Str(fact.subject));
        row.push_back(query::Value::Str(fact.attribute));
        row.push_back(query::Value::Str(fact.value));
        row.push_back(query::Value::Double(fact.confidence));
        row.push_back(query::Value::Str(fact.extractor));
        rows->push_back(std::move(row));
      }
    }
  };

  query::Relation out(ExtractionColumns());
  if (!ctx->exec.Parallel() || selected.size() <= 1) {
    std::vector<query::Row> rows;
    for (size_t d : selected) {
      STRUCTURA_RETURN_IF_ERROR(ctx->interrupt.Check());
      ++ctx->docs_scanned;
      rows.clear();
      extract_doc(ctx->docs->docs[d], &rows, &ctx->extractor_runs);
      for (query::Row& row : rows) {
        STRUCTURA_RETURN_IF_ERROR(out.Append(std::move(row)));
      }
    }
    return out;
  }

  size_t md = std::max<size_t>(1, ctx->exec.morsel_docs);
  size_t morsels = (selected.size() + md - 1) / md;
  std::vector<std::vector<query::Row>> parts(morsels);
  std::vector<size_t> runs(morsels, 0);
  std::vector<Status> statuses(morsels);
  ParallelForOptions pf;
  pf.grain = ctx->exec.grain;
  pf.max_workers = ctx->exec.parallelism;
  ParallelFor(*ctx->exec.pool, morsels, pf, [&](size_t m) {
    Status s = ctx->interrupt.Check();
    if (!s.ok()) {
      statuses[m] = s;
      return;
    }
    size_t begin = m * md;
    size_t end = std::min(selected.size(), (m + 1) * md);
    for (size_t i = begin; i < end; ++i) {
      extract_doc(ctx->docs->docs[selected[i]], &parts[m], &runs[m]);
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  ctx->docs_scanned += selected.size();
  for (size_t m = 0; m < morsels; ++m) {
    ctx->extractor_runs += runs[m];
    for (query::Row& row : parts[m]) {
      STRUCTURA_RETURN_IF_ERROR(out.Append(std::move(row)));
    }
  }
  return out;
}

Result<query::Relation> ExecuteResolve(const PlanNode& plan,
                                       ExecutionContext* ctx,
                                       const query::Relation& input) {
  const ResolveAst& spec = plan.resolve;
  auto matcher_it = ctx->matchers.find(spec.matcher);
  if (matcher_it == ctx->matchers.end()) {
    return Status::NotFound("unknown matcher: " + spec.matcher);
  }
  int col = input.ColumnIndex(spec.column);
  if (col < 0) {
    return Status::InvalidArgument("no column " + spec.column +
                                   " in RESOLVE input");
  }

  // Distinct surfaces, in first-seen order.
  std::vector<ii::MentionRecord> mentions;
  std::map<std::string, size_t> surface_index;
  for (const query::Row& row : input.rows()) {
    const std::string s = row[static_cast<size_t>(col)].ToString();
    if (surface_index.count(s) > 0) continue;
    surface_index[s] = mentions.size();
    ii::MentionRecord m;
    m.id = mentions.size();
    m.surface = s;
    mentions.push_back(std::move(m));
  }

  ii::ResolutionOptions opts;
  opts.matcher = matcher_it->second;
  opts.threshold = spec.threshold;
  ii::ResolutionResult res = ii::ResolveEntities(mentions, opts);

  // Human review: re-check the least confident merges; a "no" vetoes the
  // pair and clustering is recomputed without it.
  if (spec.review_budget > 0 && !res.merged_pairs.empty()) {
    std::vector<ii::ScoredPair> pairs = res.merged_pairs;
    std::sort(pairs.begin(), pairs.end(),
              [](const ii::ScoredPair& a, const ii::ScoredPair& b) {
                return a.score < b.score;  // least confident first
              });
    std::set<std::pair<size_t, size_t>> vetoed;
    int budget = spec.review_budget;
    for (const ii::ScoredPair& p : pairs) {
      if (budget <= 0) break;
      --budget;
      ++ctx->review_questions;
      bool yes = true;
      if (ctx->review_fn) {
        hi::Task task = hi::MakeVerifyMatchTask(
            ctx->review_questions, mentions[p.a].surface,
            mentions[p.b].surface, p.score, /*ref=*/0);
        yes = ctx->review_fn(task);
      }
      if (!yes) vetoed.emplace(p.a, p.b);
    }
    if (!vetoed.empty()) {
      ii::UnionFind uf(mentions.size());
      for (const ii::ScoredPair& p : res.merged_pairs) {
        if (vetoed.count({p.a, p.b}) == 0) uf.Union(p.a, p.b);
      }
      for (size_t i = 0; i < mentions.size(); ++i) {
        res.cluster_of[i] = uf.Find(i);
      }
    }
  }

  // Canonical surface per cluster: the longest surface (most specific
  // variant, e.g. "David Smith" over "D. Smith"); ties lexicographic.
  std::map<size_t, std::string> canonical;
  for (size_t i = 0; i < mentions.size(); ++i) {
    size_t c = res.cluster_of[i];
    auto it = canonical.find(c);
    const std::string& s = mentions[i].surface;
    if (it == canonical.end() ||
        s.size() > it->second.size() ||
        (s.size() == it->second.size() && s < it->second)) {
      canonical[c] = s;
    }
  }

  std::vector<std::string> out_cols = input.columns();
  out_cols.push_back("entity");
  query::Relation out(out_cols);
  for (const query::Row& row : input.rows()) {
    const std::string s = row[static_cast<size_t>(col)].ToString();
    size_t cluster = res.cluster_of[surface_index[s]];
    query::Row extended = row;
    extended.push_back(query::Value::Str(canonical[cluster]));
    STRUCTURA_RETURN_IF_ERROR(out.Append(std::move(extended)));
  }
  return out;
}

/// Caching policy: only plans made of pure relational nodes are
/// cacheable. Extraction mutates quarantine/fault bookkeeping (its
/// results depend on state no epoch tracks) and RESOLVE can consult a
/// human reviewer — replaying either from a cache would change
/// semantics, so both are executed fresh every time.
bool PlanIsCacheable(const PlanNode& plan) {
  switch (plan.type) {
    case PlanNode::Type::kScanDocs:
    case PlanNode::Type::kExtract:
    case PlanNode::Type::kResolve:
      return false;
    default:
      break;
  }
  for (const PlanPtr& child : plan.children) {
    if (!PlanIsCacheable(*child)) return false;
  }
  return true;
}

}  // namespace

Result<query::Relation> ExecutePlan(const PlanNode& plan,
                                    ExecutionContext* ctx) {
  obs::ScopedSpan span(PlanSpanName(plan.type));
  static obs::Counter* nodes =
      obs::MetricsRegistry::Default().GetCounter("query.eval.nodes");
  nodes->Increment();
  switch (plan.type) {
    case PlanNode::Type::kScanDocs:
      return Status::Internal("ScanDocs cannot execute standalone");
    case PlanNode::Type::kExtract:
      return ExecuteExtract(plan, ctx);
    case PlanNode::Type::kViewRef: {
      auto it = ctx->views.find(plan.view);
      if (it == ctx->views.end()) {
        return Status::NotFound("unknown view: " + plan.view);
      }
      return it->second;
    }
    case PlanNode::Type::kFilter: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation in,
                                 ExecutePlan(*plan.children[0], ctx));
      return query::Filter(in, plan.conditions, ctx->interrupt, ctx->exec);
    }
    case PlanNode::Type::kProject: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation in,
                                 ExecutePlan(*plan.children[0], ctx));
      return query::Project(in, plan.columns, ctx->interrupt, ctx->exec);
    }
    case PlanNode::Type::kJoin: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation left,
                                 ExecutePlan(*plan.children[0], ctx));
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation right,
                                 ExecutePlan(*plan.children[1], ctx));
      return query::HashJoin(left, right, plan.join_left_col,
                             plan.join_right_col, "r_", ctx->interrupt,
                             ctx->exec);
    }
    case PlanNode::Type::kDistinct: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation in,
                                 ExecutePlan(*plan.children[0], ctx));
      return query::Distinct(in);
    }
    case PlanNode::Type::kAggregate: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation in,
                                 ExecutePlan(*plan.children[0], ctx));
      return query::Aggregate(in, plan.columns, plan.aggs, ctx->interrupt,
                              ctx->exec);
    }
    case PlanNode::Type::kResolve: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation in,
                                 ExecutePlan(*plan.children[0], ctx));
      return ExecuteResolve(plan, ctx, in);
    }
    case PlanNode::Type::kOrderBy: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation in,
                                 ExecutePlan(*plan.children[0], ctx));
      return query::OrderBy(in, plan.order_column, plan.descending);
    }
    case PlanNode::Type::kLimit: {
      STRUCTURA_ASSIGN_OR_RETURN(query::Relation in,
                                 ExecutePlan(*plan.children[0], ctx));
      return query::Limit(in, plan.limit);
    }
  }
  return Status::Internal("unknown plan node");
}

std::string PlanCost::ToString() const {
  return StrFormat("docs=%.0f extractor_cost=%.0f", docs_scanned,
                   extractor_cost);
}

PlanCost EstimatePlanCost(const PlanNode& plan,
                          const ExecutionContext& ctx) {
  PlanCost cost;
  if (plan.type == PlanNode::Type::kExtract && !plan.children.empty() &&
      plan.children[0]->type == PlanNode::Type::kScanDocs) {
    const PlanNode& scan = *plan.children[0];
    double docs = 0;
    if (ctx.docs != nullptr) {
      for (const text::Document& d : ctx.docs->docs) {
        if (!scan.doc_restriction.empty()) {
          bool in = false;
          for (text::DocId id : scan.doc_restriction) {
            if (id == d.id) in = true;
          }
          if (!in) continue;
        }
        if (!scan.category_filter.empty()) {
          bool match = false;
          for (const std::string& c : d.categories) {
            if (c == scan.category_filter) match = true;
          }
          if (!match) continue;
        }
        ++docs;
      }
    }
    double per_doc = 0;
    for (const std::string& name : plan.extractors) {
      auto it = ctx.extractors.find(name);
      per_doc += it == ctx.extractors.end() ? 1.0
                                            : it->second->CostPerDoc();
    }
    cost.docs_scanned = docs;
    cost.extractor_cost = docs * per_doc;
    return cost;
  }
  for (const PlanPtr& child : plan.children) {
    PlanCost sub = EstimatePlanCost(*child, ctx);
    cost.docs_scanned += sub.docs_scanned;
    cost.extractor_cost += sub.extractor_cost;
  }
  return cost;
}

Result<Interpreter::StatementResult> Interpreter::RunStatement(
    const Statement& stmt) {
  if (stmt.kind == Statement::Kind::kRefresh) {
    return RunRefresh(std::get<RefreshAst>(stmt.body));
  }
  if (stmt.kind == Statement::Kind::kMaterialize) {
    return RunMaterialize(std::get<MaterializeAst>(stmt.body));
  }
  STRUCTURA_ASSIGN_OR_RETURN(PlanPtr plan, BuildPlan(stmt));
  std::string naive_text = plan->ToString();
  OptimizerReport report;
  if (options_.optimize) {
    plan = Optimize(std::move(plan), ctx_->Catalog(), &report);
  }
  StatementResult result;
  if (stmt.explain) {
    result.text = "naive plan:\n" + naive_text;
    if (options_.optimize) {
      result.text += "optimized plan:\n" + plan->ToString();
      result.text += "rewrites: " + report.ToString() + "\n";
      // Re-derive the naive plan for a cost comparison.
      Result<PlanPtr> naive_plan = BuildPlan(stmt);
      if (naive_plan.ok()) {
        PlanCost before = EstimatePlanCost(**naive_plan, *ctx_);
        PlanCost after = EstimatePlanCost(*plan, *ctx_);
        if (before.extractor_cost > 0 || after.extractor_cost > 0) {
          result.text += "estimated cost: naive " + before.ToString() +
                         " -> optimized " + after.ToString() + "\n";
        }
      }
    }
    return result;
  }
  // Result caching for pure SELECTs: key by canonical plan fingerprint,
  // validated against the epoch snapshot of every view the plan reads.
  // The snapshot is taken BEFORE execution — if a writer bumps an input
  // mid-run, the entry is recorded at the pre-write epoch and the next
  // lookup discards it, so a stale hit is structurally impossible.
  bool use_cache = stmt.kind == Statement::Kind::kSelect &&
                   ctx_->cache != nullptr && PlanIsCacheable(*plan) &&
                   (!ctx_->cache_gate || ctx_->cache_gate());
  std::string fingerprint;
  query::EpochVector at;
  if (use_cache) {
    fingerprint = PlanFingerprint(*plan);
    at = ctx_->cache->epochs().Snapshot(CollectPlanInputs(*plan));
    if (std::optional<query::Relation> hit =
            ctx_->cache->Lookup(fingerprint)) {
      result.relation = std::move(*hit);
      result.has_relation = true;
      result.text = StrFormat("%zu rows", result.relation.size());
      return result;
    }
  }
  auto exec_start = std::chrono::steady_clock::now();
  STRUCTURA_ASSIGN_OR_RETURN(query::Relation rel,
                             ExecutePlan(*plan, ctx_));
  if (stmt.kind == Statement::Kind::kCreateView) {
    ctx_->views[stmt.view_name] = std::move(rel);
    // Remember EXTRACT definitions so REFRESH VIEW can re-run them
    // incrementally over changed pages.
    if (std::holds_alternative<ExtractAst>(stmt.body)) {
      ctx_->view_definitions[stmt.view_name] =
          std::get<ExtractAst>(stmt.body);
    }
    // The view's contents changed: retire every cached result reading
    // it (O(1) — entries are validated lazily at lookup).
    if (ctx_->cache != nullptr) {
      ctx_->cache->epochs().Bump("view:" + stmt.view_name);
    }
    result.text = StrFormat("view %s created (%zu rows)",
                            stmt.view_name.c_str(),
                            ctx_->views[stmt.view_name].size());
  } else {
    if (use_cache) {
      obs::CostVector cost;
      cost.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] =
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - exec_start)
                  .count());
      cost.v[static_cast<size_t>(obs::CostDim::kRowsScanned)] = rel.size();
      ctx_->cache->Insert(fingerprint, std::move(at), rel, cost);
    }
    result.relation = std::move(rel);
    result.has_relation = true;
    result.text = StrFormat("%zu rows", result.relation.size());
  }
  return result;
}

Result<Interpreter::StatementResult> Interpreter::RunRefresh(
    const RefreshAst& refresh) {
  auto def_it = ctx_->view_definitions.find(refresh.view);
  if (def_it == ctx_->view_definitions.end()) {
    return Status::NotFound("view " + refresh.view +
                            " has no stored EXTRACT definition");
  }
  auto view_it = ctx_->views.find(refresh.view);
  if (view_it == ctx_->views.end()) {
    return Status::NotFound("unknown view: " + refresh.view);
  }
  StatementResult result;
  if (ctx_->dirty_docs.empty()) {
    result.text =
        StrFormat("view %s unchanged (no dirty documents)",
                  refresh.view.c_str());
    return result;
  }
  // Build the stored definition's plan, restricted to dirty documents.
  Statement fake;
  fake.kind = Statement::Kind::kCreateView;
  fake.view_name = refresh.view;
  fake.body = def_it->second;
  STRUCTURA_ASSIGN_OR_RETURN(PlanPtr plan, BuildPlan(fake));
  if (options_.optimize) {
    plan = Optimize(std::move(plan), ctx_->Catalog(), nullptr);
  }
  // Attach the restriction to the plan's ScanDocs leaf.
  PlanNode* node = plan.get();
  while (node->type != PlanNode::Type::kScanDocs) {
    if (node->children.empty()) {
      return Status::Internal("refresh plan lacks a ScanDocs leaf");
    }
    node = node->children[0].get();
  }
  node->doc_restriction.assign(ctx_->dirty_docs.begin(),
                               ctx_->dirty_docs.end());
  STRUCTURA_ASSIGN_OR_RETURN(query::Relation fresh,
                             ExecutePlan(*plan, ctx_));
  // Merge: keep rows of unchanged docs, replace rows of dirty docs.
  const query::Relation& old = view_it->second;
  int doc_col = old.ColumnIndex("doc");
  if (doc_col < 0) {
    return Status::Internal("extraction view lacks doc column");
  }
  query::Relation merged(old.columns());
  size_t replaced = 0;
  for (const query::Row& row : old.rows()) {
    const query::Value& v = row[static_cast<size_t>(doc_col)];
    text::DocId doc = v.type() == rdbms::ValueType::kInt
                          ? static_cast<text::DocId>(v.as_int())
                          : 0;
    if (ctx_->dirty_docs.count(doc) > 0) {
      ++replaced;
      continue;
    }
    STRUCTURA_RETURN_IF_ERROR(merged.Append(row));
  }
  for (const query::Row& row : fresh.rows()) {
    STRUCTURA_RETURN_IF_ERROR(merged.Append(row));
  }
  result.text = StrFormat(
      "view %s refreshed: %zu stale rows dropped, %zu fresh rows from "
      "%zu changed docs (%zu total)",
      refresh.view.c_str(), replaced, fresh.size(),
      ctx_->dirty_docs.size(), merged.size());
  ctx_->views[refresh.view] = std::move(merged);
  if (ctx_->cache != nullptr) {
    ctx_->cache->epochs().Bump("view:" + refresh.view);
  }
  return result;
}

Result<Interpreter::StatementResult> Interpreter::RunMaterialize(
    const MaterializeAst& mat) {
  if (ctx_->db == nullptr) {
    return Status::FailedPrecondition(
        "no database bound to the execution context");
  }
  auto view_it = ctx_->views.find(mat.view);
  if (view_it == ctx_->views.end()) {
    return Status::NotFound("unknown view: " + mat.view);
  }
  const query::Relation& rel = view_it->second;

  // Infer column types: int if every non-null value is an integer,
  // double if numeric, else string.
  rdbms::TableSchema schema;
  schema.table_name = mat.table;
  for (size_t c = 0; c < rel.columns().size(); ++c) {
    bool any = false, all_int = true, all_numeric = true;
    for (const query::Row& row : rel.rows()) {
      const query::Value& v = row[c];
      if (v.is_null()) continue;
      any = true;
      if (v.type() != rdbms::ValueType::kInt) all_int = false;
      if (v.type() != rdbms::ValueType::kInt &&
          v.type() != rdbms::ValueType::kDouble) {
        all_numeric = false;
      }
    }
    rdbms::Column col;
    col.name = rel.columns()[c];
    col.type = !any                ? rdbms::ValueType::kString
               : all_int           ? rdbms::ValueType::kInt
               : all_numeric       ? rdbms::ValueType::kDouble
                                   : rdbms::ValueType::kString;
    schema.columns.push_back(std::move(col));
  }
  if (ctx_->db->GetTable(mat.table) == nullptr) {
    STRUCTURA_RETURN_IF_ERROR(ctx_->db->CreateTable(schema).status());
  }
  std::unique_ptr<rdbms::Transaction> txn = ctx_->db->Begin();
  for (const query::Row& row : rel.rows()) {
    STRUCTURA_RETURN_IF_ERROR(txn->Insert(mat.table, row).status());
  }
  STRUCTURA_RETURN_IF_ERROR(txn->Commit());
  StatementResult result;
  result.text = StrFormat("materialized %zu rows from %s into table %s",
                          rel.size(), mat.view.c_str(),
                          mat.table.c_str());
  return result;
}

Result<std::vector<Interpreter::StatementResult>> Interpreter::Run(
    const std::string& program) {
  STRUCTURA_ASSIGN_OR_RETURN(std::vector<Statement> stmts, Parse(program));
  std::vector<StatementResult> out;
  for (const Statement& stmt : stmts) {
    STRUCTURA_ASSIGN_OR_RETURN(StatementResult r, RunStatement(stmt));
    out.push_back(std::move(r));
  }
  return out;
}

Result<query::Relation> Interpreter::Query(const std::string& program) {
  STRUCTURA_ASSIGN_OR_RETURN(std::vector<StatementResult> results,
                             Run(program));
  for (size_t i = results.size(); i-- > 0;) {
    if (results[i].has_relation) return std::move(results[i].relation);
  }
  return Status::InvalidArgument("program produced no relation");
}

}  // namespace structura::lang
