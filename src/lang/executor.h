#ifndef STRUCTURA_LANG_EXECUTOR_H_
#define STRUCTURA_LANG_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "hi/task.h"
#include "ie/extractor.h"
#include "ii/matcher.h"
#include "rdbms/database.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "lang/plan.h"
#include "query/relation.h"
#include "query/result_cache.h"
#include "text/document.h"

namespace structura::lang {

/// Everything a plan needs to run: the corpus, operator registries, the
/// view namespace, and an optional human-review channel.
struct ExecutionContext {
  const text::DocumentCollection* docs = nullptr;

  /// Extractor registry: SDL name -> operator (non-owning).
  std::map<std::string, const ie::Extractor*> extractors;
  /// SDL name -> LIKE pattern of attributes the extractor can produce;
  /// feeds the optimizer's pruning rule.
  std::map<std::string, std::string> extractor_attributes;

  /// Matcher registry for RESOLVE ENTITIES.
  std::map<std::string, const ii::SimilarityMatcher*> matchers;

  /// View namespace (materialized results of CREATE VIEW statements).
  std::map<std::string, query::Relation> views;

  /// Stored EXTRACT definitions, keyed by view name; REFRESH VIEW re-runs
  /// them over `dirty_docs` only.
  std::map<std::string, ExtractAst> view_definitions;

  /// Documents changed since the last crawl ingest (maintained by the
  /// System facade). REFRESH VIEW touches only these.
  std::set<text::DocId> dirty_docs;

  /// Final structured store for MATERIALIZE VIEW ... INTO (optional;
  /// non-owning).
  rdbms::Database* db = nullptr;

  /// Human-review channel for WITH HUMAN REVIEW: gets a yes/no task,
  /// returns true for "yes". Unset = reviews silently approve.
  std::function<bool(const hi::Task&)> review_fn;

  /// Morsel-execution knobs for scan-shaped operators and the EXTRACT
  /// doc loop. Defaults select the serial path; the System facade wires
  /// in its query pool when Options::query_parallelism > 1.
  query::ExecutorOptions exec;

  /// Cooperative interrupt polled between morsels and operators. The
  /// default never fires; callers that want deadline/cancellation
  /// semantics for a run set it beforehand.
  Interrupt interrupt;

  /// Epoch-versioned result cache (non-owning; null = caching off).
  /// SELECT results over pure relational plans are keyed by canonical
  /// plan fingerprint and validated against the epoch snapshot of the
  /// views they read; view (re)creation bumps "view:<name>" here.
  query::QueryResultCache* cache = nullptr;

  /// Gate consulted before any cache lookup or insert; unset = always
  /// allowed. The System wires degraded-mode policy (read-only
  /// brownout, critical health) and per-request no-cache bypass here.
  std::function<bool()> cache_gate;

  /// Execution counters (reset by the caller as needed).
  size_t docs_scanned = 0;
  size_t extractor_runs = 0;      // (doc, extractor) invocations
  size_t review_questions = 0;

  /// Graceful degradation (generation is incremental and best-effort):
  /// a (doc, extractor) run whose `ie.extract` failpoint fires counts as
  /// a fault against that operator; once an operator's faults reach
  /// `extractor_error_budget` it is quarantined — skipped for the rest
  /// of the session while the program continues with the remaining
  /// extractors. Counters survive across statements so the System can
  /// report the degradation.
  size_t extractor_error_budget = 3;
  std::map<std::string, size_t> extractor_faults;
  std::set<std::string> quarantined_extractors;

  OptimizerCatalog Catalog() const {
    OptimizerCatalog c;
    c.extractor_attributes = extractor_attributes;
    return c;
  }
};

/// Executes a logical plan, producing a relation. Extraction relations
/// have columns: doc, title, category, subject, attribute, value,
/// confidence, extractor.
Result<query::Relation> ExecutePlan(const PlanNode& plan,
                                    ExecutionContext* ctx);

/// Cost estimate for a plan: documents the scan will touch and the total
/// extractor work (sum of per-doc cost units across extractors). Used by
/// EXPLAIN to show what the optimizer bought.
struct PlanCost {
  double docs_scanned = 0;
  double extractor_cost = 0;  // cost units (Extractor::CostPerDoc sums)

  std::string ToString() const;
};
PlanCost EstimatePlanCost(const PlanNode& plan,
                          const ExecutionContext& ctx);

/// The statement-level driver: parses, (optionally) optimizes, executes,
/// and maintains the view namespace across statements.
class Interpreter {
 public:
  struct Options {
    bool optimize = true;
  };

  struct StatementResult {
    std::string text;            // EXPLAIN output or a short status line
    query::Relation relation;    // SELECT result (empty otherwise)
    bool has_relation = false;
  };

  Interpreter(ExecutionContext* ctx, Options options)
      : ctx_(ctx), options_(options) {}
  explicit Interpreter(ExecutionContext* ctx)
      : Interpreter(ctx, Options()) {}

  /// Runs a whole program; returns one result per statement.
  Result<std::vector<StatementResult>> Run(const std::string& program);

  /// Runs a program and returns the last statement's relation (the usual
  /// shape: several CREATE VIEWs then one SELECT).
  Result<query::Relation> Query(const std::string& program);

 private:
  Result<StatementResult> RunStatement(const Statement& stmt);
  Result<StatementResult> RunRefresh(const RefreshAst& refresh);
  Result<StatementResult> RunMaterialize(const MaterializeAst& mat);

  ExecutionContext* ctx_;
  Options options_;
};

}  // namespace structura::lang

#endif  // STRUCTURA_LANG_EXECUTOR_H_
