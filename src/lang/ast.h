#ifndef STRUCTURA_LANG_AST_H_
#define STRUCTURA_LANG_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "query/relation.h"

namespace structura::lang {

/// SDL — the declarative language of the processing layer (Figure 1,
/// Part I/II): programs combine IE (EXTRACT), II (RESOLVE ENTITIES), HI
/// (WITH HUMAN REVIEW), and relational exploitation (SELECT) over views.
///
///   CREATE VIEW raw AS
///     EXTRACT infobox, temp_sentence FROM pages
///     WHERE category = "city" WITH CONFIDENCE >= 0.5;
///   CREATE VIEW cities AS
///     RESOLVE ENTITIES FROM raw USING name THRESHOLD 0.8
///     WITH HUMAN REVIEW BUDGET 50;
///   SELECT subject, AVG(value) AS avg_temp FROM cities
///     WHERE attribute LIKE "temp_%" GROUP BY subject;

struct ConditionAst {
  std::string column;
  query::CompareOp op = query::CompareOp::kEq;
  query::Value literal;
};

struct SelectItemAst {
  bool is_aggregate = false;
  query::AggFn fn = query::AggFn::kCount;
  std::string column;  // plain column, or aggregate argument ("" = *)
  std::string alias;
};

struct SelectAst {
  bool star = false;
  std::vector<SelectItemAst> items;
  std::string from;
  /// Optional equi-join: FROM a JOIN b ON left_col = right_col.
  std::string join_view;       // empty = no join
  std::string join_left_col;
  std::string join_right_col;
  std::vector<ConditionAst> where;
  std::vector<std::string> group_by;
  std::string order_by;
  bool descending = false;
  size_t limit = 0;  // 0 = none
  bool distinct = false;
};

struct ExtractAst {
  std::vector<std::string> extractors;
  std::string source;  // "pages" (the document collection) for now
  std::vector<ConditionAst> where;
  double min_confidence = -1;  // <0 = unset
};

struct ResolveAst {
  std::string source;        // view name
  std::string column = "subject";
  std::string matcher;       // registry name ("name", "jaro_winkler", ...)
  double threshold = 0.8;
  int review_budget = 0;     // HI: max questions to ask
};

/// REFRESH VIEW v: re-run v's stored EXTRACT definition over only the
/// documents changed since the view was (re)materialized — the
/// incremental, best-effort generation mode of Section 3.2 applied to
/// re-crawls.
struct RefreshAst {
  std::string view;
};

/// MATERIALIZE VIEW v INTO t: copy a materialized view into a table of
/// the transactional final store (column types inferred), in one
/// transaction — the hand-off from the processing layer to the storage
/// layer's RDBMS (Figure 1).
struct MaterializeAst {
  std::string view;
  std::string table;
};

struct Statement {
  enum class Kind { kCreateView, kSelect, kRefresh, kMaterialize };
  Kind kind = Kind::kSelect;
  std::string view_name;  // for kCreateView
  std::variant<SelectAst, ExtractAst, ResolveAst, RefreshAst,
               MaterializeAst>
      body;
  /// EXPLAIN prefix: render the (optimized) plan instead of executing.
  bool explain = false;
};

}  // namespace structura::lang

#endif  // STRUCTURA_LANG_AST_H_
