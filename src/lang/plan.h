#ifndef STRUCTURA_LANG_PLAN_H_
#define STRUCTURA_LANG_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"
#include "query/relation.h"
#include "text/document.h"

namespace structura::lang {

/// Logical plan node. The planner builds a *naive* plan straight from the
/// AST (all filters sit above the extraction); the optimizer then pushes
/// predicates into the scan and prunes extractors — the measurable win of
/// having a declarative layer at all (Section 4: programs "can be parsed,
/// reformulated, optimized, then executed").
struct PlanNode {
  enum class Type {
    kScanDocs,   // leaf: the document collection, optional category filter
    kExtract,    // run extractors over child (kScanDocs)
    kViewRef,    // leaf: named view (a prior statement's result)
    kFilter,
    kProject,
    kJoin,       // hash equi-join of two children
    kAggregate,
    kResolve,
    kOrderBy,
    kLimit,
    kDistinct,
  };

  Type type = Type::kViewRef;
  std::vector<std::unique_ptr<PlanNode>> children;

  // kScanDocs:
  std::string category_filter;  // empty = all documents
  /// When non-empty, only these documents are scanned (REFRESH VIEW runs
  /// extraction over the changed pages only).
  std::vector<text::DocId> doc_restriction;

  // kExtract:
  std::vector<std::string> extractors;
  double min_confidence = -1;

  // kViewRef:
  std::string view;

  // kFilter:
  std::vector<query::Condition> conditions;

  // kProject (names) / kAggregate (group columns):
  std::vector<std::string> columns;
  std::vector<query::AggSpec> aggs;

  // kJoin:
  std::string join_left_col;
  std::string join_right_col;

  // kResolve:
  ResolveAst resolve;

  // kOrderBy / kLimit:
  std::string order_column;
  bool descending = false;
  size_t limit = 0;

  /// Indented plan rendering (EXPLAIN output).
  std::string ToString(int indent = 0) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Builds the naive logical plan for one statement body.
Result<PlanPtr> BuildPlan(const Statement& stmt);

/// Canonical fingerprint: a compact, unambiguous rendering of every
/// semantically meaningful field of the (optimized) plan, recursively.
/// Literals carry a type tag so `= 5` and `= "5"` never collide. Two
/// plans with equal fingerprints compute the same result over the same
/// input epochs — this is the result-cache key.
std::string PlanFingerprint(const PlanNode& plan);

/// Epoch names of every tracked input the plan reads ("view:<name>"
/// for view references, "docs" for document scans), sorted and
/// deduplicated — the invalidation footprint a cached result must be
/// validated against (see query::EpochMap).
std::vector<std::string> CollectPlanInputs(const PlanNode& plan);

}  // namespace structura::lang

#endif  // STRUCTURA_LANG_PLAN_H_
