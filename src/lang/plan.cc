#include "lang/plan.h"

#include <algorithm>

#include "common/strings.h"

namespace structura::lang {
namespace {

query::Condition ToCondition(const ConditionAst& ast) {
  query::Condition c;
  c.column = ast.column;
  c.op = ast.op;
  c.literal = ast.literal;
  return c;
}

PlanPtr MakeNode(PlanNode::Type type) {
  auto node = std::make_unique<PlanNode>();
  node->type = type;
  return node;
}

Result<PlanPtr> BuildExtractPlan(const ExtractAst& ast) {
  if (ast.source != "pages") {
    return Status::InvalidArgument(
        "EXTRACT source must be 'pages' (got " + ast.source + ")");
  }
  PlanPtr scan = MakeNode(PlanNode::Type::kScanDocs);
  PlanPtr extract = MakeNode(PlanNode::Type::kExtract);
  extract->extractors = ast.extractors;
  extract->min_confidence = ast.min_confidence;
  extract->children.push_back(std::move(scan));
  PlanPtr top = std::move(extract);
  if (!ast.where.empty()) {
    PlanPtr filter = MakeNode(PlanNode::Type::kFilter);
    for (const ConditionAst& c : ast.where) {
      filter->conditions.push_back(ToCondition(c));
    }
    filter->children.push_back(std::move(top));
    top = std::move(filter);
  }
  return top;
}

Result<PlanPtr> BuildResolvePlan(const ResolveAst& ast) {
  PlanPtr source = MakeNode(PlanNode::Type::kViewRef);
  source->view = ast.source;
  PlanPtr resolve = MakeNode(PlanNode::Type::kResolve);
  resolve->resolve = ast;
  resolve->children.push_back(std::move(source));
  return resolve;
}

Result<PlanPtr> BuildSelectPlan(const SelectAst& ast) {
  PlanPtr top = MakeNode(PlanNode::Type::kViewRef);
  top->view = ast.from;
  if (!ast.join_view.empty()) {
    PlanPtr right = MakeNode(PlanNode::Type::kViewRef);
    right->view = ast.join_view;
    PlanPtr join = MakeNode(PlanNode::Type::kJoin);
    join->join_left_col = ast.join_left_col;
    join->join_right_col = ast.join_right_col;
    join->children.push_back(std::move(top));
    join->children.push_back(std::move(right));
    top = std::move(join);
  }
  if (!ast.where.empty()) {
    PlanPtr filter = MakeNode(PlanNode::Type::kFilter);
    for (const ConditionAst& c : ast.where) {
      filter->conditions.push_back(ToCondition(c));
    }
    filter->children.push_back(std::move(top));
    top = std::move(filter);
  }
  bool any_agg = false;
  for (const SelectItemAst& item : ast.items) {
    if (item.is_aggregate) any_agg = true;
  }
  if (any_agg || !ast.group_by.empty()) {
    PlanPtr agg = MakeNode(PlanNode::Type::kAggregate);
    agg->columns = ast.group_by;
    for (const SelectItemAst& item : ast.items) {
      if (!item.is_aggregate) {
        // Non-aggregate items must be group columns.
        bool grouped = false;
        for (const std::string& g : ast.group_by) {
          if (g == item.column) grouped = true;
        }
        if (!grouped) {
          return Status::InvalidArgument(
              "column " + item.column +
              " must appear in GROUP BY or an aggregate");
        }
        continue;
      }
      query::AggSpec spec;
      spec.fn = item.fn;
      spec.column = item.column;
      spec.output_name = item.alias;
      agg->aggs.push_back(std::move(spec));
    }
    agg->children.push_back(std::move(top));
    top = std::move(agg);
  } else if (!ast.star && !ast.items.empty()) {
    PlanPtr project = MakeNode(PlanNode::Type::kProject);
    for (const SelectItemAst& item : ast.items) {
      project->columns.push_back(item.column);
    }
    project->children.push_back(std::move(top));
    top = std::move(project);
  }
  if (ast.distinct) {
    PlanPtr distinct = MakeNode(PlanNode::Type::kDistinct);
    distinct->children.push_back(std::move(top));
    top = std::move(distinct);
  }
  if (!ast.order_by.empty()) {
    PlanPtr order = MakeNode(PlanNode::Type::kOrderBy);
    order->order_column = ast.order_by;
    order->descending = ast.descending;
    order->children.push_back(std::move(top));
    top = std::move(order);
  }
  if (ast.limit > 0) {
    PlanPtr limit = MakeNode(PlanNode::Type::kLimit);
    limit->limit = ast.limit;
    limit->children.push_back(std::move(top));
    top = std::move(limit);
  }
  return top;
}

}  // namespace

Result<PlanPtr> BuildPlan(const Statement& stmt) {
  if (std::holds_alternative<ExtractAst>(stmt.body)) {
    return BuildExtractPlan(std::get<ExtractAst>(stmt.body));
  }
  if (std::holds_alternative<ResolveAst>(stmt.body)) {
    return BuildResolvePlan(std::get<ResolveAst>(stmt.body));
  }
  if (std::holds_alternative<RefreshAst>(stmt.body)) {
    // REFRESH needs the stored view definition; the interpreter builds
    // its plan (see Interpreter::RunStatement).
    return Status::Internal("REFRESH plans are built by the interpreter");
  }
  return BuildSelectPlan(std::get<SelectAst>(stmt.body));
}

namespace {

/// Type-tagged literal rendering so values of different types that
/// print alike stay distinct in a fingerprint.
void AppendLiteral(const rdbms::Value& v, std::string* out) {
  *out += std::to_string(static_cast<int>(v.type()));
  *out += ':';
  *out += v.ToString();
}

void AppendFingerprint(const PlanNode& n, std::string* out) {
  *out += std::to_string(static_cast<int>(n.type));
  *out += '(';
  switch (n.type) {
    case PlanNode::Type::kScanDocs:
      *out += n.category_filter;
      for (text::DocId id : n.doc_restriction) {
        *out += '#';
        *out += std::to_string(id);
      }
      break;
    case PlanNode::Type::kExtract:
      *out += Join(n.extractors, ",");
      *out += StrFormat("@%.17g", n.min_confidence);
      break;
    case PlanNode::Type::kViewRef:
      *out += n.view;
      break;
    case PlanNode::Type::kFilter:
      for (const query::Condition& c : n.conditions) {
        *out += c.column;
        *out += ' ';
        *out += std::to_string(static_cast<int>(c.op));
        *out += ' ';
        AppendLiteral(c.literal, out);
        *out += ';';
      }
      break;
    case PlanNode::Type::kProject:
      *out += Join(n.columns, ",");
      break;
    case PlanNode::Type::kAggregate:
      *out += Join(n.columns, ",");
      *out += '|';
      for (const query::AggSpec& a : n.aggs) {
        *out += std::to_string(static_cast<int>(a.fn));
        *out += ':';
        *out += a.column;
        *out += ':';
        *out += a.output_name;
        *out += ';';
      }
      break;
    case PlanNode::Type::kJoin:
      *out += n.join_left_col;
      *out += '=';
      *out += n.join_right_col;
      break;
    case PlanNode::Type::kResolve:
      *out += n.resolve.source;
      *out += ':';
      *out += n.resolve.column;
      *out += ':';
      *out += n.resolve.matcher;
      *out += StrFormat(":%.17g:%d", n.resolve.threshold,
                        n.resolve.review_budget);
      break;
    case PlanNode::Type::kOrderBy:
      *out += n.order_column;
      *out += n.descending ? "-" : "+";
      break;
    case PlanNode::Type::kLimit:
      *out += std::to_string(n.limit);
      break;
    case PlanNode::Type::kDistinct:
      break;
  }
  for (const PlanPtr& child : n.children) {
    AppendFingerprint(*child, out);
  }
  *out += ')';
}

void CollectInputs(const PlanNode& n, std::vector<std::string>* out) {
  if (n.type == PlanNode::Type::kViewRef) out->push_back("view:" + n.view);
  if (n.type == PlanNode::Type::kScanDocs) out->push_back("docs");
  for (const PlanPtr& child : n.children) CollectInputs(*child, out);
}

}  // namespace

std::string PlanFingerprint(const PlanNode& plan) {
  std::string out;
  AppendFingerprint(plan, &out);
  return out;
}

std::vector<std::string> CollectPlanInputs(const PlanNode& plan) {
  std::vector<std::string> out;
  CollectInputs(plan, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string line = pad;
  switch (type) {
    case Type::kScanDocs:
      line += "ScanDocs";
      if (!category_filter.empty()) {
        line += " [category = \"" + category_filter + "\"]";
      }
      if (!doc_restriction.empty()) {
        line += StrFormat(" [restricted to %zu changed docs]",
                          doc_restriction.size());
      }
      break;
    case Type::kExtract: {
      line += "Extract [" + Join(extractors, ", ") + "]";
      if (min_confidence >= 0) {
        line += StrFormat(" [confidence >= %.2f]", min_confidence);
      }
      break;
    }
    case Type::kViewRef:
      line += "View " + view;
      break;
    case Type::kFilter: {
      std::vector<std::string> conds;
      for (const query::Condition& c : conditions) {
        conds.push_back(c.ToString());
      }
      line += "Filter [" + Join(conds, " AND ") + "]";
      break;
    }
    case Type::kProject:
      line += "Project [" + Join(columns, ", ") + "]";
      break;
    case Type::kAggregate: {
      std::vector<std::string> parts;
      for (const query::AggSpec& a : aggs) {
        parts.push_back(StrFormat("%s(%s)", query::AggFnName(a.fn),
                                  a.column.empty() ? "*"
                                                   : a.column.c_str()));
      }
      line += "Aggregate [" + Join(parts, ", ") + "]";
      if (!columns.empty()) line += " group by [" + Join(columns, ", ") + "]";
      break;
    }
    case Type::kResolve:
      line += StrFormat("ResolveEntities [matcher=%s threshold=%.2f",
                        resolve.matcher.c_str(), resolve.threshold);
      if (resolve.review_budget > 0) {
        line += StrFormat(" review_budget=%d", resolve.review_budget);
      }
      line += "]";
      break;
    case Type::kOrderBy:
      line += "OrderBy " + order_column + (descending ? " DESC" : "");
      break;
    case Type::kJoin:
      line += "HashJoin [" + join_left_col + " = " + join_right_col + "]";
      break;
    case Type::kLimit:
      line += StrFormat("Limit %zu", limit);
      break;
    case Type::kDistinct:
      line += "Distinct";
      break;
  }
  line += '\n';
  for (const PlanPtr& child : children) {
    line += child->ToString(indent + 1);
  }
  return line;
}

}  // namespace structura::lang
