#include "lang/parser.h"

#include <cctype>

#include "common/strings.h"

namespace structura::lang {
namespace {

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;   // ident (lowercased copy in `lower`), symbol, etc.
  std::string lower;  // lowercased ident for keyword checks
  double number = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Tok>> Lex() {
    std::vector<Tok> out;
    size_t i = 0;
    const size_t n = src_.size();
    while (i < n) {
      char c = src_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (i < n && src_[i] != '\n') ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(src_[j])) ||
                         src_[j] == '_')) {
          ++j;
        }
        Tok t;
        t.kind = TokKind::kIdent;
        t.text = src_.substr(i, j - i);
        t.lower = ToLower(t.text);
        out.push_back(std::move(t));
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(src_[i + 1])))) {
        size_t j = i + 1;
        while (j < n && (std::isdigit(static_cast<unsigned char>(src_[j])) ||
                         src_[j] == '.')) {
          ++j;
        }
        Tok t;
        t.kind = TokKind::kNumber;
        t.text = src_.substr(i, j - i);
        if (!ParseDouble(t.text, &t.number)) {
          return Status::InvalidArgument("bad number: " + t.text);
        }
        out.push_back(std::move(t));
        i = j;
        continue;
      }
      if (c == '"') {
        size_t j = i + 1;
        std::string value;
        while (j < n && src_[j] != '"') {
          value += src_[j];
          ++j;
        }
        if (j >= n) return Status::InvalidArgument("unterminated string");
        Tok t;
        t.kind = TokKind::kString;
        t.text = std::move(value);
        out.push_back(std::move(t));
        i = j + 1;
        continue;
      }
      // Multi-char operators first.
      auto two = [&](const char* op) {
        return i + 1 < n && src_[i] == op[0] && src_[i + 1] == op[1];
      };
      Tok t;
      t.kind = TokKind::kSymbol;
      if (two("!=") || two(">=") || two("<=")) {
        t.text = src_.substr(i, 2);
        i += 2;
      } else {
        t.text = std::string(1, c);
        ++i;
      }
      out.push_back(std::move(t));
    }
    Tok end;
    end.kind = TokKind::kEnd;
    out.push_back(std::move(end));
    return out;
  }

 private:
  const std::string& src_;
};

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<std::vector<Statement>> ParseProgram() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (PeekSymbol(";")) {
        ++pos_;
        continue;
      }
      STRUCTURA_ASSIGN_OR_RETURN(Statement s, ParseStatement());
      out.push_back(std::move(s));
      if (!ConsumeSymbol(";")) {
        return Status::InvalidArgument("expected ';' after statement");
      }
    }
    return out;
  }

 private:
  bool AtEnd() const { return toks_[pos_].kind == TokKind::kEnd; }
  const Tok& Peek() const { return toks_[pos_]; }
  const Tok& Next() { return toks_[pos_++]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && Peek().lower == kw;
  }
  bool ConsumeKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool PeekSymbol(const char* sym) const {
    return Peek().kind == TokKind::kSymbol && Peek().text == sym;
  }
  bool ConsumeSymbol(const char* sym) {
    if (!PeekSymbol(sym)) return false;
    ++pos_;
    return true;
  }
  Status Expect(const char* what) {
    return Status::InvalidArgument(
        StrFormat("expected %s near \"%s\"", what, Peek().text.c_str()));
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokKind::kIdent) return Expect(what);
    return Next().text;
  }
  Result<double> ExpectNumber(const char* what) {
    if (Peek().kind != TokKind::kNumber) return Expect(what);
    return Next().number;
  }

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (ConsumeKeyword("explain")) stmt.explain = true;
    if (ConsumeKeyword("create")) {
      if (!ConsumeKeyword("view")) return Expect("VIEW");
      STRUCTURA_ASSIGN_OR_RETURN(stmt.view_name, ExpectIdent("view name"));
      if (!ConsumeKeyword("as")) return Expect("AS");
      stmt.kind = Statement::Kind::kCreateView;
      if (PeekKeyword("extract")) {
        STRUCTURA_ASSIGN_OR_RETURN(ExtractAst body, ParseExtract());
        stmt.body = std::move(body);
      } else if (PeekKeyword("resolve")) {
        STRUCTURA_ASSIGN_OR_RETURN(ResolveAst body, ParseResolve());
        stmt.body = std::move(body);
      } else if (PeekKeyword("select")) {
        STRUCTURA_ASSIGN_OR_RETURN(SelectAst body, ParseSelect());
        stmt.body = std::move(body);
      } else {
        return Expect("EXTRACT, RESOLVE, or SELECT");
      }
      return stmt;
    }
    if (PeekKeyword("select")) {
      stmt.kind = Statement::Kind::kSelect;
      STRUCTURA_ASSIGN_OR_RETURN(SelectAst body, ParseSelect());
      stmt.body = std::move(body);
      return stmt;
    }
    if (ConsumeKeyword("refresh")) {
      if (!ConsumeKeyword("view")) return Expect("VIEW");
      stmt.kind = Statement::Kind::kRefresh;
      RefreshAst refresh;
      STRUCTURA_ASSIGN_OR_RETURN(refresh.view, ExpectIdent("view name"));
      stmt.body = std::move(refresh);
      return stmt;
    }
    if (ConsumeKeyword("materialize")) {
      if (!ConsumeKeyword("view")) return Expect("VIEW");
      stmt.kind = Statement::Kind::kMaterialize;
      MaterializeAst mat;
      STRUCTURA_ASSIGN_OR_RETURN(mat.view, ExpectIdent("view name"));
      if (!ConsumeKeyword("into")) return Expect("INTO");
      STRUCTURA_ASSIGN_OR_RETURN(mat.table, ExpectIdent("table name"));
      stmt.body = std::move(mat);
      return stmt;
    }
    return Expect("CREATE, SELECT, REFRESH, or MATERIALIZE");
  }

  Result<ExtractAst> ParseExtract() {
    ExtractAst ast;
    if (!ConsumeKeyword("extract")) return Expect("EXTRACT");
    while (true) {
      STRUCTURA_ASSIGN_OR_RETURN(std::string name,
                                 ExpectIdent("extractor name"));
      ast.extractors.push_back(std::move(name));
      if (!ConsumeSymbol(",")) break;
    }
    if (!ConsumeKeyword("from")) return Expect("FROM");
    STRUCTURA_ASSIGN_OR_RETURN(ast.source, ExpectIdent("source"));
    if (ConsumeKeyword("where")) {
      STRUCTURA_ASSIGN_OR_RETURN(ast.where, ParseConditions());
    }
    if (ConsumeKeyword("with")) {
      if (!ConsumeKeyword("confidence")) return Expect("CONFIDENCE");
      if (!ConsumeSymbol(">=")) return Expect(">=");
      STRUCTURA_ASSIGN_OR_RETURN(ast.min_confidence,
                                 ExpectNumber("confidence"));
    }
    return ast;
  }

  Result<ResolveAst> ParseResolve() {
    ResolveAst ast;
    if (!ConsumeKeyword("resolve")) return Expect("RESOLVE");
    if (!ConsumeKeyword("entities")) return Expect("ENTITIES");
    if (!ConsumeKeyword("from")) return Expect("FROM");
    STRUCTURA_ASSIGN_OR_RETURN(ast.source, ExpectIdent("source view"));
    if (ConsumeKeyword("column")) {
      STRUCTURA_ASSIGN_OR_RETURN(ast.column, ExpectIdent("column"));
    }
    if (!ConsumeKeyword("using")) return Expect("USING");
    STRUCTURA_ASSIGN_OR_RETURN(ast.matcher, ExpectIdent("matcher"));
    if (!ConsumeKeyword("threshold")) return Expect("THRESHOLD");
    STRUCTURA_ASSIGN_OR_RETURN(ast.threshold, ExpectNumber("threshold"));
    if (ConsumeKeyword("with")) {
      if (!ConsumeKeyword("human")) return Expect("HUMAN");
      if (!ConsumeKeyword("review")) return Expect("REVIEW");
      if (!ConsumeKeyword("budget")) return Expect("BUDGET");
      STRUCTURA_ASSIGN_OR_RETURN(double budget, ExpectNumber("budget"));
      ast.review_budget = static_cast<int>(budget);
    }
    return ast;
  }

  Result<SelectAst> ParseSelect() {
    SelectAst ast;
    if (!ConsumeKeyword("select")) return Expect("SELECT");
    if (ConsumeKeyword("distinct")) ast.distinct = true;
    if (ConsumeSymbol("*")) {
      ast.star = true;
    } else {
      while (true) {
        STRUCTURA_ASSIGN_OR_RETURN(SelectItemAst item, ParseSelectItem());
        ast.items.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (!ConsumeKeyword("from")) return Expect("FROM");
    STRUCTURA_ASSIGN_OR_RETURN(ast.from, ExpectIdent("source view"));
    if (ConsumeKeyword("join")) {
      STRUCTURA_ASSIGN_OR_RETURN(ast.join_view, ExpectIdent("join view"));
      if (!ConsumeKeyword("on")) return Expect("ON");
      STRUCTURA_ASSIGN_OR_RETURN(ast.join_left_col,
                                 ExpectIdent("left join column"));
      if (!ConsumeSymbol("=")) return Expect("=");
      STRUCTURA_ASSIGN_OR_RETURN(ast.join_right_col,
                                 ExpectIdent("right join column"));
    }
    if (ConsumeKeyword("where")) {
      STRUCTURA_ASSIGN_OR_RETURN(ast.where, ParseConditions());
    }
    if (ConsumeKeyword("group")) {
      if (!ConsumeKeyword("by")) return Expect("BY");
      while (true) {
        STRUCTURA_ASSIGN_OR_RETURN(std::string col,
                                   ExpectIdent("group column"));
        ast.group_by.push_back(std::move(col));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Expect("BY");
      STRUCTURA_ASSIGN_OR_RETURN(ast.order_by, ExpectIdent("order column"));
      if (ConsumeKeyword("desc")) ast.descending = true;
      else ConsumeKeyword("asc");
    }
    if (ConsumeKeyword("limit")) {
      STRUCTURA_ASSIGN_OR_RETURN(double n, ExpectNumber("limit"));
      ast.limit = static_cast<size_t>(n);
    }
    return ast;
  }

  Result<SelectItemAst> ParseSelectItem() {
    SelectItemAst item;
    if (Peek().kind != TokKind::kIdent) return Expect("column");
    static const std::pair<const char*, query::AggFn> kAggs[] = {
        {"count", query::AggFn::kCount}, {"sum", query::AggFn::kSum},
        {"avg", query::AggFn::kAvg},     {"min", query::AggFn::kMin},
        {"max", query::AggFn::kMax}};
    for (const auto& [kw, fn] : kAggs) {
      if (Peek().lower == kw && toks_[pos_ + 1].kind == TokKind::kSymbol &&
          toks_[pos_ + 1].text == "(") {
        ++pos_;  // agg name
        ++pos_;  // '('
        item.is_aggregate = true;
        item.fn = fn;
        if (ConsumeSymbol("*")) {
          item.column.clear();
        } else {
          STRUCTURA_ASSIGN_OR_RETURN(item.column,
                                     ExpectIdent("aggregate column"));
        }
        if (!ConsumeSymbol(")")) return Expect(")");
        if (ConsumeKeyword("as")) {
          STRUCTURA_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
        }
        return item;
      }
    }
    STRUCTURA_ASSIGN_OR_RETURN(item.column, ExpectIdent("column"));
    if (ConsumeKeyword("as")) {
      STRUCTURA_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
    }
    return item;
  }

  Result<std::vector<ConditionAst>> ParseConditions() {
    std::vector<ConditionAst> out;
    while (true) {
      ConditionAst cond;
      STRUCTURA_ASSIGN_OR_RETURN(cond.column, ExpectIdent("column"));
      if (ConsumeSymbol("=")) {
        cond.op = query::CompareOp::kEq;
      } else if (ConsumeSymbol("!=")) {
        cond.op = query::CompareOp::kNe;
      } else if (ConsumeSymbol("<=")) {
        cond.op = query::CompareOp::kLe;
      } else if (ConsumeSymbol(">=")) {
        cond.op = query::CompareOp::kGe;
      } else if (ConsumeSymbol("<")) {
        cond.op = query::CompareOp::kLt;
      } else if (ConsumeSymbol(">")) {
        cond.op = query::CompareOp::kGt;
      } else if (ConsumeKeyword("like")) {
        cond.op = query::CompareOp::kLike;
      } else if (ConsumeKeyword("contains")) {
        cond.op = query::CompareOp::kContains;
      } else {
        return Expect("comparison operator");
      }
      if (Peek().kind == TokKind::kNumber) {
        double v = Next().number;
        if (v == static_cast<int64_t>(v)) {
          cond.literal = query::Value::Int(static_cast<int64_t>(v));
        } else {
          cond.literal = query::Value::Double(v);
        }
      } else if (Peek().kind == TokKind::kString) {
        cond.literal = query::Value::Str(Next().text);
      } else {
        return Expect("literal");
      }
      out.push_back(std::move(cond));
      if (!ConsumeKeyword("and")) break;
    }
    return out;
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> Parse(const std::string& program) {
  Lexer lexer(program);
  STRUCTURA_ASSIGN_OR_RETURN(std::vector<Tok> toks, lexer.Lex());
  Parser parser(std::move(toks));
  return parser.ParseProgram();
}

}  // namespace structura::lang
