#include "lang/optimizer.h"

#include <algorithm>

#include "common/strings.h"

namespace structura::lang {

std::string OptimizerReport::ToString() const {
  return StrFormat(
      "pushed_category=%d pushed_confidence=%d pruned_extractors=%d "
      "merged_filters=%d",
      pushed_category ? 1 : 0, pushed_confidence ? 1 : 0,
      pruned_extractors, merged_filters);
}

namespace {

/// Literal prefix of a LIKE pattern (text before the first '%').
std::string LikePrefix(const std::string& pattern) {
  size_t pct = pattern.find('%');
  return pct == std::string::npos ? pattern : pattern.substr(0, pct);
}

bool IsPrefixOf(const std::string& a, const std::string& b) {
  return b.size() >= a.size() && b.compare(0, a.size(), a) == 0;
}

}  // namespace

bool PatternMayMatch(const std::string& produce_pattern,
                     const query::Condition& condition) {
  if (condition.column != "attribute") return true;
  const std::string lit = condition.literal.ToString();
  bool exact = produce_pattern.find('%') == std::string::npos;
  const std::string prefix = LikePrefix(produce_pattern);

  if (exact) {
    // The extractor produces exactly one attribute: evaluate directly.
    return condition.Eval(query::Value::Str(produce_pattern));
  }
  switch (condition.op) {
    case query::CompareOp::kEq:
      // s == lit and s starts with prefix.
      return IsPrefixOf(prefix, lit);
    case query::CompareOp::kLike: {
      // Some s matching both patterns requires compatible literal
      // prefixes (one a prefix of the other). Conservative beyond that.
      const std::string other = LikePrefix(lit);
      return IsPrefixOf(prefix, other) || IsPrefixOf(other, prefix);
    }
    case query::CompareOp::kGe:
    case query::CompareOp::kGt: {
      // Strings with this prefix form the interval
      // [prefix, prefix+infinity); they intersect [lit, inf) unless every
      // prefixed string is below lit, which can only happen when lit has
      // the prefix... conservative: prune only when prefix+"\xff..." < lit,
      // approximated by: lit does not share the prefix and prefix < lit
      // and lit is not an extension -> compare against prefix upper bound.
      std::string upper = prefix;
      upper += '\x7f';  // above any printable continuation
      return !(upper < lit);
    }
    case query::CompareOp::kLe:
    case query::CompareOp::kLt:
      // Intersects (-inf, lit] unless prefix itself already exceeds lit.
      return !(lit < prefix);
    case query::CompareOp::kNe:
    case query::CompareOp::kContains:
      return true;
  }
  return true;
}

PlanPtr Optimize(PlanPtr plan, const OptimizerCatalog& catalog,
                 OptimizerReport* report) {
  OptimizerReport local;
  OptimizerReport* rep = report != nullptr ? report : &local;

  // Recurse into children first.
  for (PlanPtr& child : plan->children) {
    child = Optimize(std::move(child), catalog, rep);
  }

  // Rule 1: merge Filter(Filter(x)).
  if (plan->type == PlanNode::Type::kFilter &&
      plan->children.size() == 1 &&
      plan->children[0]->type == PlanNode::Type::kFilter) {
    PlanPtr inner = std::move(plan->children[0]);
    plan->conditions.insert(plan->conditions.end(),
                            inner->conditions.begin(),
                            inner->conditions.end());
    plan->children.clear();
    plan->children.push_back(std::move(inner->children[0]));
    ++rep->merged_filters;
  }

  // Rules 2-4 operate on Filter directly above Extract.
  if (plan->type == PlanNode::Type::kFilter &&
      plan->children.size() == 1 &&
      plan->children[0]->type == PlanNode::Type::kExtract) {
    PlanNode* extract = plan->children[0].get();
    PlanNode* scan = extract->children.empty()
                         ? nullptr
                         : extract->children[0].get();
    std::vector<query::Condition> remaining;
    std::vector<query::Condition> attribute_conditions;
    for (query::Condition& cond : plan->conditions) {
      // Rule 2: category pushdown into the document scan.
      if (cond.column == "category" && cond.op == query::CompareOp::kEq &&
          scan != nullptr && scan->type == PlanNode::Type::kScanDocs &&
          scan->category_filter.empty()) {
        scan->category_filter = cond.literal.ToString();
        rep->pushed_category = true;
        continue;
      }
      // Rule 3: confidence pushdown into Extract.
      if (cond.column == "confidence" &&
          cond.op == query::CompareOp::kGe) {
        double v = 0;
        if (cond.literal.ToNumber(&v)) {
          extract->min_confidence = std::max(extract->min_confidence, v);
          rep->pushed_confidence = true;
          continue;
        }
      }
      if (cond.column == "attribute") {
        attribute_conditions.push_back(cond);
      }
      remaining.push_back(std::move(cond));
    }
    plan->conditions = std::move(remaining);

    // Rule 4: prune extractors that cannot satisfy the attribute
    // predicates. Extractors missing from the catalog are kept.
    if (!attribute_conditions.empty()) {
      std::vector<std::string> kept;
      for (const std::string& name : extract->extractors) {
        auto it = catalog.extractor_attributes.find(name);
        bool may_match = true;
        if (it != catalog.extractor_attributes.end()) {
          for (const query::Condition& cond : attribute_conditions) {
            if (!PatternMayMatch(it->second, cond)) {
              may_match = false;
              break;
            }
          }
        }
        if (may_match) {
          kept.push_back(name);
        } else {
          ++rep->pruned_extractors;
        }
      }
      extract->extractors = std::move(kept);
    }

    // Drop the Filter node entirely when nothing remains.
    if (plan->conditions.empty()) {
      PlanPtr child = std::move(plan->children[0]);
      return child;
    }
  }
  return plan;
}

}  // namespace structura::lang
