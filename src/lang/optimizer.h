#ifndef STRUCTURA_LANG_OPTIMIZER_H_
#define STRUCTURA_LANG_OPTIMIZER_H_

#include <map>
#include <string>

#include "lang/plan.h"

namespace structura::lang {

/// What the optimizer knows about registered extractors: the LIKE-style
/// pattern of attributes each can produce ("temp_%", "population", "%").
struct OptimizerCatalog {
  std::map<std::string, std::string> extractor_attributes;
};

struct OptimizerReport {
  bool pushed_category = false;
  bool pushed_confidence = false;
  int pruned_extractors = 0;
  int merged_filters = 0;

  std::string ToString() const;
};

/// Rewrites a naive plan:
///  1. merges stacked Filters,
///  2. pushes `category = "..."` predicates into the document scan,
///  3. pushes `confidence >= x` into the Extract node,
///  4. prunes extractors that provably cannot produce any attribute
///     satisfying the plan's attribute predicates.
/// The rewritten plan is semantically equivalent (tests assert equal
/// results); it just refuses to do work the predicates would discard —
/// the point of the declarative processing layer.
PlanPtr Optimize(PlanPtr plan, const OptimizerCatalog& catalog,
                 OptimizerReport* report = nullptr);

/// True when some attribute string could both match the extractor's
/// produce-pattern and satisfy `condition`. Conservative: returns true
/// when unsure. Exposed for tests.
bool PatternMayMatch(const std::string& produce_pattern,
                     const query::Condition& condition);

}  // namespace structura::lang

#endif  // STRUCTURA_LANG_OPTIMIZER_H_
