#include "query/keyword_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/tokenizer.h"
#include "text/wiki_markup.h"

namespace structura::query {

void KeywordIndex::AddDocument(const text::Document& doc) {
  uint32_t index = static_cast<uint32_t>(doc_ids_.size());
  doc_ids_.push_back(doc.id);
  titles_.push_back(doc.title);
  std::string plain = text::StripMarkup(doc.text);
  // Title tokens are indexed too (they matter for entity queries).
  std::vector<std::string> tokens = text::WordTokens(doc.title);
  for (std::string& t : text::WordTokens(plain)) {
    tokens.push_back(std::move(t));
  }
  std::map<std::string, uint32_t> tf;
  for (const std::string& t : tokens) ++tf[t];
  for (const auto& [term, freq] : tf) {
    postings_[term].push_back(Posting{index, freq});
  }
  doc_lengths_.push_back(static_cast<uint32_t>(tokens.size()));
}

void KeywordIndex::Finalize() {
  double total = 0;
  for (uint32_t len : doc_lengths_) total += len;
  avg_doc_length_ =
      doc_lengths_.empty() ? 0 : total / static_cast<double>(
                                             doc_lengths_.size());
  finalized_ = true;
  ++version_;
}

std::vector<SearchHit> KeywordIndex::Search(const std::string& query,
                                            size_t k) const {
  // An infinite interrupt can't fire, so the Result is always a value.
  return *Search(query, k, Interrupt{});
}

Result<std::vector<SearchHit>> KeywordIndex::Search(
    const std::string& query, size_t k, const Interrupt& intr,
    const ExecutorOptions& opts) const {
  TRACE_SPAN("query.keyword");
  static obs::Counter* searches =
      obs::MetricsRegistry::Default().GetCounter("query.keyword.searches");
  static obs::Histogram* latency = obs::MetricsRegistry::Default().GetHistogram(
      "query.keyword.latency_ns");
  searches->Increment();
  obs::ScopedLatency record_latency(latency);
  // Cooperative check-point cadence: cheap relative to the scoring work
  // between polls, frequent enough to honour millisecond deadlines.
  // Doubles as the per-chunk unit of the parallel scoring path.
  constexpr size_t kCheckEvery = 4096;
  size_t since_check = 0;
  std::vector<double> scores(doc_ids_.size(), 0.0);
  const double n = static_cast<double>(doc_ids_.size());
  // Per-posting BM25 contribution — the pure part of the scoring loop.
  auto contribution = [&](double idf, const Posting& p) {
    double tf = p.term_freq;
    double len_norm = 1.0 - options_.b +
                      options_.b * doc_lengths_[p.doc_index] /
                          std::max(1.0, avg_doc_length_);
    return idf * tf * (options_.k1 + 1.0) / (tf + options_.k1 * len_norm);
  };
  for (const std::string& term : text::WordTokens(query)) {
    STRUCTURA_RETURN_IF_ERROR(intr.Check());
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const std::vector<Posting>& plist = it->second;
    // One "row" per posting scored: the unit the accounting compares
    // across operators.
    obs::ChargeCost(obs::CostDim::kRowsScanned, plist.size());
    double df = static_cast<double>(plist.size());
    double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    if (opts.Parallel() && plist.size() >= 2 * kCheckEvery) {
      // Long posting list: compute contributions (pure, per-posting) in
      // parallel chunks, then apply them serially IN POSTING ORDER —
      // the same `scores[d] += contribution` sequence the serial loop
      // performs, so every accumulated bit matches.
      size_t chunks = (plist.size() + kCheckEvery - 1) / kCheckEvery;
      std::vector<std::vector<double>> contribs(chunks);
      std::vector<Status> status(chunks);
      ParallelForOptions pf;
      pf.grain = opts.grain;
      pf.max_workers = opts.parallelism;
      ParallelFor(*opts.pool, chunks, pf, [&](size_t c) {
        Status s = intr.Check();
        if (!s.ok()) {
          status[c] = s;
          return;
        }
        size_t begin = c * kCheckEvery;
        size_t end = std::min(plist.size(), (c + 1) * kCheckEvery);
        contribs[c].reserve(end - begin);
        for (size_t j = begin; j < end; ++j) {
          contribs[c].push_back(contribution(idf, plist[j]));
        }
      });
      for (const Status& s : status) {
        STRUCTURA_RETURN_IF_ERROR(s);
      }
      for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * kCheckEvery;
        for (size_t j = 0; j < contribs[c].size(); ++j) {
          scores[plist[begin + j].doc_index] += contribs[c][j];
        }
      }
      continue;
    }
    for (const Posting& p : plist) {
      if (++since_check >= kCheckEvery) {
        since_check = 0;
        STRUCTURA_RETURN_IF_ERROR(intr.Check());
      }
      scores[p.doc_index] += contribution(idf, p);
    }
  }
  STRUCTURA_RETURN_IF_ERROR(intr.Check());
  std::vector<size_t> order;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > 0) order.push_back(i);
  }
  std::partial_sort(order.begin(),
                    order.begin() + std::min(k, order.size()), order.end(),
                    [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  order.resize(std::min(k, order.size()));
  std::vector<SearchHit> hits;
  hits.reserve(order.size());
  for (size_t i : order) {
    hits.push_back(SearchHit{doc_ids_[i], scores[i], titles_[i]});
  }
  return hits;
}

std::string MakeSnippet(const text::Document& doc,
                        const std::string& query, size_t max_chars) {
  std::string plain = text::StripMarkup(doc.text);
  std::vector<std::string> terms = text::WordTokens(query);
  std::vector<text::Span> sentences = text::SplitSentences(plain);
  size_t best_hits = 0;
  text::Span best{0, static_cast<uint32_t>(
                         std::min(plain.size(), max_chars))};
  for (const text::Span& s : sentences) {
    std::string sentence = plain.substr(s.begin, s.length());
    std::vector<std::string> tokens = text::WordTokens(sentence);
    size_t hits = 0;
    for (const std::string& term : terms) {
      for (const std::string& tok : tokens) {
        if (tok == term) {
          ++hits;
          break;
        }
      }
    }
    if (hits > best_hits) {
      best_hits = hits;
      best = s;
    }
  }
  std::string snippet = plain.substr(best.begin, best.length());
  // Collapse whitespace runs for one-line rendering.
  std::string out;
  bool in_space = false;
  for (char c : snippet) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space && !out.empty()) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  if (out.size() > max_chars) {
    out.resize(max_chars - 3);
    out += "...";
  }
  return out;
}

}  // namespace structura::query
