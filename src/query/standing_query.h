#ifndef STRUCTURA_QUERY_STANDING_QUERY_H_
#define STRUCTURA_QUERY_STANDING_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/structured_query.h"

namespace structura::query {

/// Monitoring — the last exploitation mode in the paper's DGE summary
/// ("keyword search, structured querying, browsing, visualization,
/// monitoring", §3.2): standing queries re-evaluated whenever their view
/// refreshes, alerting on changed results.

struct Alert {
  std::string query_name;
  /// "first_result", "changed", or "threshold".
  std::string kind;
  std::string message;
  Relation result;  // the new result set
};

/// Registry of standing queries. Each query watches one view; Evaluate()
/// runs every query whose view is supplied, diffs against the previous
/// result, and emits alerts.
class StandingQueryRegistry {
 public:
  struct Spec {
    std::string name;
    StructuredQuery query;
    /// Alert when the (whole) result set differs from last evaluation.
    bool on_change = true;
    /// Also alert when the first row's named column crosses `threshold`
    /// (useful for aggregates: "alert when count > 0"). Empty = off.
    std::string threshold_column;
    double threshold = 0;
    CompareOp threshold_op = CompareOp::kGt;
  };

  /// Registers a standing query; names must be unique.
  Status Add(Spec spec);
  Status Remove(const std::string& name);
  size_t size() const { return specs_.size(); }
  std::vector<std::string> Names() const;

  /// Evaluates every standing query whose `source_view` equals
  /// `view_name` against `view`; returns the alerts raised.
  Result<std::vector<Alert>> Evaluate(const std::string& view_name,
                                      const Relation& view);

 private:
  static std::string Fingerprint(const Relation& rel);

  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> last_fingerprint_;
};

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_STANDING_QUERY_H_
