#ifndef STRUCTURA_QUERY_HYBRID_H_
#define STRUCTURA_QUERY_HYBRID_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/keyword_index.h"
#include "query/relation.h"

namespace structura::query {

/// A hybrid DB+IR query (the "DB and IR: both sides now" direction the
/// paper cites as its predecessor): free-text relevance plus structured
/// predicates over the facts extracted from each document.
struct HybridQuery {
  std::string keywords;
  /// Conjunctive conditions evaluated per fact row; a document qualifies
  /// when at least one of its fact rows satisfies all conditions.
  std::vector<Condition> structured;
};

/// Ranks documents by BM25 over `keywords`, keeping only documents whose
/// extracted facts (a relation with a "doc" column) satisfy the
/// structured predicates. `facts` must contain every column referenced
/// by the conditions.
/// `intr` is polled through both sides (structured filter scan and BM25
/// scoring); evaluation stops with kDeadlineExceeded / kCancelled.
Result<std::vector<SearchHit>> HybridSearch(
    const KeywordIndex& index, const Relation& facts,
    const HybridQuery& query, size_t k,
    const Interrupt& intr = Interrupt{}, const ExecutorOptions& opts = {});

/// How a degradable hybrid search was actually answered.
enum class HybridMode {
  kFull,            // both sides ran: the non-degraded answer
  kKeywordOnly,     // structured side skipped/failed: BM25 ranking alone
  kStructuredOnly,  // keyword side skipped/failed: predicate match alone
};

const char* HybridModeName(HybridMode m);

/// A hybrid answer that knows how it was produced. `degraded` is the
/// contract with the caller: when true, `hits` came from a reduced
/// ladder rung (one side of the query was not applied) and `reason`
/// says why — the serving layer surfaces both instead of passing the
/// answer off as a full hybrid result.
struct HybridAnswer {
  std::vector<SearchHit> hits;
  HybridMode mode = HybridMode::kFull;
  bool degraded = false;
  std::string reason;
};

/// Caller-supplied availability hints for the fallback ladder —
/// typically derived from the health model (e.g. `query.structured`
/// degraded → structured_available=false). Defaults say "both sides
/// fine".
struct HybridFallback {
  bool structured_available = true;
  bool keyword_available = true;
  /// Why the side is unavailable; copied into HybridAnswer::reason.
  std::string structured_reason;
  std::string keyword_reason;
};

/// HybridSearch with a fallback ladder instead of all-or-nothing:
///
///   full hybrid → keyword-only → structured-only → refuse
///
/// A side is skipped when the caller marked it unavailable (health
/// signal), or dropped at runtime when it fails with a retryable error
/// (kUnavailable/kCorruption/…). Interrupt statuses (kDeadlineExceeded,
/// kCancelled) and caller mistakes (kInvalidArgument) propagate — only
/// infrastructure trouble triggers degradation. When both sides are
/// down the search refuses with kUnavailable; it never fabricates an
/// answer silently. Mode counters: `query.hybrid.mode.{full,
/// keyword_only,structured_only}`, `query.hybrid.degraded`,
/// `query.hybrid.refused`.
Result<HybridAnswer> HybridSearchDegradable(
    const KeywordIndex& index, const Relation& facts,
    const HybridQuery& query, size_t k,
    const HybridFallback& fallback = HybridFallback{},
    const Interrupt& intr = Interrupt{}, const ExecutorOptions& opts = {});

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_HYBRID_H_
