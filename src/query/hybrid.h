#ifndef STRUCTURA_QUERY_HYBRID_H_
#define STRUCTURA_QUERY_HYBRID_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/keyword_index.h"
#include "query/relation.h"

namespace structura::query {

/// A hybrid DB+IR query (the "DB and IR: both sides now" direction the
/// paper cites as its predecessor): free-text relevance plus structured
/// predicates over the facts extracted from each document.
struct HybridQuery {
  std::string keywords;
  /// Conjunctive conditions evaluated per fact row; a document qualifies
  /// when at least one of its fact rows satisfies all conditions.
  std::vector<Condition> structured;
};

/// Ranks documents by BM25 over `keywords`, keeping only documents whose
/// extracted facts (a relation with a "doc" column) satisfy the
/// structured predicates. `facts` must contain every column referenced
/// by the conditions.
/// `intr` is polled through both sides (structured filter scan and BM25
/// scoring); evaluation stops with kDeadlineExceeded / kCancelled.
Result<std::vector<SearchHit>> HybridSearch(
    const KeywordIndex& index, const Relation& facts,
    const HybridQuery& query, size_t k,
    const Interrupt& intr = Interrupt{});

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_HYBRID_H_
