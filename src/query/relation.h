#ifndef STRUCTURA_QUERY_RELATION_H_
#define STRUCTURA_QUERY_RELATION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "rdbms/schema.h"
#include "rdbms/value.h"

namespace structura::query {

using rdbms::Row;
using rdbms::Value;

/// An in-memory relation: named columns over value rows. The working
/// currency of the user layer and the SDL executor (rdbms::Table is the
/// durable final store; Relation is the pipe between operators).
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  int ColumnIndex(const std::string& name) const;

  /// Appends a row (arity must match).
  Status Append(Row row);

  /// Value accessor by column name; Null for unknown columns.
  const Value& At(size_t row, const std::string& column) const;

  /// Pretty-printed table (for examples and the CLI surface).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  static const Value kNull;
};

/// Comparison operator of a predicate condition.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,  // substring on the string rendering
  kLike,      // SQL-ish pattern with '%' wildcards
};

const char* CompareOpName(CompareOp op);

/// One `column <op> literal` condition.
struct Condition {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  bool Eval(const Value& v) const;
  std::string ToString() const;
};

/// Aggregate functions supported by Aggregate().
enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;      // ignored for COUNT(*) (empty)
  std::string output_name; // result column name
};

// --- Operators (each returns a new Relation) ---------------------------

/// Rows satisfying every condition (conjunction). The scan polls `intr`
/// every few hundred rows and returns kDeadlineExceeded / kCancelled
/// instead of finishing; the default interrupt never fires.
Result<Relation> Filter(const Relation& in,
                        const std::vector<Condition>& conditions,
                        const Interrupt& intr = Interrupt{});

/// Keeps `columns`, in the given order.
Result<Relation> Project(const Relation& in,
                         const std::vector<std::string>& columns);

/// Hash equi-join on left_col == right_col. Right columns are prefixed
/// with `right_prefix` when names collide.
Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          const std::string& left_col,
                          const std::string& right_col,
                          const std::string& right_prefix = "r_");

/// Group by `group_columns` (may be empty: single global group) and
/// compute aggregates. Null values are skipped by SUM/AVG/MIN/MAX and
/// counted only by COUNT(column) when non-null.
Result<Relation> Aggregate(const Relation& in,
                           const std::vector<std::string>& group_columns,
                           const std::vector<AggSpec>& aggs);

/// Stable sort by column (ascending unless `descending`).
Result<Relation> OrderBy(const Relation& in, const std::string& column,
                         bool descending = false);

/// First `n` rows.
Relation Limit(const Relation& in, size_t n);

/// Distinct rows (exact match on all columns).
Relation Distinct(const Relation& in);

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_RELATION_H_
