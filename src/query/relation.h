#ifndef STRUCTURA_QUERY_RELATION_H_
#define STRUCTURA_QUERY_RELATION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "rdbms/schema.h"
#include "rdbms/value.h"

namespace structura {
class ThreadPool;
}

namespace structura::query {

using rdbms::Row;
using rdbms::Value;

/// An in-memory relation: named columns over value rows. The working
/// currency of the user layer and the SDL executor (rdbms::Table is the
/// durable final store; Relation is the pipe between operators).
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  int ColumnIndex(const std::string& name) const;

  /// Appends a row (arity must match).
  Status Append(Row row);

  /// Value accessor by column name; Null for unknown columns.
  const Value& At(size_t row, const std::string& column) const;

  /// Pretty-printed table (for examples and the CLI surface).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  static const Value kNull;
};

/// Comparison operator of a predicate condition.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,  // substring on the string rendering
  kLike,      // SQL-ish pattern with '%' wildcards
};

const char* CompareOpName(CompareOp op);

/// One `column <op> literal` condition.
struct Condition {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  bool Eval(const Value& v) const;
  std::string ToString() const;
};

/// Aggregate functions supported by Aggregate().
enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;      // ignored for COUNT(*) (empty)
  std::string output_name; // result column name
};

// --- Execution options -------------------------------------------------

/// Morsel-execution knobs shared by every scan-shaped operator
/// (filter/project/join-probe/aggregate) and the EXTRACT doc loop.
///
/// Determinism contract: results are a pure function of the input and
/// of `morsel_rows` — never of `parallelism`. Operators that merely
/// collect rows concatenate per-morsel buffers in morsel order, which
/// is trivially the serial row order; Aggregate computes per-morsel
/// partial states and merges them in morsel order on BOTH paths, so the
/// floating-point reduction tree (the only order-sensitive part) is
/// fixed by `morsel_rows` alone and parallel output is byte-identical
/// to serial output.
struct ExecutorOptions {
  /// Worker fan-out. <= 1 (or a null pool) selects the serial path.
  size_t parallelism = 1;
  /// Rows per morsel. Part of the result contract for float aggregates
  /// (see above) — serial and parallel runs being compared must use the
  /// same value.
  size_t morsel_rows = 1024;
  /// Documents per morsel in the EXTRACT loop, where per-item cost is
  /// an extractor call rather than a row visit.
  size_t morsel_docs = 8;
  /// ParallelFor grain: morsel-chains re-queue after this many morsels
  /// so serve-path submissions interleave instead of starving.
  size_t grain = 1;
  /// Pool morsels are dispatched on when parallelism > 1. Not owned.
  ThreadPool* pool = nullptr;

  bool Parallel() const { return parallelism > 1 && pool != nullptr; }
};

// --- Operators (each returns a new Relation) ---------------------------

/// Rows satisfying every condition (conjunction). The scan polls `intr`
/// every few hundred rows (serial) or between morsels (parallel) and
/// returns kDeadlineExceeded / kCancelled instead of finishing; the
/// default interrupt never fires.
Result<Relation> Filter(const Relation& in,
                        const std::vector<Condition>& conditions,
                        const Interrupt& intr = Interrupt{},
                        const ExecutorOptions& opts = {});

/// Keeps `columns`, in the given order.
Result<Relation> Project(const Relation& in,
                         const std::vector<std::string>& columns,
                         const Interrupt& intr = Interrupt{},
                         const ExecutorOptions& opts = {});

/// Hash equi-join on left_col == right_col. Right columns are prefixed
/// with `right_prefix` when names collide. The build side stays serial
/// (it mutates one hash table); the probe side is morsel-parallel.
Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          const std::string& left_col,
                          const std::string& right_col,
                          const std::string& right_prefix = "r_",
                          const Interrupt& intr = Interrupt{},
                          const ExecutorOptions& opts = {});

/// Group by `group_columns` (may be empty: single global group) and
/// compute aggregates. Null values are skipped by SUM/AVG/MIN/MAX and
/// counted only by COUNT(column) when non-null. Both serial and
/// parallel paths accumulate per-morsel partials merged in morsel
/// order — see ExecutorOptions for the determinism contract.
Result<Relation> Aggregate(const Relation& in,
                           const std::vector<std::string>& group_columns,
                           const std::vector<AggSpec>& aggs,
                           const Interrupt& intr = Interrupt{},
                           const ExecutorOptions& opts = {});

/// Stable sort by column (ascending unless `descending`).
Result<Relation> OrderBy(const Relation& in, const std::string& column,
                         bool descending = false);

/// First `n` rows.
Relation Limit(const Relation& in, size_t n);

/// Distinct rows (exact match on all columns).
Relation Distinct(const Relation& in);

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_RELATION_H_
