#include "query/relation.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace structura::query {

const Value Relation::kNull = Value::Null();

int Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Relation::Append(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu vs %zu columns", row.size(),
                  columns_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Value& Relation::At(size_t row, const std::string& column) const {
  int idx = ColumnIndex(column);
  if (idx < 0 || row >= rows_.size()) return kNull;
  return rows_[row][static_cast<size_t>(idx)];
}

std::string Relation::ToString(size_t max_rows) const {
  // Compute column widths.
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> rendered(shown);
  for (size_t r = 0; r < shown; ++r) {
    rendered[r].resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      rendered[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], rendered[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += StrFormat("%-*s", static_cast<int>(widths[c] + 2),
                     columns_[c].c_str());
  }
  out += '\n';
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += std::string(widths[c], '-') + "  ";
  }
  out += '\n';
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      out += StrFormat("%-*s", static_cast<int>(widths[c] + 2),
                       rendered[r][c].c_str());
    }
    out += '\n';
  }
  if (rows_.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kContains: return "CONTAINS";
    case CompareOp::kLike: return "LIKE";
  }
  return "?";
}

namespace {

/// Numeric view of a value that also accepts numeric-looking strings
/// ("233,209", "31") — extracted values arrive as surface text, and the
/// user layer should still be able to average them.
bool NumericValue(const Value& v, double* out) {
  if (v.ToNumber(out)) return true;
  if (v.type() != rdbms::ValueType::kString) return false;
  std::string cleaned;
  for (char c : v.as_string()) {
    if (c != ',') cleaned += c;
  }
  return ParseDouble(cleaned, out);
}

/// SQL-ish LIKE with '%' wildcards (no '_'); case-sensitive.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Dynamic programming over pattern segments split by '%'.
  std::vector<std::string> parts = Split(pattern, '%');
  size_t pos = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (part.empty()) continue;
    if (i == 0) {
      if (text.compare(0, part.size(), part) != 0) return false;
      pos = part.size();
    } else {
      size_t found = text.find(part, pos);
      if (found == std::string::npos) return false;
      pos = found + part.size();
    }
  }
  // Without a trailing '%', the last part must anchor at the end.
  if (!pattern.empty() && pattern.back() != '%' && !parts.empty()) {
    const std::string& last = parts.back();
    if (text.size() < last.size() ||
        text.compare(text.size() - last.size(), last.size(), last) != 0) {
      return false;
    }
  }
  return true;
}

/// Fixed-size partitioning of [0, n) into morsels.
struct Morsels {
  size_t n = 0;
  size_t size = 1;
  size_t count = 0;
  Morsels(size_t items, size_t morsel_size)
      : n(items),
        size(std::max<size_t>(1, morsel_size)),
        count(items == 0 ? 0 : (items + size - 1) / size) {}
  size_t begin(size_t i) const { return i * size; }
  size_t end(size_t i) const { return std::min(n, (i + 1) * size); }
};

/// Runs `body(morsel)` for every morsel — sequentially, or dispatched
/// over opts.pool when the options select the parallel path. `intr` is
/// polled before each morsel on both paths. The first failure by morsel
/// index wins, so the reported status does not depend on scheduling.
Status RunMorsels(const Morsels& ms, const Interrupt& intr,
                  const ExecutorOptions& opts,
                  const std::function<Status(size_t)>& body) {
  if (ms.count == 0) return Status::OK();
  if (!opts.Parallel() || ms.count == 1) {
    for (size_t i = 0; i < ms.count; ++i) {
      STRUCTURA_RETURN_IF_ERROR(intr.Check());
      STRUCTURA_RETURN_IF_ERROR(body(i));
    }
    return Status::OK();
  }
  std::vector<Status> status(ms.count);
  ParallelForOptions pf;
  pf.grain = opts.grain;
  pf.max_workers = opts.parallelism;
  ParallelFor(*opts.pool, ms.count, pf, [&](size_t i) {
    Status s = intr.Check();
    status[i] = s.ok() ? body(i) : s;
  });
  for (const Status& s : status) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

bool Condition::Eval(const Value& v) const {
  // Numeric coercion: comparing a numeric literal against a string value
  // (or vice versa) compares numerically when the string parses.
  bool literal_is_number =
      literal.type() == rdbms::ValueType::kInt ||
      literal.type() == rdbms::ValueType::kDouble;
  if (literal_is_number && v.type() == rdbms::ValueType::kString) {
    double lhs, rhs;
    if (NumericValue(v, &lhs) && literal.ToNumber(&rhs)) {
      switch (op) {
        case CompareOp::kEq: return lhs == rhs;
        case CompareOp::kNe: return lhs != rhs;
        case CompareOp::kLt: return lhs < rhs;
        case CompareOp::kLe: return lhs <= rhs;
        case CompareOp::kGt: return lhs > rhs;
        case CompareOp::kGe: return lhs >= rhs;
        default: break;  // CONTAINS/LIKE fall through to text semantics
      }
    }
  }
  switch (op) {
    case CompareOp::kEq:
      return v.Compare(literal) == 0;
    case CompareOp::kNe:
      return v.Compare(literal) != 0;
    case CompareOp::kLt:
      return v.Compare(literal) < 0;
    case CompareOp::kLe:
      return v.Compare(literal) <= 0;
    case CompareOp::kGt:
      return v.Compare(literal) > 0;
    case CompareOp::kGe:
      return v.Compare(literal) >= 0;
    case CompareOp::kContains:
      return v.ToString().find(literal.ToString()) != std::string::npos;
    case CompareOp::kLike:
      return LikeMatch(v.ToString(), literal.ToString());
  }
  return false;
}

std::string Condition::ToString() const {
  std::string lit = literal.type() == rdbms::ValueType::kString
                        ? "\"" + literal.ToString() + "\""
                        : literal.ToString();
  return column + " " + CompareOpName(op) + " " + lit;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

Result<Relation> Filter(const Relation& in,
                        const std::vector<Condition>& conditions,
                        const Interrupt& intr, const ExecutorOptions& opts) {
  std::vector<int> cols;
  cols.reserve(conditions.size());
  for (const Condition& c : conditions) {
    int idx = in.ColumnIndex(c.column);
    if (idx < 0) return Status::InvalidArgument("no column " + c.column);
    cols.push_back(idx);
  }
  auto keep = [&](const Row& row) {
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (!conditions[i].Eval(row[static_cast<size_t>(cols[i])])) {
        return false;
      }
    }
    return true;
  };
  Relation out(in.columns());
  if (!opts.Parallel()) {
    constexpr size_t kCheckEvery = 512;
    size_t since_check = 0;
    for (const Row& row : in.rows()) {
      if (++since_check >= kCheckEvery) {
        since_check = 0;
        STRUCTURA_RETURN_IF_ERROR(intr.Check());
      }
      if (keep(row)) {
        Status s = out.Append(row);
        if (!s.ok()) return s;
      }
    }
    return out;
  }
  // Parallel: each morsel collects its survivors; concatenating the
  // buffers in morsel order reproduces the serial row order exactly.
  Morsels ms(in.rows().size(), opts.morsel_rows);
  std::vector<std::vector<Row>> parts(ms.count);
  STRUCTURA_RETURN_IF_ERROR(RunMorsels(ms, intr, opts, [&](size_t i) {
    for (size_t r = ms.begin(i); r < ms.end(i); ++r) {
      const Row& row = in.rows()[r];
      if (keep(row)) parts[i].push_back(row);
    }
    return Status::OK();
  }));
  for (std::vector<Row>& part : parts) {
    for (Row& row : part) {
      Status s = out.Append(std::move(row));
      if (!s.ok()) return s;
    }
  }
  return out;
}

Result<Relation> Project(const Relation& in,
                         const std::vector<std::string>& columns,
                         const Interrupt& intr, const ExecutorOptions& opts) {
  std::vector<int> idx;
  for (const std::string& c : columns) {
    int i = in.ColumnIndex(c);
    if (i < 0) return Status::InvalidArgument("no column " + c);
    idx.push_back(i);
  }
  auto project = [&](const Row& row) {
    Row projected;
    projected.reserve(idx.size());
    for (int i : idx) projected.push_back(row[static_cast<size_t>(i)]);
    return projected;
  };
  Relation out(columns);
  if (!opts.Parallel()) {
    constexpr size_t kCheckEvery = 512;
    size_t since_check = 0;
    for (const Row& row : in.rows()) {
      if (++since_check >= kCheckEvery) {
        since_check = 0;
        STRUCTURA_RETURN_IF_ERROR(intr.Check());
      }
      Status s = out.Append(project(row));
      if (!s.ok()) return s;
    }
    return out;
  }
  Morsels ms(in.rows().size(), opts.morsel_rows);
  std::vector<std::vector<Row>> parts(ms.count);
  STRUCTURA_RETURN_IF_ERROR(RunMorsels(ms, intr, opts, [&](size_t i) {
    parts[i].reserve(ms.end(i) - ms.begin(i));
    for (size_t r = ms.begin(i); r < ms.end(i); ++r) {
      parts[i].push_back(project(in.rows()[r]));
    }
    return Status::OK();
  }));
  for (std::vector<Row>& part : parts) {
    for (Row& row : part) {
      Status s = out.Append(std::move(row));
      if (!s.ok()) return s;
    }
  }
  return out;
}

Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          const std::string& left_col,
                          const std::string& right_col,
                          const std::string& right_prefix,
                          const Interrupt& intr, const ExecutorOptions& opts) {
  int li = left.ColumnIndex(left_col);
  int ri = right.ColumnIndex(right_col);
  if (li < 0) return Status::InvalidArgument("no column " + left_col);
  if (ri < 0) return Status::InvalidArgument("no column " + right_col);

  std::vector<std::string> out_columns = left.columns();
  for (const std::string& c : right.columns()) {
    bool collision = false;
    for (const std::string& lc : left.columns()) {
      if (lc == c) {
        collision = true;
        break;
      }
    }
    out_columns.push_back(collision ? right_prefix + c : c);
  }

  // Build on the smaller side conceptually; here build on right. The
  // build stays serial (one shared hash table); probing is read-only
  // and morsel-parallel over the left side.
  std::unordered_map<uint64_t, std::vector<size_t>> table;
  for (size_t r = 0; r < right.rows().size(); ++r) {
    table[right.rows()[r][static_cast<size_t>(ri)].Hash()].push_back(r);
  }
  auto probe = [&](const Row& lrow, std::vector<Row>* dst) {
    const Value& key = lrow[static_cast<size_t>(li)];
    auto it = table.find(key.Hash());
    if (it == table.end()) return;
    for (size_t r : it->second) {
      const Row& rrow = right.rows()[r];
      if (rrow[static_cast<size_t>(ri)].Compare(key) != 0) continue;
      Row joined = lrow;
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      dst->push_back(std::move(joined));
    }
  };
  Relation out(out_columns);
  if (!opts.Parallel()) {
    std::vector<Row> matches;
    for (const Row& lrow : left.rows()) {
      matches.clear();
      probe(lrow, &matches);
      for (Row& row : matches) {
        Status s = out.Append(std::move(row));
        if (!s.ok()) return s;
      }
    }
    return out;
  }
  Morsels ms(left.rows().size(), opts.morsel_rows);
  std::vector<std::vector<Row>> parts(ms.count);
  STRUCTURA_RETURN_IF_ERROR(RunMorsels(ms, intr, opts, [&](size_t i) {
    for (size_t r = ms.begin(i); r < ms.end(i); ++r) {
      probe(left.rows()[r], &parts[i]);
    }
    return Status::OK();
  }));
  for (std::vector<Row>& part : parts) {
    for (Row& row : part) {
      Status s = out.Append(std::move(row));
      if (!s.ok()) return s;
    }
  }
  return out;
}

namespace {

struct AggAccum {
  double sum = 0;
  size_t count = 0;
  Value min = Value::Null();
  Value max = Value::Null();
  Row group_values;
};

/// Group key (concatenated value renderings) -> one accumulator per
/// AggSpec. std::map keeps output order deterministic.
using GroupMap = std::map<std::string, std::vector<AggAccum>>;

/// Accumulates rows [begin, end) into a fresh partial-state map — the
/// per-morsel half of the aggregation. This is the ONLY code that folds
/// individual rows, on both the serial and parallel paths.
GroupMap AggregatePartial(const Relation& in, size_t begin, size_t end,
                          const std::vector<int>& group_idx,
                          const std::vector<int>& agg_idx, size_t num_aggs) {
  GroupMap partial;
  for (size_t r = begin; r < end; ++r) {
    const Row& row = in.rows()[r];
    std::string key;
    for (int gi : group_idx) {
      key += row[static_cast<size_t>(gi)].ToString();
      key += '\x1f';
    }
    auto [it, inserted] = partial.try_emplace(key);
    if (inserted) {
      it->second.resize(num_aggs);
      Row gv;
      for (int gi : group_idx) gv.push_back(row[static_cast<size_t>(gi)]);
      for (AggAccum& a : it->second) a.group_values = gv;
      if (it->second.empty()) {
        // No aggregates requested: still track group values.
        AggAccum a;
        a.group_values = std::move(gv);
        it->second.push_back(std::move(a));
      }
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      AggAccum& acc = it->second[a];
      if (agg_idx[a] < 0) {
        ++acc.count;  // COUNT(*)
        continue;
      }
      const Value& v = row[static_cast<size_t>(agg_idx[a])];
      if (v.is_null()) continue;
      ++acc.count;
      double num;
      if (NumericValue(v, &num)) acc.sum += num;
      if (acc.min.is_null() || v.Compare(acc.min) < 0) acc.min = v;
      if (acc.max.is_null() || v.Compare(acc.max) > 0) acc.max = v;
    }
  }
  return partial;
}

/// Merges `from` (a later morsel) into `into`. Ties on min/max keep the
/// earlier morsel's value, matching the strict-< / strict-> updates of
/// the row fold; sums add later partials on the right, so the float
/// reduction tree is fixed by the morsel boundaries alone.
void MergeAggPartial(GroupMap* into, GroupMap&& from) {
  for (auto& [key, accs] : from) {
    auto [it, inserted] = into->try_emplace(key);
    if (inserted) {
      it->second = std::move(accs);
      continue;
    }
    for (size_t a = 0; a < accs.size(); ++a) {
      AggAccum& dst = it->second[a];
      AggAccum& src = accs[a];
      dst.sum += src.sum;
      dst.count += src.count;
      if (!src.min.is_null() &&
          (dst.min.is_null() || src.min.Compare(dst.min) < 0)) {
        dst.min = std::move(src.min);
      }
      if (!src.max.is_null() &&
          (dst.max.is_null() || src.max.Compare(dst.max) > 0)) {
        dst.max = std::move(src.max);
      }
    }
  }
}

}  // namespace

Result<Relation> Aggregate(const Relation& in,
                           const std::vector<std::string>& group_columns,
                           const std::vector<AggSpec>& aggs,
                           const Interrupt& intr, const ExecutorOptions& opts) {
  std::vector<int> group_idx;
  for (const std::string& c : group_columns) {
    int i = in.ColumnIndex(c);
    if (i < 0) return Status::InvalidArgument("no column " + c);
    group_idx.push_back(i);
  }
  std::vector<int> agg_idx;
  for (const AggSpec& a : aggs) {
    if (a.fn == AggFn::kCount && a.column.empty()) {
      agg_idx.push_back(-1);
      continue;
    }
    int i = in.ColumnIndex(a.column);
    if (i < 0) return Status::InvalidArgument("no column " + a.column);
    agg_idx.push_back(i);
  }

  // Per-morsel partials merged in morsel order — the same computation
  // tree whether the morsels ran serially or on the pool, which is what
  // makes parallel float sums byte-identical to serial ones.
  Morsels ms(in.rows().size(), opts.morsel_rows);
  std::vector<GroupMap> parts(ms.count);
  STRUCTURA_RETURN_IF_ERROR(RunMorsels(ms, intr, opts, [&](size_t i) {
    parts[i] = AggregatePartial(in, ms.begin(i), ms.end(i), group_idx,
                                agg_idx, aggs.size());
    return Status::OK();
  }));
  GroupMap per_agg;
  for (GroupMap& part : parts) MergeAggPartial(&per_agg, std::move(part));

  std::vector<std::string> out_columns = group_columns;
  for (const AggSpec& a : aggs) {
    out_columns.push_back(
        a.output_name.empty()
            ? StrFormat("%s(%s)", AggFnName(a.fn),
                        a.column.empty() ? "*" : a.column.c_str())
            : a.output_name);
  }
  Relation out(out_columns);
  for (const auto& [key, accs] : per_agg) {
    Row row = accs.empty() ? Row{} : accs.front().group_values;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggAccum& acc = accs[a];
      switch (aggs[a].fn) {
        case AggFn::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(acc.count)));
          break;
        case AggFn::kSum:
          row.push_back(Value::Double(acc.sum));
          break;
        case AggFn::kAvg:
          row.push_back(acc.count == 0
                            ? Value::Null()
                            : Value::Double(acc.sum /
                                            static_cast<double>(acc.count)));
          break;
        case AggFn::kMin:
          row.push_back(acc.min);
          break;
        case AggFn::kMax:
          row.push_back(acc.max);
          break;
      }
    }
    Status s = out.Append(std::move(row));
    if (!s.ok()) return s;
  }
  return out;
}

Result<Relation> OrderBy(const Relation& in, const std::string& column,
                         bool descending) {
  int idx = in.ColumnIndex(column);
  if (idx < 0) return Status::InvalidArgument("no column " + column);
  // Numeric coercion, mirroring Condition::Eval: numeric-looking strings
  // ("989,646") sort as numbers, so extracted values order sensibly.
  auto compare = [](const Value& x, const Value& y) {
    double xn, yn;
    if (NumericValue(x, &xn) && NumericValue(y, &yn)) {
      if (xn < yn) return -1;
      if (xn > yn) return 1;
      return 0;
    }
    return x.Compare(y);
  };
  std::vector<size_t> order(in.rows().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int c = compare(in.rows()[a][static_cast<size_t>(idx)],
                    in.rows()[b][static_cast<size_t>(idx)]);
    return descending ? c > 0 : c < 0;
  });
  Relation out(in.columns());
  for (size_t i : order) {
    Status s = out.Append(in.rows()[i]);
    if (!s.ok()) return s;
  }
  return out;
}

Relation Limit(const Relation& in, size_t n) {
  Relation out(in.columns());
  for (size_t i = 0; i < std::min(n, in.rows().size()); ++i) {
    out.Append(in.rows()[i]);
  }
  return out;
}

Relation Distinct(const Relation& in) {
  std::set<std::string> seen;
  Relation out(in.columns());
  for (const Row& row : in.rows()) {
    std::string key;
    for (const Value& v : row) {
      v.AppendTo(&key);
    }
    if (seen.insert(key).second) out.Append(row);
  }
  return out;
}

}  // namespace structura::query
