#include "query/hybrid.h"

#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::query {

Result<std::vector<SearchHit>> HybridSearch(const KeywordIndex& index,
                                            const Relation& facts,
                                            const HybridQuery& query,
                                            size_t k,
                                            const Interrupt& intr) {
  TRACE_SPAN("query.hybrid");
  static obs::Counter* searches =
      obs::MetricsRegistry::Default().GetCounter("query.hybrid.searches");
  static obs::Histogram* latency = obs::MetricsRegistry::Default().GetHistogram(
      "query.hybrid.latency_ns");
  searches->Increment();
  obs::ScopedLatency record_latency(latency);
  // 1. Structured side: the set of qualifying documents.
  STRUCTURA_ASSIGN_OR_RETURN(Relation qualifying,
                             Filter(facts, query.structured, intr));
  int doc_col = qualifying.ColumnIndex("doc");
  if (doc_col < 0) {
    return Status::InvalidArgument("facts relation lacks a doc column");
  }
  std::set<int64_t> doc_ids;
  for (const Row& row : qualifying.rows()) {
    const Value& v = row[static_cast<size_t>(doc_col)];
    if (v.type() == rdbms::ValueType::kInt) doc_ids.insert(v.as_int());
  }

  // 2. IR side: rank broadly, then keep qualifying docs. Over-fetch so
  // filtering still leaves k results when possible.
  STRUCTURA_ASSIGN_OR_RETURN(
      std::vector<SearchHit> hits,
      index.Search(query.keywords, k * 10 + 50, intr));
  std::vector<SearchHit> out;
  for (const SearchHit& hit : hits) {
    if (doc_ids.count(static_cast<int64_t>(hit.doc)) == 0) continue;
    out.push_back(hit);
    if (out.size() >= k) break;
  }
  return out;
}

}  // namespace structura::query
