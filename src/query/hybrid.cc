#include "query/hybrid.h"

#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::query {

namespace {

/// Runs the structured side: the set of qualifying document ids.
Result<std::set<int64_t>> QualifyingDocs(const Relation& facts,
                                         const std::vector<Condition>& conds,
                                         const Interrupt& intr,
                                         const ExecutorOptions& opts) {
  STRUCTURA_ASSIGN_OR_RETURN(Relation qualifying,
                             Filter(facts, conds, intr, opts));
  int doc_col = qualifying.ColumnIndex("doc");
  if (doc_col < 0) {
    return Status::InvalidArgument("facts relation lacks a doc column");
  }
  std::set<int64_t> doc_ids;
  for (const Row& row : qualifying.rows()) {
    const Value& v = row[static_cast<size_t>(doc_col)];
    if (v.type() == rdbms::ValueType::kInt) doc_ids.insert(v.as_int());
  }
  return doc_ids;
}

/// True when a side's failure should degrade the ladder rather than
/// fail the whole query. Interrupt statuses and caller mistakes are the
/// caller's problem; infrastructure trouble is ours to absorb.
bool DegradableError(const Status& s) {
  switch (s.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kInvalidArgument:
      return false;
    default:
      return true;
  }
}

}  // namespace

Result<std::vector<SearchHit>> HybridSearch(const KeywordIndex& index,
                                            const Relation& facts,
                                            const HybridQuery& query,
                                            size_t k, const Interrupt& intr,
                                            const ExecutorOptions& opts) {
  TRACE_SPAN("query.hybrid");
  static obs::Counter* searches =
      obs::MetricsRegistry::Default().GetCounter("query.hybrid.searches");
  static obs::Histogram* latency = obs::MetricsRegistry::Default().GetHistogram(
      "query.hybrid.latency_ns");
  searches->Increment();
  obs::ScopedLatency record_latency(latency);
  // 1. Structured side: the set of qualifying documents.
  STRUCTURA_ASSIGN_OR_RETURN(
      std::set<int64_t> doc_ids,
      QualifyingDocs(facts, query.structured, intr, opts));

  // 2. IR side: rank broadly, then keep qualifying docs. Over-fetch so
  // filtering still leaves k results when possible.
  STRUCTURA_ASSIGN_OR_RETURN(
      std::vector<SearchHit> hits,
      index.Search(query.keywords, k * 10 + 50, intr, opts));
  std::vector<SearchHit> out;
  for (const SearchHit& hit : hits) {
    if (doc_ids.count(static_cast<int64_t>(hit.doc)) == 0) continue;
    out.push_back(hit);
    if (out.size() >= k) break;
  }
  return out;
}

const char* HybridModeName(HybridMode m) {
  switch (m) {
    case HybridMode::kFull:
      return "full";
    case HybridMode::kKeywordOnly:
      return "keyword_only";
    case HybridMode::kStructuredOnly:
      return "structured_only";
  }
  return "?";
}

Result<HybridAnswer> HybridSearchDegradable(const KeywordIndex& index,
                                            const Relation& facts,
                                            const HybridQuery& query, size_t k,
                                            const HybridFallback& fallback,
                                            const Interrupt& intr,
                                            const ExecutorOptions& opts) {
  TRACE_SPAN("query.hybrid");
  static obs::Counter* searches =
      obs::MetricsRegistry::Default().GetCounter("query.hybrid.searches");
  static obs::Counter* mode_full =
      obs::MetricsRegistry::Default().GetCounter("query.hybrid.mode.full");
  static obs::Counter* mode_keyword = obs::MetricsRegistry::Default().GetCounter(
      "query.hybrid.mode.keyword_only");
  static obs::Counter* mode_structured =
      obs::MetricsRegistry::Default().GetCounter(
          "query.hybrid.mode.structured_only");
  static obs::Counter* degraded =
      obs::MetricsRegistry::Default().GetCounter("query.hybrid.degraded");
  static obs::Counter* refused =
      obs::MetricsRegistry::Default().GetCounter("query.hybrid.refused");
  static obs::Histogram* latency = obs::MetricsRegistry::Default().GetHistogram(
      "query.hybrid.latency_ns");
  searches->Increment();
  obs::ScopedLatency record_latency(latency);

  bool structured_ok = fallback.structured_available;
  bool keyword_ok = fallback.keyword_available;
  std::string structured_reason = fallback.structured_reason.empty()
                                      ? "structured side unavailable"
                                      : fallback.structured_reason;
  std::string keyword_reason = fallback.keyword_reason.empty()
                                   ? "keyword side unavailable"
                                   : fallback.keyword_reason;

  // Rung 1 input: the structured side, dropped (not fatal) when it
  // fails with infrastructure trouble.
  std::set<int64_t> doc_ids;
  bool have_docs = false;
  if (structured_ok) {
    Result<std::set<int64_t>> docs =
        QualifyingDocs(facts, query.structured, intr, opts);
    if (docs.ok()) {
      doc_ids = std::move(docs).value();
      have_docs = true;
    } else if (!DegradableError(docs.status())) {
      return docs.status();
    } else {
      structured_ok = false;
      structured_reason = "structured side failed: " + docs.status().message();
    }
  }

  // Keyword side: full hybrid when the structured side delivered,
  // keyword-only otherwise.
  if (keyword_ok) {
    Result<std::vector<SearchHit>> hits =
        index.Search(query.keywords, have_docs ? k * 10 + 50 : k, intr, opts);
    if (hits.ok()) {
      HybridAnswer ans;
      if (have_docs) {
        ans.mode = HybridMode::kFull;
        for (const SearchHit& hit : hits.value()) {
          if (doc_ids.count(static_cast<int64_t>(hit.doc)) == 0) continue;
          ans.hits.push_back(hit);
          if (ans.hits.size() >= k) break;
        }
        mode_full->Increment();
      } else {
        ans.mode = HybridMode::kKeywordOnly;
        ans.degraded = true;
        ans.reason = structured_reason;
        ans.hits = std::move(hits).value();
        if (ans.hits.size() > k) ans.hits.resize(k);
        mode_keyword->Increment();
        degraded->Increment();
      }
      return ans;
    }
    if (!DegradableError(hits.status())) return hits.status();
    keyword_ok = false;
    keyword_reason = "keyword side failed: " + hits.status().message();
  }

  // Rung 3: structured-only — predicate matches without relevance
  // ranking (scores are zero; order is document id).
  if (have_docs) {
    HybridAnswer ans;
    ans.mode = HybridMode::kStructuredOnly;
    ans.degraded = true;
    ans.reason = keyword_reason;
    for (int64_t d : doc_ids) {
      ans.hits.push_back(SearchHit{static_cast<text::DocId>(d), 0.0, ""});
      if (ans.hits.size() >= k) break;
    }
    mode_structured->Increment();
    degraded->Increment();
    return ans;
  }

  // Bottom of the ladder: refuse loudly rather than answer wrongly.
  refused->Increment();
  return Status::Unavailable("hybrid refused: " + structured_reason + "; " +
                             keyword_reason);
}

}  // namespace structura::query
