#ifndef STRUCTURA_QUERY_KEYWORD_INDEX_H_
#define STRUCTURA_QUERY_KEYWORD_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "query/relation.h"
#include "text/document.h"

namespace structura::query {

/// One keyword-search hit.
struct SearchHit {
  text::DocId doc = 0;
  double score = 0;
  std::string title;
};

/// Classic inverted index with BM25 ranking — the "current IR-like
/// systems" baseline the paper contrasts against (Section 2): great at
/// finding the Madison page, structurally unable to average its monthly
/// temperatures.
class KeywordIndex {
 public:
  struct Options {
    double k1 = 1.2;
    double b = 0.75;
  };

  KeywordIndex() : KeywordIndex(Options()) {}
  explicit KeywordIndex(Options options) : options_(options) {}

  /// Indexes a document (markup stripped, tokens lowercased).
  void AddDocument(const text::Document& doc);

  /// Must be called after the last AddDocument and before Search. Every
  /// call commits a new index generation (see version()).
  void Finalize();

  /// Monotonic generation counter, bumped by each Finalize(). The
  /// System mirrors it into the result cache's "docs" epoch so cached
  /// results computed against an older index can never be served.
  uint64_t version() const { return version_; }

  /// Top-k BM25 results for a free-text query.
  std::vector<SearchHit> Search(const std::string& query, size_t k) const;

  /// Interruptible variant: the scoring loop polls `intr` between terms
  /// and every few thousand postings, returning kDeadlineExceeded /
  /// kCancelled instead of scoring to completion. When `opts` selects
  /// the parallel path, long posting lists have their per-posting BM25
  /// contributions computed in parallel chunks and applied serially in
  /// posting order — the accumulation order (and therefore every score
  /// bit) matches the serial path exactly.
  Result<std::vector<SearchHit>> Search(
      const std::string& query, size_t k, const Interrupt& intr,
      const ExecutorOptions& opts = {}) const;

  size_t NumDocuments() const { return doc_lengths_.size(); }
  size_t VocabularySize() const { return postings_.size(); }

 private:
  struct Posting {
    uint32_t doc_index;
    uint32_t term_freq;
  };

  Options options_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<uint32_t> doc_lengths_;
  std::vector<text::DocId> doc_ids_;
  std::vector<std::string> titles_;
  double avg_doc_length_ = 0;
  bool finalized_ = false;
  uint64_t version_ = 0;
};

/// Builds a result snippet for `doc`: the sentence (markup stripped)
/// containing the most query terms, truncated to `max_chars`. Falls back
/// to the document's opening text when no term matches.
std::string MakeSnippet(const text::Document& doc,
                        const std::string& query, size_t max_chars = 160);

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_KEYWORD_INDEX_H_
