#include "query/result_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdbms/value.h"

namespace structura::query {

namespace {

/// Cached counters/gauges — registry pointers are stable for the
/// process lifetime, so one lookup each suffices.
struct CacheMetrics {
  obs::Counter* hit;
  obs::Counter* miss;
  obs::Counter* evict;
  obs::Counter* inval;
  obs::Counter* reject;
  obs::Gauge* bytes;
  obs::Gauge* entries;

  static CacheMetrics& Get() {
    static CacheMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      CacheMetrics out;
      out.hit = r.GetCounter("query.cache.hit");
      out.miss = r.GetCounter("query.cache.miss");
      out.evict = r.GetCounter("query.cache.evict");
      out.inval = r.GetCounter("query.cache.inval");
      out.reject = r.GetCounter("query.cache.reject");
      out.bytes = r.GetGauge("query.cache.bytes");
      out.entries = r.GetGauge("query.cache.entries");
      return out;
    }();
    return m;
  }
};

/// Rough retained-memory estimate for budget accounting: container
/// headers plus string payloads. Exactness doesn't matter — it only has
/// to scale with the real footprint.
size_t ApproxBytes(const Relation& r) {
  size_t b = sizeof(Relation);
  for (const std::string& c : r.columns()) b += sizeof(std::string) + c.size();
  for (const Row& row : r.rows()) {
    b += sizeof(Row);
    for (const Value& v : row) {
      b += sizeof(Value);
      if (v.type() == rdbms::ValueType::kString) b += v.as_string().size();
    }
  }
  return b;
}

}  // namespace

uint64_t EpochMap::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = epochs_.find(name);
  return it == epochs_.end() ? 0 : it->second;
}

void EpochMap::Bump(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epochs_[name];
}

EpochVector EpochMap::Snapshot(
    const std::vector<std::string>& inputs) const {
  EpochVector out;
  out.reserve(inputs.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& name : inputs) {
    auto it = epochs_.find(name);
    out.emplace_back(name, it == epochs_.end() ? 0 : it->second);
  }
  return out;
}

QueryResultCache::QueryResultCache(Options opts) : options_(opts) {}

std::optional<Relation> QueryResultCache::Lookup(
    const std::string& fingerprint) {
  TRACE_SPAN("query.cache.lookup");
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    bool current = true;
    for (const auto& [name, epoch] : it->second->at) {
      if (epochs_.Get(name) != epoch) {
        current = false;
        break;
      }
    }
    if (current) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      Relation out = it->second->result;
      lock.unlock();
      CacheMetrics::Get().hit->Increment();
      TRACE_SPAN("query.cache.hit");
      return out;
    }
    // Some input moved on since this entry was computed: the entry is
    // garbage by construction, drop it now. This lazy erase is what
    // keeps Bump O(1).
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    stats_.entries = index_.size();
    stats_.bytes = bytes_;
    CacheMetrics::Get().inval->Increment();
    CacheMetrics::Get().bytes->Set(static_cast<int64_t>(bytes_));
    CacheMetrics::Get().entries->Set(static_cast<int64_t>(index_.size()));
  }
  ++stats_.misses;
  lock.unlock();
  CacheMetrics::Get().miss->Increment();
  TRACE_SPAN("query.cache.miss");
  return std::nullopt;
}

void QueryResultCache::Insert(const std::string& fingerprint, EpochVector at,
                              Relation result, const obs::CostVector& cost) {
  TRACE_SPAN("query.cache.insert");
  size_t bytes = ApproxBytes(result);
  if (cost.Score() < options_.min_cost_score || bytes > options_.max_bytes ||
      options_.max_entries == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    CacheMetrics::Get().reject->Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{fingerprint, std::move(at), std::move(result), bytes});
  index_[fingerprint] = lru_.begin();
  bytes_ += bytes;
  EvictLocked();
  stats_.entries = index_.size();
  stats_.bytes = bytes_;
  CacheMetrics::Get().bytes->Set(static_cast<int64_t>(bytes_));
  CacheMetrics::Get().entries->Set(static_cast<int64_t>(index_.size()));
}

void QueryResultCache::EvictLocked() {
  while (!lru_.empty() && (index_.size() > options_.max_entries ||
                           bytes_ > options_.max_bytes)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.fingerprint);
    lru_.pop_back();
    ++stats_.evictions;
    CacheMetrics::Get().evict->Increment();
  }
}

void QueryResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.entries = 0;
  stats_.bytes = 0;
  CacheMetrics::Get().bytes->Set(0);
  CacheMetrics::Get().entries->Set(0);
}

QueryResultCache::Stats QueryResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace structura::query
