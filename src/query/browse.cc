#include "query/browse.h"

#include <algorithm>

#include "common/strings.h"

namespace structura::query {
namespace {

/// Attributes whose values name other entities — the browsing edges.
bool IsEntityValued(const std::string& attribute) {
  return attribute == "mayor" || attribute == "residence" ||
         attribute == "headquarters";
}

}  // namespace

Result<EntityProfile> BuildProfile(
    const std::vector<uncertainty::AttributeBelief>& beliefs,
    const std::string& subject) {
  EntityProfile profile;
  profile.subject = subject;
  for (const uncertainty::AttributeBelief& b : beliefs) {
    if (b.subject != subject) continue;
    const uncertainty::ValueAlternative* top = b.Top();
    if (top == nullptr) continue;
    ProfileAttribute attr;
    attr.attribute = b.attribute;
    attr.value = top->value;
    attr.confidence = top->probability;
    // Competing values, strongest first.
    std::vector<const uncertainty::ValueAlternative*> others;
    for (const uncertainty::ValueAlternative& alt : b.alternatives) {
      if (alt.value != top->value && alt.probability > 0) {
        others.push_back(&alt);
      }
    }
    std::sort(others.begin(), others.end(),
              [](const auto* a, const auto* b) {
                return a->probability > b->probability;
              });
    for (const auto* alt : others) {
      attr.alternatives.push_back(alt->value);
    }
    if (IsEntityValued(b.attribute)) {
      profile.related.push_back(top->value);
    }
    profile.attributes.push_back(std::move(attr));
  }
  if (profile.attributes.empty()) {
    return Status::NotFound("nothing known about " + subject);
  }
  std::sort(profile.attributes.begin(), profile.attributes.end(),
            [](const ProfileAttribute& a, const ProfileAttribute& b) {
              return a.attribute < b.attribute;
            });
  std::sort(profile.related.begin(), profile.related.end());
  profile.related.erase(
      std::unique(profile.related.begin(), profile.related.end()),
      profile.related.end());
  return profile;
}

std::vector<std::pair<std::string, std::string>> ReferencedBy(
    const std::vector<uncertainty::AttributeBelief>& beliefs,
    const std::string& subject) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const uncertainty::AttributeBelief& b : beliefs) {
    if (!IsEntityValued(b.attribute)) continue;
    const uncertainty::ValueAlternative* top = b.Top();
    if (top == nullptr || top->value != subject) continue;
    out.emplace_back(b.subject, b.attribute);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string RenderProfile(const EntityProfile& profile) {
  std::string out = "== " + profile.subject + " ==\n";
  for (const ProfileAttribute& attr : profile.attributes) {
    out += StrFormat("  %-14s %-20s (%.2f)", attr.attribute.c_str(),
                     attr.value.c_str(), attr.confidence);
    if (!attr.alternatives.empty()) {
      out += "  also seen: " + Join(attr.alternatives, ", ");
    }
    out += '\n';
  }
  if (!profile.related.empty()) {
    out += "  see also: " + Join(profile.related, ", ") + "\n";
  }
  return out;
}

}  // namespace structura::query
