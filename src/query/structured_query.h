#ifndef STRUCTURA_QUERY_STRUCTURED_QUERY_H_
#define STRUCTURA_QUERY_STRUCTURED_QUERY_H_

#include <string>
#include <vector>

#include "query/relation.h"

namespace structura::query {

/// A declarative query over a derived-structure view: conjunctive
/// filters, optional grouping/aggregation, ordering and limit. This is
/// the object the keyword translator produces, the form renderer shows
/// to ordinary users, and the executor runs.
struct StructuredQuery {
  std::string source_view;              // e.g. "facts"
  std::vector<Condition> where;
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;      // empty = plain select
  std::vector<std::string> select;      // projection; empty = natural output
  std::string order_by;                 // empty = no ordering
  bool descending = false;
  size_t limit = 0;                     // 0 = no limit

  /// SQL-ish rendering for sophisticated users.
  std::string ToSql() const;

  /// Form rendering for ordinary users — the "guess and show the user
  /// several structured queries using form interfaces" surface from
  /// Section 3.2.
  std::string ToFormText() const;
};

/// Runs the query against the relation registered under its source view.
/// `intr` is polled between pipeline stages and inside the scans;
/// evaluation stops with kDeadlineExceeded / kCancelled when it fires.
/// `opts` selects serial vs morsel-parallel execution for the
/// filter/aggregate/project stages (see ExecutorOptions for the
/// determinism contract).
Result<Relation> ExecuteStructuredQuery(
    const StructuredQuery& q, const Relation& source,
    const Interrupt& intr = Interrupt{}, const ExecutorOptions& opts = {});

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_STRUCTURED_QUERY_H_
