#ifndef STRUCTURA_QUERY_BROWSE_H_
#define STRUCTURA_QUERY_BROWSE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "uncertainty/confidence.h"

namespace structura::query {

/// Browsing — one of the exploitation modes the DGE model must support
/// ("keyword search, structured querying, browsing, visualization",
/// Section 3.2). An entity profile assembles everything the system
/// believes about one subject, with confidences, ready to render.

struct ProfileAttribute {
  std::string attribute;
  std::string value;
  double confidence = 0;
  /// Competing values, strongest first (excludes the chosen one).
  std::vector<std::string> alternatives;
};

struct EntityProfile {
  std::string subject;
  std::vector<ProfileAttribute> attributes;  // sorted by attribute name
  /// Subjects this entity references through entity-valued attributes
  /// (mayor, residence, headquarters) — the browsing graph's out-edges.
  std::vector<std::string> related;
};

/// Builds the profile of `subject` from beliefs. Fails with kNotFound
/// when the system believes nothing about the subject.
Result<EntityProfile> BuildProfile(
    const std::vector<uncertainty::AttributeBelief>& beliefs,
    const std::string& subject);

/// Entities whose attributes point at `subject` (in-edges: "who lives
/// here", "whose mayor is this person").
std::vector<std::pair<std::string, std::string>> ReferencedBy(
    const std::vector<uncertainty::AttributeBelief>& beliefs,
    const std::string& subject);

/// Renders a profile as a text card (the CLI browsing surface).
std::string RenderProfile(const EntityProfile& profile);

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_BROWSE_H_
