#include "query/standing_query.h"

#include "common/hash.h"
#include "common/strings.h"

namespace structura::query {

Status StandingQueryRegistry::Add(Spec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("standing query needs a name");
  }
  if (specs_.count(spec.name) > 0) {
    return Status::AlreadyExists("standing query " + spec.name);
  }
  specs_[spec.name] = std::move(spec);
  return Status::OK();
}

Status StandingQueryRegistry::Remove(const std::string& name) {
  last_fingerprint_.erase(name);
  return specs_.erase(name) > 0
             ? Status::OK()
             : Status::NotFound("standing query " + name);
}

std::vector<std::string> StandingQueryRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) names.push_back(name);
  return names;
}

std::string StandingQueryRegistry::Fingerprint(const Relation& rel) {
  uint64_t h = 1469598103934665603ULL;
  for (const Row& row : rel.rows()) {
    std::string blob;
    for (const Value& v : row) v.AppendTo(&blob);
    h = HashCombine(h, Fnv1a64(blob));
  }
  return StrFormat("%zu:%llx", rel.size(),
                   static_cast<unsigned long long>(h));
}

Result<std::vector<Alert>> StandingQueryRegistry::Evaluate(
    const std::string& view_name, const Relation& view) {
  std::vector<Alert> alerts;
  for (auto& [name, spec] : specs_) {
    if (spec.query.source_view != view_name) continue;
    STRUCTURA_ASSIGN_OR_RETURN(Relation result,
                               ExecuteStructuredQuery(spec.query, view));
    std::string fp = Fingerprint(result);
    auto last = last_fingerprint_.find(name);
    bool first = last == last_fingerprint_.end();
    bool changed = !first && last->second != fp;
    last_fingerprint_[name] = fp;

    if (spec.on_change && (first || changed)) {
      Alert alert;
      alert.query_name = name;
      alert.kind = first ? "first_result" : "changed";
      alert.message = StrFormat("%s: result set %s (%zu rows)",
                                name.c_str(),
                                first ? "established" : "changed",
                                result.size());
      alert.result = result;
      alerts.push_back(std::move(alert));
    }
    if (!spec.threshold_column.empty() && !result.empty()) {
      Condition cond{spec.threshold_column, spec.threshold_op,
                     Value::Double(spec.threshold)};
      const Value& v = result.At(0, spec.threshold_column);
      if (cond.Eval(v)) {
        Alert alert;
        alert.query_name = name;
        alert.kind = "threshold";
        alert.message = StrFormat(
            "%s: %s = %s crosses threshold (%s %.3f)", name.c_str(),
            spec.threshold_column.c_str(), v.ToString().c_str(),
            CompareOpName(spec.threshold_op), spec.threshold);
        alert.result = std::move(result);
        alerts.push_back(std::move(alert));
      }
    }
  }
  return alerts;
}

}  // namespace structura::query
