#include "query/structured_query.h"

#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::query {

std::string StructuredQuery::ToSql() const {
  std::string out = "SELECT ";
  std::vector<std::string> items;
  for (const std::string& g : group_by) items.push_back(g);
  for (const AggSpec& a : aggregates) {
    items.push_back(StrFormat("%s(%s)", AggFnName(a.fn),
                              a.column.empty() ? "*" : a.column.c_str()));
  }
  if (items.empty()) {
    if (select.empty()) {
      items.push_back("*");
    } else {
      items = select;
    }
  }
  out += Join(items, ", ");
  out += " FROM " + source_view;
  if (!where.empty()) {
    out += " WHERE ";
    std::vector<std::string> conds;
    for (const Condition& c : where) conds.push_back(c.ToString());
    out += Join(conds, " AND ");
  }
  if (!group_by.empty()) {
    out += " GROUP BY " + Join(group_by, ", ");
  }
  if (!order_by.empty()) {
    out += " ORDER BY " + order_by + (descending ? " DESC" : "");
  }
  if (limit > 0) out += StrFormat(" LIMIT %zu", limit);
  return out;
}

std::string StructuredQuery::ToFormText() const {
  std::string out = "+----------------------------------------+\n";
  out += StrFormat("| Query over: %-26s |\n", source_view.c_str());
  for (const Condition& c : where) {
    out += StrFormat("|   where %-30s |\n", c.ToString().c_str());
  }
  for (const AggSpec& a : aggregates) {
    out += StrFormat("|   compute %-28s |\n",
                     StrFormat("%s of %s", AggFnName(a.fn),
                               a.column.empty() ? "*" : a.column.c_str())
                         .c_str());
  }
  if (!group_by.empty()) {
    out += StrFormat("|   per %-32s |\n", Join(group_by, ", ").c_str());
  }
  out += "+----------------------------------------+";
  return out;
}

Result<Relation> ExecuteStructuredQuery(const StructuredQuery& q,
                                        const Relation& source,
                                        const Interrupt& intr,
                                        const ExecutorOptions& opts) {
  TRACE_SPAN("query.structured");
  static obs::Counter* queries =
      obs::MetricsRegistry::Default().GetCounter("query.structured.queries");
  static obs::Histogram* latency = obs::MetricsRegistry::Default().GetHistogram(
      "query.structured.latency_ns");
  queries->Increment();
  obs::ScopedLatency record_latency(latency);
  obs::ChargeCost(obs::CostDim::kRowsScanned, source.size());
  STRUCTURA_RETURN_IF_ERROR(intr.Check());
  Relation current = source;
  if (!q.where.empty()) {
    STRUCTURA_ASSIGN_OR_RETURN(current, Filter(current, q.where, intr, opts));
  }
  STRUCTURA_RETURN_IF_ERROR(intr.Check());
  if (!q.aggregates.empty() || !q.group_by.empty()) {
    STRUCTURA_ASSIGN_OR_RETURN(
        current, Aggregate(current, q.group_by, q.aggregates, intr, opts));
  } else if (!q.select.empty()) {
    STRUCTURA_ASSIGN_OR_RETURN(current, Project(current, q.select, intr, opts));
  }
  STRUCTURA_RETURN_IF_ERROR(intr.Check());
  if (!q.order_by.empty()) {
    STRUCTURA_ASSIGN_OR_RETURN(current,
                               OrderBy(current, q.order_by, q.descending));
  }
  if (q.limit > 0) current = Limit(current, q.limit);
  return current;
}

}  // namespace structura::query
