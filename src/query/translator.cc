#include "query/translator.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/strings.h"
#include "corpus/records.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/tokenizer.h"

namespace structura::query {
namespace {

struct AggWord {
  const char* word;
  AggFn fn;
};

constexpr AggWord kAggWords[] = {
    {"average", AggFn::kAvg}, {"avg", AggFn::kAvg},
    {"mean", AggFn::kAvg},    {"total", AggFn::kSum},
    {"sum", AggFn::kSum},     {"count", AggFn::kCount},
    {"many", AggFn::kCount},  {"max", AggFn::kMax},
    {"highest", AggFn::kMax}, {"hottest", AggFn::kMax},
    {"largest", AggFn::kMax}, {"min", AggFn::kMin},
    {"lowest", AggFn::kMin},  {"coldest", AggFn::kMin},
    {"smallest", AggFn::kMin}};

/// Month token -> "01".."12".
std::optional<std::string> MonthNumber(const std::string& token) {
  for (int m = 0; m < corpus::kMonthsPerYear; ++m) {
    if (ToLower(corpus::kMonthNames[m]) == token) {
      return StrFormat("%02d", m + 1);
    }
  }
  return std::nullopt;
}

}  // namespace

void KeywordTranslator::BuildVocabulary(const Relation& facts) {
  subjects_.clear();
  attributes_.clear();
  std::set<std::string> subject_set, attribute_set;
  int si = facts.ColumnIndex(options_.subject_column);
  int ai = facts.ColumnIndex(options_.attribute_column);
  for (const Row& row : facts.rows()) {
    if (si >= 0) subject_set.insert(row[static_cast<size_t>(si)].ToString());
    if (ai >= 0) {
      attribute_set.insert(row[static_cast<size_t>(ai)].ToString());
    }
  }
  for (const std::string& s : subject_set) {
    SubjectEntry entry;
    entry.canonical = s;
    entry.tokens = text::WordTokens(s);
    subjects_.push_back(std::move(entry));
  }
  attributes_.assign(attribute_set.begin(), attribute_set.end());
  // Built-in synonyms for the standard attribute family.
  synonyms_ = {
      {"temperature", "temp_%"}, {"temperatures", "temp_%"},
      {"temp", "temp_%"},        {"population", "population"},
      {"people", "population"},  {"residents", "population"},
      {"founded", "founded"},    {"founding", "founded"},
      {"elevation", "elevation"},{"altitude", "elevation"},
      {"mayor", "mayor"},        {"residence", "residence"},
      {"lives", "residence"},    {"employees", "employees"},
      {"headquarters", "headquarters"},
  };
}

void KeywordTranslator::AddAttributeSynonym(
    const std::string& word, const std::string& attribute_pattern) {
  synonyms_.emplace_back(ToLower(word), attribute_pattern);
}

std::vector<QueryForm> KeywordTranslator::Translate(
    const std::string& keywords) const {
  // An infinite interrupt can't fire, so the Result is always a value.
  return *Translate(keywords, Interrupt{});
}

Result<std::vector<QueryForm>> KeywordTranslator::Translate(
    const std::string& keywords, const Interrupt& intr) const {
  TRACE_SPAN("query.translate");
  static obs::Counter* translations =
      obs::MetricsRegistry::Default().GetCounter("query.translate.requests");
  static obs::Histogram* latency = obs::MetricsRegistry::Default().GetHistogram(
      "query.translate.latency_ns");
  translations->Increment();
  obs::ScopedLatency record_latency(latency);
  constexpr size_t kCheckEvery = 256;
  std::vector<std::string> tokens = text::WordTokens(keywords);
  std::vector<bool> consumed(tokens.size(), false);

  // 1. Aggregate words.
  std::optional<AggFn> agg;
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (const AggWord& w : kAggWords) {
      if (tokens[i] == w.word) {
        agg = w.fn;
        consumed[i] = true;
        break;
      }
    }
  }

  // 2. Month tokens (possibly a range like "March September").
  std::vector<std::string> months;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::optional<std::string> m = MonthNumber(tokens[i]);
    if (m.has_value()) {
      months.push_back(*m);
      consumed[i] = true;
    }
  }

  // 3. Attribute synonyms.
  std::vector<std::string> attr_patterns;
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (const auto& [word, pattern] : synonyms_) {
      if (tokens[i] == word) {
        if (std::find(attr_patterns.begin(), attr_patterns.end(),
                      pattern) == attr_patterns.end()) {
          attr_patterns.push_back(pattern);
        }
        consumed[i] = true;
      }
    }
  }
  // Exact attribute names typed verbatim.
  size_t since_check = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!attributes_.empty() &&
        (since_check += attributes_.size()) >= kCheckEvery) {
      since_check = 0;
      STRUCTURA_RETURN_IF_ERROR(intr.Check());
    }
    for (const std::string& attr : attributes_) {
      if (tokens[i] == ToLower(attr)) {
        if (std::find(attr_patterns.begin(), attr_patterns.end(), attr) ==
            attr_patterns.end()) {
          attr_patterns.push_back(attr);
        }
        consumed[i] = true;
      }
    }
  }

  // 4. Subject matches: a subject matches if all its tokens appear in
  // the (unconsumed-or-not) query; prefer longer subjects.
  std::vector<std::pair<const SubjectEntry*, size_t>> subject_hits;
  since_check = 0;
  for (const SubjectEntry& s : subjects_) {
    if (++since_check >= kCheckEvery) {
      since_check = 0;
      STRUCTURA_RETURN_IF_ERROR(intr.Check());
    }
    if (s.tokens.empty()) continue;
    size_t found = 0;
    for (const std::string& st : s.tokens) {
      if (std::find(tokens.begin(), tokens.end(), st) != tokens.end()) {
        ++found;
      }
    }
    if (found == s.tokens.size()) {
      subject_hits.emplace_back(&s, found);
    }
  }
  std::sort(subject_hits.begin(), subject_hits.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first->canonical < b.first->canonical;
            });
  // Mark subject tokens consumed (best hit only, for scoring).
  if (!subject_hits.empty()) {
    for (const std::string& st : subject_hits.front().first->tokens) {
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i] == st) consumed[i] = true;
      }
    }
  }

  // Scoring basis: fraction of query tokens explained.
  size_t explained = 0;
  for (bool c : consumed) explained += c ? 1 : 0;
  double base_score =
      tokens.empty() ? 0
                     : static_cast<double>(explained) /
                           static_cast<double>(tokens.size());

  // Candidate assembly: subjects x attribute patterns (bounded).
  std::vector<QueryForm> forms;
  auto add_candidate = [&](const SubjectEntry* subject,
                           const std::string& attr_pattern,
                           double bonus) {
    StructuredQuery q;
    q.source_view = options_.fact_view;
    if (subject != nullptr) {
      q.where.push_back(Condition{options_.subject_column, CompareOp::kEq,
                                  Value::Str(subject->canonical)});
    }
    std::string gloss;
    if (!attr_pattern.empty()) {
      if (months.size() >= 2 && attr_pattern == "temp_%") {
        // Month range: temp_MM sorts lexicographically.
        std::string lo = *std::min_element(months.begin(), months.end());
        std::string hi = *std::max_element(months.begin(), months.end());
        q.where.push_back(Condition{options_.attribute_column,
                                    CompareOp::kGe,
                                    Value::Str("temp_" + lo)});
        q.where.push_back(Condition{options_.attribute_column,
                                    CompareOp::kLe,
                                    Value::Str("temp_" + hi)});
      } else if (months.size() == 1 && attr_pattern == "temp_%") {
        q.where.push_back(Condition{options_.attribute_column,
                                    CompareOp::kEq,
                                    Value::Str("temp_" + months[0])});
      } else if (attr_pattern.find('%') != std::string::npos) {
        q.where.push_back(Condition{options_.attribute_column,
                                    CompareOp::kLike,
                                    Value::Str(attr_pattern)});
      } else {
        q.where.push_back(Condition{options_.attribute_column,
                                    CompareOp::kEq,
                                    Value::Str(attr_pattern)});
      }
    }
    if (agg.has_value()) {
      AggSpec spec;
      spec.fn = *agg;
      spec.column = *agg == AggFn::kCount ? "" : options_.value_column;
      spec.output_name = "result";
      q.aggregates.push_back(spec);
      if (subject == nullptr) {
        // No subject named: aggregate per subject.
        q.group_by.push_back(options_.subject_column);
      }
    } else {
      q.select = {options_.subject_column, options_.attribute_column,
                  options_.value_column};
    }
    QueryForm form;
    form.query = std::move(q);
    form.score = base_score + bonus;
    form.description = form.query.ToSql();
    forms.push_back(std::move(form));
  };

  const SubjectEntry* top_subject =
      subject_hits.empty() ? nullptr : subject_hits.front().first;
  if (!attr_patterns.empty()) {
    for (const std::string& pattern : attr_patterns) {
      add_candidate(top_subject, pattern, 0.2);
      // Alternative readings with other matched subjects.
      for (size_t i = 1; i < std::min<size_t>(2, subject_hits.size());
           ++i) {
        add_candidate(subject_hits[i].first, pattern, 0.1);
      }
      // Reading without a subject filter (aggregate across all).
      if (top_subject != nullptr) add_candidate(nullptr, pattern, 0.05);
    }
  } else if (top_subject != nullptr) {
    add_candidate(top_subject, "", 0.1);
  }

  std::stable_sort(forms.begin(), forms.end(),
                   [](const QueryForm& a, const QueryForm& b) {
                     return a.score > b.score;
                   });
  if (forms.size() > options_.max_candidates) {
    forms.resize(options_.max_candidates);
  }
  return forms;
}

}  // namespace structura::query
