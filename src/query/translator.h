#ifndef STRUCTURA_QUERY_TRANSLATOR_H_
#define STRUCTURA_QUERY_TRANSLATOR_H_

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "query/relation.h"
#include "query/structured_query.h"

namespace structura::query {

/// One candidate translation of a keyword query, ranked by how much of
/// the query it explains.
struct QueryForm {
  StructuredQuery query;
  double score = 0;
  std::string description;  // one-line gloss shown with the form
};

/// Translates ordinary users' keyword queries into candidate structured
/// queries over a fact view (columns: subject / attribute / value ...).
/// This is the exploitation problem the paper predicts the field will hit
/// (Section 3.3): "how to enable ordinary users to easily ask structured
/// queries over the derived structured data". The translator mines its
/// vocabulary from the data itself: known subjects, known attributes,
/// attribute synonyms, aggregate words, and month names (which map to
/// the temp_MM attribute family).
class KeywordTranslator {
 public:
  struct Options {
    std::string fact_view = "facts";
    std::string subject_column = "subject";
    std::string attribute_column = "attribute";
    std::string value_column = "value";
    size_t max_candidates = 5;
  };

  KeywordTranslator() : KeywordTranslator(Options()) {}
  explicit KeywordTranslator(Options options)
      : options_(std::move(options)) {}

  /// Learns subjects and attributes present in `facts`.
  void BuildVocabulary(const Relation& facts);

  /// Registers an extra natural-language synonym for an attribute
  /// (pattern may use '%', e.g. "temperature" -> "temp_%").
  void AddAttributeSynonym(const std::string& word,
                           const std::string& attribute_pattern);

  /// Ranked candidate structured queries for `keywords`.
  std::vector<QueryForm> Translate(const std::string& keywords) const;

  /// Interruptible variant: the subject-matching loop (linear in the
  /// learned vocabulary) polls `intr` and returns kDeadlineExceeded /
  /// kCancelled instead of finishing translation.
  Result<std::vector<QueryForm>> Translate(const std::string& keywords,
                                           const Interrupt& intr) const;

  size_t NumSubjects() const { return subjects_.size(); }
  size_t NumAttributes() const { return attributes_.size(); }

 private:
  struct SubjectEntry {
    std::string canonical;
    std::vector<std::string> tokens;  // lowercased
  };

  Options options_;
  std::vector<SubjectEntry> subjects_;
  std::vector<std::string> attributes_;
  std::vector<std::pair<std::string, std::string>> synonyms_;
};

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_TRANSLATOR_H_
