#ifndef STRUCTURA_QUERY_RESULT_CACHE_H_
#define STRUCTURA_QUERY_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "query/relation.h"

namespace structura::query {

/// A recorded (input name, epoch) pair — the version of one named input
/// a cached result was computed against.
using EpochVector = std::vector<std::pair<std::string, uint64_t>>;

/// Monotonic version counters for every named input a query can read.
/// The convention used across the system:
///   "table:<name>"  — bumped by the Database commit listener for every
///                     table a *committed* transaction touched (and on
///                     DDL). Aborted or durability-failed transactions
///                     never reach the listener, so they can never bump.
///   "view:<name>"   — bumped when a view is (re)created, refreshed, or
///                     schema-unified.
///   "docs"          — bumped when the document collection / keyword
///                     index is rebuilt by ingestion.
/// Bump is an O(1) counter increment: writers never walk the cache.
/// Cached entries carry the epochs they were computed at and are
/// validated lazily on lookup, so a stale hit is structurally
/// impossible no matter how lookups and bumps interleave.
class EpochMap {
 public:
  /// Current epoch for `name` (0 = never written since startup).
  uint64_t Get(const std::string& name) const;

  /// O(1) version bump; invalidates every cache entry that reads
  /// `name` (lazily, at their next lookup).
  void Bump(const std::string& name);

  /// Epoch vector for a set of input names. Callers snapshot BEFORE
  /// executing the query and pass the snapshot to Insert — a write
  /// committing mid-execution then leaves the entry recorded at the
  /// pre-write epoch, and the first lookup discards it.
  EpochVector Snapshot(const std::vector<std::string>& inputs) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, uint64_t> epochs_;
};

/// Bounded, epoch-validated cache of query results, keyed by canonical
/// plan fingerprint. Eviction is LRU under both an entry count and a
/// byte budget; admission is cost-aware (entries cheaper to recompute
/// than `min_cost_score` are not worth their memory). All metrics are
/// published as query.cache.{hit,miss,evict,inval,reject,bytes,entries}.
class QueryResultCache {
 public:
  struct Options {
    size_t max_entries = 1024;
    size_t max_bytes = 8u << 20;
    /// CostVector::Score() floor for admission; 0 admits everything.
    uint64_t min_cost_score = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;      // LRU / budget evictions
    uint64_t invalidations = 0;  // entries dropped on epoch mismatch
    uint64_t rejected = 0;       // admission refused (cost/size)
    size_t entries = 0;
    size_t bytes = 0;
  };

  QueryResultCache() : QueryResultCache(Options()) {}
  explicit QueryResultCache(Options opts);

  /// The version counters writers bump. Shared with the cache so
  /// validation and bumping agree on one source of truth.
  EpochMap& epochs() { return epochs_; }
  const EpochMap& epochs() const { return epochs_; }

  /// Returns the cached relation iff an entry exists AND every epoch it
  /// was computed at still matches the live map. A mismatching entry is
  /// erased on the spot (counted as an invalidation) and reported as a
  /// miss.
  std::optional<Relation> Lookup(const std::string& fingerprint);

  /// Admits `result` under `fingerprint`, recorded at `at` (the epoch
  /// snapshot taken before execution — see EpochMap::Snapshot). Entries
  /// below the admission cost floor, or alone bigger than the whole
  /// byte budget, are rejected. Replaces any previous entry for the
  /// same fingerprint.
  void Insert(const std::string& fingerprint, EpochVector at,
              Relation result, const obs::CostVector& cost);

  /// Drops every entry (stats and epochs are preserved).
  void Clear();

  Stats stats() const;

 private:
  struct Entry {
    std::string fingerprint;
    EpochVector at;
    Relation result;
    size_t bytes = 0;
  };

  /// Evicts from the LRU tail until budgets hold. Caller holds mutex_.
  void EvictLocked();

  Options options_;
  EpochMap epochs_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace structura::query

#endif  // STRUCTURA_QUERY_RESULT_CACHE_H_
