#ifndef STRUCTURA_IE_PATTERN_LEARNER_H_
#define STRUCTURA_IE_PATTERN_LEARNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "corpus/records.h"
#include "ie/extractor.h"
#include "ie/template_extractor.h"
#include "text/document.h"

namespace structura::ie {

/// One labeled occurrence of an attribute value in a document: the raw
/// material for pattern induction (the IE tradition the paper builds on:
/// learn extraction rules from a few labeled pages, apply them to the
/// rest of the slice).
struct PatternExample {
  const text::Document* doc = nullptr;
  text::Span value_span;      // where the value sits in doc->text
  std::string attribute;
};

/// A learned pattern, before compilation: the token context around the
/// value slot and its support.
struct LearnedPattern {
  std::string attribute;
  std::vector<std::string> prefix;  // lowercased tokens before the value
  std::string value_kind;           // "number" or "name"
  std::vector<std::string> suffix;  // lowercased tokens after the value
  size_t support = 0;

  std::string ToPatternString() const;  // TemplateExtractor syntax
};

/// Induces extraction patterns from labeled examples: for every
/// (attribute, prefix-window, value-kind, suffix-window) context seen at
/// least `min_support` times, emits one pattern. Compile() turns the
/// surviving patterns into ready-to-run TemplateExtractors.
class PatternLearner {
 public:
  struct Options {
    size_t prefix_tokens = 3;
    size_t suffix_tokens = 1;
    size_t min_support = 3;
    double confidence = 0.75;  // assigned to extractors built from rules
  };

  PatternLearner() : PatternLearner(Options()) {}
  explicit PatternLearner(Options options) : options_(options) {}

  /// Learns patterns; replaces previous state.
  void Learn(const std::vector<PatternExample>& examples);

  const std::vector<LearnedPattern>& patterns() const { return patterns_; }

  /// Compiles every learned pattern into a TemplateExtractor
  /// ("learned_<attribute>_<i>").
  Result<std::vector<ExtractorPtr>> Compile() const;

 private:
  Options options_;
  std::vector<LearnedPattern> patterns_;
};

/// Builds labeled examples from corpus ground truth by locating each
/// planted fact's value in its page's free text (values that only occur
/// inside the infobox are skipped — rule induction targets prose).
/// `max_docs` bounds how many documents are used (train/test splits).
std::vector<PatternExample> BuildPatternExamples(
    const text::DocumentCollection& docs, const corpus::GroundTruth& truth,
    size_t max_docs = 0);

}  // namespace structura::ie

#endif  // STRUCTURA_IE_PATTERN_LEARNER_H_
