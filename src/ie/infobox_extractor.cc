#include "ie/infobox_extractor.h"

#include <algorithm>

#include "text/wiki_markup.h"

namespace structura::ie {

std::vector<ExtractedFact> InfoboxExtractor::Extract(
    const text::Document& doc) const {
  std::vector<ExtractedFact> out;
  for (const text::Infobox& box : text::ParseInfoboxes(doc.text)) {
    if (!options_.type_filter.empty() &&
        box.type != options_.type_filter) {
      continue;
    }
    // Subject: the infobox's own name entry when present, else the title.
    std::string subject = box.Has("name") ? box.Get("name") : doc.title;
    for (const auto& [key, value] : box.entries) {
      if (key == "name" || value.empty()) continue;
      if (!options_.keys.empty() &&
          std::find(options_.keys.begin(), options_.keys.end(), key) ==
              options_.keys.end()) {
        continue;
      }
      ExtractedFact fact;
      fact.doc = doc.id;
      fact.subject = subject;
      fact.attribute = key;
      fact.value = value;
      fact.span = box.span;
      fact.extractor = name();
      fact.confidence = options_.confidence;
      out.push_back(std::move(fact));
    }
  }
  return out;
}

}  // namespace structura::ie
