#include "ie/regex_extractor.h"

namespace structura::ie {

Result<std::unique_ptr<RegexExtractor>> RegexExtractor::Create(Spec spec) {
  std::unique_ptr<RegexExtractor> ex(new RegexExtractor(std::move(spec)));
  try {
    ex->regex_ = std::regex(ex->spec_.pattern,
                            std::regex::ECMAScript | std::regex::icase);
  } catch (const std::regex_error& e) {
    return Status::InvalidArgument(std::string("bad regex: ") + e.what());
  }
  if (ex->spec_.value_group < 0) {
    return Status::InvalidArgument("value_group must be >= 0");
  }
  return ex;
}

std::vector<ExtractedFact> RegexExtractor::Extract(
    const text::Document& doc) const {
  std::vector<ExtractedFact> out;
  auto begin = std::sregex_iterator(doc.text.begin(), doc.text.end(),
                                    regex_);
  auto end = std::sregex_iterator();
  for (auto it = begin; it != end; ++it) {
    const std::smatch& m = *it;
    if (static_cast<size_t>(spec_.value_group) >= m.size()) continue;
    if (!m[static_cast<size_t>(spec_.value_group)].matched) continue;
    ExtractedFact fact;
    fact.doc = doc.id;
    fact.subject = doc.title;
    fact.attribute = spec_.attribute;
    fact.value = m[static_cast<size_t>(spec_.value_group)].str();
    size_t pos = static_cast<size_t>(
        m.position(static_cast<size_t>(spec_.value_group)));
    fact.span = text::Span{
        static_cast<uint32_t>(pos),
        static_cast<uint32_t>(pos + fact.value.size())};
    fact.extractor = name();
    fact.confidence = spec_.confidence;
    out.push_back(std::move(fact));
  }
  return out;
}

}  // namespace structura::ie
