#include "ie/nb_tagger.h"

#include <cctype>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "text/tokenizer.h"

namespace structura::ie {
namespace {

bool IsCapWord(const text::Token& tok, const std::string& src) {
  return tok.is_word &&
         std::isupper(static_cast<unsigned char>(src[tok.span.begin]));
}

bool IsSeparator(const text::Token& tok, const std::string& src) {
  return !tok.is_word && tok.span.length() == 1 &&
         (src[tok.span.begin] == '.' || src[tok.span.begin] == ',');
}

}  // namespace

std::vector<MentionCandidate> FindCandidateMentions(
    const text::Document& doc) {
  const std::string& src = doc.text;
  std::vector<text::Token> tokens = text::Tokenize(src);
  std::vector<MentionCandidate> out;
  size_t i = 0;
  while (i < tokens.size()) {
    if (!IsCapWord(tokens[i], src)) {
      ++i;
      continue;
    }
    size_t last = i;
    while (true) {
      size_t next = last + 1;
      if (next + 1 < tokens.size() && IsSeparator(tokens[next], src) &&
          IsCapWord(tokens[next + 1], src)) {
        last = next + 1;
        continue;
      }
      if (next < tokens.size() && IsCapWord(tokens[next], src)) {
        last = next;
        continue;
      }
      break;
    }
    MentionCandidate c;
    c.span = text::Span{tokens[i].span.begin, tokens[last].span.end};
    c.surface = src.substr(c.span.begin, c.span.length());
    out.push_back(std::move(c));
    i = last + 1;
  }
  return out;
}

std::vector<std::string> NaiveBayesTagger::FeaturesFor(
    const text::Document& doc, const MentionCandidate& c) {
  const std::string& src = doc.text;
  std::vector<text::Token> tokens = text::Tokenize(src);
  // Locate tokens adjacent to the span.
  std::string prev = "<bos>", next = "<eos>";
  size_t inside = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const text::Token& t = tokens[i];
    if (t.span.end <= c.span.begin && t.is_word) {
      prev = ToLower(std::string_view(src).substr(t.span.begin,
                                                  t.span.length()));
    }
    if (t.span.begin >= c.span.begin && t.span.end <= c.span.end &&
        t.is_word) {
      ++inside;
    }
    if (t.span.begin >= c.span.end && t.is_word && next == "<eos>") {
      next = ToLower(std::string_view(src).substr(t.span.begin,
                                                  t.span.length()));
    }
  }
  std::vector<std::string> features;
  features.push_back("prev=" + prev);
  features.push_back("next=" + next);
  features.push_back(StrFormat("len=%zu", inside));
  if (c.surface.find('.') != std::string::npos) features.push_back("dot");
  if (c.surface.find(',') != std::string::npos) features.push_back("comma");
  // First inner word, lowercased (lexical memory — useful for gazetteer
  // effects, and realistic for NB extractors).
  size_t sp = c.surface.find_first_of(" .,");
  features.push_back("w0=" + ToLower(c.surface.substr(
                                 0, sp == std::string::npos
                                        ? c.surface.size()
                                        : sp)));
  return features;
}

void NaiveBayesTagger::Train(const std::vector<Example>& examples) {
  label_counts_.clear();
  feature_counts_.clear();
  label_feature_totals_.clear();
  std::set<std::string> vocab;
  total_examples_ = 0;
  for (const Example& ex : examples) {
    label_counts_[ex.label] += 1;
    total_examples_ += 1;
    for (const std::string& f : ex.features) {
      feature_counts_[ex.label][f] += 1;
      label_feature_totals_[ex.label] += 1;
      vocab.insert(f);
    }
  }
  feature_vocab_ = vocab.size();
}

std::pair<std::string, double> NaiveBayesTagger::Classify(
    const std::vector<std::string>& features) const {
  if (label_counts_.empty()) return {"other", 0.0};
  std::vector<std::pair<std::string, double>> scores;
  double max_log = -1e300;
  for (const auto& [label, count] : label_counts_) {
    double log_p = std::log(count / total_examples_);
    const auto& fc = feature_counts_.at(label);
    double denom = label_feature_totals_.at(label) +
                   static_cast<double>(feature_vocab_) + 1.0;
    for (const std::string& f : features) {
      auto it = fc.find(f);
      double num = (it == fc.end() ? 0.0 : it->second) + 1.0;  // Laplace
      log_p += std::log(num / denom);
    }
    scores.emplace_back(label, log_p);
    max_log = std::max(max_log, log_p);
  }
  double z = 0;
  for (auto& [label, s] : scores) {
    s = std::exp(s - max_log);
    z += s;
  }
  std::pair<std::string, double> best{"other", 0.0};
  for (const auto& [label, s] : scores) {
    double posterior = s / z;
    if (posterior > best.second) best = {label, posterior};
  }
  return best;
}

std::vector<ExtractedFact> NaiveBayesTagger::Extract(
    const text::Document& doc) const {
  std::vector<ExtractedFact> out;
  for (const MentionCandidate& c : FindCandidateMentions(doc)) {
    auto [label, posterior] = Classify(FeaturesFor(doc, c));
    if (label == "other") continue;
    ExtractedFact fact;
    fact.doc = doc.id;
    fact.subject = c.surface;
    fact.attribute = "mention_" + label;
    fact.value = c.surface;
    fact.span = c.span;
    fact.extractor = name();
    fact.confidence = posterior;
    out.push_back(std::move(fact));
  }
  return out;
}

std::vector<NaiveBayesTagger::Example> BuildMentionTrainingSet(
    const text::DocumentCollection& docs,
    const corpus::GroundTruth& truth) {
  // Entity type lookup.
  std::unordered_map<corpus::EntityId, std::string> type_of;
  for (const auto& c : truth.cities) type_of[c.id] = "city";
  for (const auto& p : truth.people) type_of[p.id] = "person";
  for (const auto& c : truth.companies) type_of[c.id] = "company";
  // (doc, surface) -> label.
  std::unordered_map<std::string, std::string> labeled;
  for (const corpus::MentionTruth& m : truth.mentions) {
    labeled[StrFormat("%llu\x1f%s",
                      static_cast<unsigned long long>(m.doc),
                      m.surface.c_str())] = type_of[m.entity];
  }
  std::vector<NaiveBayesTagger::Example> examples;
  for (const text::Document& doc : docs.docs) {
    for (const MentionCandidate& c : FindCandidateMentions(doc)) {
      NaiveBayesTagger::Example ex;
      ex.features = NaiveBayesTagger::FeaturesFor(doc, c);
      auto it = labeled.find(
          StrFormat("%llu\x1f%s", static_cast<unsigned long long>(doc.id),
                    c.surface.c_str()));
      ex.label = it == labeled.end() ? "other" : it->second;
      examples.push_back(std::move(ex));
    }
  }
  return examples;
}

}  // namespace structura::ie
