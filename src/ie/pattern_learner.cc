#include "ie/pattern_learner.h"

#include <cctype>
#include <map>

#include "common/strings.h"
#include "text/tokenizer.h"
#include "text/wiki_markup.h"

namespace structura::ie {
namespace {

bool LooksNumeric(std::string_view s) {
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digit = true;
  }
  return digit;
}

}  // namespace

std::string LearnedPattern::ToPatternString() const {
  std::vector<std::string> parts = prefix;
  parts.push_back("<v:" + value_kind + ">");
  for (const std::string& s : suffix) parts.push_back(s);
  return Join(parts, " ");
}

void PatternLearner::Learn(const std::vector<PatternExample>& examples) {
  patterns_.clear();
  // context key -> (attribute, support).
  struct ContextInfo {
    LearnedPattern pattern;
    size_t count = 0;
  };
  std::map<std::string, ContextInfo> contexts;
  for (const PatternExample& ex : examples) {
    if (ex.doc == nullptr) continue;
    const std::string& src = ex.doc->text;
    std::vector<text::Token> tokens = text::Tokenize(src);
    // Locate the token index of the value.
    int value_tok = -1;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].span.begin == ex.value_span.begin) {
        value_tok = static_cast<int>(i);
        break;
      }
    }
    if (value_tok < 0) continue;
    LearnedPattern p;
    p.attribute = ex.attribute;
    p.value_kind =
        LooksNumeric(src.substr(ex.value_span.begin,
                                ex.value_span.length()))
            ? "number"
            : "name";
    // Prefix: the N word-tokens immediately before the value. Stop at
    // punctuation other than simple sentence-internal tokens, since the
    // template matcher matches word literals only.
    for (int i = value_tok - 1;
         i >= 0 && p.prefix.size() < options_.prefix_tokens; --i) {
      if (!tokens[i].is_word) break;
      p.prefix.insert(p.prefix.begin(),
                      ToLower(std::string_view(src).substr(
                          tokens[i].span.begin, tokens[i].span.length())));
    }
    for (size_t i = static_cast<size_t>(value_tok) + 1;
         i < tokens.size() && p.suffix.size() < options_.suffix_tokens;
         ++i) {
      if (!tokens[i].is_word) break;
      p.suffix.push_back(ToLower(std::string_view(src).substr(
          tokens[i].span.begin, tokens[i].span.length())));
    }
    if (p.prefix.empty()) continue;  // need anchoring context
    std::string key = p.attribute + "\x1f" + Join(p.prefix, " ") +
                      "\x1f" + p.value_kind + "\x1f" +
                      Join(p.suffix, " ");
    ContextInfo& info = contexts[key];
    if (info.count == 0) info.pattern = std::move(p);
    ++info.count;
  }
  for (auto& [key, info] : contexts) {
    if (info.count < options_.min_support) continue;
    info.pattern.support = info.count;
    patterns_.push_back(std::move(info.pattern));
  }
}

Result<std::vector<ExtractorPtr>> PatternLearner::Compile() const {
  std::vector<ExtractorPtr> out;
  size_t i = 0;
  for (const LearnedPattern& p : patterns_) {
    TemplateExtractor::Spec spec;
    spec.extractor_name =
        StrFormat("learned_%s_%zu", p.attribute.c_str(), i++);
    spec.pattern = p.ToPatternString();
    spec.attribute = p.attribute;
    spec.value_slot = "v";
    spec.confidence = options_.confidence;
    STRUCTURA_ASSIGN_OR_RETURN(auto extractor,
                               TemplateExtractor::Create(std::move(spec)));
    out.push_back(std::move(extractor));
  }
  return out;
}

std::vector<PatternExample> BuildPatternExamples(
    const text::DocumentCollection& docs, const corpus::GroundTruth& truth,
    size_t max_docs) {
  std::map<text::DocId, const text::Document*> by_id;
  size_t limit = max_docs == 0 ? docs.size() : max_docs;
  for (size_t i = 0; i < docs.size() && i < limit; ++i) {
    by_id[docs.docs[i].id] = &docs.docs[i];
  }
  std::vector<PatternExample> out;
  for (const corpus::FactTruth& f : truth.facts) {
    auto it = by_id.find(f.doc);
    if (it == by_id.end()) continue;
    const text::Document& doc = *it->second;
    // Find the value in prose: search outside the infobox template.
    std::vector<text::Infobox> boxes = text::ParseInfoboxes(doc.text);
    size_t pos = 0;
    while (true) {
      pos = doc.text.find(f.value, pos);
      if (pos == std::string::npos) break;
      bool inside_infobox = false;
      for (const text::Infobox& box : boxes) {
        if (pos >= box.span.begin && pos < box.span.end) {
          inside_infobox = true;
          break;
        }
      }
      if (!inside_infobox) {
        PatternExample ex;
        ex.doc = &doc;
        ex.value_span =
            text::Span{static_cast<uint32_t>(pos),
                       static_cast<uint32_t>(pos + f.value.size())};
        ex.attribute = f.attribute;
        out.push_back(std::move(ex));
        break;
      }
      pos += 1;
    }
  }
  return out;
}

}  // namespace structura::ie
