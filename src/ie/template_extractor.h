#ifndef STRUCTURA_IE_TEMPLATE_EXTRACTOR_H_
#define STRUCTURA_IE_TEMPLATE_EXTRACTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ie/dictionary.h"
#include "ie/extractor.h"

namespace structura::ie {

/// Values captured by one pattern match: slot name -> canonical value
/// (for dict slots) or surface text (for number/name slots).
using SlotMap = std::map<std::string, std::string>;

/// Pattern-based free-text extractor. A pattern is a whitespace-separated
/// sequence of literal tokens and slots:
///
///   "the average temperature in <m:dict:months> is <v:number> degrees"
///   "the mayor of <c:name> is <v:name>"
///
/// Slot types:
///   <x:number>        one numeric token ("233,209", "-5", "70.5")
///   <x:dict:NAME>     one token found in the named dictionary; the
///                     captured value is the dictionary's canonical form
///   <x:name>          a proper-name token run: capitalized words,
///                     optionally joined by "." or "," ("D. Smith",
///                     "Madison, Wisconsin"), longest match first
///   <x:link>          a wiki link "[[Target|anchor]]"; the capture is the
///                     link target (already canonical)
///
/// Literals match case-insensitively against word tokens. For every match
/// the extractor emits one fact whose attribute is produced by
/// `attribute_fn(slots)` and whose value is the capture of `value_slot`.
class TemplateExtractor : public Extractor {
 public:
  struct Spec {
    std::string extractor_name;
    std::string pattern;
    /// Dictionaries referenced by <x:dict:NAME> slots, keyed by NAME.
    /// Pointees must outlive the extractor.
    std::map<std::string, const Dictionary*> dictionaries;
    /// Derives the fact's attribute from the captured slots. Default:
    /// constant `attribute`.
    std::function<std::string(const SlotMap&)> attribute_fn;
    std::string attribute;      // used when attribute_fn is unset
    std::string value_slot;     // slot whose capture becomes fact.value
    /// Slot whose capture becomes fact.subject; empty = document title.
    std::string subject_slot;
    double confidence = 0.85;
  };

  /// Parses the pattern; fails on syntax errors or unknown dictionaries.
  static Result<std::unique_ptr<TemplateExtractor>> Create(Spec spec);

  std::string name() const override { return spec_.extractor_name; }
  std::vector<ExtractedFact> Extract(
      const text::Document& doc) const override;
  double CostPerDoc() const override { return 2.0; }

 private:
  struct Elem {
    enum class Kind { kLiteral, kNumber, kDict, kName, kLink };
    Kind kind = Kind::kLiteral;
    std::string literal;        // lowercased, for kLiteral
    std::string slot;           // slot name, for slot kinds
    const Dictionary* dict = nullptr;  // for kDict
  };

  explicit TemplateExtractor(Spec spec) : spec_(std::move(spec)) {}

  Status Compile();

  Spec spec_;
  std::vector<Elem> elems_;
};

}  // namespace structura::ie

#endif  // STRUCTURA_IE_TEMPLATE_EXTRACTOR_H_
