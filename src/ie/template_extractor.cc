#include "ie/template_extractor.h"

#include <cctype>

#include "common/strings.h"
#include "text/tokenizer.h"

namespace structura::ie {
namespace {

bool IsNumberToken(const text::Token& tok, const std::string& source) {
  char c = source[tok.span.begin];
  return !tok.is_word &&
         (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+');
}

bool IsCapitalizedWord(const text::Token& tok, const std::string& source) {
  return tok.is_word &&
         std::isupper(static_cast<unsigned char>(source[tok.span.begin]));
}

}  // namespace

Result<std::unique_ptr<TemplateExtractor>> TemplateExtractor::Create(
    Spec spec) {
  std::unique_ptr<TemplateExtractor> ex(
      new TemplateExtractor(std::move(spec)));
  STRUCTURA_RETURN_IF_ERROR(ex->Compile());
  return ex;
}

Status TemplateExtractor::Compile() {
  if (spec_.value_slot.empty()) {
    return Status::InvalidArgument("value_slot must be set");
  }
  bool saw_value_slot = false;
  for (const std::string& piece : SplitAndTrim(spec_.pattern, ' ')) {
    Elem elem;
    if (piece.front() == '<' && piece.back() == '>') {
      std::vector<std::string> parts =
          Split(piece.substr(1, piece.size() - 2), ':');
      if (parts.size() < 2 || parts[0].empty()) {
        return Status::InvalidArgument("bad slot syntax: " + piece);
      }
      elem.slot = parts[0];
      if (elem.slot == spec_.value_slot) saw_value_slot = true;
      if (parts[1] == "number") {
        elem.kind = Elem::Kind::kNumber;
      } else if (parts[1] == "name") {
        elem.kind = Elem::Kind::kName;
      } else if (parts[1] == "link") {
        elem.kind = Elem::Kind::kLink;
      } else if (parts[1] == "dict") {
        if (parts.size() != 3) {
          return Status::InvalidArgument("dict slot needs a name: " + piece);
        }
        auto it = spec_.dictionaries.find(parts[2]);
        if (it == spec_.dictionaries.end() || it->second == nullptr) {
          return Status::InvalidArgument("unknown dictionary: " + parts[2]);
        }
        elem.kind = Elem::Kind::kDict;
        elem.dict = it->second;
      } else {
        return Status::InvalidArgument("unknown slot type: " + parts[1]);
      }
    } else {
      elem.kind = Elem::Kind::kLiteral;
      elem.literal = ToLower(piece);
    }
    elems_.push_back(std::move(elem));
  }
  if (elems_.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  if (!saw_value_slot) {
    return Status::InvalidArgument("value_slot not present in pattern");
  }
  return Status::OK();
}

std::vector<ExtractedFact> TemplateExtractor::Extract(
    const text::Document& doc) const {
  std::vector<ExtractedFact> out;
  const std::string& src = doc.text;
  std::vector<text::Token> tokens = text::Tokenize(src);

  // Recursive matcher with backtracking (patterns are short; name slots
  // try longest runs first).
  // Captures: slot -> (canonical-or-surface value, span).
  struct Capture {
    std::string value;
    text::Span span;
  };
  std::map<std::string, Capture> captures;

  std::function<bool(size_t, size_t)> match = [&](size_t ei,
                                                  size_t ti) -> bool {
    if (ei == elems_.size()) return true;
    if (ti >= tokens.size()) return false;
    const Elem& elem = elems_[ei];
    const text::Token& tok = tokens[ti];
    switch (elem.kind) {
      case Elem::Kind::kLiteral: {
        if (!tok.is_word) return false;
        std::string surface = ToLower(
            std::string_view(src).substr(tok.span.begin, tok.span.length()));
        if (surface != elem.literal) return false;
        return match(ei + 1, ti + 1);
      }
      case Elem::Kind::kNumber: {
        if (!IsNumberToken(tok, src)) return false;
        captures[elem.slot] = {tok.Text(src), tok.span};
        if (match(ei + 1, ti + 1)) return true;
        captures.erase(elem.slot);
        return false;
      }
      case Elem::Kind::kDict: {
        if (!tok.is_word) return false;
        const std::string* canonical = elem.dict->Lookup(
            std::string_view(src).substr(tok.span.begin, tok.span.length()));
        if (canonical == nullptr) return false;
        captures[elem.slot] = {*canonical, tok.span};
        if (match(ei + 1, ti + 1)) return true;
        captures.erase(elem.slot);
        return false;
      }
      case Elem::Kind::kLink: {
        // Expect "[[Target|anchor]]" starting at this token.
        if (tok.is_word || src[tok.span.begin] != '[') return false;
        if (tok.span.begin + 1 >= src.size() ||
            src[tok.span.begin + 1] != '[') {
          return false;
        }
        size_t close = src.find("]]", tok.span.begin + 2);
        if (close == std::string::npos) return false;
        std::string body = src.substr(tok.span.begin + 2,
                                      close - tok.span.begin - 2);
        if (StartsWith(body, "Category:")) return false;
        size_t bar = body.find('|');
        std::string target(
            Trim(bar == std::string::npos ? body : body.substr(0, bar)));
        // Resume matching at the first token after the closing braces.
        size_t next_tok = ti;
        while (next_tok < tokens.size() &&
               tokens[next_tok].span.begin < close + 2) {
          ++next_tok;
        }
        captures[elem.slot] = {
            target, text::Span{tok.span.begin,
                               static_cast<uint32_t>(close + 2)}};
        if (match(ei + 1, next_tok)) return true;
        captures.erase(elem.slot);
        return false;
      }
      case Elem::Kind::kName: {
        if (!IsCapitalizedWord(tok, src)) return false;
        // Collect candidate run ends: capitalized words, optionally
        // separated by a single '.' or ',' token.
        std::vector<size_t> ends;  // inclusive token index of run end
        size_t last = ti;
        ends.push_back(last);
        while (last + 1 < tokens.size() && ends.size() < 5) {
          size_t next = last + 1;
          // Optional separator.
          if (next < tokens.size() && !tokens[next].is_word &&
              tokens[next].span.length() == 1 &&
              (src[tokens[next].span.begin] == '.' ||
               src[tokens[next].span.begin] == ',')) {
            ++next;
          }
          if (next < tokens.size() &&
              IsCapitalizedWord(tokens[next], src)) {
            last = next;
            ends.push_back(last);
          } else {
            break;
          }
        }
        // Longest first.
        for (size_t k = ends.size(); k-- > 0;) {
          size_t end_tok = ends[k];
          text::Span span{tok.span.begin, tokens[end_tok].span.end};
          // Include a trailing '.' directly after a single-letter token
          // ("D." in "D. Smith" when the initial is last — rare, skip).
          captures[elem.slot] = {
              src.substr(span.begin, span.length()), span};
          if (match(ei + 1, end_tok + 1)) return true;
        }
        captures.erase(elem.slot);
        return false;
      }
    }
    return false;
  };

  for (size_t ti = 0; ti < tokens.size(); ++ti) {
    captures.clear();
    if (!match(0, ti)) continue;
    SlotMap slots;
    for (const auto& [slot, cap] : captures) slots[slot] = cap.value;
    ExtractedFact fact;
    fact.doc = doc.id;
    fact.attribute = spec_.attribute_fn ? spec_.attribute_fn(slots)
                                        : spec_.attribute;
    auto value_it = captures.find(spec_.value_slot);
    if (value_it == captures.end()) continue;  // unreachable by Compile
    fact.value = value_it->second.value;
    fact.span = value_it->second.span;
    if (!spec_.subject_slot.empty() &&
        captures.count(spec_.subject_slot) > 0) {
      fact.subject = captures[spec_.subject_slot].value;
    } else {
      fact.subject = doc.title;
    }
    fact.extractor = name();
    fact.confidence = spec_.confidence;
    out.push_back(std::move(fact));
  }
  return out;
}

}  // namespace structura::ie
