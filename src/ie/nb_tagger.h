#ifndef STRUCTURA_IE_NB_TAGGER_H_
#define STRUCTURA_IE_NB_TAGGER_H_

#include <map>
#include <string>
#include <vector>

#include "corpus/records.h"
#include "ie/extractor.h"
#include "text/document.h"

namespace structura::ie {

/// A candidate proper-name mention: a run of capitalized tokens (joined by
/// optional "." / "," separators) in a document.
struct MentionCandidate {
  text::Span span;
  std::string surface;
};

/// Finds candidate mentions in a document's raw text.
std::vector<MentionCandidate> FindCandidateMentions(
    const text::Document& doc);

/// Learned mention classifier: multinomial naive Bayes over sparse string
/// features of a candidate (context words, shape, length). Demonstrates
/// the "trainable IE operator whose output is inherently uncertain"
/// ingredient of the paper's DGE model — its posteriors feed the
/// uncertainty layer, and its mistakes are what human feedback repairs.
class NaiveBayesTagger : public Extractor {
 public:
  struct Example {
    std::vector<std::string> features;
    std::string label;  // "person", "city", "company", "other", ...
  };

  NaiveBayesTagger() = default;

  /// Trains from labeled examples (replaces any previous model).
  void Train(const std::vector<Example>& examples);

  /// Classifies a feature vector; returns (best label, posterior).
  std::pair<std::string, double> Classify(
      const std::vector<std::string>& features) const;

  /// Features of candidate `c` in `doc` (context words around the span,
  /// token count, shape flags).
  static std::vector<std::string> FeaturesFor(const text::Document& doc,
                                              const MentionCandidate& c);

  /// Extractor interface: emits one fact per candidate classified as a
  /// non-"other" label, attribute "mention_<label>", value = surface,
  /// confidence = posterior.
  std::string name() const override { return "nb_tagger"; }
  std::vector<ExtractedFact> Extract(
      const text::Document& doc) const override;
  double CostPerDoc() const override { return 4.0; }

  bool trained() const { return !label_counts_.empty(); }
  size_t vocabulary_size() const { return feature_vocab_; }

 private:
  std::map<std::string, double> label_counts_;
  // label -> feature -> count
  std::map<std::string, std::map<std::string, double>> feature_counts_;
  std::map<std::string, double> label_feature_totals_;
  size_t feature_vocab_ = 0;
  double total_examples_ = 0;
};

/// Builds training examples from corpus ground truth: every planted
/// mention becomes a positive example of its entity's type; candidate
/// mentions that match no planted mention become "other".
std::vector<NaiveBayesTagger::Example> BuildMentionTrainingSet(
    const text::DocumentCollection& docs, const corpus::GroundTruth& truth);

}  // namespace structura::ie

#endif  // STRUCTURA_IE_NB_TAGGER_H_
