#ifndef STRUCTURA_IE_PIPELINE_H_
#define STRUCTURA_IE_PIPELINE_H_

#include <vector>

#include "common/thread_pool.h"
#include "ie/extractor.h"
#include "mr/mapreduce.h"
#include "text/document.h"

namespace structura::ie {

/// Runs `extractors` over every document sequentially; facts are returned
/// in (document, extractor) order with dense ids.
FactSet RunExtractors(const std::vector<const Extractor*>& extractors,
                      const text::DocumentCollection& docs);

/// Same result, executed as a Map-Reduce job on `pool` (the paper's
/// physical layer: IE is computation-intensive, so it runs as
/// "Map-Reduce-like processes" over the cluster). Deterministic output
/// order (facts sorted by doc, then extractor order, then span).
/// `intr` propagates into the job's map/reduce task loops.
Result<FactSet> RunExtractorsMapReduce(
    const std::vector<const Extractor*>& extractors,
    const text::DocumentCollection& docs, ThreadPool& pool,
    const mr::JobConfig& config, mr::JobStats* stats = nullptr,
    const Interrupt& intr = Interrupt{});

/// Convenience: non-owning views of owning pointers.
std::vector<const Extractor*> Views(const std::vector<ExtractorPtr>& v);

}  // namespace structura::ie

#endif  // STRUCTURA_IE_PIPELINE_H_
