#ifndef STRUCTURA_IE_REGEX_EXTRACTOR_H_
#define STRUCTURA_IE_REGEX_EXTRACTOR_H_

#include <memory>
#include <regex>
#include <string>

#include "common/status.h"
#include "ie/extractor.h"

namespace structura::ie {

/// General-purpose regex extractor: one capture group becomes the value.
/// Slower than TemplateExtractor (std::regex scans character-wise) — the
/// optimizer experiment (E7) exploits exactly this cost difference. The
/// subject is always the document title.
class RegexExtractor : public Extractor {
 public:
  struct Spec {
    std::string extractor_name;
    std::string pattern;       // ECMAScript syntax
    std::string attribute;
    int value_group = 1;       // capture group index for the value
    double confidence = 0.8;
  };

  /// Compiles the regex; fails on syntax errors.
  static Result<std::unique_ptr<RegexExtractor>> Create(Spec spec);

  std::string name() const override { return spec_.extractor_name; }
  std::vector<ExtractedFact> Extract(
      const text::Document& doc) const override;
  double CostPerDoc() const override { return 10.0; }

 private:
  explicit RegexExtractor(Spec spec) : spec_(std::move(spec)) {}

  Spec spec_;
  std::regex regex_;
};

}  // namespace structura::ie

#endif  // STRUCTURA_IE_REGEX_EXTRACTOR_H_
