#ifndef STRUCTURA_IE_STANDARD_H_
#define STRUCTURA_IE_STANDARD_H_

#include <vector>

#include "ie/dictionary.h"
#include "ie/extractor.h"

namespace structura::ie {

/// Month-name gazetteer shared by the standard extractors (never
/// destroyed; safe to reference from any extractor).
const Dictionary& MonthsDictionary();

/// Free-text extractor for "The average temperature in <Month> is <N>
/// degrees" sentences; attribute is "temp_MM".
ExtractorPtr MakeTemperatureExtractor();

/// "<City> has a population of <N> people" -> population.
ExtractorPtr MakePopulationExtractor();

/// "... founded in <YYYY>" -> founded.
ExtractorPtr MakeFoundedExtractor();

/// "... at an elevation of <N> feet" -> elevation.
ExtractorPtr MakeElevationExtractor();

/// "The mayor of <City> is <Person>" -> mayor (subject = the city).
ExtractorPtr MakeMayorExtractor();

/// "They live in [[City]]" -> residence (value = link target).
ExtractorPtr MakeResidenceExtractor();

/// Infobox extractor over all infobox types.
ExtractorPtr MakeInfoboxExtractor();

/// The full standard free-text suite (everything above except infobox).
std::vector<ExtractorPtr> MakeFreeTextSuite();

/// Free-text + infobox.
std::vector<ExtractorPtr> MakeStandardSuite();

}  // namespace structura::ie

#endif  // STRUCTURA_IE_STANDARD_H_
