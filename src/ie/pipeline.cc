#include "ie/pipeline.h"

#include <algorithm>

#include "common/failpoint.h"

namespace structura::ie {

std::vector<const Extractor*> Views(const std::vector<ExtractorPtr>& v) {
  std::vector<const Extractor*> out;
  out.reserve(v.size());
  for (const ExtractorPtr& p : v) out.push_back(p.get());
  return out;
}

FactSet RunExtractors(const std::vector<const Extractor*>& extractors,
                      const text::DocumentCollection& docs) {
  FactSet set;
  for (const text::Document& doc : docs.docs) {
    for (const Extractor* ex : extractors) {
      // Best-effort: an injected extractor fault drops this (doc,
      // extractor) pair's facts instead of aborting the pipeline.
      if (!MaybeFail("ie.extract").ok()) continue;
      for (ExtractedFact& fact : ex->Extract(doc)) {
        set.Add(std::move(fact));
      }
    }
  }
  return set;
}

Result<FactSet> RunExtractorsMapReduce(
    const std::vector<const Extractor*>& extractors,
    const text::DocumentCollection& docs, ThreadPool& pool,
    const mr::JobConfig& config, mr::JobStats* stats,
    const Interrupt& intr) {
  // Map: one document in, (doc_id -> facts) out. Reduce: identity-merge.
  mr::MapReduceJob<const text::Document*, uint64_t, ExtractedFact,
                   ExtractedFact>
      job;
  // Extractor order index for deterministic sorting later.
  job.set_mapper([&extractors](const text::Document* doc,
                               const auto& emit) {
    for (const Extractor* ex : extractors) {
      for (ExtractedFact& fact : ex->Extract(*doc)) {
        emit(fact.doc, std::move(fact));
      }
    }
  });
  job.set_reducer([](const uint64_t& /*doc*/,
                     const std::vector<ExtractedFact>& facts,
                     const auto& out) {
    for (const ExtractedFact& f : facts) out(f);
  });
  std::vector<const text::Document*> inputs;
  inputs.reserve(docs.size());
  for (const text::Document& d : docs.docs) inputs.push_back(&d);
  STRUCTURA_ASSIGN_OR_RETURN(
      std::vector<ExtractedFact> facts,
      job.Run(pool, inputs, config, stats, intr));
  std::stable_sort(facts.begin(), facts.end(),
                   [](const ExtractedFact& a, const ExtractedFact& b) {
                     if (a.doc != b.doc) return a.doc < b.doc;
                     if (a.span.begin != b.span.begin) {
                       return a.span.begin < b.span.begin;
                     }
                     return a.extractor < b.extractor;
                   });
  FactSet set;
  for (ExtractedFact& f : facts) set.Add(std::move(f));
  return set;
}

}  // namespace structura::ie
