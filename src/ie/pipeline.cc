#include "ie/pipeline.h"

#include <algorithm>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::ie {

namespace {
struct IeMetrics {
  obs::Counter* runs;
  obs::Counter* docs_processed;
  obs::Counter* facts_extracted;
  obs::Counter* faults_dropped;
  obs::Histogram* run_latency_ns;
};
IeMetrics& Metrics() {
  static IeMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    return IeMetrics{
        r.GetCounter("ie.runs"),
        r.GetCounter("ie.docs_processed"),
        r.GetCounter("ie.facts_extracted"),
        r.GetCounter("ie.faults_dropped"),
        r.GetHistogram("ie.run.latency_ns"),
    };
  }();
  return m;
}
}  // namespace

std::vector<const Extractor*> Views(const std::vector<ExtractorPtr>& v) {
  std::vector<const Extractor*> out;
  out.reserve(v.size());
  for (const ExtractorPtr& p : v) out.push_back(p.get());
  return out;
}

FactSet RunExtractors(const std::vector<const Extractor*>& extractors,
                      const text::DocumentCollection& docs) {
  TRACE_SPAN("ie.extract");
  IeMetrics& im = Metrics();
  im.runs->Increment();
  obs::ScopedLatency latency(im.run_latency_ns);
  FactSet set;
  uint64_t facts = 0;
  for (const text::Document& doc : docs.docs) {
    im.docs_processed->Increment();
    for (const Extractor* ex : extractors) {
      // Best-effort: an injected extractor fault drops this (doc,
      // extractor) pair's facts instead of aborting the pipeline.
      if (!MaybeFail("ie.extract").ok()) {
        im.faults_dropped->Increment();
        continue;
      }
      for (ExtractedFact& fact : ex->Extract(doc)) {
        ++facts;
        set.Add(std::move(fact));
      }
    }
  }
  im.facts_extracted->Add(facts);
  return set;
}

Result<FactSet> RunExtractorsMapReduce(
    const std::vector<const Extractor*>& extractors,
    const text::DocumentCollection& docs, ThreadPool& pool,
    const mr::JobConfig& config, mr::JobStats* stats,
    const Interrupt& intr) {
  TRACE_SPAN("ie.extract_mr");
  IeMetrics& im = Metrics();
  im.runs->Increment();
  obs::ScopedLatency latency(im.run_latency_ns);
  // Map: one document in, (doc_id -> facts) out. Reduce: identity-merge.
  mr::MapReduceJob<const text::Document*, uint64_t, ExtractedFact,
                   ExtractedFact>
      job;
  // Extractor order index for deterministic sorting later.
  job.set_mapper([&extractors](const text::Document* doc,
                               const auto& emit) {
    for (const Extractor* ex : extractors) {
      for (ExtractedFact& fact : ex->Extract(*doc)) {
        emit(fact.doc, std::move(fact));
      }
    }
  });
  job.set_reducer([](const uint64_t& /*doc*/,
                     const std::vector<ExtractedFact>& facts,
                     const auto& out) {
    for (const ExtractedFact& f : facts) out(f);
  });
  std::vector<const text::Document*> inputs;
  inputs.reserve(docs.size());
  for (const text::Document& d : docs.docs) inputs.push_back(&d);
  STRUCTURA_ASSIGN_OR_RETURN(
      std::vector<ExtractedFact> facts,
      job.Run(pool, inputs, config, stats, intr));
  std::stable_sort(facts.begin(), facts.end(),
                   [](const ExtractedFact& a, const ExtractedFact& b) {
                     if (a.doc != b.doc) return a.doc < b.doc;
                     if (a.span.begin != b.span.begin) {
                       return a.span.begin < b.span.begin;
                     }
                     return a.extractor < b.extractor;
                   });
  im.docs_processed->Add(docs.size());
  im.facts_extracted->Add(facts.size());
  FactSet set;
  for (ExtractedFact& f : facts) set.Add(std::move(f));
  return set;
}

}  // namespace structura::ie
