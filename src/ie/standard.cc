#include "ie/standard.h"

#include "common/logging.h"
#include "ie/infobox_extractor.h"
#include "ie/template_extractor.h"

namespace structura::ie {
namespace {

/// Unwraps a Create() result for the hard-coded specs below; a failure
/// here is a programming error in this file, so it aborts loudly.
ExtractorPtr MustCreate(Result<std::unique_ptr<TemplateExtractor>> r) {
  if (!r.ok()) {
    STRUCTURA_LOG(kError) << "standard extractor spec invalid: "
                          << r.status().ToString();
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace

const Dictionary& MonthsDictionary() {
  static const Dictionary& dict = *new Dictionary(Dictionary::Months());
  return dict;
}

ExtractorPtr MakeTemperatureExtractor() {
  TemplateExtractor::Spec spec;
  spec.extractor_name = "temp_sentence";
  spec.pattern =
      "the average temperature in <m:dict:months> is <v:number> degrees";
  spec.dictionaries["months"] = &MonthsDictionary();
  spec.attribute_fn = [](const SlotMap& slots) {
    auto it = slots.find("m");
    return "temp_" + (it == slots.end() ? std::string("00") : it->second);
  };
  spec.value_slot = "v";
  spec.confidence = 0.85;
  return MustCreate(TemplateExtractor::Create(std::move(spec)));
}

ExtractorPtr MakePopulationExtractor() {
  TemplateExtractor::Spec spec;
  spec.extractor_name = "population_sentence";
  spec.pattern = "has a population of <v:number> people";
  spec.attribute = "population";
  spec.value_slot = "v";
  spec.confidence = 0.85;
  return MustCreate(TemplateExtractor::Create(std::move(spec)));
}

ExtractorPtr MakeFoundedExtractor() {
  TemplateExtractor::Spec spec;
  spec.extractor_name = "founded_sentence";
  spec.pattern = "founded in <v:number>";
  spec.attribute = "founded";
  spec.value_slot = "v";
  spec.confidence = 0.8;
  return MustCreate(TemplateExtractor::Create(std::move(spec)));
}

ExtractorPtr MakeElevationExtractor() {
  TemplateExtractor::Spec spec;
  spec.extractor_name = "elevation_sentence";
  spec.pattern = "at an elevation of <v:number> feet";
  spec.attribute = "elevation";
  spec.value_slot = "v";
  spec.confidence = 0.85;
  return MustCreate(TemplateExtractor::Create(std::move(spec)));
}

ExtractorPtr MakeMayorExtractor() {
  TemplateExtractor::Spec spec;
  spec.extractor_name = "mayor_sentence";
  spec.pattern = "the mayor of <c:name> is <v:name>";
  spec.attribute = "mayor";
  spec.value_slot = "v";
  spec.subject_slot = "c";
  spec.confidence = 0.8;
  return MustCreate(TemplateExtractor::Create(std::move(spec)));
}

ExtractorPtr MakeResidenceExtractor() {
  TemplateExtractor::Spec spec;
  spec.extractor_name = "residence_sentence";
  spec.pattern = "they live in <v:link>";
  spec.attribute = "residence";
  spec.value_slot = "v";
  spec.confidence = 0.85;
  return MustCreate(TemplateExtractor::Create(std::move(spec)));
}

ExtractorPtr MakeInfoboxExtractor() {
  return std::make_unique<InfoboxExtractor>();
}

std::vector<ExtractorPtr> MakeFreeTextSuite() {
  std::vector<ExtractorPtr> suite;
  suite.push_back(MakeTemperatureExtractor());
  suite.push_back(MakePopulationExtractor());
  suite.push_back(MakeFoundedExtractor());
  suite.push_back(MakeElevationExtractor());
  suite.push_back(MakeMayorExtractor());
  suite.push_back(MakeResidenceExtractor());
  return suite;
}

std::vector<ExtractorPtr> MakeStandardSuite() {
  std::vector<ExtractorPtr> suite = MakeFreeTextSuite();
  suite.push_back(MakeInfoboxExtractor());
  return suite;
}

}  // namespace structura::ie
