#ifndef STRUCTURA_IE_DICTIONARY_H_
#define STRUCTURA_IE_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>

namespace structura::ie {

/// A gazetteer: surface form -> canonical form, matched case-insensitively
/// on single tokens. Used by dictionary slots in TemplateExtractor and by
/// the mention tagger's features.
class Dictionary {
 public:
  Dictionary() = default;

  /// Registers `surface` (lowercased internally) mapping to `canonical`.
  void Add(std::string_view surface, std::string canonical);

  /// Canonical form for `surface` (any case), or nullptr.
  const std::string* Lookup(std::string_view surface) const;

  bool Contains(std::string_view surface) const {
    return Lookup(surface) != nullptr;
  }

  size_t size() const { return entries_.size(); }

  /// English month names -> "01".."12".
  static Dictionary Months();

 private:
  std::unordered_map<std::string, std::string> entries_;
};

}  // namespace structura::ie

#endif  // STRUCTURA_IE_DICTIONARY_H_
