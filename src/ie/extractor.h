#ifndef STRUCTURA_IE_EXTRACTOR_H_
#define STRUCTURA_IE_EXTRACTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "ie/fact.h"
#include "text/document.h"

namespace structura::ie {

/// Base class for information-extraction operators. Extractors are pure
/// functions of a document; the pipeline (and the SDL executor) decides
/// where and how often to run them.
class Extractor {
 public:
  virtual ~Extractor() = default;

  /// Stable operator name, recorded into each fact for provenance.
  virtual std::string name() const = 0;

  /// Extracts facts from one document. Best-effort: malformed input
  /// yields fewer facts, never an error.
  virtual std::vector<ExtractedFact> Extract(
      const text::Document& doc) const = 0;

  /// Relative per-document cost estimate (1.0 = cheap scan). The SDL
  /// optimizer orders extractors by cost/selectivity using this.
  virtual double CostPerDoc() const { return 1.0; }
};

using ExtractorPtr = std::unique_ptr<Extractor>;

}  // namespace structura::ie

#endif  // STRUCTURA_IE_EXTRACTOR_H_
