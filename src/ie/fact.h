#ifndef STRUCTURA_IE_FACT_H_
#define STRUCTURA_IE_FACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/document.h"

namespace structura::ie {

/// The unit of derived structure: an attribute-value pair extracted from a
/// document (Section 3.2 — "in its simplest form this structured data is
/// attribute-value pairs"). Facts carry their origin (doc, span, extractor)
/// so the provenance layer can explain them, and a confidence so the
/// uncertainty layer can reason about them.
struct ExtractedFact {
  uint64_t id = 0;            // assigned by the pipeline, dense from 1
  text::DocId doc = 0;
  std::string subject;        // surface form of the entity (page title...)
  std::string attribute;      // e.g. "population", "temp_03", "mention_person"
  std::string value;          // surface value text
  text::Span span;            // value location in the document
  std::string extractor;      // producing operator's name
  double confidence = 1.0;    // extractor's belief, in [0, 1]
};

/// A batch of facts with a shared id counter.
struct FactSet {
  std::vector<ExtractedFact> facts;
  uint64_t next_id = 1;

  uint64_t Add(ExtractedFact fact) {
    fact.id = next_id++;
    facts.push_back(std::move(fact));
    return facts.back().id;
  }

  size_t size() const { return facts.size(); }
};

}  // namespace structura::ie

#endif  // STRUCTURA_IE_FACT_H_
