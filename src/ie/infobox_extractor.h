#ifndef STRUCTURA_IE_INFOBOX_EXTRACTOR_H_
#define STRUCTURA_IE_INFOBOX_EXTRACTOR_H_

#include <string>
#include <vector>

#include "ie/extractor.h"

namespace structura::ie {

/// Extracts attribute-value facts from wiki infobox templates. High
/// precision (the markup is explicit), limited recall (only what editors
/// put in the box — the corpus generator drops attributes from infoboxes
/// on purpose to model that).
class InfoboxExtractor : public Extractor {
 public:
  struct Options {
    /// Restrict to a given infobox type ("city", "person", ...); empty
    /// matches all.
    std::string type_filter;
    /// Restrict to these attribute keys; empty means all keys.
    std::vector<std::string> keys;
    double confidence = 0.95;
  };

  InfoboxExtractor() : InfoboxExtractor(Options()) {}
  explicit InfoboxExtractor(Options options)
      : options_(std::move(options)) {}

  std::string name() const override { return "infobox"; }
  std::vector<ExtractedFact> Extract(
      const text::Document& doc) const override;
  double CostPerDoc() const override { return 1.0; }

 private:
  Options options_;
};

}  // namespace structura::ie

#endif  // STRUCTURA_IE_INFOBOX_EXTRACTOR_H_
