#include "ie/dictionary.h"

#include "common/strings.h"
#include "corpus/records.h"

namespace structura::ie {

void Dictionary::Add(std::string_view surface, std::string canonical) {
  entries_[ToLower(surface)] = std::move(canonical);
}

const std::string* Dictionary::Lookup(std::string_view surface) const {
  auto it = entries_.find(ToLower(surface));
  return it == entries_.end() ? nullptr : &it->second;
}

Dictionary Dictionary::Months() {
  Dictionary dict;
  for (int m = 0; m < corpus::kMonthsPerYear; ++m) {
    dict.Add(corpus::kMonthNames[m], StrFormat("%02d", m + 1));
  }
  return dict;
}

}  // namespace structura::ie
