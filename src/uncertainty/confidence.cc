#include "uncertainty/confidence.h"

#include <map>

namespace structura::uncertainty {

double CombineIndependent(const std::vector<double>& confidences) {
  double miss = 1.0;
  for (double p : confidences) {
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    miss *= 1.0 - p;
  }
  return 1.0 - miss;
}

const ValueAlternative* AttributeBelief::Top() const {
  const ValueAlternative* best = nullptr;
  for (const ValueAlternative& alt : alternatives) {
    if (alt.probability <= 0) continue;  // rejected / zero-mass values
    if (best == nullptr || alt.probability > best->probability) {
      best = &alt;
    }
  }
  return best;
}

std::vector<AttributeBelief> BuildBeliefs(const ie::FactSet& facts) {
  // (subject, attribute) -> value -> {confidences, fact ids}.
  struct ValueEvidence {
    std::vector<double> confidences;
    std::vector<uint64_t> fact_ids;
  };
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, ValueEvidence>>
      grouped;
  for (const ie::ExtractedFact& f : facts.facts) {
    ValueEvidence& ev = grouped[{f.subject, f.attribute}][f.value];
    ev.confidences.push_back(f.confidence);
    ev.fact_ids.push_back(f.id);
  }
  std::vector<AttributeBelief> out;
  out.reserve(grouped.size());
  for (auto& [key, values] : grouped) {
    AttributeBelief belief;
    belief.subject = key.first;
    belief.attribute = key.second;
    double total = 0;
    for (auto& [value, ev] : values) {
      ValueAlternative alt;
      alt.value = value;
      alt.probability = CombineIndependent(ev.confidences);
      alt.supporting_facts = std::move(ev.fact_ids);
      total += alt.probability;
      belief.alternatives.push_back(std::move(alt));
    }
    // Competing values are mutually exclusive: normalize when the raw
    // masses over-commit (total > 1).
    if (total > 1.0) {
      for (ValueAlternative& alt : belief.alternatives) {
        alt.probability /= total;
      }
    }
    out.push_back(std::move(belief));
  }
  return out;
}

void ConfirmValue(AttributeBelief* belief, const std::string& value,
                  double confirm_weight) {
  double other_mass = 0;
  bool found = false;
  for (const ValueAlternative& alt : belief->alternatives) {
    if (alt.value == value) {
      found = true;
    } else {
      other_mass += alt.probability;
    }
  }
  if (!found) {
    ValueAlternative alt;
    alt.value = value;
    alt.probability = 0;
    belief->alternatives.push_back(std::move(alt));
  }
  double rest = 1.0 - confirm_weight;
  for (ValueAlternative& alt : belief->alternatives) {
    if (alt.value == value) {
      alt.probability = confirm_weight;
    } else if (other_mass > 0) {
      alt.probability = rest * (alt.probability / other_mass);
    } else {
      alt.probability = 0;
    }
  }
}

void RejectValue(AttributeBelief* belief, const std::string& value) {
  double removed = 0;
  for (ValueAlternative& alt : belief->alternatives) {
    if (alt.value == value) {
      removed = alt.probability;
      alt.probability = 0;
    }
  }
  double remaining = 0;
  for (const ValueAlternative& alt : belief->alternatives) {
    remaining += alt.probability;
  }
  if (remaining > 0 && removed > 0) {
    // Redistribute the removed mass proportionally.
    for (ValueAlternative& alt : belief->alternatives) {
      alt.probability += removed * (alt.probability / remaining);
    }
  }
}

}  // namespace structura::uncertainty
