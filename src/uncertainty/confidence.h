#ifndef STRUCTURA_UNCERTAINTY_CONFIDENCE_H_
#define STRUCTURA_UNCERTAINTY_CONFIDENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ie/fact.h"

namespace structura::uncertainty {

/// Combines independent confidences for the *same* claim (two extractors
/// both found population=233,209): noisy-OR, 1 - prod(1 - p_i).
double CombineIndependent(const std::vector<double>& confidences);

/// One alternative value for an attribute with its probability.
struct ValueAlternative {
  std::string value;
  double probability = 0;
  std::vector<uint64_t> supporting_facts;  // fact ids
};

/// The system's belief about one (subject, attribute): a distribution
/// over mutually exclusive alternatives (x-tuple semantics). Probabilities
/// sum to <= 1; the remainder is "no value".
struct AttributeBelief {
  std::string subject;
  std::string attribute;
  std::vector<ValueAlternative> alternatives;

  /// Highest-probability alternative, or nullptr when empty.
  const ValueAlternative* Top() const;
};

/// Groups raw extracted facts into beliefs: facts agreeing on (subject,
/// attribute, value) reinforce via noisy-OR; distinct values become
/// competing alternatives normalized to their combined mass.
std::vector<AttributeBelief> BuildBeliefs(const ie::FactSet& facts);

/// Human feedback applied to a belief: a confirmed value becomes
/// probability `confirm_weight` (and the rest renormalized); a rejected
/// value is zeroed and the remainder renormalized.
void ConfirmValue(AttributeBelief* belief, const std::string& value,
                  double confirm_weight = 1.0);
void RejectValue(AttributeBelief* belief, const std::string& value);

}  // namespace structura::uncertainty

#endif  // STRUCTURA_UNCERTAINTY_CONFIDENCE_H_
