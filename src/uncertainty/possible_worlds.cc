#include "uncertainty/possible_worlds.h"

#include <cmath>

#include "common/strings.h"

namespace structura::uncertainty {

World SampleWorld(const std::vector<AttributeBelief>& beliefs, Rng& rng) {
  World world(beliefs.size());
  for (size_t i = 0; i < beliefs.size(); ++i) {
    double u = rng.NextDouble();
    double acc = 0;
    for (const ValueAlternative& alt : beliefs[i].alternatives) {
      acc += alt.probability;
      if (u < acc) {
        world[i] = alt.value;
        break;
      }
    }
  }
  return world;
}

AggregateEstimate EstimateAggregate(
    const std::vector<AttributeBelief>& beliefs, size_t samples,
    uint64_t seed,
    const std::function<std::optional<double>(const World&)>& aggregate) {
  Rng rng(seed);
  AggregateEstimate est;
  est.samples = samples;
  double sum = 0, sum_sq = 0;
  size_t defined = 0, empty = 0;
  for (size_t s = 0; s < samples; ++s) {
    World world = SampleWorld(beliefs, rng);
    std::optional<double> v = aggregate(world);
    if (!v.has_value()) {
      ++empty;
      continue;
    }
    ++defined;
    sum += *v;
    sum_sq += *v * *v;
  }
  est.p_empty =
      samples == 0 ? 0 : static_cast<double>(empty) / samples;
  if (defined > 0) {
    est.mean = sum / defined;
    double var = sum_sq / defined - est.mean * est.mean;
    est.stddev = var > 0 ? std::sqrt(var) : 0;
  }
  return est;
}

ExpectedValue ExpectedNumeric(const AttributeBelief& belief) {
  ExpectedValue out;
  double weighted = 0;
  for (const ValueAlternative& alt : belief.alternatives) {
    std::string cleaned;
    for (char c : alt.value) {
      if (c != ',') cleaned += c;
    }
    double x;
    if (!ParseDouble(cleaned, &x)) continue;
    weighted += alt.probability * x;
    out.p_present += alt.probability;
  }
  out.expectation = out.p_present > 0 ? weighted / out.p_present : 0;
  return out;
}

}  // namespace structura::uncertainty
