#ifndef STRUCTURA_UNCERTAINTY_POSSIBLE_WORLDS_H_
#define STRUCTURA_UNCERTAINTY_POSSIBLE_WORLDS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "uncertainty/confidence.h"

namespace structura::uncertainty {

/// One sampled world: for each belief, either a chosen value or absent.
using World = std::vector<std::optional<std::string>>;

/// Samples a possible world: each belief independently picks one
/// alternative with its probability, or no value with the residual mass.
World SampleWorld(const std::vector<AttributeBelief>& beliefs, Rng& rng);

/// Monte-Carlo estimate of an aggregate query over uncertain data.
struct AggregateEstimate {
  double mean = 0;
  double stddev = 0;
  double p_empty = 0;  // fraction of worlds where no value qualified
  size_t samples = 0;
};

/// Runs `aggregate` over `samples` sampled worlds. The callback receives
/// the world and returns the aggregate value, or nullopt when undefined
/// in that world (e.g. AVG over an empty selection).
AggregateEstimate EstimateAggregate(
    const std::vector<AttributeBelief>& beliefs, size_t samples,
    uint64_t seed,
    const std::function<std::optional<double>(const World&)>& aggregate);

/// Analytic expectation of a numeric attribute's belief: sum over
/// alternatives of p * value, plus the probability any value exists.
/// Non-numeric alternatives are skipped.
struct ExpectedValue {
  double expectation = 0;   // conditional on a value existing
  double p_present = 0;
};
ExpectedValue ExpectedNumeric(const AttributeBelief& belief);

}  // namespace structura::uncertainty

#endif  // STRUCTURA_UNCERTAINTY_POSSIBLE_WORLDS_H_
