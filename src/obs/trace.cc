#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace structura::obs {

namespace {

std::atomic<bool> g_tracing_enabled{true};
std::atomic<uint64_t> g_slow_threshold_ns{0};
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint32_t> g_next_span_id{1};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local TraceHandle t_current_trace;

uint32_t NextSpanId() {
  uint32_t id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  // Span id 0 means "no parent"; skip it on wrap.
  return id == 0 ? g_next_span_id.fetch_add(1, std::memory_order_relaxed)
                 : id;
}

Counter* SpansRecordedCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("obs.spans.recorded");
  return c;
}

Counter* TraceRootsCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("obs.trace.roots");
  return c;
}

Counter* SlowRequestsCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("obs.trace.slow_requests");
  return c;
}

/// Writes one completed span into the calling thread's ring. The trace
/// id is stored last with release ordering: a reader that observes it
/// sees every other field of this record.
void RecordSpan(uint64_t trace_id, uint32_t span_id, uint32_t parent_id,
                const char* name, uint64_t start_ns, uint64_t duration_ns) {
  internal::ThreadRing* ring = TraceRecorder::Instance().Ring();
  uint64_t seq = ring->next.fetch_add(1, std::memory_order_relaxed);
  internal::SpanSlot& slot =
      ring->slots[seq % internal::ThreadRing::kSlots];
  // Invalidate the slot first so a concurrent reader cannot match the
  // old trace id against the new fields.
  slot.trace_id.store(0, std::memory_order_release);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_id.store(parent_id, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_release);
  SpansRecordedCounter()->Increment();
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetSlowRequestThresholdNanos(uint64_t nanos) {
  g_slow_threshold_ns.store(nanos, std::memory_order_relaxed);
}

uint64_t SlowRequestThresholdNanos() {
  return g_slow_threshold_ns.load(std::memory_order_relaxed);
}

uint64_t NextTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

TraceHandle CurrentTrace() { return t_current_trace; }

// ----------------------------------------------------------- recorder

TraceRecorder& TraceRecorder::Instance() {
  // Leaked: rings must stay readable for any late scanner.
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

/// Thread-lifetime lease on a ring: acquired on the thread's first span,
/// released (recycled for future threads) when the thread exits.
struct TraceRecorder::RingLease {
  internal::ThreadRing* ring;
  RingLease() : ring(Instance().AcquireRing()) {}
  ~RingLease() { Instance().ReleaseRing(ring); }
};

internal::ThreadRing* TraceRecorder::Ring() {
  thread_local RingLease lease;
  return lease.ring;
}

internal::ThreadRing* TraceRecorder::AcquireRing() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& ring : rings_) {
    if (!ring->in_use.load(std::memory_order_relaxed)) {
      ring->in_use.store(true, std::memory_order_relaxed);
      return ring.get();
    }
  }
  rings_.push_back(std::make_unique<internal::ThreadRing>());
  rings_.back()->in_use.store(true, std::memory_order_relaxed);
  return rings_.back().get();
}

void TraceRecorder::ReleaseRing(internal::ThreadRing* ring) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring->in_use.store(false, std::memory_order_relaxed);
}

std::vector<SpanView> TraceRecorder::Collect(uint64_t trace_id) const {
  std::vector<const internal::ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings.reserve(rings_.size());
    for (const auto& ring : rings_) rings.push_back(ring.get());
  }
  std::vector<SpanView> out;
  for (const internal::ThreadRing* ring : rings) {
    for (const internal::SpanSlot& slot : ring->slots) {
      if (slot.trace_id.load(std::memory_order_acquire) != trace_id) {
        continue;
      }
      SpanView view;
      view.trace_id = trace_id;
      view.span_id = slot.span_id.load(std::memory_order_relaxed);
      view.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      const char* name = slot.name.load(std::memory_order_relaxed);
      view.name = name == nullptr ? "" : name;
      view.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      view.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
      out.push_back(view);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanView& a, const SpanView& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

std::string TraceRecorder::RenderTree(uint64_t trace_id) const {
  std::vector<SpanView> spans = Collect(trace_id);
  if (spans.empty()) {
    return StrFormat("trace %llu: no spans captured\n",
                     static_cast<unsigned long long>(trace_id));
  }
  // Children grouped under their parent span id; spans whose parent was
  // lost (ring wrap, cross-thread hop without adoption) render at the
  // top level after the root.
  std::map<uint32_t, std::vector<const SpanView*>> children;
  std::map<uint32_t, const SpanView*> by_id;
  for (const SpanView& s : spans) by_id[s.span_id] = &s;
  std::vector<const SpanView*> top;
  for (const SpanView& s : spans) {
    if (s.parent_id != 0 && by_id.count(s.parent_id) > 0) {
      children[s.parent_id].push_back(&s);
    } else {
      top.push_back(&s);
    }
  }
  std::string out = StrFormat("trace %llu (%zu spans)\n",
                              static_cast<unsigned long long>(trace_id),
                              spans.size());
  uint64_t origin = spans.front().start_ns;
  std::function<void(const SpanView*, int)> render =
      [&](const SpanView* s, int depth) {
        out += StrFormat(
            "%*s%s +%lluus %lluus\n", depth * 2, "", s->name,
            static_cast<unsigned long long>((s->start_ns - origin) / 1000),
            static_cast<unsigned long long>(s->duration_ns / 1000));
        auto it = children.find(s->span_id);
        if (it == children.end()) return;
        for (const SpanView* child : it->second) render(child, depth + 1);
      };
  for (const SpanView* s : top) render(s, 0);
  return out;
}

// ----------------------------------------------------------- contexts

ScopedTraceContext::ScopedTraceContext(const TraceHandle& handle)
    : saved_(t_current_trace) {
  t_current_trace = handle;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_trace = saved_; }

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!TracingEnabled() || !t_current_trace.active()) return;
  active_ = true;
  parent_id_ = t_current_trace.span_id;
  span_id_ = NextSpanId();
  t_current_trace.span_id = span_id_;
  start_ns_ = NowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  uint64_t duration = NowNanos() - start_ns_;
  uint64_t trace_id = t_current_trace.trace_id;
  t_current_trace.span_id = parent_id_;
  RecordSpan(trace_id, span_id_, parent_id_, name_, start_ns_, duration);
}

TraceRequestScope::TraceRequestScope(uint64_t trace_id,
                                     const char* root_name)
    : saved_(t_current_trace), name_(root_name), trace_id_(trace_id) {
  if (!TracingEnabled() || trace_id == 0) return;
  active_ = true;
  span_id_ = NextSpanId();
  t_current_trace = TraceHandle{trace_id, span_id_};
  start_ns_ = NowNanos();
  TraceRootsCounter()->Increment();
}

TraceRequestScope::~TraceRequestScope() {
  if (!active_) {
    t_current_trace = saved_;
    return;
  }
  uint64_t duration = NowNanos() - start_ns_;
  RecordSpan(trace_id_, span_id_, 0, name_, start_ns_, duration);
  t_current_trace = saved_;
  uint64_t threshold = SlowRequestThresholdNanos();
  if (threshold > 0 && duration >= threshold) {
    SlowRequestsCounter()->Increment();
    SlowRequestLog::Entry entry;
    entry.trace_id = trace_id_;
    entry.duration_ns = duration;
    entry.root_name = name_;
    entry.tree = TraceRecorder::Instance().RenderTree(trace_id_);
    STRUCTURA_LOG(kWarning)
        << "slow request " << entry.root_name << " trace=" << trace_id_
        << " took " << duration / 1000 << "us\n"
        << entry.tree;
    SlowRequestLog::Instance().Record(std::move(entry));
  }
}

// ------------------------------------------------------- slow requests

SlowRequestLog& SlowRequestLog::Instance() {
  static SlowRequestLog* instance = new SlowRequestLog();
  return *instance;
}

void SlowRequestLog::Record(Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(entry));
  if (entries_.size() > kKeep) {
    entries_.erase(entries_.begin(),
                   entries_.begin() +
                       static_cast<ptrdiff_t>(entries_.size() - kKeep));
  }
}

std::vector<SlowRequestLog::Entry> SlowRequestLog::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

void SlowRequestLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace structura::obs
