#ifndef STRUCTURA_OBS_INCIDENT_H_
#define STRUCTURA_OBS_INCIDENT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace structura::obs {

/// Automatic incident bundles: when a trigger fires (the System
/// watchdog observes a health demotion to critical, read-only entry, a
/// flapping breaker, or slow requests), MaybeDump writes one
/// self-contained directory — every registered section rendered at that
/// instant, plus a MANIFEST.json naming the trigger — under the
/// artifact directory. A Clock-driven cooldown rate-limits dumps so a
/// flapping subsystem cannot fill the disk; suppressed triggers are
/// counted, not queued.
///
/// The manager knows nothing about what it dumps: owners (core::System)
/// register named content providers (metrics snapshot, HealthJson,
/// event-journal tail, expensive-request span trees, StatusReport), so
/// obs stays free of upward dependencies.
class IncidentManager {
 public:
  struct Options {
    /// Where bundles land (one subdirectory per incident). Empty
    /// disables dumping entirely — MaybeDump returns "" and counts
    /// nothing.
    std::string dir;
    /// Minimum spacing between bundles, measured on `clock`.
    uint64_t cooldown_ms = 1000;
    /// nullptr = real time.
    Clock* clock = nullptr;
  };

  /// Renders one section of a bundle at dump time. Must be thread-safe.
  using ContentFn = std::function<std::string()>;

  explicit IncidentManager(Options options);
  IncidentManager(const IncidentManager&) = delete;
  IncidentManager& operator=(const IncidentManager&) = delete;

  /// Registers a section written into every bundle as `filename`.
  /// Call during setup, before triggers can fire.
  void AddSection(std::string filename, ContentFn fn);

  /// Writes a bundle for `trigger` unless disabled or still inside the
  /// cooldown window. Returns the bundle directory path, or "" when no
  /// bundle was written (disabled, cooling down, or the filesystem
  /// refused). Serialized: concurrent triggers queue behind the mutex
  /// and the losers land in the cooldown.
  std::string MaybeDump(const std::string& trigger);

  /// Bundles written / triggers suppressed by the cooldown.
  uint64_t dumps() const;
  uint64_t suppressed() const;

  /// Journal-clock stamp of the last bundle, or -1 when none yet.
  int64_t last_dump_nanos() const;

  const std::string& dir() const { return options_.dir; }

 private:
  Options options_;
  Clock* clock_;

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, ContentFn>> sections_;
  int64_t last_dump_nanos_ = -1;
  uint64_t seq_ = 0;
  uint64_t dumps_ = 0;
  uint64_t suppressed_ = 0;
};

}  // namespace structura::obs

#endif  // STRUCTURA_OBS_INCIDENT_H_
