#include "obs/metrics.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/strings.h"

namespace structura::obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

namespace internal {

size_t ThreadShard() {
  // Hash of the thread id, computed once per thread.
  thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shard;
}

}  // namespace internal

uint64_t MetricsSnapshot::HistogramValue::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<uint64_t>(q * static_cast<double>(count));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) return BucketUpperBound(b);
  }
  return BucketUpperBound(buckets.size() - 1);
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked so metrics outlive every static destructor that might still
  // report (thread rings, late-logging destructors).
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(name)).first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::RegisterGaugeFn(const std::string& name,
                                          GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_gauge_fn_id_++;
  gauge_fns_[name] = FnGauge{id, std::move(fn)};
  return id;
}

void MetricsRegistry::UnregisterGaugeFn(const std::string& name,
                                        uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauge_fns_.find(name);
  if (it != gauge_fns_.end() && it->second.id == id) gauge_fns_.erase(it);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  // Copy the callback list out so user callbacks run without the
  // registry lock held (they may touch other locks, e.g. a pool mutex).
  std::vector<std::pair<std::string, GaugeFn>> fns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, c->Value());
    }
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->Value());
    }
    for (const auto& [name, h] : histograms_) {
      MetricsSnapshot::HistogramValue hv;
      hv.name = name;
      hv.sum = h->Sum();
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        hv.buckets[b] = h->buckets_[b].load(std::memory_order_relaxed);
        hv.count += hv.buckets[b];
      }
      snap.histograms.push_back(std::move(hv));
    }
    for (const auto& [name, fg] : gauge_fns_) {
      fns.emplace_back(name, fg.fn);
    }
  }
  for (auto& [name, fn] : fns) {
    snap.gauges.emplace_back(name, fn ? fn() : 0);
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());
  return snap;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += StrFormat("%s %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += StrFormat("%s %lld\n", pname.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& h : snap.histograms) {
    std::string pname = PrometheusName(h.name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out += StrFormat(
          "%s_bucket{le=\"%llu\"} %llu\n", pname.c_str(),
          static_cast<unsigned long long>(BucketUpperBound(b)),
          static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(h.count));
    out += StrFormat("%s_sum %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(h.sum));
    out += StrFormat("%s_count %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%lld", JsonEscape(name).c_str(),
                     static_cast<long long>(value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":{\"count\":%llu,\"sum\":%llu,\"buckets\":[",
                     JsonEscape(h.name).c_str(),
                     static_cast<unsigned long long>(h.count),
                     static_cast<unsigned long long>(h.sum));
    bool first_bucket = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += StrFormat("[%llu,%llu]",
                       static_cast<unsigned long long>(BucketUpperBound(b)),
                       static_cast<unsigned long long>(h.buckets[b]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string RenderCompact(const MetricsSnapshot& snap) {
  // Group scalar metrics by their top-level prefix ("serve", "wal", ...)
  // so the status report reads as one line per subsystem.
  auto prefix_of = [](const std::string& name) {
    size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
  };
  std::set<std::string> prefixes;
  for (const auto& [name, value] : snap.counters) {
    if (value != 0) prefixes.insert(prefix_of(name));
  }
  for (const auto& [name, value] : snap.gauges) {
    if (value != 0) prefixes.insert(prefix_of(name));
  }
  std::string out;
  for (const std::string& prefix : prefixes) {
    std::string line = "metrics[" + prefix + "]:";
    auto short_name = [&](const std::string& name) {
      return name.size() > prefix.size() ? name.substr(prefix.size() + 1)
                                         : name;
    };
    for (const auto& [name, value] : snap.counters) {
      if (value == 0 || prefix_of(name) != prefix) continue;
      line += StrFormat(" %s=%llu", short_name(name).c_str(),
                        static_cast<unsigned long long>(value));
    }
    for (const auto& [name, value] : snap.gauges) {
      if (value == 0 || prefix_of(name) != prefix) continue;
      line += StrFormat(" %s=%lld", short_name(name).c_str(),
                        static_cast<long long>(value));
    }
    out += line + "\n";
  }
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    out += StrFormat(
        "latency[%s]: count=%llu mean=%.0f p50<=%llu p99<=%llu\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.Mean(),
        static_cast<unsigned long long>(h.Quantile(0.5)),
        static_cast<unsigned long long>(h.Quantile(0.99)));
  }
  return out;
}

const char* InternName(const std::string& name) {
  static std::mutex* mu = new std::mutex();
  static std::set<std::string>* pool = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  return pool->insert(name).first->c_str();
}

}  // namespace structura::obs
