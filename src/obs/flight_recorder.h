#ifndef STRUCTURA_OBS_FLIGHT_RECORDER_H_
#define STRUCTURA_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace structura::obs {

/// The system's flight recorder: a lock-free, fixed-size event journal
/// that remembers every state transition the system makes (breaker
/// open/half-open/close, health demote/promote, brownout engage/lift,
/// WAL sticky latch, checkpoint begin/end, watchdog scrub/heal,
/// read-only enter/exit, incident dumps), plus per-request resource
/// accounting (CostVector) and a top-K expensive-request tracker.
///
/// Recording follows the trace-ring protocol (obs/trace.h): one global
/// ring of slots whose fields are relaxed atomics with a publication
/// word stored last (release), so concurrent readers are data-race-free
/// and writers never take a lock. Target cost: ≤ 50 ns per event
/// (bench_e21_flight_recorder).

// ------------------------------------------------------------- events

/// Kill-switch: when disabled, RecordEvent costs one branch and records
/// nothing. Defaults to enabled — the recorder is meant to be always on.
void SetEventJournalEnabled(bool enabled);
bool EventJournalEnabled();

enum class EventCategory : uint8_t {
  kBreaker = 0,
  kHealth = 1,
  kBrownout = 2,
  kWal = 3,
  kCheckpoint = 4,
  kWatchdog = 5,
  kReadOnly = 6,
  kIncident = 7,
};

const char* EventCategoryName(EventCategory c);

enum class EventCode : uint8_t {
  kBreakerOpen = 0,      // a = breaker generation
  kBreakerHalfOpen = 1,  // a = breaker generation
  kBreakerClose = 2,     // a = breaker generation
  kHealthDemote = 3,     // a = old state, b = new state (HealthState ints)
  kHealthPromote = 4,    // a = old state, b = new state
  kBrownoutEngage = 5,   // a = priority tier
  kBrownoutLift = 6,     // a = priority tier
  kWalStickyLatch = 7,   // a = wal epoch
  kCheckpointBegin = 8,  // a = checkpoint seq
  kCheckpointEnd = 9,    // a = checkpoint seq, b = 1 when it failed
  kWatchdogScrub = 10,   // a = 1 when the scrub found damage
  kWatchdogHeal = 11,    // a = 1 when the heal failed
  kReadOnlyEnter = 12,
  kReadOnlyExit = 13,
  kIncidentDump = 14,    // a = incident seq
};

const char* EventCodeName(EventCode c);

/// One event as read back out of the journal.
struct EventView {
  uint64_t seq = 0;        // monotonic record number (journal-wide)
  int64_t nanos = 0;       // Clock stamp
  EventCategory category = EventCategory::kBreaker;
  EventCode code = EventCode::kBreakerOpen;
  uint64_t trace_id = 0;   // ambient trace when recorded in request context
  uint64_t a = 0, b = 0, c = 0;  // small typed payload (per EventCode)
  const char* detail = "";       // interned/static string
};

namespace internal {

/// A journal slot. All fields are relaxed atomics; `pub` (the record's
/// 1-based sequence number) is the publication word: stored 0 first
/// (invalidate), then the fields, then the sequence with release.
struct EventSlot {
  std::atomic<uint64_t> pub{0};
  std::atomic<int64_t> nanos{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<uint64_t> c{0};
  std::atomic<const char*> detail{nullptr};
  std::atomic<uint8_t> category{0};
  std::atomic<uint8_t> code{0};
};

}  // namespace internal

/// Process-wide fixed-size event journal. Record() is wait-free: one
/// fetch_add to claim a slot plus a handful of relaxed stores.
class EventJournal {
 public:
  static constexpr size_t kSlots = 8192;

  static EventJournal& Instance();

  /// Records one event. `detail` MUST have process lifetime (a string
  /// literal or obs::InternName()). The ambient trace id (if any) is
  /// stamped automatically.
  void Record(EventCategory category, EventCode code, uint64_t a = 0,
              uint64_t b = 0, uint64_t c = 0, const char* detail = "");

  /// The newest `max` published events, oldest first. Best-effort under
  /// concurrent writers: a record overwritten mid-read is skipped, never
  /// returned torn.
  std::vector<EventView> Tail(size_t max) const;

  /// JSON array-of-objects rendering of Tail(max):
  /// [{"seq":…,"nanos":…,"category":"…","code":"…","trace_id":…,
  ///   "a":…,"b":…,"c":…,"detail":"…"},…]
  std::string TailJson(size_t max) const;

  /// Total events ever recorded (including ones the ring has dropped).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Time source for event stamps. The journal is process-global, so
  /// the clock is too: System::Create installs its clock (tests with a
  /// SimulatedClock get deterministic stamps); nullptr resets to real
  /// time. Stamps are observational — no behavior keys off them.
  void SetClock(Clock* clock) {
    clock_.store(Clock::OrReal(clock), std::memory_order_release);
  }

 private:
  EventJournal() : clock_(Clock::Real()) {}

  std::array<internal::EventSlot, kSlots> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<Clock*> clock_;
};

/// Convenience free function; the named entry point every transition
/// site calls.
inline void RecordEvent(EventCategory category, EventCode code,
                        uint64_t a = 0, uint64_t b = 0, uint64_t c = 0,
                        const char* detail = "") {
  if (!EventJournalEnabled()) return;
  EventJournal::Instance().Record(category, code, a, b, c, detail);
}

// ----------------------------------------------------- cost accounting

/// Kill-switch for per-request resource accounting. When disabled,
/// charge helpers cost one thread-local load and the frontend skips
/// accumulator allocation and rollup. Defaults to enabled.
void SetCostAccountingEnabled(bool enabled);
bool CostAccountingEnabled();

enum class CostDim : uint8_t {
  kCpuNanos = 0,         // wall nanos spent in handler attempts
  kRowsScanned = 1,
  kSegmentBytesRead = 2,
  kWalBytesAppended = 3,
  kExtractorCalls = 4,
  kRetries = 5,
};

inline constexpr size_t kNumCostDims = 6;

const char* CostDimName(CostDim d);

/// What one request cost, across every layer it touched.
struct CostVector {
  std::array<uint64_t, kNumCostDims> v{};

  uint64_t operator[](CostDim d) const { return v[static_cast<size_t>(d)]; }

  /// Scalar cost for ranking: cpu nanos plus per-unit weights for the
  /// other dimensions (a row ≈ 1µs of attention, a segment byte ≈ 10ns,
  /// a WAL byte ≈ 100ns of durability budget, an extractor call ≈ 10µs,
  /// a retry ≈ 1ms of amplification).
  uint64_t Score() const;

  /// {"cpu_ns":…, "rows_scanned":…, …, "score":…}
  std::string ToJson() const;
};

/// Shared per-request accumulator: every layer a request touches adds
/// into it through the thread-local context. Charges are relaxed
/// fetch_adds so cross-thread hops (pool workers) are race-free.
class CostAccumulator {
 public:
  void Charge(CostDim d, uint64_t n) {
    v_[static_cast<size_t>(d)].fetch_add(n, std::memory_order_relaxed);
  }

  CostVector Snapshot() const {
    CostVector out;
    for (size_t i = 0; i < kNumCostDims; ++i) {
      out.v[i] = v_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<uint64_t>, kNumCostDims> v_{};
};

/// The calling thread's current accumulator (nullptr outside a request).
CostAccumulator* CurrentCost();

/// Installs `acc` as the calling thread's cost context for the scope —
/// the frontend wraps Execute() in one; MR/pool hops that adopt a trace
/// (ScopedTraceContext) adopt the cost context alongside it the same
/// way. Restores the previous context on destruction.
class ScopedCostContext {
 public:
  explicit ScopedCostContext(CostAccumulator* acc);
  ScopedCostContext(const ScopedCostContext&) = delete;
  ScopedCostContext& operator=(const ScopedCostContext&) = delete;
  ~ScopedCostContext();

 private:
  CostAccumulator* saved_;
};

/// Charges `n` units of `d` to the current request, if any. The single
/// call every instrumented layer (query eval, segment reads, WAL
/// appends, extractor invocations) makes; no-op outside request context
/// or when accounting is disabled.
void ChargeCost(CostDim d, uint64_t n);

// ------------------------------------------- expensive-request tracker

/// Keeps the K most expensive requests seen (by CostVector::Score),
/// with enough identity (trace id, operator, stamp) to render their
/// span trees at dump time. Mutex-guarded — Record() is one lock plus
/// a comparison against the current minimum, off the per-charge path
/// (the frontend calls it once per resolved request).
class ExpensiveRequestTracker {
 public:
  static constexpr size_t kKeep = 8;

  struct Entry {
    uint64_t trace_id = 0;
    const char* op = "";   // interned operator span name
    int64_t at_nanos = 0;  // clock stamp when the request started running
    CostVector cost;
    uint64_t score = 0;
  };

  static ExpensiveRequestTracker& Instance();

  void Record(uint64_t trace_id, const char* op, int64_t at_nanos,
              const CostVector& cost);

  /// Current top-K, most expensive first.
  std::vector<Entry> TopK() const;

  /// [{"trace_id":…,"op":"…","at_nanos":…,"cost":{…},"tree":"…"},…]
  /// Span trees are rendered lazily here (from the trace rings), so the
  /// serving hot path never pays for rendering.
  std::string ToJson() const;

  void Clear();

 private:
  ExpensiveRequestTracker() = default;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // sorted descending by score
  /// Admission floor: once the tracker is full, requests scoring at or
  /// below the current minimum are rejected with one relaxed load, no
  /// lock. 0 = not full yet (every request takes the lock).
  std::atomic<uint64_t> floor_{0};
};

}  // namespace structura::obs

#endif  // STRUCTURA_OBS_FLIGHT_RECORDER_H_
