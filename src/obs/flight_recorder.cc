#include "obs/flight_recorder.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::obs {

namespace {

std::atomic<bool> g_events_enabled{true};
std::atomic<bool> g_cost_enabled{true};

thread_local CostAccumulator* t_current_cost = nullptr;

Counter* EventsRecordedCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("obs.events.recorded");
  return c;
}

}  // namespace

void SetEventJournalEnabled(bool enabled) {
  g_events_enabled.store(enabled, std::memory_order_relaxed);
}

bool EventJournalEnabled() {
  return g_events_enabled.load(std::memory_order_relaxed);
}

const char* EventCategoryName(EventCategory c) {
  switch (c) {
    case EventCategory::kBreaker:
      return "breaker";
    case EventCategory::kHealth:
      return "health";
    case EventCategory::kBrownout:
      return "brownout";
    case EventCategory::kWal:
      return "wal";
    case EventCategory::kCheckpoint:
      return "checkpoint";
    case EventCategory::kWatchdog:
      return "watchdog";
    case EventCategory::kReadOnly:
      return "read_only";
    case EventCategory::kIncident:
      return "incident";
  }
  return "?";
}

const char* EventCodeName(EventCode c) {
  switch (c) {
    case EventCode::kBreakerOpen:
      return "breaker_open";
    case EventCode::kBreakerHalfOpen:
      return "breaker_half_open";
    case EventCode::kBreakerClose:
      return "breaker_close";
    case EventCode::kHealthDemote:
      return "health_demote";
    case EventCode::kHealthPromote:
      return "health_promote";
    case EventCode::kBrownoutEngage:
      return "brownout_engage";
    case EventCode::kBrownoutLift:
      return "brownout_lift";
    case EventCode::kWalStickyLatch:
      return "wal_sticky_latch";
    case EventCode::kCheckpointBegin:
      return "checkpoint_begin";
    case EventCode::kCheckpointEnd:
      return "checkpoint_end";
    case EventCode::kWatchdogScrub:
      return "watchdog_scrub";
    case EventCode::kWatchdogHeal:
      return "watchdog_heal";
    case EventCode::kReadOnlyEnter:
      return "read_only_enter";
    case EventCode::kReadOnlyExit:
      return "read_only_exit";
    case EventCode::kIncidentDump:
      return "incident_dump";
  }
  return "?";
}

// ------------------------------------------------------------ journal

EventJournal& EventJournal::Instance() {
  // Leaked: the journal must stay readable for any late scanner (the
  // same discipline as the trace rings).
  static EventJournal* instance = new EventJournal();
  return *instance;
}

void EventJournal::Record(EventCategory category, EventCode code,
                          uint64_t a, uint64_t b, uint64_t c,
                          const char* detail) {
  int64_t nanos =
      clock_.load(std::memory_order_acquire)->NowNanos();
  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  internal::EventSlot& slot = slots_[seq % kSlots];
  // Invalidate first so a concurrent reader cannot pair the old
  // sequence number with the new fields.
  slot.pub.store(0, std::memory_order_release);
  slot.nanos.store(nanos, std::memory_order_relaxed);
  slot.trace_id.store(CurrentTrace().trace_id, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.category.store(static_cast<uint8_t>(category),
                      std::memory_order_relaxed);
  slot.code.store(static_cast<uint8_t>(code), std::memory_order_relaxed);
  // Publish: pub is the 1-based record number, so 0 stays "empty".
  slot.pub.store(seq + 1, std::memory_order_release);
  EventsRecordedCounter()->Increment();
}

std::vector<EventView> EventJournal::Tail(size_t max) const {
  std::vector<EventView> out;
  out.reserve(std::min(max, kSlots));
  for (const internal::EventSlot& slot : slots_) {
    uint64_t pub = slot.pub.load(std::memory_order_acquire);
    if (pub == 0) continue;
    EventView view;
    view.seq = pub - 1;
    view.nanos = slot.nanos.load(std::memory_order_relaxed);
    view.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    view.a = slot.a.load(std::memory_order_relaxed);
    view.b = slot.b.load(std::memory_order_relaxed);
    view.c = slot.c.load(std::memory_order_relaxed);
    const char* detail = slot.detail.load(std::memory_order_relaxed);
    view.detail = detail == nullptr ? "" : detail;
    view.category = static_cast<EventCategory>(
        slot.category.load(std::memory_order_relaxed));
    view.code =
        static_cast<EventCode>(slot.code.load(std::memory_order_relaxed));
    // A writer may have lapped us between the pub load and the field
    // loads; re-checking the publication word discards such torn reads.
    if (slot.pub.load(std::memory_order_acquire) != pub) continue;
    out.push_back(view);
  }
  std::sort(out.begin(), out.end(),
            [](const EventView& x, const EventView& y) {
              return x.seq < y.seq;
            });
  if (out.size() > max) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - max));
  }
  return out;
}

std::string EventJournal::TailJson(size_t max) const {
  std::vector<EventView> events = Tail(max);
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const EventView& e = events[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"seq\":%llu,\"nanos\":%lld,\"category\":\"%s\",\"code\":\"%s\","
        "\"trace_id\":%llu,\"a\":%llu,\"b\":%llu,\"c\":%llu,"
        "\"detail\":\"%s\"}",
        static_cast<unsigned long long>(e.seq),
        static_cast<long long>(e.nanos), EventCategoryName(e.category),
        EventCodeName(e.code), static_cast<unsigned long long>(e.trace_id),
        static_cast<unsigned long long>(e.a),
        static_cast<unsigned long long>(e.b),
        static_cast<unsigned long long>(e.c),
        JsonEscape(e.detail).c_str());
  }
  out += "]";
  return out;
}

// ---------------------------------------------------- cost accounting

void SetCostAccountingEnabled(bool enabled) {
  g_cost_enabled.store(enabled, std::memory_order_relaxed);
}

bool CostAccountingEnabled() {
  return g_cost_enabled.load(std::memory_order_relaxed);
}

const char* CostDimName(CostDim d) {
  switch (d) {
    case CostDim::kCpuNanos:
      return "cpu_ns";
    case CostDim::kRowsScanned:
      return "rows_scanned";
    case CostDim::kSegmentBytesRead:
      return "segment_bytes_read";
    case CostDim::kWalBytesAppended:
      return "wal_bytes_appended";
    case CostDim::kExtractorCalls:
      return "extractor_calls";
    case CostDim::kRetries:
      return "retries";
  }
  return "?";
}

uint64_t CostVector::Score() const {
  return (*this)[CostDim::kCpuNanos] +
         (*this)[CostDim::kRowsScanned] * 1'000 +
         (*this)[CostDim::kSegmentBytesRead] * 10 +
         (*this)[CostDim::kWalBytesAppended] * 100 +
         (*this)[CostDim::kExtractorCalls] * 10'000 +
         (*this)[CostDim::kRetries] * 1'000'000;
}

std::string CostVector::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < kNumCostDims; ++i) {
    out += StrFormat("\"%s\":%llu,", CostDimName(static_cast<CostDim>(i)),
                     static_cast<unsigned long long>(v[i]));
  }
  out += StrFormat("\"score\":%llu}",
                   static_cast<unsigned long long>(Score()));
  return out;
}

CostAccumulator* CurrentCost() { return t_current_cost; }

ScopedCostContext::ScopedCostContext(CostAccumulator* acc)
    : saved_(t_current_cost) {
  t_current_cost = acc;
}

ScopedCostContext::~ScopedCostContext() { t_current_cost = saved_; }

void ChargeCost(CostDim d, uint64_t n) {
  CostAccumulator* acc = t_current_cost;
  if (acc == nullptr || n == 0) return;
  acc->Charge(d, n);
}

// ------------------------------------------- expensive-request tracker

ExpensiveRequestTracker& ExpensiveRequestTracker::Instance() {
  static ExpensiveRequestTracker* instance = new ExpensiveRequestTracker();
  return *instance;
}

void ExpensiveRequestTracker::Record(uint64_t trace_id, const char* op,
                                     int64_t at_nanos,
                                     const CostVector& cost) {
  uint64_t score = cost.Score();
  // Fast reject off the serving path: a full tracker publishes its
  // minimum score, and anything at or below it cannot change the top-K.
  if (score <= floor_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kKeep && score <= entries_.back().score) return;
  Entry e;
  e.trace_id = trace_id;
  e.op = op == nullptr ? "" : op;
  e.at_nanos = at_nanos;
  e.cost = cost;
  e.score = score;
  entries_.push_back(std::move(e));
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& x, const Entry& y) { return x.score > y.score; });
  if (entries_.size() > kKeep) entries_.resize(kKeep);
  if (entries_.size() >= kKeep) {
    floor_.store(entries_.back().score, std::memory_order_relaxed);
  }
}

std::vector<ExpensiveRequestTracker::Entry> ExpensiveRequestTracker::TopK()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::string ExpensiveRequestTracker::ToJson() const {
  std::vector<Entry> entries = TopK();
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"trace_id\":%llu,\"op\":\"%s\",\"at_nanos\":%lld,\"cost\":%s,"
        "\"tree\":\"%s\"}",
        static_cast<unsigned long long>(e.trace_id),
        JsonEscape(e.op).c_str(), static_cast<long long>(e.at_nanos),
        e.cost.ToJson().c_str(),
        JsonEscape(TraceRecorder::Instance().RenderTree(e.trace_id))
            .c_str());
  }
  out += "]";
  return out;
}

void ExpensiveRequestTracker::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  floor_.store(0, std::memory_order_relaxed);
}

}  // namespace structura::obs
