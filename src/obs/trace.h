#ifndef STRUCTURA_OBS_TRACE_H_
#define STRUCTURA_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace structura::obs {

/// Request tracing: a trace id minted per request (serve::RequestContext
/// carries it), scoped spans recorded into lock-free per-thread ring
/// buffers, and a slow-request log that dumps the full span tree of any
/// request whose root span exceeds a threshold.
///
/// Span recording is a single write event at span *end*: the owning
/// thread fills a ring slot with relaxed atomic stores and publishes the
/// trace id last (release). Readers (slow-request dumps, tests) scan all
/// rings filtering by trace id; a slot being overwritten concurrently
/// can yield a stale *record* but never a torn field, and span names are
/// interned/static strings so the name pointer is always dereferenceable.
/// Target cost: ≤ 250 ns per span (bench_e17_observability_overhead).

/// Kill-switch: when disabled, span scopes cost two branch checks and
/// record nothing. Defaults to enabled.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Root spans slower than this are dumped to the slow-request log (and
/// logged at kWarning). 0 disables slow-request capture. Default: 0.
void SetSlowRequestThresholdNanos(uint64_t nanos);
uint64_t SlowRequestThresholdNanos();

/// Mints a fresh non-zero trace id (process-unique).
uint64_t NextTraceId();

/// One completed span as read back out of the rings.
struct SpanView {
  uint64_t trace_id = 0;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;  // 0 = root (or cross-thread orphan)
  const char* name = "";
  uint64_t start_ns = 0;  // steady-clock nanos
  uint64_t duration_ns = 0;
};

namespace internal {

/// A ring slot. All fields are relaxed atomics so concurrent ring scans
/// are data-race-free (TSan-clean); `trace_id` is the publication word.
struct SpanSlot {
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> duration_ns{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint32_t> span_id{0};
  std::atomic<uint32_t> parent_id{0};
};

struct ThreadRing {
  static constexpr size_t kSlots = 4096;
  std::array<SpanSlot, kSlots> slots;
  std::atomic<uint64_t> next{0};  // monotonic; slot = next % kSlots
  std::atomic<bool> in_use{false};
};

}  // namespace internal

/// Owns every thread ring ever created (rings are recycled, never
/// freed, so readers can scan them after their thread exits).
class TraceRecorder {
 public:
  static TraceRecorder& Instance();

  /// The calling thread's ring (acquired on first use).
  internal::ThreadRing* Ring();

  /// All completed spans recorded for `trace_id`, sorted by start time.
  /// Best-effort: spans may be missing if the ring wrapped.
  std::vector<SpanView> Collect(uint64_t trace_id) const;

  /// Renders `Collect(trace_id)` as an indented tree (children nested
  /// under parents by span id, orphans under the root by arrival order).
  std::string RenderTree(uint64_t trace_id) const;

 private:
  TraceRecorder() = default;
  internal::ThreadRing* AcquireRing();
  void ReleaseRing(internal::ThreadRing* ring);

  struct RingLease;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<internal::ThreadRing>> rings_;
};

/// Ambient per-thread trace state: which trace the current code is
/// working for, and the innermost open span (the parent of any new one).
struct TraceHandle {
  uint64_t trace_id = 0;
  uint32_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// The calling thread's current handle ({0,0} when not tracing).
TraceHandle CurrentTrace();

/// Adopts `handle` as the calling thread's trace context — used to carry
/// a request's trace across a thread hop (MR map/reduce tasks, pool
/// work). Restores the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceHandle& handle);
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext();

 private:
  TraceHandle saved_;
};

/// RAII span. Records {name, start, duration, parent} into the thread
/// ring at destruction when a trace is active; no-ops (cheaply) when
/// tracing is disabled or no trace id is set on this thread. `name`
/// MUST have process lifetime — a string literal or obs::InternName().
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  uint32_t span_id_ = 0;
  uint32_t parent_id_ = 0;
  bool active_ = false;
};

/// Opens the *root* span of a request on this thread: installs
/// `trace_id` as the ambient context and records a root span (parent 0)
/// on destruction. If the root's duration exceeds the slow-request
/// threshold, the full span tree is dumped to the SlowRequestLog.
class TraceRequestScope {
 public:
  TraceRequestScope(uint64_t trace_id, const char* root_name);
  TraceRequestScope(const TraceRequestScope&) = delete;
  TraceRequestScope& operator=(const TraceRequestScope&) = delete;
  ~TraceRequestScope();

 private:
  TraceHandle saved_;
  const char* name_;
  uint64_t trace_id_;
  uint64_t start_ns_ = 0;
  uint32_t span_id_ = 0;
  bool active_ = false;
};

/// Retains the last few slow-request dumps for inspection (tests, a
/// debug endpoint); each capture is also logged at kWarning.
class SlowRequestLog {
 public:
  struct Entry {
    uint64_t trace_id = 0;
    uint64_t duration_ns = 0;
    std::string root_name;
    std::string tree;  // RenderTree output at capture time
  };

  static SlowRequestLog& Instance();

  void Record(Entry entry);
  std::vector<Entry> Recent() const;  // newest last
  void Clear();

 private:
  static constexpr size_t kKeep = 16;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace structura::obs

/// Scoped span over the rest of the enclosing block:
///   TRACE_SPAN("query.eval");
/// The name must be a string literal or obs::InternName() result.
#define STRUCTURA_TRACE_CONCAT2(a, b) a##b
#define STRUCTURA_TRACE_CONCAT(a, b) STRUCTURA_TRACE_CONCAT2(a, b)
#define TRACE_SPAN(name)                        \
  ::structura::obs::ScopedSpan STRUCTURA_TRACE_CONCAT(_trace_span_, \
                                                      __LINE__)(name)

#endif  // STRUCTURA_OBS_TRACE_H_
