#include "obs/incident.h"

#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace structura::obs {
namespace {

/// Filesystem-safe slug of a trigger name ("health_critical: storage.disk"
/// → "health_critical_storage.disk"), bounded so a pathological trigger
/// cannot blow the path limit.
std::string Slug(const std::string& trigger) {
  std::string out;
  for (char c : trigger) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '-';
    out += safe ? c : '_';
    if (out.size() >= 48) break;
  }
  return out;
}

Counter* DumpsCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("obs.incidents.dumped");
  return c;
}

Counter* SuppressedCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("obs.incidents.suppressed");
  return c;
}

}  // namespace

IncidentManager::IncidentManager(Options options)
    : options_(std::move(options)),
      clock_(Clock::OrReal(options_.clock)) {}

void IncidentManager::AddSection(std::string filename, ContentFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  sections_.emplace_back(std::move(filename), std::move(fn));
}

std::string IncidentManager::MaybeDump(const std::string& trigger) {
  if (options_.dir.empty()) return "";
  std::unique_lock<std::mutex> lock(mutex_);
  int64_t now = clock_->NowNanos();
  if (last_dump_nanos_ >= 0 &&
      now - last_dump_nanos_ <
          static_cast<int64_t>(options_.cooldown_ms) * 1'000'000) {
    ++suppressed_;
    SuppressedCounter()->Increment();
    return "";
  }
  // Claim the cooldown window before the (slow, unlocked-sections) file
  // writes: a concurrent trigger arriving mid-dump is suppressed rather
  // than producing a second bundle.
  last_dump_nanos_ = now;
  uint64_t seq = seq_++;
  std::vector<std::pair<std::string, ContentFn>> sections = sections_;
  lock.unlock();

  std::string dir = options_.dir + "/incident_" + std::to_string(seq) +
                    "_" + Slug(trigger);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    STRUCTURA_LOG(kWarning)
        << "incident bundle: cannot create " << dir << ": " << ec.message();
    return "";
  }

  std::string manifest = StrFormat(
      "{\"incident\":%llu,\"trigger\":\"%s\",\"nanos\":%lld,\"sections\":[",
      static_cast<unsigned long long>(seq), JsonEscape(trigger).c_str(),
      static_cast<long long>(now));
  bool all_ok = true;
  for (size_t i = 0; i < sections.size(); ++i) {
    const auto& [filename, fn] = sections[i];
    std::ofstream out(dir + "/" + filename, std::ios::trunc);
    out << fn();
    out.close();
    if (!out) all_ok = false;
    if (i > 0) manifest += ',';
    manifest += "\"" + JsonEscape(filename) + "\"";
  }
  manifest += "]}";
  {
    std::ofstream out(dir + "/MANIFEST.json", std::ios::trunc);
    out << manifest << "\n";
    out.close();
    if (!out) all_ok = false;
  }
  if (!all_ok) {
    STRUCTURA_LOG(kWarning)
        << "incident bundle " << dir << ": some sections failed to write";
  }

  {
    std::lock_guard<std::mutex> relock(mutex_);
    ++dumps_;
  }
  DumpsCounter()->Increment();
  RecordEvent(EventCategory::kIncident, EventCode::kIncidentDump, seq, 0, 0,
              InternName(Slug(trigger)));
  STRUCTURA_LOG(kWarning) << "incident bundle written: " << dir
                          << " (trigger: " << trigger << ")";
  return dir;
}

uint64_t IncidentManager::dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

uint64_t IncidentManager::suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

int64_t IncidentManager::last_dump_nanos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_dump_nanos_;
}

}  // namespace structura::obs
