#ifndef STRUCTURA_OBS_METRICS_H_
#define STRUCTURA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace structura::obs {

/// Process-wide metric substrate: named counters, gauges, and
/// log-bucketed latency histograms. The hot paths (Counter::Add,
/// Histogram::Record) are sharded relaxed atomics — cheap enough to
/// live inside the serve and MR inner loops (target ≤ 100 ns/op,
/// measured by bench_e17_observability_overhead). Registration and
/// lookup by name take a mutex; call sites cache the returned pointer
/// (handles are stable for the registry's lifetime).
///
/// Naming scheme (DESIGN.md 5.4): `<layer>.<component>.<metric>`, all
/// lowercase, '.'-separated — e.g. `serve.requests.issued`,
/// `query.keyword.latency_ns`, `wal.append_ns`. Durations are always
/// nanoseconds and end in `_ns`.

/// Kill-switch for *measurement* metrics (histograms). Correctness
/// counters (Counter) are never gated: the serving layer's accounting
/// invariants depend on them. Used by the overhead benchmark to compare
/// instrumented vs uninstrumented runs; defaults to enabled.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

namespace internal {
// One cache line per shard so concurrent writers do not bounce lines.
inline constexpr size_t kShards = 16;
struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> v{0};
};
/// Stable per-thread shard index (hashed thread id).
size_t ThreadShard();
}  // namespace internal

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on a
/// thread-sharded cache line.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    shards_[internal::ThreadShard()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::array<internal::PaddedAtomic, internal::kShards> shards_;
};

/// Last-written-wins signed gauge.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Log₂-bucketed histogram over uint64 values (typically nanoseconds).
/// Bucket b holds values v with std::bit_width(v) == b, i.e. bucket 0 is
/// exactly {0} and bucket b ≥ 1 spans [2^(b-1), 2^b). Record() is two
/// relaxed fetch_adds plus one on a sharded sum line.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width(uint64) ∈ [0, 64]

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
    if (!MetricsEnabled()) return;
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    auto& shard = sums_[internal::ThreadShard()];
    shard.v.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t Count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  uint64_t Sum() const {
    uint64_t s = 0;
    for (const auto& x : sums_) s += x.v.load(std::memory_order_relaxed);
    return s;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  std::string name_;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::array<internal::PaddedAtomic, internal::kShards> sums_;
};

/// Inclusive upper bound of histogram bucket `b` (2^b − 1; bucket 0 → 0).
inline uint64_t BucketUpperBound(size_t b) {
  return b == 0 ? 0
         : b >= 64 ? ~uint64_t{0}
                   : (uint64_t{1} << b) - 1;
}

/// Point-in-time copy of every metric in a registry. All three
/// exposition formats (StatusReport text, Prometheus, JSON) render from
/// one of these, so they always agree.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::kBuckets> buckets{};

    /// Upper bound of the bucket containing quantile `q` ∈ [0, 1].
    uint64_t Quantile(double q) const;
    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  std::vector<std::pair<std::string, uint64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;     // sorted by name
  std::vector<HistogramValue> histograms;                  // sorted by name
};

/// Named-metric registry. `Default()` is the process-wide instance every
/// built-in subsystem reports into; tests can construct private
/// registries for isolation. Get* registers on first use and returns a
/// stable pointer — callers cache it (e.g. in a member or a function-
/// local static) so the mutex is off the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Callback gauge, evaluated at Snapshot() time (e.g. live queue
  /// depth). Registering an existing name replaces its callback and
  /// returns a new id; UnregisterGaugeFn removes the entry only if `id`
  /// is still the current registration, so a stale owner (destroyed
  /// after its name was re-registered) cannot remove its successor.
  using GaugeFn = std::function<int64_t()>;
  uint64_t RegisterGaugeFn(const std::string& name, GaugeFn fn);
  void UnregisterGaugeFn(const std::string& name, uint64_t id);

  MetricsSnapshot Snapshot() const;

 private:
  struct FnGauge {
    uint64_t id = 0;
    GaugeFn fn;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, FnGauge> gauge_fns_;
  uint64_t next_gauge_fn_id_ = 1;
};

/// RAII latency recorder: records elapsed nanoseconds into `h` at scope
/// exit. `h` must outlive the scope (registry handles always do).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* h)
      : h_(h), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    h_->Record(ns < 0 ? 0 : static_cast<uint64_t>(ns));
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// Prometheus text exposition (metric names have '.' mapped to '_';
/// histograms emit cumulative `_bucket{le="..."}` series plus `_sum`
/// and `_count`).
std::string RenderPrometheus(const MetricsSnapshot& snap);

/// JSON exposition: {"counters":{...},"gauges":{...},"histograms":
/// {name:{"count":..,"sum":..,"buckets":[[upper_bound,count],...]}}}.
std::string RenderJson(const MetricsSnapshot& snap);

/// Compact human-readable rendering used by System::StatusReport():
/// non-zero counters and gauges grouped by top-level prefix, histograms
/// as count/mean/p50/p99 lines. Empty string when nothing is non-zero.
std::string RenderCompact(const MetricsSnapshot& snap);

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters become escape sequences. Every
/// hand-rolled JSON renderer in the tree (metrics, health, events,
/// incidents) uses this one implementation, so a metric or subsystem
/// name containing `"` can never produce unparseable output.
std::string JsonEscape(const std::string& s);

/// Interns `name` into process-lifetime storage and returns a stable
/// C string. Used for dynamic span names (trace slots hold `const
/// char*` that must outlive every reader). The pool never shrinks, so
/// only intern bounded vocabularies (operator names, view names).
const char* InternName(const std::string& name);

}  // namespace structura::obs

#endif  // STRUCTURA_OBS_METRICS_H_
