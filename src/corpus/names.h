#ifndef STRUCTURA_CORPUS_NAMES_H_
#define STRUCTURA_CORPUS_NAMES_H_

#include <string>

#include "common/random.h"

namespace structura::corpus {

/// Deterministic name factories backed by fixed pools. Uniqueness is
/// achieved combinatorially (prefix x suffix [x ordinal]), so arbitrarily
/// large corpora can be generated without collisions.

/// i-th unique city name ("Madison" is always index 0 so the paper's
/// motivating query works verbatim).
std::string CityName(size_t i);

/// i-th unique US-style state name (cycled with ordinal suffix if needed).
std::string StateName(size_t i);

/// i-th unique person name, "First Last".
std::string PersonName(size_t i);

/// i-th unique company name.
std::string CompanyName(size_t i);

/// A person-name variant of the kind the paper calls out: "David Smith" ->
/// "D. Smith", "Smith, David", or the full name. `variant` selects which.
std::string PersonNameVariant(const std::string& full, int variant);

/// A city-name variant: "Madison" -> "Madison", "Madison, <State>",
/// "City of Madison".
std::string CityNameVariant(const std::string& city,
                            const std::string& state, int variant);

/// An occupation drawn from a fixed pool.
std::string Occupation(Rng& rng);

}  // namespace structura::corpus

#endif  // STRUCTURA_CORPUS_NAMES_H_
