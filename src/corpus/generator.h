#ifndef STRUCTURA_CORPUS_GENERATOR_H_
#define STRUCTURA_CORPUS_GENERATOR_H_

#include <cstdint>

#include "corpus/records.h"
#include "text/document.h"

namespace structura::corpus {

/// Knobs for the synthetic wiki corpus. Defaults give a small, clean-ish
/// corpus; experiments raise noise/dropout to stress IE, II, and HI.
struct CorpusOptions {
  size_t num_cities = 50;
  size_t num_people = 100;
  size_t num_companies = 20;
  /// Extra news-digest pages that mention entities under surface variants;
  /// the raw material for entity resolution (E2/E3/E9).
  size_t news_pages = 0;
  int mentions_per_news_page = 6;

  uint64_t seed = 42;

  /// Probability an attribute is omitted from the infobox and appears only
  /// in free text (forces free-text extraction; Section 3.2 "best effort").
  double infobox_dropout = 0.2;
  /// Probability an attribute is absent from the page entirely.
  double attribute_missing = 0.05;
  /// Probability a planted mention uses a non-canonical variant
  /// ("D. Smith", "Madison, Wisconsin").
  double mention_variant_prob = 0.5;
  /// Probability a free-text numeric value is corrupted by a digit typo —
  /// realistic extraction noise that human feedback can repair (E2).
  double typo_prob = 0.0;

  /// Fraction of city pages written by a "second source" community that
  /// uses different infobox vocabulary (state->location,
  /// population->inhabitants, elevation->altitude) — the semantic
  /// heterogeneity that schema matching (Section 3.2) must repair.
  double alt_schema_fraction = 0.0;
};

/// Generates the corpus and its ground truth. Deterministic in
/// `options.seed`: equal options produce byte-identical corpora.
void GenerateCorpus(const CorpusOptions& options,
                    text::DocumentCollection* docs, GroundTruth* truth);

/// Simulates the next daily crawl: a `churn_fraction` of pages receive a
/// small edit (appended news line or a changed value) and all versions are
/// bumped. Deterministic in `seed`. Used by the snapshot-store experiment
/// (E6): consecutive crawls overlap heavily, which is exactly the storage
/// argument the paper makes.
void MutateCrawl(uint64_t seed, double churn_fraction,
                 text::DocumentCollection* docs);

}  // namespace structura::corpus

#endif  // STRUCTURA_CORPUS_GENERATOR_H_
