#ifndef STRUCTURA_CORPUS_RECORDS_H_
#define STRUCTURA_CORPUS_RECORDS_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/document.h"

namespace structura::corpus {

/// Ground-truth entity ids. Every surface mention in the generated corpus
/// maps back to one of these, which is what entity-resolution accuracy is
/// scored against.
using EntityId = uint64_t;

inline constexpr int kMonthsPerYear = 12;

/// Month names used both by the generator and by extraction dictionaries.
extern const std::array<const char*, kMonthsPerYear> kMonthNames;

/// Ground truth for one city: the values the generator encoded into the
/// page (infobox and/or free text).
struct CityRecord {
  EntityId id = 0;
  std::string name;
  std::string state;
  int64_t population = 0;
  int64_t founded_year = 0;
  std::string mayor;                       // a PersonRecord's canonical name
  std::array<int, kMonthsPerYear> temps{}; // mean monthly temp, deg F
  double elevation_ft = 0;
};

/// Ground truth for one person.
struct PersonRecord {
  EntityId id = 0;
  std::string name;        // canonical "First Last"
  int64_t birth_year = 0;
  std::string occupation;
  EntityId city_id = 0;    // city of residence
};

/// Ground truth for one company.
struct CompanyRecord {
  EntityId id = 0;
  std::string name;
  int64_t founded_year = 0;
  EntityId hq_city_id = 0;
  int64_t employees = 0;
};

/// One surface mention the generator planted: document, the literal string,
/// and the entity it refers to. Drives entity-resolution scoring (the
/// paper's "David Smith" vs "D. Smith" example).
struct MentionTruth {
  text::DocId doc = 0;
  std::string surface;
  EntityId entity = 0;
};

/// One attribute-value fact the generator planted in a document, e.g.
/// (doc=12, entity=Madison, attribute="temp_mar", value="34"). Numeric
/// values carry the parsed number for aggregate-query scoring.
struct FactTruth {
  text::DocId doc = 0;
  EntityId entity = 0;
  std::string attribute;
  std::string value;
  double numeric_value = 0;
  bool is_numeric = false;
  bool in_infobox = false;  // false: value appears only in free text
};

/// Everything the evaluation harness needs to score a pipeline run.
struct GroundTruth {
  std::vector<CityRecord> cities;
  std::vector<PersonRecord> people;
  std::vector<CompanyRecord> companies;
  std::vector<MentionTruth> mentions;
  std::vector<FactTruth> facts;

  /// entity id -> canonical name, for reporting.
  std::unordered_map<EntityId, std::string> canonical_names;

  const CityRecord* FindCity(const std::string& name) const {
    for (const CityRecord& c : cities) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
};

}  // namespace structura::corpus

#endif  // STRUCTURA_CORPUS_RECORDS_H_
