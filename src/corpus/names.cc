#include "corpus/names.h"

#include <array>

#include "common/strings.h"

namespace structura::corpus {
namespace {

// "Madison" leads so the paper's motivating example ("find the average
// temperature of Madison") exists in every generated corpus.
constexpr std::array<const char*, 24> kCityBases = {
    "Madison",    "Rivervale",  "Oakfield",   "Lakegrove", "Stonebrook",
    "Fairmont",   "Cedarholm",  "Ashport",    "Brookside", "Elmhurst",
    "Granville",  "Hollowell",  "Ironwood",   "Juniper",   "Kingsford",
    "Larkspur",   "Maplewood",  "Northgate",  "Orchard",   "Pinecrest",
    "Quarry",     "Redstone",   "Summit",     "Thornbury"};

constexpr std::array<const char*, 12> kCitySuffixes = {
    "",      " Falls",  " Heights", " Springs", " Junction", " Park",
    " Bay",  " Ridge",  " Valley",  " Point",   " Grove",    " Mills"};

constexpr std::array<const char*, 16> kStates = {
    "Wisconsin",  "Minnesota", "Iowa",      "Illinois",
    "Michigan",   "Ohio",      "Indiana",   "Missouri",
    "Kansas",     "Nebraska",  "Dakota",    "Montana",
    "Colorado",   "Oregon",    "Vermont",   "Maine"};

constexpr std::array<const char*, 20> kFirstNames = {
    "David",  "Sarah", "Michael", "Emily",  "James",   "Anna",  "Robert",
    "Laura",  "John",  "Maria",   "William","Karen",   "Thomas","Susan",
    "Daniel", "Linda", "Paul",    "Alice",  "George",  "Helen"};

constexpr std::array<const char*, 20> kLastNames = {
    "Smith",   "Johnson", "Williams", "Brown",  "Jones",   "Miller",
    "Davis",   "Garcia",  "Wilson",   "Moore",  "Taylor",  "Anderson",
    "Thomas",  "Jackson", "White",    "Harris", "Martin",  "Thompson",
    "Lee",     "Walker"};

constexpr std::array<const char*, 12> kCompanyBases = {
    "Acme",    "Borealis", "Cardinal", "Dynamo", "Evergreen", "Fulcrum",
    "Granite", "Horizon",  "Ironclad", "Keystone", "Lumen",   "Meridian"};

constexpr std::array<const char*, 8> kCompanySuffixes = {
    " Systems", " Industries", " Labs",    " Corporation",
    " Works",   " Dynamics",   " Holdings", " Technologies"};

constexpr std::array<const char*, 10> kOccupations = {
    "engineer",  "teacher",   "physician", "architect", "journalist",
    "professor", "musician",  "attorney",  "chef",      "biologist"};

}  // namespace

std::string CityName(size_t i) {
  size_t base = i % kCityBases.size();
  size_t suffix = (i / kCityBases.size()) % kCitySuffixes.size();
  size_t ordinal = i / (kCityBases.size() * kCitySuffixes.size());
  std::string name = std::string(kCityBases[base]) + kCitySuffixes[suffix];
  if (ordinal > 0) name += StrFormat(" %zu", ordinal + 1);
  return name;
}

std::string StateName(size_t i) {
  size_t base = i % kStates.size();
  size_t ordinal = i / kStates.size();
  std::string name = kStates[base];
  if (ordinal > 0) name = StrFormat("New %s %zu", kStates[base], ordinal);
  return name;
}

std::string PersonName(size_t i) {
  size_t first = i % kFirstNames.size();
  size_t last = (i / kFirstNames.size()) % kLastNames.size();
  size_t ordinal = i / (kFirstNames.size() * kLastNames.size());
  std::string name =
      std::string(kFirstNames[first]) + " " + kLastNames[last];
  if (ordinal > 0) name += StrFormat(" %zu", ordinal + 1);
  return name;
}

std::string CompanyName(size_t i) {
  size_t base = i % kCompanyBases.size();
  size_t suffix = (i / kCompanyBases.size()) % kCompanySuffixes.size();
  size_t ordinal = i / (kCompanyBases.size() * kCompanySuffixes.size());
  std::string name =
      std::string(kCompanyBases[base]) + kCompanySuffixes[suffix];
  if (ordinal > 0) name += StrFormat(" %zu", ordinal + 1);
  return name;
}

std::string PersonNameVariant(const std::string& full, int variant) {
  size_t space = full.find(' ');
  if (space == std::string::npos) return full;
  std::string first = full.substr(0, space);
  std::string rest = full.substr(space + 1);
  switch (variant % 3) {
    case 0:
      return full;
    case 1:
      return std::string(1, first[0]) + ". " + rest;  // "D. Smith"
    default:
      return rest + ", " + first;  // "Smith, David"
  }
}

std::string CityNameVariant(const std::string& city,
                            const std::string& state, int variant) {
  switch (variant % 3) {
    case 0:
      return city;
    case 1:
      return city + ", " + state;
    default:
      return "City of " + city;
  }
}

std::string Occupation(Rng& rng) {
  return kOccupations[rng.NextBounded(kOccupations.size())];
}

}  // namespace structura::corpus
