#include "corpus/generator.h"

#include <cmath>

#include "common/random.h"
#include "common/strings.h"
#include "corpus/names.h"

namespace structura::corpus {

const std::array<const char*, kMonthsPerYear> kMonthNames = {
    "January",   "February", "March",    "April",
    "May",       "June",     "July",     "August",
    "September", "October",  "November", "December"};

namespace {

/// Formats an integer with thousands separators ("233,209"), as values
/// appear in real wiki text.
std::string WithCommas(int64_t v) {
  std::string digits = StrFormat("%lld", static_cast<long long>(v));
  std::string out;
  int count = 0;
  for (size_t i = digits.size(); i-- > 0;) {
    out.insert(out.begin(), digits[i]);
    if (++count % 3 == 0 && i > 0 && digits[i - 1] != '-') {
      out.insert(out.begin(), ',');
    }
  }
  return out;
}

/// Introduces a single-digit typo into a numeric string.
std::string DigitTypo(const std::string& s, Rng& rng) {
  std::string out = s;
  std::vector<size_t> digit_positions;
  for (size_t i = 0; i < out.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(out[i]))) {
      digit_positions.push_back(i);
    }
  }
  if (digit_positions.empty()) return out;
  size_t pos = digit_positions[rng.NextBounded(digit_positions.size())];
  char old = out[pos];
  char sub = static_cast<char>('0' + (old - '0' + 1 + rng.NextBounded(8)) % 10);
  out[pos] = sub;
  return out;
}

struct AttrPlan {
  bool present = true;     // attribute exists on the page at all
  bool in_infobox = true;  // also present in the infobox
};

AttrPlan PlanAttr(const CorpusOptions& o, Rng& rng) {
  AttrPlan p;
  if (rng.NextBool(o.attribute_missing)) {
    p.present = false;
    p.in_infobox = false;
    return p;
  }
  p.in_infobox = !rng.NextBool(o.infobox_dropout);
  return p;
}

class Builder {
 public:
  Builder(const CorpusOptions& options, text::DocumentCollection* docs,
          GroundTruth* truth)
      : o_(options), docs_(docs), truth_(truth), rng_(options.seed) {}

  void Run() {
    MakeEntities();
    for (const CityRecord& c : truth_->cities) EmitCityPage(c);
    for (const PersonRecord& p : truth_->people) EmitPersonPage(p);
    for (const CompanyRecord& c : truth_->companies) EmitCompanyPage(c);
    for (size_t i = 0; i < o_.news_pages; ++i) EmitNewsPage(i);
  }

 private:
  EntityId NextEntityId() { return next_entity_id_++; }

  void MakeEntities() {
    truth_->cities.reserve(o_.num_cities);
    for (size_t i = 0; i < o_.num_cities; ++i) {
      CityRecord c;
      c.id = NextEntityId();
      c.name = CityName(i);
      c.state = StateName(i % 16);
      c.population = 5000 + static_cast<int64_t>(rng_.NextBounded(995000));
      c.founded_year = 1780 + static_cast<int64_t>(rng_.NextBounded(180));
      c.elevation_ft = 200 + rng_.NextBounded(8000);
      double mean = 38 + rng_.NextDouble() * 22;  // 38..60 F annual mean
      double amp = 18 + rng_.NextDouble() * 16;   // seasonal amplitude
      for (int m = 0; m < kMonthsPerYear; ++m) {
        double t = mean - amp * std::cos(2.0 * M_PI * (m + 0.5) / 12.0);
        c.temps[m] = static_cast<int>(std::lround(t));
      }
      truth_->canonical_names[c.id] = c.name;
      truth_->cities.push_back(std::move(c));
    }
    truth_->people.reserve(o_.num_people);
    for (size_t i = 0; i < o_.num_people; ++i) {
      PersonRecord p;
      p.id = NextEntityId();
      p.name = PersonName(i);
      p.birth_year = 1930 + static_cast<int64_t>(rng_.NextBounded(70));
      p.occupation = Occupation(rng_);
      p.city_id = truth_->cities.empty()
                      ? 0
                      : truth_->cities[rng_.NextBounded(
                                           truth_->cities.size())]
                            .id;
      truth_->canonical_names[p.id] = p.name;
      truth_->people.push_back(std::move(p));
    }
    // Assign mayors now that people exist (cities stay mayor-less in
    // person-free corpora).
    if (!truth_->people.empty()) {
      for (CityRecord& c : truth_->cities) {
        const PersonRecord& p =
            truth_->people[rng_.NextBounded(truth_->people.size())];
        c.mayor = p.name;
      }
    }
    truth_->companies.reserve(o_.num_companies);
    for (size_t i = 0; i < o_.num_companies; ++i) {
      CompanyRecord c;
      c.id = NextEntityId();
      c.name = CompanyName(i);
      c.founded_year = 1900 + static_cast<int64_t>(rng_.NextBounded(110));
      c.hq_city_id = truth_->cities.empty()
                         ? 0
                         : truth_->cities[rng_.NextBounded(
                                              truth_->cities.size())]
                               .id;
      c.employees = 10 + static_cast<int64_t>(rng_.NextBounded(90000));
      truth_->canonical_names[c.id] = c.name;
      truth_->companies.push_back(std::move(c));
    }
  }

  void AddMention(text::DocId doc, std::string surface, EntityId entity) {
    truth_->mentions.push_back({doc, std::move(surface), entity});
  }

  void AddFact(text::DocId doc, EntityId entity, std::string attr,
               std::string value, bool numeric, double num,
               bool in_infobox) {
    FactTruth f;
    f.doc = doc;
    f.entity = entity;
    f.attribute = std::move(attr);
    f.value = std::move(value);
    f.is_numeric = numeric;
    f.numeric_value = num;
    f.in_infobox = in_infobox;
    truth_->facts.push_back(std::move(f));
  }

  std::string MaybeTypo(const std::string& value) {
    if (o_.typo_prob > 0 && rng_.NextBool(o_.typo_prob)) {
      return DigitTypo(value, rng_);
    }
    return value;
  }

  const CityRecord& CityById(EntityId id) const {
    for (const CityRecord& c : truth_->cities) {
      if (c.id == id) return c;
    }
    static const CityRecord& empty = *new CityRecord();
    return empty;
  }

  /// Infobox key under this page's source vocabulary. Ground-truth fact
  /// attributes always use the canonical names; schema matching is what
  /// reunifies them downstream.
  const char* Key(bool alt, const char* canonical) const {
    if (!alt) return canonical;
    if (std::string_view(canonical) == "state") return "location";
    if (std::string_view(canonical) == "population") return "inhabitants";
    if (std::string_view(canonical) == "elevation") return "altitude";
    return canonical;
  }

  void EmitCityPage(const CityRecord& c) {
    text::Document doc;
    doc.id = next_doc_id_++;
    doc.title = c.name;
    doc.categories = {"City"};
    // Skip the draw entirely when the feature is off, so corpora stay
    // byte-identical for configurations that predate it.
    const bool alt = o_.alt_schema_fraction > 0 &&
                     rng_.NextBool(o_.alt_schema_fraction);
    std::string info = "{{Infobox city\n";
    std::string body;

    info += StrFormat("| name = %s\n", c.name.c_str());
    info += StrFormat("| %s = %s\n", Key(alt, "state"), c.state.c_str());
    AddMention(doc.id, c.name, c.id);

    body += StrFormat("'''%s''' is a city in %s, United States.\n",
                      c.name.c_str(), c.state.c_str());

    AttrPlan pop = PlanAttr(o_, rng_);
    if (pop.present) {
      std::string v = WithCommas(c.population);
      if (pop.in_infobox) {
        info += StrFormat("| %s = %s\n", Key(alt, "population"),
                          v.c_str());
      }
      body += StrFormat("%s has a population of %s people.\n",
                        c.name.c_str(), MaybeTypo(v).c_str());
      AddFact(doc.id, c.id, "population", v, true,
              static_cast<double>(c.population), pop.in_infobox);
    }

    AttrPlan founded = PlanAttr(o_, rng_);
    if (founded.present) {
      std::string v = StrFormat("%lld", static_cast<long long>(c.founded_year));
      if (founded.in_infobox) info += StrFormat("| founded = %s\n", v.c_str());
      body += StrFormat("The city was founded in %s.\n",
                        MaybeTypo(v).c_str());
      AddFact(doc.id, c.id, "founded", v, true,
              static_cast<double>(c.founded_year), founded.in_infobox);
    }

    AttrPlan mayor = PlanAttr(o_, rng_);
    if (c.mayor.empty()) mayor.present = false;
    if (mayor.present) {
      int variant = rng_.NextBool(o_.mention_variant_prob)
                        ? 1 + static_cast<int>(rng_.NextBounded(2))
                        : 0;
      std::string surface = PersonNameVariant(c.mayor, variant);
      if (mayor.in_infobox) {
        info += StrFormat("| mayor = %s\n", c.mayor.c_str());
      }
      body += StrFormat("The mayor of %s is %s.\n", c.name.c_str(),
                        surface.c_str());
      AddFact(doc.id, c.id, "mayor", c.mayor, false, 0, mayor.in_infobox);
      // Find the mayor's entity id for mention truth.
      for (const PersonRecord& p : truth_->people) {
        if (p.name == c.mayor) {
          AddMention(doc.id, surface, p.id);
          break;
        }
      }
    }

    AttrPlan elev = PlanAttr(o_, rng_);
    if (elev.present) {
      std::string v = StrFormat("%.0f", c.elevation_ft);
      if (elev.in_infobox) {
        info += StrFormat("| %s = %s\n", Key(alt, "elevation"),
                          v.c_str());
      }
      body += StrFormat("It sits at an elevation of %s feet.\n",
                        MaybeTypo(v).c_str());
      AddFact(doc.id, c.id, "elevation", v, true, c.elevation_ft,
              elev.in_infobox);
    }

    body += "\n== Climate ==\n";
    for (int m = 0; m < kMonthsPerYear; ++m) {
      AttrPlan t = PlanAttr(o_, rng_);
      if (!t.present) continue;
      std::string attr = StrFormat("temp_%02d", m + 1);
      std::string v = StrFormat("%d", c.temps[m]);
      if (t.in_infobox) {
        info += StrFormat("| %s = %s\n", attr.c_str(), v.c_str());
      }
      body += StrFormat("The average temperature in %s is %s degrees.\n",
                        kMonthNames[m], MaybeTypo(v).c_str());
      AddFact(doc.id, c.id, attr, v, true,
              static_cast<double>(c.temps[m]), t.in_infobox);
    }

    info += "}}\n";
    doc.text = info + body + "\n[[Category:City]]\n";
    docs_->docs.push_back(std::move(doc));
  }

  void EmitPersonPage(const PersonRecord& p) {
    text::Document doc;
    doc.id = next_doc_id_++;
    doc.title = p.name;
    doc.categories = {"Person"};
    const CityRecord& city = CityById(p.city_id);

    std::string info = "{{Infobox person\n";
    info += StrFormat("| name = %s\n", p.name.c_str());
    AddMention(doc.id, p.name, p.id);
    std::string body = StrFormat("'''%s''' is a %s.\n", p.name.c_str(),
                                 p.occupation.c_str());

    AttrPlan birth = PlanAttr(o_, rng_);
    if (birth.present) {
      std::string v = StrFormat("%lld", static_cast<long long>(p.birth_year));
      if (birth.in_infobox) {
        info += StrFormat("| birth_year = %s\n", v.c_str());
      }
      body += StrFormat("Born in %s, %s began a career as a %s.\n",
                        MaybeTypo(v).c_str(),
                        PersonNameVariant(p.name, 1).c_str(),
                        p.occupation.c_str());
      AddMention(doc.id, PersonNameVariant(p.name, 1), p.id);
      AddFact(doc.id, p.id, "birth_year", v, true,
              static_cast<double>(p.birth_year), birth.in_infobox);
    }

    AttrPlan occ = PlanAttr(o_, rng_);
    if (occ.present && occ.in_infobox) {
      info += StrFormat("| occupation = %s\n", p.occupation.c_str());
    }
    if (occ.present) {
      AddFact(doc.id, p.id, "occupation", p.occupation, false, 0,
              occ.in_infobox);
    }

    AttrPlan res = PlanAttr(o_, rng_);
    if (res.present) {
      int variant = rng_.NextBool(o_.mention_variant_prob)
                        ? 1 + static_cast<int>(rng_.NextBounded(2))
                        : 0;
      std::string surface = CityNameVariant(city.name, city.state, variant);
      if (res.in_infobox) {
        info += StrFormat("| residence = %s\n", city.name.c_str());
      }
      body += StrFormat("They live in [[%s|%s]].\n", city.name.c_str(),
                        surface.c_str());
      AddMention(doc.id, surface, city.id);
      AddFact(doc.id, p.id, "residence", city.name, false, 0,
              res.in_infobox);
    }

    info += "}}\n";
    doc.text = info + body + "\n[[Category:Person]]\n";
    docs_->docs.push_back(std::move(doc));
  }

  void EmitCompanyPage(const CompanyRecord& c) {
    text::Document doc;
    doc.id = next_doc_id_++;
    doc.title = c.name;
    doc.categories = {"Company"};
    const CityRecord& hq = CityById(c.hq_city_id);

    std::string info = "{{Infobox company\n";
    info += StrFormat("| name = %s\n", c.name.c_str());
    AddMention(doc.id, c.name, c.id);
    std::string body =
        StrFormat("'''%s''' is a company headquartered in [[%s]].\n",
                  c.name.c_str(), hq.name.c_str());
    AddMention(doc.id, hq.name, hq.id);
    AddFact(doc.id, c.id, "headquarters", hq.name, false, 0, false);

    AttrPlan founded = PlanAttr(o_, rng_);
    if (founded.present) {
      std::string v = StrFormat("%lld", static_cast<long long>(c.founded_year));
      if (founded.in_infobox) {
        info += StrFormat("| founded = %s\n", v.c_str());
      }
      body += StrFormat("It was founded in %s.\n", MaybeTypo(v).c_str());
      AddFact(doc.id, c.id, "founded", v, true,
              static_cast<double>(c.founded_year), founded.in_infobox);
    }

    AttrPlan emp = PlanAttr(o_, rng_);
    if (emp.present) {
      std::string v = WithCommas(c.employees);
      if (emp.in_infobox) {
        info += StrFormat("| employees = %s\n", v.c_str());
      }
      body += StrFormat("The firm employs %s people.\n",
                        MaybeTypo(v).c_str());
      AddFact(doc.id, c.id, "employees", v, true,
              static_cast<double>(c.employees), emp.in_infobox);
    }

    info += "}}\n";
    doc.text = info + body + "\n[[Category:Company]]\n";
    docs_->docs.push_back(std::move(doc));
  }

  void EmitNewsPage(size_t index) {
    text::Document doc;
    doc.id = next_doc_id_++;
    doc.title = StrFormat("News Digest %zu", index + 1);
    doc.categories = {"News"};
    std::string body = StrFormat("== Digest %zu ==\n", index + 1);
    for (int i = 0; i < o_.mentions_per_news_page; ++i) {
      const PersonRecord& p =
          truth_->people[rng_.NextBounded(truth_->people.size())];
      const CityRecord& c =
          truth_->cities[rng_.NextBounded(truth_->cities.size())];
      int pv = rng_.NextBool(o_.mention_variant_prob)
                   ? 1 + static_cast<int>(rng_.NextBounded(2))
                   : 0;
      int cv = rng_.NextBool(o_.mention_variant_prob)
                   ? 1 + static_cast<int>(rng_.NextBounded(2))
                   : 0;
      std::string ps = PersonNameVariant(p.name, pv);
      std::string cs = CityNameVariant(c.name, c.state, cv);
      body += StrFormat("%s, a %s, visited %s this week.\n", ps.c_str(),
                        p.occupation.c_str(), cs.c_str());
      AddMention(doc.id, ps, p.id);
      AddMention(doc.id, cs, c.id);
    }
    doc.text = body + "\n[[Category:News]]\n";
    docs_->docs.push_back(std::move(doc));
  }

  const CorpusOptions& o_;
  text::DocumentCollection* docs_;
  GroundTruth* truth_;
  Rng rng_;
  EntityId next_entity_id_ = 1;
  text::DocId next_doc_id_ = 1;
};

}  // namespace

void GenerateCorpus(const CorpusOptions& options,
                    text::DocumentCollection* docs, GroundTruth* truth) {
  Builder(options, docs, truth).Run();
}

void MutateCrawl(uint64_t seed, double churn_fraction,
                 text::DocumentCollection* docs) {
  Rng rng(seed);
  for (text::Document& d : docs->docs) {
    d.version += 1;
    if (!rng.NextBool(churn_fraction)) continue;
    d.text += StrFormat(
        "\nUpdate %u: minor revision recorded on day %u.\n", d.version,
        d.version);
  }
}

}  // namespace structura::corpus
