#include "serve/health.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "obs/flight_recorder.h"

namespace structura::serve {

// The shared escaper (obs/metrics.h) — one implementation for every
// hand-rolled JSON surface, so names with quotes/backslashes/control
// characters always produce parseable output.
using obs::JsonEscape;

const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kCritical:
      return "critical";
  }
  return "?";
}

HealthModel::HealthModel(Options options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::MetricsRegistry::Default()),
      transitions_counter_(registry_->GetCounter("health.transitions")) {}

uint64_t HealthModel::Register(const std::string& subsystem,
                               const std::string& source, SignalFn fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Replacing an existing (subsystem, source) pair must give the same
  // never-runs-again guarantee Detach gives, so wait out any in-flight
  // evaluation before dropping the old fn.
  idle_cv_.wait(lock, [&] { return !evaluating_; });
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.subsystem == subsystem && it->second.source == source) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  uint64_t id = next_id_++;
  Entry e;
  e.subsystem = subsystem;
  e.source = source;
  e.fn = std::move(fn);
  entries_.emplace(id, std::move(e));
  return id;
}

void HealthModel::Detach(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  // An in-flight Evaluate() runs fn copies with the lock released; once
  // it finishes applying results it clears `evaluating_`. Waiting here
  // guarantees the detached fn can never run again after we return.
  idle_cv_.wait(lock, [&] { return !evaluating_; });
  entries_.erase(id);
  PublishGaugesLocked();
}

void HealthModel::Evaluate() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return !evaluating_; });
  evaluating_ = true;
  std::vector<std::pair<uint64_t, SignalFn>> work;
  work.reserve(entries_.size());
  for (const auto& [id, e] : entries_) work.emplace_back(id, e.fn);
  lock.unlock();

  // Signals run unlocked so they may take their own locks (breaker
  // mutexes, pool stats). `evaluating_` keeps Detach/Register parked
  // until the results are applied, so the fn copies stay valid.
  std::vector<std::pair<uint64_t, HealthSample>> results;
  results.reserve(work.size());
  for (auto& [id, fn] : work) results.emplace_back(id, fn());

  lock.lock();
  for (auto& [id, sample] : results) {
    auto it = entries_.find(id);
    if (it != entries_.end()) ApplyLocked(&it->second, sample);
  }
  ++evaluations_;
  PublishGaugesLocked();
  evaluating_ = false;
  idle_cv_.notify_all();
}

void HealthModel::ApplyLocked(Entry* e, const HealthSample& sample) {
  if (sample.state >= e->state) {
    // Same or worse: adopt immediately (and refresh the reason).
    if (sample.state != e->state) {
      ++e->transitions;
      ++transitions_;
      transitions_counter_->Increment();
      // Flight recorder: the verdict source goes in the detail so a
      // bundle tells integrity-driven demotions from breaker-driven
      // ones. Subsystem/source vocabularies are bounded → internable.
      obs::RecordEvent(obs::EventCategory::kHealth,
                       obs::EventCode::kHealthDemote,
                       static_cast<uint64_t>(e->state),
                       static_cast<uint64_t>(sample.state), 0,
                       obs::InternName(e->subsystem + "/" + e->source));
    }
    e->state = sample.state;
    e->reason = sample.reason;
    e->improve_streak = 0;
    return;
  }
  // Better: promotion needs a streak — one lucky probe is not recovery.
  if (++e->improve_streak >= options_.promote_after) {
    obs::RecordEvent(obs::EventCategory::kHealth,
                     obs::EventCode::kHealthPromote,
                     static_cast<uint64_t>(e->state),
                     static_cast<uint64_t>(sample.state), 0,
                     obs::InternName(e->subsystem + "/" + e->source));
    e->state = sample.state;
    e->reason = sample.reason;
    e->improve_streak = 0;
    ++e->transitions;
    ++transitions_;
    transitions_counter_->Increment();
  }
}

void HealthModel::PublishGaugesLocked() {
  std::map<std::string, HealthState> worst;
  HealthState overall = HealthState::kHealthy;
  for (const auto& [id, e] : entries_) {
    HealthState& w = worst.try_emplace(e.subsystem, HealthState::kHealthy)
                         .first->second;
    w = std::max(w, e.state);
    overall = std::max(overall, e.state);
  }
  for (const auto& [name, state] : worst) {
    registry_->GetGauge("health." + name)->Set(static_cast<int64_t>(state));
  }
  registry_->GetGauge("health.overall")->Set(static_cast<int64_t>(overall));
}

HealthState HealthModel::StateOf(const std::string& subsystem) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthState worst = HealthState::kHealthy;
  for (const auto& [id, e] : entries_) {
    if (e.subsystem == subsystem) worst = std::max(worst, e.state);
  }
  return worst;
}

std::string HealthModel::ReasonOf(const std::string& subsystem) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthState worst = HealthState::kHealthy;
  std::string reason;
  for (const auto& [id, e] : entries_) {
    if (e.subsystem != subsystem) continue;
    if (e.state >= worst && !e.reason.empty()) reason = e.reason;
    worst = std::max(worst, e.state);
  }
  return worst == HealthState::kHealthy ? std::string() : reason;
}

HealthState HealthModel::Overall() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthState worst = HealthState::kHealthy;
  for (const auto& [id, e] : entries_) worst = std::max(worst, e.state);
  return worst;
}

uint64_t HealthModel::evaluations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

uint64_t HealthModel::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

std::vector<HealthModel::SourceStatus> HealthModel::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SourceStatus> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    SourceStatus s;
    s.subsystem = e.subsystem;
    s.source = e.source;
    s.state = e.state;
    s.reason = e.reason;
    s.transitions = e.transitions;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const SourceStatus& a, const SourceStatus& b) {
              return std::tie(a.subsystem, a.source) <
                     std::tie(b.subsystem, b.source);
            });
  return out;
}

std::string HealthModel::ToJson() const {
  std::vector<SourceStatus> sources = Snapshot();
  uint64_t evals;
  uint64_t trans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    evals = evaluations_;
    trans = transitions_;
  }
  HealthState overall = HealthState::kHealthy;
  for (const SourceStatus& s : sources) overall = std::max(overall, s.state);

  std::string out = "{";
  out += StrFormat("\"overall\":\"%s\",\"evaluations\":%llu,"
                   "\"transitions\":%llu,\"subsystems\":{",
                   HealthStateName(overall),
                   static_cast<unsigned long long>(evals),
                   static_cast<unsigned long long>(trans));
  size_t i = 0;
  while (i < sources.size()) {
    const std::string& subsystem = sources[i].subsystem;
    HealthState worst = HealthState::kHealthy;
    size_t j = i;
    for (; j < sources.size() && sources[j].subsystem == subsystem; ++j) {
      worst = std::max(worst, sources[j].state);
    }
    if (i > 0) out += ',';
    out += StrFormat("\"%s\":{\"state\":\"%s\",\"sources\":{",
                     JsonEscape(subsystem).c_str(), HealthStateName(worst));
    for (size_t k = i; k < j; ++k) {
      if (k > i) out += ',';
      out += StrFormat(
          "\"%s\":{\"state\":\"%s\",\"reason\":\"%s\",\"transitions\":%llu}",
          JsonEscape(sources[k].source).c_str(),
          HealthStateName(sources[k].state),
          JsonEscape(sources[k].reason).c_str(),
          static_cast<unsigned long long>(sources[k].transitions));
    }
    out += "}}";
    i = j;
  }
  out += "}}";
  return out;
}

}  // namespace structura::serve
