#ifndef STRUCTURA_SERVE_COUNTERS_H_
#define STRUCTURA_SERVE_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/request_context.h"

namespace structura::serve {

/// Point-in-time snapshot of the frontend's serving counters, consumed
/// by System::StatusReport(). Since the observability PR these are a
/// *view over the process MetricsRegistry* (`serve.requests.*`): the
/// frontend bumps registry counters and Counters() reports the delta
/// since the frontend's construction, so existing exact-count tests
/// keep passing while the registry stays the single source of truth.
/// Invariants the chaos test enforces (globally AND per priority tier):
///   admitted + shed + not_found == issued        (every Submit decided)
///   ok + deadline_exceeded + cancelled
///      + unavailable == resolved admitted        (every admitted ends)
///   root_spans == admitted                       (one root span each)
struct ServingCounters {
  /// Admission accounting for one priority tier
  /// (`serve.requests.tier.<tier>.*`). The same invariant holds per
  /// tier: admitted + shed + not_found == issued.
  struct Tier {
    uint64_t issued = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t not_found = 0;
  };

  uint64_t issued = 0;             // Submit() calls
  uint64_t admitted = 0;           // accepted onto the queue
  uint64_t shed = 0;               // refused at admission (queue/brownout)
  uint64_t not_found = 0;          // refused at admission (unknown operator)
  uint64_t ok = 0;                 // resolved OK
  uint64_t deadline_exceeded = 0;  // resolved kDeadlineExceeded
  uint64_t cancelled = 0;          // resolved kCancelled
  uint64_t unavailable = 0;        // resolved kUnavailable post-admission
  uint64_t shed_queued_wait = 0;   // of `unavailable`: stale in queue
  uint64_t breaker_rejected = 0;   // of `unavailable`: breaker open
  uint64_t read_only_refused = 0;  // of `unavailable`: write in brownout
  uint64_t shed_brownout = 0;      // of `shed`: brownout tier refusal
  uint64_t fallback_served = 0;    // answered by a fallback operator
  uint64_t degraded_answers = 0;   // of `ok`: flagged degraded
  uint64_t retries = 0;            // re-attempts charged to budgets
  uint64_t root_spans = 0;         // request root spans recorded
  uint64_t queue_high_water = 0;   // max queued tasks ever observed
  /// Indexed by Priority (interactive/batch/background).
  std::array<Tier, kNumPriorities> tiers{};
  /// (operator, breaker state name), in registration order.
  std::vector<std::pair<std::string, std::string>> breakers;

  /// One-line rendering used by StatusReport().
  std::string ToString() const;
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_COUNTERS_H_
