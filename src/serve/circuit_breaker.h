#ifndef STRUCTURA_SERVE_CIRCUIT_BREAKER_H_
#define STRUCTURA_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

namespace structura::serve {

/// Per-operator circuit breaker.
///
/// State machine:
///   closed --(failure_threshold consecutive failures)--> open
///   open --(open cooldown elapses)--> half-open
///   half-open --(probe succeeds)--> closed
///   half-open --(probe fails)--> open (cooldown restarts)
///
/// While open, `Allow()` refuses every call so a struggling operator
/// sees no traffic at all (the appliance degrades instead of queueing
/// callers behind a sick component). Once the cooldown elapses, up to
/// `half_open_probes` in-flight calls are let through to test recovery;
/// the first success re-closes the breaker, the first failure re-opens
/// it. Thread-safe; every transition is counted for StatusReport().
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures in closed state before opening.
    uint32_t failure_threshold = 5;
    /// How long the breaker stays open before probing.
    uint64_t open_ms = 100;
    /// Concurrent probes admitted in half-open state.
    uint32_t half_open_probes = 1;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  static const char* StateName(State s);

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// True when a call may proceed. An open breaker whose cooldown has
  /// elapsed transitions to half-open here and admits the caller as a
  /// probe; callers that got `true` MUST report RecordSuccess or
  /// RecordFailure so probe accounting stays balanced.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// closed->open transitions since construction.
  uint64_t open_transitions() const;
  /// Calls refused because the breaker was open (or half-open with all
  /// probe slots taken).
  uint64_t rejected() const;

 private:
  using Clock = std::chrono::steady_clock;

  Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t inflight_probes_ = 0;
  Clock::time_point opened_at_{};
  uint64_t open_transitions_ = 0;
  uint64_t rejected_ = 0;

  void OpenLocked();
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_CIRCUIT_BREAKER_H_
