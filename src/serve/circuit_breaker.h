#ifndef STRUCTURA_SERVE_CIRCUIT_BREAKER_H_
#define STRUCTURA_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace structura::serve {

/// Per-operator circuit breaker.
///
/// State machine:
///   closed --(failure_threshold consecutive failures)--> open
///   open --(open cooldown elapses)--> half-open
///   half-open --(probe succeeds)--> closed
///   half-open --(probe fails)--> open (cooldown restarts)
///
/// While open, `Allow()` refuses every call so a struggling operator
/// sees no traffic at all (the appliance degrades instead of queueing
/// callers behind a sick component). Once the cooldown elapses, up to
/// `half_open_probes` in-flight calls are let through to test recovery;
/// the first success re-closes the breaker, the first failure re-opens
/// it. Thread-safe; every transition is counted for StatusReport().
///
/// **Admission generations.** Every state transition bumps an internal
/// generation; `Allow()` hands the admitting generation back through its
/// out-parameter. A result reported with a stale admission — one taken
/// before the last state transition — is ignored, so probes that were
/// still in flight when the breaker re-closed (or re-opened) cannot
/// poison the fresh state: a pre-recovery straggler failure neither
/// counts toward `consecutive_failures_` nor re-opens the breaker, and
/// a straggler success cannot spuriously close it. Callers that omit
/// the admission (the single-threaded convenience form) are treated as
/// current-generation.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures in closed state before opening.
    uint32_t failure_threshold = 5;
    /// How long the breaker stays open before probing.
    uint64_t open_ms = 100;
    /// Concurrent probes admitted in half-open state.
    uint32_t half_open_probes = 1;
    /// Half-open probe slots are reclaimed after this long: if every
    /// slot is taken and none was admitted within the window, the
    /// outstanding probes are presumed stuck (a hung handler that will
    /// never report) — their admissions are invalidated via a
    /// generation bump and a fresh probe is admitted, so a probe that
    /// never completes cannot wedge the breaker in half-open forever.
    /// 0 (the default) disables reclamation; opt in with a value
    /// comfortably above the slowest healthy probe, or every slow-but-
    /// healthy probe is invalidated before it can report success and
    /// the breaker churns in half-open instead of re-closing.
    uint64_t probe_timeout_ms = 0;
    /// Time source for the cooldown and reclamation timers. nullptr =
    /// real time; tests inject a SimulatedClock to step the breaker
    /// across its timing boundaries deterministically.
    structura::Clock* clock = nullptr;
    /// Name stamped on the breaker's flight-recorder events (its
    /// operator name, typically). MUST have process lifetime — a string
    /// literal or obs::InternName(); "" records anonymous events.
    const char* name = "";
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  /// Sentinel admission meaning "attribute to the current generation"
  /// (skip the staleness check). What the no-argument Record*/Release
  /// defaults pass.
  static constexpr uint64_t kCurrentAdmission = ~uint64_t{0};

  static const char* StateName(State s);

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options)
      : options_(options), clock_(structura::Clock::OrReal(options.clock)) {}

  /// True when a call may proceed. An open breaker whose cooldown has
  /// elapsed transitions to half-open here and admits the caller as a
  /// probe. Callers that got `true` MUST balance the admission with
  /// exactly one of RecordSuccess / RecordFailure / ReleaseProbe, and
  /// should pass back the admission written to `admission` so stale
  /// (pre-transition) results are discarded.
  bool Allow(uint64_t* admission = nullptr);

  /// The admitted call completed healthy. Re-closes a half-open
  /// breaker; resets the consecutive-failure count.
  void RecordSuccess(uint64_t admission = kCurrentAdmission);

  /// The admitted call failed. Counts toward opening (closed) or
  /// re-opens with a fresh cooldown (half-open).
  void RecordFailure(uint64_t admission = kCurrentAdmission);

  /// The admitted call ended without evidence either way (e.g. the
  /// client cancelled). Releases the probe slot a half-open admission
  /// held, but neither closes the breaker nor counts as a failure — a
  /// cancellation says nothing about the operator's health.
  void ReleaseProbe(uint64_t admission = kCurrentAdmission);

  State state() const;
  /// closed->open transitions since construction.
  uint64_t open_transitions() const;
  /// Calls refused because the breaker was open (or half-open with all
  /// probe slots taken).
  uint64_t rejected() const;
  /// Half-open probe slots reclaimed from stuck probes (see
  /// Options::probe_timeout_ms).
  uint64_t probe_reclaims() const;

 private:
  Options options_;
  structura::Clock* clock_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t inflight_probes_ = 0;
  /// Bumped on every state transition; admissions from an older
  /// generation report into a world that no longer exists and are
  /// ignored (see class comment).
  uint64_t generation_ = 0;
  int64_t opened_at_nanos_ = 0;
  /// When the most recent half-open probe was admitted; the staleness
  /// anchor for probe-slot reclamation.
  int64_t last_probe_at_nanos_ = 0;
  uint64_t open_transitions_ = 0;
  uint64_t rejected_ = 0;
  uint64_t probe_reclaims_ = 0;

  void OpenLocked();
  bool StaleLocked(uint64_t admission) const {
    return admission != kCurrentAdmission && admission != generation_;
  }
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_CIRCUIT_BREAKER_H_
