#ifndef STRUCTURA_SERVE_HEALTH_H_
#define STRUCTURA_SERVE_HEALTH_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace structura::serve {

/// Per-subsystem health: the tri-state every degradation decision keys
/// off. Order matters — comparisons use "worse = larger".
enum class HealthState { kHealthy = 0, kDegraded = 1, kCritical = 2 };

const char* HealthStateName(HealthState s);

/// One reading from a signal source: the state it votes for and a
/// human-readable reason (empty when healthy).
struct HealthSample {
  HealthState state = HealthState::kHealthy;
  std::string reason;
};

/// The system's health ledger: named subsystems (ie, query.structured,
/// query.keyword, storage.wal, storage.segments, serve, …), each fed by
/// one or more registered signal sources that derive a HealthSample
/// from existing telemetry (circuit-breaker states, IntegrityCounters,
/// queue gauges, fault-rate deltas). A subsystem's state is the worst
/// of its sources' states.
///
/// **Evaluation & hysteresis.** `Evaluate()` (called by the System
/// watchdog, or directly in tests) polls every signal and applies a
/// demote-fast / promote-slow state machine per source: a worse sample
/// takes effect immediately, but promotion back toward healthy requires
/// `promote_after` *consecutive* better samples — one lucky probe does
/// not clear an outage. Evaluations are serialized; signal fns run with
/// the model's lock released so they may freely take their own locks
/// (breaker mutexes, pool stats), but they MUST NOT call back into this
/// model (StateOf/Evaluate/…) or they deadlock against the drain logic.
///
/// **Detach discipline.** `Detach(id)` blocks until no evaluation is in
/// flight, so after it returns the signal fn is guaranteed never to run
/// again. Owners of state captured by a signal (e.g. a Frontend whose
/// breakers feed `query.*`) MUST detach in their destructor *before*
/// that state is torn down; the model itself must outlive every
/// registrant (it lives in System, registrants are created after and
/// destroyed before it).
///
/// Exposed as registry gauges `health.<subsystem>` (0/1/2) and
/// `health.overall`, counter `health.transitions`, and as JSON via
/// `ToJson()` / `System::HealthJson()`.
class HealthModel {
 public:
  struct Options {
    /// Consecutive improved samples needed before a source's state is
    /// promoted (toward healthy). Demotions are immediate.
    uint32_t promote_after = 2;
    /// Registry the health gauges live in; defaults to the process-wide
    /// one. Must outlive the model.
    obs::MetricsRegistry* registry = nullptr;
  };

  /// A signal source. Must be cheap (runs on the watchdog cadence),
  /// thread-safe, and must not call back into the HealthModel.
  using SignalFn = std::function<HealthSample()>;

  HealthModel() : HealthModel(Options{}) {}
  explicit HealthModel(Options options);
  HealthModel(const HealthModel&) = delete;
  HealthModel& operator=(const HealthModel&) = delete;

  /// Registers (or replaces) the signal `source` feeding `subsystem`.
  /// Returns a registration id for Detach. Replacing an existing
  /// (subsystem, source) pair detaches the old fn first (same drain
  /// guarantee as Detach).
  uint64_t Register(const std::string& subsystem, const std::string& source,
                    SignalFn fn);

  /// Removes a registration and blocks until any in-flight Evaluate()
  /// can no longer be running its fn. Safe to call with a stale id (
  /// no-op when the registration was already replaced). The source's
  /// last state is dropped from the ledger — a detached component no
  /// longer votes.
  void Detach(uint64_t id);

  /// Polls every signal once and folds the samples into the ledger.
  /// Serialized: concurrent calls queue behind each other.
  void Evaluate();

  /// Worst state over the subsystem's sources; kHealthy when unknown.
  HealthState StateOf(const std::string& subsystem) const;

  /// Reason of the worst-state source of the subsystem ("" if healthy).
  std::string ReasonOf(const std::string& subsystem) const;

  /// Worst state over every registered source.
  HealthState Overall() const;

  uint64_t evaluations() const;
  uint64_t transitions() const;

  struct SourceStatus {
    std::string subsystem;
    std::string source;
    HealthState state = HealthState::kHealthy;
    std::string reason;
    uint64_t transitions = 0;
  };
  /// Every source's current state, sorted by (subsystem, source).
  std::vector<SourceStatus> Snapshot() const;

  /// {"overall":"…","evaluations":N,"transitions":N,
  ///  "subsystems":{"ie":{"state":"…","sources":{"faults":
  ///  {"state":"…","reason":"…","transitions":N}}},…}}
  std::string ToJson() const;

 private:
  struct Entry {
    std::string subsystem;
    std::string source;
    SignalFn fn;
    HealthState state = HealthState::kHealthy;
    std::string reason;
    uint32_t improve_streak = 0;
    uint64_t transitions = 0;
  };

  /// Applies one sample to `e` under mutex_ (demote-fast/promote-slow).
  void ApplyLocked(Entry* e, const HealthSample& sample);
  void PublishGaugesLocked();

  Options options_;
  obs::MetricsRegistry* registry_;
  obs::Counter* transitions_counter_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  bool evaluating_ = false;
  std::map<uint64_t, Entry> entries_;
  uint64_t next_id_ = 1;
  uint64_t evaluations_ = 0;
  uint64_t transitions_ = 0;
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_HEALTH_H_
