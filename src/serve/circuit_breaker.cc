#include "serve/circuit_breaker.h"

namespace structura::serve {

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::OpenLocked() {
  state_ = State::kOpen;
  opened_at_ = Clock::now();
  inflight_probes_ = 0;
  ++open_transitions_;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - opened_at_);
      if (static_cast<uint64_t>(elapsed.count()) < options_.open_ms) {
        ++rejected_;
        return false;
      }
      // Cooldown over: probe recovery.
      state_ = State::kHalfOpen;
      inflight_probes_ = 1;
      return true;
    }
    case State::kHalfOpen:
      if (inflight_probes_ >= options_.half_open_probes) {
        ++rejected_;
        return false;
      }
      ++inflight_probes_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    // One healthy probe is evidence enough: re-close and resume traffic.
    state_ = State::kClosed;
    inflight_probes_ = 0;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        OpenLocked();
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to open, cooldown restarts.
      OpenLocked();
      break;
    case State::kOpen:
      // A straggler from before the breaker opened; nothing to update.
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t CircuitBreaker::open_transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_transitions_;
}

uint64_t CircuitBreaker::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace structura::serve
