#include "serve/circuit_breaker.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace structura::serve {
namespace {

/// Process-wide open-transition count: the watchdog's flap detector
/// reads the delta between ticks, so a breaker that keeps re-opening
/// is visible without enumerating frontends.
obs::Counter* OpensCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "serve.breaker.open_transitions");
  return c;
}

}  // namespace

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::OpenLocked() {
  state_ = State::kOpen;
  opened_at_nanos_ = clock_->NowNanos();
  inflight_probes_ = 0;
  ++generation_;
  ++open_transitions_;
  OpensCounter()->Increment();
  obs::RecordEvent(obs::EventCategory::kBreaker,
                   obs::EventCode::kBreakerOpen, generation_, 0, 0,
                   options_.name);
}

bool CircuitBreaker::Allow(uint64_t* admission) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool admitted = false;
  switch (state_) {
    case State::kClosed:
      admitted = true;
      break;
    case State::kOpen: {
      int64_t elapsed_nanos = clock_->NowNanos() - opened_at_nanos_;
      if (elapsed_nanos <
          static_cast<int64_t>(options_.open_ms) * 1'000'000) {
        ++rejected_;
        break;
      }
      // Cooldown over: probe recovery.
      state_ = State::kHalfOpen;
      ++generation_;
      inflight_probes_ = 1;
      last_probe_at_nanos_ = clock_->NowNanos();
      admitted = true;
      obs::RecordEvent(obs::EventCategory::kBreaker,
                       obs::EventCode::kBreakerHalfOpen, generation_, 0, 0,
                       options_.name);
      break;
    }
    case State::kHalfOpen:
      if (inflight_probes_ >= options_.half_open_probes) {
        // Every probe slot is taken. If none was handed out recently,
        // the outstanding probes are presumed stuck (a hung handler
        // that will never report): invalidate them — the generation
        // bump makes their eventual results stale — and admit a fresh
        // probe in the reclaimed slot. Without this, one wedged probe
        // parks the breaker in half-open forever.
        if (options_.probe_timeout_ms > 0 &&
            clock_->NowNanos() - last_probe_at_nanos_ >=
                static_cast<int64_t>(options_.probe_timeout_ms) *
                    1'000'000) {
          ++generation_;
          ++probe_reclaims_;
          inflight_probes_ = 1;
          last_probe_at_nanos_ = clock_->NowNanos();
          admitted = true;
          break;
        }
        ++rejected_;
        break;
      }
      ++inflight_probes_;
      last_probe_at_nanos_ = clock_->NowNanos();
      admitted = true;
      break;
  }
  if (admitted && admission != nullptr) *admission = generation_;
  return admitted;
}

void CircuitBreaker::RecordSuccess(uint64_t admission) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StaleLocked(admission)) return;  // pre-transition straggler
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    // One healthy probe is evidence enough: re-close and resume traffic.
    // Probes still in flight carry the old generation, so their later
    // results are discarded instead of polluting the closed state.
    state_ = State::kClosed;
    inflight_probes_ = 0;
    ++generation_;
    obs::RecordEvent(obs::EventCategory::kBreaker,
                     obs::EventCode::kBreakerClose, generation_, 0, 0,
                     options_.name);
  }
}

void CircuitBreaker::RecordFailure(uint64_t admission) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StaleLocked(admission)) return;  // pre-transition straggler
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        OpenLocked();
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to open, cooldown restarts.
      OpenLocked();
      break;
    case State::kOpen:
      // Only reachable with kCurrentAdmission (legacy callers); nothing
      // to update — the breaker is already open.
      break;
  }
}

void CircuitBreaker::ReleaseProbe(uint64_t admission) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StaleLocked(admission)) return;
  if (state_ == State::kHalfOpen && inflight_probes_ > 0) {
    --inflight_probes_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t CircuitBreaker::open_transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_transitions_;
}

uint64_t CircuitBreaker::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

uint64_t CircuitBreaker::probe_reclaims() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return probe_reclaims_;
}

}  // namespace structura::serve
