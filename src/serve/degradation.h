#ifndef STRUCTURA_SERVE_DEGRADATION_H_
#define STRUCTURA_SERVE_DEGRADATION_H_

#include <array>
#include <atomic>
#include <cstddef>

#include "serve/health.h"
#include "serve/request_context.h"

namespace structura::serve {

/// Priority-aware brownout admission: each tier may only occupy a
/// fraction of the frontend's bounded admission queue, so as load (or
/// ill health) grows, background work is shed first, then batch, and
/// interactive traffic keeps the whole queue to itself — the classic
/// brownout ladder, implemented as weighted thresholds on the queue the
/// frontend already bounds.
///
///   admit(tier) ⇔ queue_depth < fraction(tier) × capacity
///
/// where fraction(interactive) = 1 (interactive is only ever refused by
/// the hard queue bound itself), and the batch/background fractions
/// tighten when the health model reports the system degraded. Under
/// critical health, background traffic is refused outright.
///
/// Stateless: a decision reads the queue depth the caller passes in
/// plus the health model's current overall state (one brief mutex
/// acquisition), so Admit() can sit on the Submit() hot path.
class DegradationPolicy {
 public:
  struct Options {
    /// Master switch; off = every tier admitted up to the queue bound
    /// (the "no brownout" baseline bench_e18 compares against).
    bool enabled = true;
    /// Queue fraction the batch tier may fill.
    double batch_queue_fraction = 0.60;
    /// Queue fraction the background tier may fill.
    double background_queue_fraction = 0.25;
    /// Multiplier applied to the fractions while overall health is
    /// degraded (and again, squared, for batch under critical health).
    double degraded_tighten = 0.5;
  };

  DegradationPolicy() : DegradationPolicy(Options{}, nullptr) {}
  DegradationPolicy(Options options, const HealthModel* health)
      : options_(options), health_(health) {}
  DegradationPolicy(const DegradationPolicy&) = delete;
  DegradationPolicy& operator=(const DegradationPolicy&) = delete;

  struct Decision {
    bool admit = true;
    /// Static string describing the refusal ("" when admitted).
    const char* reason = "";
  };

  /// Should a request of tier `p` be admitted with `queue_depth` tasks
  /// already waiting on a queue bounded at `capacity`? `capacity == 0`
  /// (unbounded queue) always admits — brownout is meaningless without
  /// a bound.
  Decision Admit(Priority p, size_t queue_depth, size_t capacity) const;

  const HealthModel* health() const { return health_; }

 private:
  Options options_;
  const HealthModel* health_;
  /// Last brownout verdict per tier, for edge-triggered flight-recorder
  /// events (engage when a tier starts shedding, lift when it stops).
  /// Relaxed atomics: Admit() sits on the Submit() hot path and the
  /// events are observational — a racy duplicate edge is harmless.
  mutable std::array<std::atomic<bool>, kNumPriorities> browned_{};
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_DEGRADATION_H_
