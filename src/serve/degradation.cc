#include "serve/degradation.h"

#include <algorithm>

namespace structura::serve {

DegradationPolicy::Decision DegradationPolicy::Admit(Priority p,
                                                     size_t queue_depth,
                                                     size_t capacity) const {
  if (!options_.enabled || capacity == 0 || p == Priority::kInteractive) {
    return Decision{};
  }
  HealthState h =
      health_ != nullptr ? health_->Overall() : HealthState::kHealthy;
  double fraction = p == Priority::kBatch ? options_.batch_queue_fraction
                                          : options_.background_queue_fraction;
  switch (h) {
    case HealthState::kHealthy:
      break;
    case HealthState::kDegraded:
      fraction *= options_.degraded_tighten;
      break;
    case HealthState::kCritical:
      if (p == Priority::kBackground) {
        return Decision{false, "brownout: background refused while critical"};
      }
      fraction *= options_.degraded_tighten * options_.degraded_tighten;
      break;
  }
  double allowed = fraction * static_cast<double>(capacity);
  if (static_cast<double>(queue_depth) < allowed) return Decision{};
  return Decision{false, p == Priority::kBatch
                             ? "brownout: batch queue share full"
                             : "brownout: background queue share full"};
}

}  // namespace structura::serve
