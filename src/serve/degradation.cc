#include "serve/degradation.h"

#include <algorithm>

#include "obs/flight_recorder.h"

namespace structura::serve {
namespace {

/// Edge-triggers the per-tier brownout events: one engage when the
/// tier starts shedding, one lift when it stops, however many Admit()
/// calls land in between.
void NoteBrownout(std::atomic<bool>* state, Priority p, bool shedding) {
  if (state->load(std::memory_order_relaxed) == shedding) return;
  state->store(shedding, std::memory_order_relaxed);
  obs::RecordEvent(obs::EventCategory::kBrownout,
                   shedding ? obs::EventCode::kBrownoutEngage
                            : obs::EventCode::kBrownoutLift,
                   static_cast<uint64_t>(p), 0, 0, PriorityName(p));
}

}  // namespace

DegradationPolicy::Decision DegradationPolicy::Admit(Priority p,
                                                     size_t queue_depth,
                                                     size_t capacity) const {
  if (!options_.enabled || capacity == 0 || p == Priority::kInteractive) {
    return Decision{};
  }
  HealthState h =
      health_ != nullptr ? health_->Overall() : HealthState::kHealthy;
  double fraction = p == Priority::kBatch ? options_.batch_queue_fraction
                                          : options_.background_queue_fraction;
  std::atomic<bool>* browned = &browned_[static_cast<size_t>(p)];
  switch (h) {
    case HealthState::kHealthy:
      break;
    case HealthState::kDegraded:
      fraction *= options_.degraded_tighten;
      break;
    case HealthState::kCritical:
      if (p == Priority::kBackground) {
        NoteBrownout(browned, p, true);
        return Decision{false, "brownout: background refused while critical"};
      }
      fraction *= options_.degraded_tighten * options_.degraded_tighten;
      break;
  }
  double allowed = fraction * static_cast<double>(capacity);
  if (static_cast<double>(queue_depth) < allowed) {
    NoteBrownout(browned, p, false);
    return Decision{};
  }
  NoteBrownout(browned, p, true);
  return Decision{false, p == Priority::kBatch
                             ? "brownout: batch queue share full"
                             : "brownout: background queue share full"};
}

}  // namespace structura::serve
