#ifndef STRUCTURA_SERVE_FRONTEND_H_
#define STRUCTURA_SERVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/circuit_breaker.h"
#include "serve/counters.h"
#include "serve/degradation.h"
#include "serve/health.h"
#include "serve/request_context.h"

namespace structura::serve {

/// Request-serving frontend: the overload-policy layer between callers
/// and the query operators (keyword, structured, hybrid, translate, …).
///
/// Responsibilities:
///  - **Admission control.** Work is dispatched onto a bounded
///    ThreadPool; when the queue is full the request is shed
///    *immediately* with kUnavailable — the caller is never blocked
///    behind a queue it cannot see. Requests that sat queued longer
///    than `max_queue_wait_ms` are shed at dequeue instead of running
///    with an already-blown latency budget.
///  - **Priority brownout.** Each RequestContext carries a Priority
///    tier; batch and background requests are only admitted while the
///    queue is below their tier's share (DegradationPolicy), so under
///    overload or ill health the lower tiers are shed first and
///    interactive traffic keeps its latency budget.
///  - **Per-operator circuit breakers.** Consecutive operator failures
///    open the breaker and traffic to that operator fails fast with
///    kUnavailable until a cooldown passes and a probe succeeds.
///  - **Fallback ladder.** An operator may name a fallback
///    (SetFallback): when the primary's breaker refuses a request — or
///    its tagged subsystem is critical in the health model — the
///    request is served by the fallback instead, and the answer is
///    explicitly marked degraded through ctx.response. A degraded
///    answer is a contract, never a silent substitution — so the
///    ladder only runs for requests that allocated ctx.response; the
///    rest get the primary's refusal. While a
///    subsystem is critical a trickle of canary requests still attempts
///    the primary, so the evidence needed to clear the verdict (breaker
///    probes, fresh successes) keeps flowing.
///  - **Read-only brownout.** Operators marked as writes (MarkWrite)
///    are refused with kUnavailable while the `read_only_gate` health
///    subsystem (default "storage.disk") is critical — reads keep
///    serving off the durable prefix while the storage layer heals.
///    The refusal is counted (read_only_refused) and, when the request
///    carries a response channel, explained through ctx.response.
///  - **Health signals.** When Options::health is set, the frontend
///    feeds it: per-subsystem breaker aggregates for every subsystem
///    named via TagOperator, plus a "serve" admission-queue signal.
///    ~Frontend detaches these registrations (draining any in-flight
///    evaluation) before the breakers and counters are destroyed, so a
///    watchdog evaluating concurrently can never touch freed state.
///  - **Retries.** Retryable operator failures are re-attempted with
///    jittered exponential backoff, charged against the request's
///    retry budget and clipped to its deadline.
///
/// Every submitted request resolves to exactly one Status: OK,
/// kDeadlineExceeded, kCancelled, or kUnavailable (plus kNotFound for
/// unregistered operators). Counters reconcile globally and per tier:
/// admitted + shed + not_found == issued, and every admitted request
/// resolves.
///
/// The failpoint sites `serve.op` and `serve.op.<name>` are evaluated
/// before each handler attempt (fallback attempts included), so tests
/// can drive breakers, retries, and the fallback ladder without
/// touching the operators themselves.
class Frontend {
 public:
  struct Options {
    size_t num_threads = 4;
    /// Queue bound for admission control (tasks waiting, not running).
    size_t max_queue_depth = 64;
    /// Requests queued longer than this are shed at dequeue.
    uint64_t max_queue_wait_ms = 50;
    CircuitBreaker::Options breaker;
    /// Backoff before retry k (1-based): jittered
    /// retry_base_ms * retry_multiplier^(k-1), capped at retry_max_ms
    /// and at the request's remaining deadline.
    uint64_t retry_base_ms = 1;
    double retry_multiplier = 2.0;
    uint64_t retry_max_ms = 16;
    uint64_t seed = 1;
    /// When false the queue is unbounded and queued-wait shedding is
    /// off — the "no overload policy" baseline bench_e15 compares
    /// against. Breakers, retries, and brownout-free admission stay
    /// active.
    bool shed_enabled = true;
    /// Brownout thresholds for the batch/background tiers (evaluated
    /// against max_queue_depth; inert when shed_enabled is false).
    DegradationPolicy::Options brownout;
    /// Health model to feed (breaker aggregates per tagged subsystem,
    /// admission-queue state) and to consult for fallback decisions.
    /// Optional; must outlive the frontend. The frontend detaches all
    /// of its registrations in its destructor.
    HealthModel* health = nullptr;
    /// Health subsystem gating write operators (see MarkWrite). While
    /// this subsystem is critical the frontend is in read-only
    /// brownout: writes are refused with kUnavailable (reads keep
    /// serving), and the refusal reason travels through ctx.response.
    /// Empty disables the gate; inert without Options::health.
    std::string read_only_gate = "storage.disk";
    /// Registry the serving counters/histograms live in. Defaults to
    /// the process-wide obs::MetricsRegistry::Default(); tests may
    /// inject a private registry (it must outlive the frontend).
    obs::MetricsRegistry* registry = nullptr;
    /// Time source for queue-wait accounting, retry backoff, and the
    /// per-operator breaker timers. nullptr = real time; a
    /// SimulatedClock makes backoff and cooldowns instantaneous and
    /// deterministic under test.
    structura::Clock* clock = nullptr;
  };

  /// An operator handler: does the work, honours ctx.interrupt, returns
  /// its Status. Must be thread-safe — the pool invokes it concurrently.
  using Handler = std::function<Status(const RequestContext&)>;

  explicit Frontend(Options options);
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;
  /// Detaches health-model registrations (draining any in-flight
  /// watchdog evaluation), then drains queued requests (their futures
  /// all resolve).
  ~Frontend();

  /// Registers an operator. Call before serving traffic; names are
  /// stable for the frontend's lifetime.
  void RegisterOperator(const std::string& name, Handler handler);

  /// Tags an operator as belonging to a health subsystem (e.g.
  /// "query.keyword", "storage.wal"). When Options::health is set, the
  /// frontend registers one breaker-aggregate signal per distinct
  /// subsystem: all tagged breakers closed → healthy, any open or
  /// half-open → degraded, all open → critical. Call during setup,
  /// before serving traffic.
  void TagOperator(const std::string& name, const std::string& subsystem);

  /// Marks an operator as a *write*: it mutates durable storage, so it
  /// is refused (kUnavailable, counted as read_only_refused) while the
  /// `read_only_gate` subsystem is critical — the read-only brownout.
  /// Reads are never gated. Call during setup, before serving traffic.
  void MarkWrite(const std::string& name);

  /// Names `fallback` as the reduced-fidelity stand-in for `primary`
  /// (e.g. hybrid → keyword-only). Both operators must already be
  /// registered. The fallback runs when the primary's breaker refuses
  /// a request or its subsystem is critical; answers served this way
  /// are marked degraded via ctx.response and counted. Requests that
  /// carry no ctx.response never take the ladder — without the channel
  /// the degraded flag cannot be delivered, and serving the fallback
  /// anyway would be a silent substitution.
  void SetFallback(const std::string& primary, const std::string& fallback);

  /// Dispatches a request. Never blocks the caller: the future is
  /// either queued work or an immediately-resolved shed decision.
  std::future<Status> Submit(const std::string& op, RequestContext ctx);

  /// Convenience: Submit + wait.
  Status Call(const std::string& op, RequestContext ctx);

  /// Blocks until every submitted request has resolved.
  void WaitIdle();

  ServingCounters Counters() const;
  CircuitBreaker::State BreakerState(const std::string& op) const;

 private:
  struct Operator {
    Handler handler;
    CircuitBreaker breaker;
    /// Interned copy of the operator name, usable as a span name.
    const char* span_name = "";
    /// Health subsystem this operator's breaker feeds ("" = untagged).
    std::string subsystem;
    /// Operator to serve through when this one's breaker refuses.
    std::string fallback;
    /// True for operators that mutate durable storage (MarkWrite):
    /// refused while the read_only_gate subsystem is critical.
    bool is_write = false;
    /// Requests seen while the subsystem was critical; every Nth one is
    /// let through to the primary as a recovery canary (see Execute()).
    std::atomic<uint64_t> canary{0};
    /// Per-dimension cost rollup histograms
    /// (serve.op.<name>.cost.<dim>), cached at registration.
    std::array<obs::Histogram*, obs::kNumCostDims> cost_hist{};

    explicit Operator(CircuitBreaker::Options bopts) : breaker(bopts) {}
  };

  /// Runs on a pool worker: queued-wait shedding, breaker check,
  /// failpoint + handler, retry loop; resolves `done`.
  void Execute(Operator* op, const std::string& op_name,
               const RequestContext& ctx, int64_t enqueued_at_nanos,
               std::promise<Status>* done);

  /// Attempts the fallback ladder for `primary` (reason: `why`).
  /// Returns true when it resolved `done` (served degraded, or the
  /// fallback attempt itself terminated the request); false when no
  /// fallback is available and the normal refusal path should run.
  bool TryFallback(Operator* primary, const RequestContext& ctx,
                   const std::string& why, std::promise<Status>* done);

  void Resolve(std::promise<Status>* done, Status s);

  /// Breaker aggregate over operators tagged with `subsystem`.
  HealthSample BreakerSignal(const std::string& subsystem) const;
  /// Admission-queue fill signal for the "serve" subsystem.
  HealthSample AdmissionSignal() const;

  /// Raw (process-cumulative) registry values for this frontend's
  /// counters; Counters() returns these minus base_.
  ServingCounters RegistryValues() const;

  Options options_;
  structura::Clock* clock_;

  mutable std::mutex ops_mutex_;
  std::map<std::string, std::unique_ptr<Operator>> ops_;
  std::vector<std::string> op_order_;

  // Serving counters live in the metrics registry (serve.requests.*);
  // the members are cached handles. The registry outlives the frontend
  // (process-wide default, or caller-provided with wider scope), so the
  // pool-drained Execute() tasks may safely bump them during teardown.
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* issued_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* not_found_ = nullptr;
  obs::Counter* ok_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* unavailable_ = nullptr;
  obs::Counter* shed_queued_wait_ = nullptr;
  obs::Counter* breaker_rejected_ = nullptr;
  obs::Counter* read_only_refused_ = nullptr;
  obs::Counter* shed_brownout_ = nullptr;
  obs::Counter* fallback_served_ = nullptr;
  obs::Counter* degraded_answers_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* root_spans_ = nullptr;
  /// Per-tier admission counters, indexed by Priority.
  std::array<obs::Counter*, kNumPriorities> tier_issued_{};
  std::array<obs::Counter*, kNumPriorities> tier_admitted_{};
  std::array<obs::Counter*, kNumPriorities> tier_shed_{};
  std::array<obs::Counter*, kNumPriorities> tier_not_found_{};
  obs::Histogram* request_latency_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
  /// Registry values at construction; subtracted so ServingCounters
  /// reads as this frontend's own traffic.
  ServingCounters base_;

  /// Brownout admission policy (reads options_.brownout + health).
  DegradationPolicy policy_;
  /// Health-model registration ids owned by this frontend, detached in
  /// the destructor BEFORE any member (breakers, pool) is destroyed.
  /// Guarded by ops_mutex_; keyed by subsystem to avoid duplicates.
  std::map<std::string, uint64_t> health_registrations_;

  // MUST stay the last member: ~ThreadPool drains still-queued Execute()
  // tasks, which dereference ops_ and the counters above. Members are
  // destroyed in reverse declaration order, so the pool (and with it the
  // drain) must go first or destruction with queued work is a
  // use-after-free (FrontendTest.DestructionDrainsQueuedRequests).
  ThreadPool pool_;
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_FRONTEND_H_
