#ifndef STRUCTURA_SERVE_FRONTEND_H_
#define STRUCTURA_SERVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/circuit_breaker.h"
#include "serve/counters.h"
#include "serve/request_context.h"

namespace structura::serve {

/// Request-serving frontend: the overload-policy layer between callers
/// and the query operators (keyword, structured, hybrid, translate, …).
///
/// Responsibilities:
///  - **Admission control.** Work is dispatched onto a bounded
///    ThreadPool; when the queue is full the request is shed
///    *immediately* with kUnavailable — the caller is never blocked
///    behind a queue it cannot see. Requests that sat queued longer
///    than `max_queue_wait_ms` are shed at dequeue instead of running
///    with an already-blown latency budget.
///  - **Per-operator circuit breakers.** Consecutive operator failures
///    open the breaker and traffic to that operator fails fast with
///    kUnavailable until a cooldown passes and a probe succeeds.
///  - **Retries.** Retryable operator failures are re-attempted with
///    jittered exponential backoff, charged against the request's
///    retry budget and clipped to its deadline.
///
/// Every submitted request resolves to exactly one Status: OK,
/// kDeadlineExceeded, kCancelled, or kUnavailable (plus kNotFound for
/// unregistered operators). Counters reconcile: admitted + shed +
/// not_found == issued, and every admitted request resolves.
///
/// The failpoint sites `serve.op` and `serve.op.<name>` are evaluated
/// before each handler attempt, so tests can drive breakers and retry
/// paths without touching the operators themselves.
class Frontend {
 public:
  struct Options {
    size_t num_threads = 4;
    /// Queue bound for admission control (tasks waiting, not running).
    size_t max_queue_depth = 64;
    /// Requests queued longer than this are shed at dequeue.
    uint64_t max_queue_wait_ms = 50;
    CircuitBreaker::Options breaker;
    /// Backoff before retry k (1-based): jittered
    /// retry_base_ms * retry_multiplier^(k-1), capped at retry_max_ms
    /// and at the request's remaining deadline.
    uint64_t retry_base_ms = 1;
    double retry_multiplier = 2.0;
    uint64_t retry_max_ms = 16;
    uint64_t seed = 1;
    /// When false the queue is unbounded and queued-wait shedding is
    /// off — the "no overload policy" baseline bench_e15 compares
    /// against. Breakers and retries stay active.
    bool shed_enabled = true;
    /// Registry the serving counters/histograms live in. Defaults to
    /// the process-wide obs::MetricsRegistry::Default(); tests may
    /// inject a private registry (it must outlive the frontend).
    obs::MetricsRegistry* registry = nullptr;
  };

  /// An operator handler: does the work, honours ctx.interrupt, returns
  /// its Status. Must be thread-safe — the pool invokes it concurrently.
  using Handler = std::function<Status(const RequestContext&)>;

  explicit Frontend(Options options);
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;
  /// Drains queued requests (their futures all resolve).
  ~Frontend() = default;

  /// Registers an operator. Call before serving traffic; names are
  /// stable for the frontend's lifetime.
  void RegisterOperator(const std::string& name, Handler handler);

  /// Dispatches a request. Never blocks the caller: the future is
  /// either queued work or an immediately-resolved shed decision.
  std::future<Status> Submit(const std::string& op, RequestContext ctx);

  /// Convenience: Submit + wait.
  Status Call(const std::string& op, RequestContext ctx);

  /// Blocks until every submitted request has resolved.
  void WaitIdle();

  ServingCounters Counters() const;
  CircuitBreaker::State BreakerState(const std::string& op) const;

 private:
  struct Operator {
    Handler handler;
    CircuitBreaker breaker;
    /// Interned copy of the operator name, usable as a span name.
    const char* span_name = "";

    explicit Operator(CircuitBreaker::Options bopts) : breaker(bopts) {}
  };

  /// Runs on a pool worker: queued-wait shedding, breaker check,
  /// failpoint + handler, retry loop; resolves `done`.
  void Execute(Operator* op, const std::string& op_name,
               const RequestContext& ctx,
               std::chrono::steady_clock::time_point enqueued_at,
               std::promise<Status>* done);

  void Resolve(std::promise<Status>* done, Status s);

  /// Raw (process-cumulative) registry values for this frontend's
  /// counters; Counters() returns these minus base_.
  ServingCounters RegistryValues() const;

  Options options_;

  mutable std::mutex ops_mutex_;
  std::map<std::string, std::unique_ptr<Operator>> ops_;
  std::vector<std::string> op_order_;

  // Serving counters live in the metrics registry (serve.requests.*);
  // the members are cached handles. The registry outlives the frontend
  // (process-wide default, or caller-provided with wider scope), so the
  // pool-drained Execute() tasks may safely bump them during teardown.
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* issued_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* not_found_ = nullptr;
  obs::Counter* ok_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* unavailable_ = nullptr;
  obs::Counter* shed_queued_wait_ = nullptr;
  obs::Counter* breaker_rejected_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* root_spans_ = nullptr;
  obs::Histogram* request_latency_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
  /// Registry values at construction; subtracted so ServingCounters
  /// reads as this frontend's own traffic.
  ServingCounters base_;

  // MUST stay the last member: ~ThreadPool drains still-queued Execute()
  // tasks, which dereference ops_ and the counters above. Members are
  // destroyed in reverse declaration order, so the pool (and with it the
  // drain) must go first or destruction with queued work is a
  // use-after-free (FrontendTest.DestructionDrainsQueuedRequests).
  ThreadPool pool_;
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_FRONTEND_H_
