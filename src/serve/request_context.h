#ifndef STRUCTURA_SERVE_REQUEST_CONTEXT_H_
#define STRUCTURA_SERVE_REQUEST_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/cancellation.h"
#include "obs/flight_recorder.h"

namespace structura::serve {

/// Request priority class for brownout-style admission: under overload
/// or degraded health, lower tiers are shed first so interactive
/// traffic keeps its latency budget. Order matters — larger = lower
/// priority = shed earlier.
enum class Priority : uint8_t {
  kInteractive = 0,  // a human is waiting (search-as-you-type, pages)
  kBatch = 1,        // throughput work with a deadline (reports, sync)
  kBackground = 2,   // best-effort (re-extraction, prefetch, scrubs)
};

inline constexpr size_t kNumPriorities = 3;

inline const char* PriorityName(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBackground:
      return "background";
  }
  return "?";
}

/// Out-of-band response annotations a handler (or the frontend's
/// fallback path) attaches to an answer. A degraded answer is an
/// explicit contract: the caller is told the result was produced with
/// reduced fidelity and why — never a silent wrong answer.
///
/// Thread-safety: written by the worker running the request strictly
/// before its promise resolves; the caller reads it only after
/// future.get() returns, so the promise provides the happens-before
/// edge and no lock is needed.
struct ResponseMeta {
  bool degraded = false;
  std::string degraded_reason;
  /// Operator that actually produced the answer (set by the frontend's
  /// fallback path; empty = the operator the caller asked for).
  std::string served_by;
};

/// Everything a request carries through the serving path: identity, the
/// cooperative interrupt (deadline + cancellation token) that inner
/// loops poll, a retry budget the frontend charges for each re-attempt
/// after a retryable operator failure, and the priority tier brownout
/// admission keys off. The budget is per-request so a flapping operator
/// cannot multiply one call into an unbounded retry storm.
struct RequestContext {
  uint64_t id = 0;
  Interrupt interrupt;
  /// Re-attempts allowed beyond the first try.
  uint32_t retry_budget = 2;
  /// Request trace id (obs/trace.h). 0 = let the frontend mint one at
  /// Submit(); callers with an existing trace pass it through so spans
  /// recorded downstream join the same tree.
  uint64_t trace_id = 0;
  /// Admission tier; see Priority.
  Priority priority = Priority::kInteractive;
  /// Optional out-channel for degradation annotations. Callers that
  /// care allocate it before Submit(); handlers and the fallback path
  /// write through the shared pointer.
  std::shared_ptr<ResponseMeta> response;
  /// Per-request resource accounting (obs/flight_recorder.h). Usually
  /// left null — the executor then accounts on its own stack frame, no
  /// allocation — and installed thread-locally either way so charge
  /// sites deep in the storage and query layers attribute their cost to
  /// this request. Callers that want to read the accumulated CostVector
  /// back after the response resolves allocate one here before Submit().
  std::shared_ptr<obs::CostAccumulator> cost;
  /// When true, this request bypasses the query result cache: it is
  /// neither answered from a cached entry nor admitted into the cache.
  /// The frontend scopes the flag thread-locally around the handler so
  /// layers below (the SDL interpreter) see it without plumbing.
  bool no_cache = false;
};

namespace internal {
/// Thread-local no-cache flag for the request currently executing on
/// this worker; see ScopedCacheBypass.
inline thread_local bool t_cache_bypass = false;
}  // namespace internal

/// RAII scope the frontend wraps around a handler invocation to expose
/// RequestContext::no_cache to the layers below. Nests: an inner scope
/// can only widen the bypass, never re-enable caching an outer scope
/// disabled.
class ScopedCacheBypass {
 public:
  explicit ScopedCacheBypass(bool bypass)
      : saved_(internal::t_cache_bypass) {
    internal::t_cache_bypass = saved_ || bypass;
  }
  ~ScopedCacheBypass() { internal::t_cache_bypass = saved_; }
  ScopedCacheBypass(const ScopedCacheBypass&) = delete;
  ScopedCacheBypass& operator=(const ScopedCacheBypass&) = delete;

 private:
  bool saved_;
};

/// True while the current thread is inside a ScopedCacheBypass(true)
/// scope. The System's cache gate consults this.
inline bool CacheBypassed() { return internal::t_cache_bypass; }

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_REQUEST_CONTEXT_H_
