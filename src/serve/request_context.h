#ifndef STRUCTURA_SERVE_REQUEST_CONTEXT_H_
#define STRUCTURA_SERVE_REQUEST_CONTEXT_H_

#include <cstdint>

#include "common/cancellation.h"

namespace structura::serve {

/// Everything a request carries through the serving path: identity, the
/// cooperative interrupt (deadline + cancellation token) that inner
/// loops poll, and a retry budget the frontend charges for each
/// re-attempt after a retryable operator failure. The budget is
/// per-request so a flapping operator cannot multiply one call into an
/// unbounded retry storm.
struct RequestContext {
  uint64_t id = 0;
  Interrupt interrupt;
  /// Re-attempts allowed beyond the first try.
  uint32_t retry_budget = 2;
  /// Request trace id (obs/trace.h). 0 = let the frontend mint one at
  /// Submit(); callers with an existing trace pass it through so spans
  /// recorded downstream join the same tree.
  uint64_t trace_id = 0;
};

}  // namespace structura::serve

#endif  // STRUCTURA_SERVE_REQUEST_CONTEXT_H_
